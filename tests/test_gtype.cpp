// Tests for the graph type AST: builders, printing, parsing (round-trip),
// free variables, stats, and equality.

#include <gtest/gtest.h>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

TEST(GTypePrint, Atoms) {
  EXPECT_EQ(to_string(*gt::empty()), "1");
  EXPECT_EQ(to_string(*gt::touch(S("u"))), "~u");
  EXPECT_EQ(to_string(*gt::var(S("g"))), "g");
}

TEST(GTypePrint, PrecedenceOfSeqAndOr) {
  const GTypePtr g = gt::alt(gt::seq(gt::empty(), gt::touch(S("u"))),
                             gt::empty());
  EXPECT_EQ(to_string(*g), "1 ; ~u | 1");
  const GTypePtr h = gt::seq(gt::alt(gt::empty(), gt::empty()),
                             gt::touch(S("u")));
  EXPECT_EQ(to_string(*h), "(1 | 1) ; ~u");
}

TEST(GTypePrint, SpawnBindsTightest) {
  const GTypePtr g =
      gt::seq(gt::spawn(gt::empty(), S("u")), gt::touch(S("u")));
  EXPECT_EQ(to_string(*g), "1 / u ; ~u");
  const GTypePtr h = gt::spawn(gt::seq(gt::empty(), gt::empty()), S("u"));
  EXPECT_EQ(to_string(*h), "(1 ; 1) / u");
}

TEST(GTypePrint, BindersAndApplication) {
  const GTypePtr g = gt::rec(
      S("g"), gt::pi({S("a")}, {S("x")},
                     gt::app(gt::var(S("g")), {S("a")}, {S("x")})));
  EXPECT_EQ(to_string(*g), "rec g. pi[a; x]. g[a; x]");
}

TEST(GTypePrint, DivideAndConquerExample) {
  // μγ.νu.(• ∨ (γ/u ⊕ γ ⊕ ᵘ\)) — §2.3 of the paper.
  const Symbol g = S("g");
  const Symbol u = S("u");
  const GTypePtr t = gt::rec(
      g, gt::nu(u, gt::alt(gt::empty(),
                           gt::seq_all({gt::spawn(gt::var(g), u), gt::var(g),
                                        gt::touch(u)}))));
  EXPECT_EQ(to_string(*t), "rec g. new u. 1 | g / u ; g ; ~u");
}

class ParseRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseRoundTrip, PrintParseIsIdentity) {
  const GTypePtr parsed = parse_gtype_or_throw(GetParam());
  const std::string printed = to_string(*parsed);
  const GTypePtr reparsed = parse_gtype_or_throw(printed);
  EXPECT_TRUE(structurally_equal(*parsed, *reparsed))
      << "printed: " << printed;
  EXPECT_EQ(printed, to_string(*reparsed));
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParseRoundTrip,
    ::testing::Values(
        "1", "~u", "1 ; 1", "1 | 1", "1 / u", "1 / u ; ~u",
        "(1 | 1) ; ~u", "rec g. 1 | g", "new u. 1 / u ; ~u",
        "pi[a; x]. ~x ; 1 / a", "rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u]",
        "rec g. new u. 1 | g / u ; g ; ~u",
        "pi[; x]. ~x", "pi[a;]. 1 / a", "pi[;]. 1",
        "g[a, b; x]", "g[;]", "(rec g. pi[a; x]. 1 / a)[u; w]",
        "new u. new w. (1 / u ; 1 / w) ; (~u ; ~w)",
        "1 / u / w",     // nested spawn: (1/u)/w
        "(1 / u)[a; x]"  // application of a spawned graph (degenerate but legal syntax)
        ));

TEST(GTypeParse, AcceptsCommentsAndWhitespace) {
  const GTypePtr g = parse_gtype_or_throw(
      "# a comment\n  1 ; # trailing\n ~u\n");
  EXPECT_EQ(to_string(*g), "1 ; ~u");
}

TEST(GTypeParse, RejectsGarbage) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_gtype("1 ; ;", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  EXPECT_EQ(parse_gtype("rec . 1", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  EXPECT_EQ(parse_gtype("pi[a x]. 1", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  EXPECT_EQ(parse_gtype("1 extra", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  EXPECT_EQ(parse_gtype("", diags), nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(GTypeParse, ErrorsCarryLocations) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_gtype("1 ;\n;", diags), nullptr);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.all().front().loc.line, 2u);
}

TEST(GTypeFreeVars, VerticesRespectBinders) {
  const GTypePtr g = parse_gtype_or_throw("new u. 1 / u ; ~u ; ~w");
  const OrderedSet<Symbol> fv = free_vertices(*g);
  EXPECT_FALSE(fv.contains(S("u")));
  EXPECT_TRUE(fv.contains(S("w")));
}

TEST(GTypeFreeVars, PiBindsBothVectors) {
  const GTypePtr g = parse_gtype_or_throw("pi[a; x]. 1 / a ; ~x ; ~y");
  const OrderedSet<Symbol> fv = free_vertices(*g);
  EXPECT_FALSE(fv.contains(S("a")));
  EXPECT_FALSE(fv.contains(S("x")));
  EXPECT_TRUE(fv.contains(S("y")));
}

TEST(GTypeFreeVars, AppArgumentsAreFree) {
  const GTypePtr g = parse_gtype_or_throw("g[a; x]");
  const OrderedSet<Symbol> fv = free_vertices(*g);
  EXPECT_TRUE(fv.contains(S("a")));
  EXPECT_TRUE(fv.contains(S("x")));
  EXPECT_TRUE(free_gvars(*g).contains(S("g")));
}

TEST(GTypeFreeVars, GvarsRespectMu) {
  const GTypePtr g = parse_gtype_or_throw("rec g. g ; h");
  const OrderedSet<Symbol> fg = free_gvars(*g);
  EXPECT_FALSE(fg.contains(S("g")));
  EXPECT_TRUE(fg.contains(S("h")));
}

TEST(GTypeStatsTest, CountsConstructors) {
  const GTypePtr g = parse_gtype_or_throw(
      "rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u]");
  const GTypeStats s = stats(*g);
  EXPECT_EQ(s.mu_bindings, 1u);
  EXPECT_EQ(s.nu_bindings, 1u);
  EXPECT_EQ(s.applications, 1u);
  EXPECT_EQ(s.spawns, 1u);
  EXPECT_EQ(s.touches, 1u);
  EXPECT_GT(s.nodes, 6u);
}

TEST(GTypeEquality, StructuralIsExact) {
  const GTypePtr a = parse_gtype_or_throw("new u. 1 / u");
  const GTypePtr b = parse_gtype_or_throw("new u. 1 / u");
  const GTypePtr c = parse_gtype_or_throw("new w. 1 / w");
  EXPECT_TRUE(structurally_equal(*a, *b));
  EXPECT_FALSE(structurally_equal(*a, *c));
}

TEST(GTypeEquality, AlphaIdentifiesRenamedBinders) {
  const GTypePtr a = parse_gtype_or_throw("new u. 1 / u ; ~u");
  const GTypePtr c = parse_gtype_or_throw("new w. 1 / w ; ~w");
  EXPECT_TRUE(alpha_equal(*a, *c));

  const GTypePtr free1 = parse_gtype_or_throw("~x");
  const GTypePtr free2 = parse_gtype_or_throw("~y");
  EXPECT_FALSE(alpha_equal(*free1, *free2));  // free names must match
}

TEST(GTypeEquality, AlphaHandlesRecAndPi) {
  const GTypePtr a =
      parse_gtype_or_throw("rec g. pi[a; x]. ~x ; 1 / a ; g[a; x]");
  const GTypePtr b =
      parse_gtype_or_throw("rec h. pi[p; q]. ~q ; 1 / p ; h[p; q]");
  EXPECT_TRUE(alpha_equal(*a, *b));
  const GTypePtr c =
      parse_gtype_or_throw("rec h. pi[p; q]. ~q ; 1 / p ; h[q; p]");
  EXPECT_FALSE(alpha_equal(*a, *c));
}

TEST(GTypeEquality, AlphaDistinguishesShadowing) {
  const GTypePtr a = parse_gtype_or_throw("new u. new u. ~u");
  const GTypePtr b = parse_gtype_or_throw("new u. new w. ~u");
  EXPECT_FALSE(alpha_equal(*a, *b));
  const GTypePtr c = parse_gtype_or_throw("new p. new q. ~q");
  EXPECT_TRUE(alpha_equal(*a, *c));
}

TEST(GTypeBuilders, SeqAllAndNuAll) {
  EXPECT_EQ(to_string(*gt::seq_all({})), "1");
  const GTypePtr g = gt::nu_all({S("a"), S("b")}, gt::touch(S("a")));
  EXPECT_EQ(to_string(*g), "new a. new b. ~a");
}

}  // namespace
}  // namespace gtdl
