// Tests for the §3 counterexample family builders.

#include <gtest/gtest.h>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/wellformed.hpp"

namespace gtdl {
namespace {

TEST(Counterexample, RequiresPositiveM) {
  EXPECT_THROW((void)counterexample_gtype(0), std::invalid_argument);
  EXPECT_THROW((void)counterexample_futlang(0), std::invalid_argument);
}

TEST(Counterexample, MemberOneMatchesThePaper) {
  const GTypePtr fn = counterexample_function_gtype(1);
  EXPECT_EQ(to_string(*fn),
            "rec g. pi[a1; x1]. new u. 1 | ~x1 ; 1 / a1 ; g[u; u]");
}

TEST(Counterexample, WholeProgramShape) {
  const GTypePtr g = counterexample_gtype(1);
  const std::string s = to_string(*g);
  EXPECT_NE(s.find("new u1."), std::string::npos);
  EXPECT_NE(s.find("new w1."), std::string::npos);
  EXPECT_NE(s.find("[u1; w1]"), std::string::npos);
}

class CounterexampleFamily : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterexampleFamily, IsWellFormed) {
  EXPECT_TRUE(check_wellformed(counterexample_gtype(GetParam())).ok);
}

TEST_P(CounterexampleFamily, OurDetectorRejectsEveryMember) {
  const DeadlockVerdict v =
      check_deadlock_freedom(counterexample_gtype(GetParam()));
  EXPECT_FALSE(v.deadlock_free);
}

TEST_P(CounterexampleFamily, CycleManifestsExactlyAtDepthMplus3) {
  // The cyclic graph requires m+2 recursive-call unrollings; with the
  // application fuel accounting that is normalization depth m+3. The
  // streamed probe stops at the first witness, so the exponential set at
  // m+3 is never materialized.
  const unsigned m = GetParam();
  const GTypePtr g = counterexample_gtype(m);
  EXPECT_FALSE(normalization_has_deadlock(g, m + 2)) << "m = " << m;
  EXPECT_TRUE(normalization_has_deadlock(g, m + 3)) << "m = " << m;
  EXPECT_EQ(deadlock_manifestation_depth(g, m + 4), m + 3) << "m = " << m;
}

INSTANTIATE_TEST_SUITE_P(Members, CounterexampleFamily,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Counterexample, FutlangSourceMentionsAllParams) {
  const std::string src = counterexample_futlang(2);
  EXPECT_NE(src.find("a1: future[int]"), std::string::npos);
  EXPECT_NE(src.find("a2: future[int]"), std::string::npos);
  EXPECT_NE(src.find("x2: future[int]"), std::string::npos);
  EXPECT_NE(src.find("fun main()"), std::string::npos);
  EXPECT_NE(src.find("touch(x1)"), std::string::npos);
}

}  // namespace
}  // namespace gtdl
