// Unit tests for the support layer: symbols, diagnostics, ordered sets,
// string helpers.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/ordered_set.hpp"
#include "gtdl/support/string_util.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {
namespace {

TEST(Symbol, InterningGivesEqualHandlesForEqualSpellings) {
  const Symbol a = Symbol::intern("alpha");
  const Symbol b = Symbol::intern("alpha");
  const Symbol c = Symbol::intern("beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.view(), "alpha");
  EXPECT_EQ(c.str(), "beta");
}

TEST(Symbol, DefaultConstructedIsInvalid) {
  const Symbol s;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.view(), "<invalid>");
  EXPECT_EQ(s, Symbol{});
  EXPECT_NE(s, Symbol::intern("x"));
}

TEST(Symbol, FreshNamesNeverCollide) {
  const Symbol a = Symbol::fresh("u");
  const Symbol b = Symbol::fresh("u");
  EXPECT_NE(a, b);
  EXPECT_NE(a.view(), b.view());
  EXPECT_TRUE(a.view().starts_with("u$"));
}

TEST(Symbol, FreshSkipsManuallyInternedNames) {
  // Force a potential collision by interning the next fresh spelling.
  const Symbol probe = Symbol::fresh("collide");
  const std::string_view view = probe.view();
  const auto dollar = view.find('$');
  ASSERT_NE(dollar, std::string_view::npos);
  const unsigned long long next = std::stoull(std::string(view.substr(dollar + 1))) + 1;
  const Symbol taken = Symbol::intern("collide$" + std::to_string(next));
  const Symbol fresh = Symbol::fresh("collide");
  EXPECT_NE(fresh, taken);
}

TEST(Symbol, InterningIsThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::vector<std::vector<Symbol>> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<std::size_t>(t)].push_back(
            Symbol::intern("shared" + std::to_string(i)));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int i = 0; i < kPerThread; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(results[0][static_cast<std::size_t>(i)],
                results[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine diags;
  diags.warning(SrcLoc{1, 1}, "w");
  diags.note(SrcLoc{}, "n");
  EXPECT_FALSE(diags.has_errors());
  diags.error("boom");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all().size(), 3u);
}

TEST(Diagnostics, RenderIncludesLocationWhenKnown) {
  DiagnosticEngine diags;
  diags.error(SrcLoc{3, 14}, "bad thing");
  diags.error("global thing");
  const std::string rendered = diags.render();
  EXPECT_NE(rendered.find("3:14: error: bad thing"), std::string::npos);
  EXPECT_NE(rendered.find("error: global thing"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error("x");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(OrderedSet, InsertEraseContains) {
  OrderedSet<int> set;
  EXPECT_TRUE(set.insert(3));
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(3));
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
  EXPECT_TRUE(set.erase(1));
  EXPECT_FALSE(set.erase(1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OrderedSet, InitializerListDeduplicatesAndSorts) {
  const OrderedSet<int> set{5, 1, 5, 3, 1};
  const std::vector<int> expected{1, 3, 5};
  EXPECT_EQ(set.items(), expected);
}

TEST(OrderedSet, Algebra) {
  const OrderedSet<int> a{1, 2, 3};
  const OrderedSet<int> b{3, 4};
  EXPECT_EQ(a.set_union(b), (OrderedSet<int>{1, 2, 3, 4}));
  EXPECT_EQ(a.set_difference(b), (OrderedSet<int>{1, 2}));
  EXPECT_EQ(a.set_intersection(b), (OrderedSet<int>{3}));
  EXPECT_TRUE((OrderedSet<int>{1, 3}).is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(OrderedSet<int>{7}));
}

TEST(OrderedSet, EmptySetBehaviour) {
  const OrderedSet<int> empty;
  const OrderedSet<int> a{1};
  EXPECT_TRUE(empty.is_subset_of(a));
  EXPECT_TRUE(empty.is_subset_of(empty));
  EXPECT_FALSE(empty.intersects(a));
  EXPECT_EQ(a.set_difference(empty), a);
  EXPECT_EQ(empty.set_union(a), a);
}

TEST(StringUtil, Join) {
  const std::vector<int> xs{1, 2, 3};
  EXPECT_EQ(join(xs, ", ", [](int x) { return std::to_string(x); }),
            "1, 2, 3");
  const std::vector<int> empty;
  EXPECT_EQ(join(empty, ",", [](int x) { return std::to_string(x); }), "");
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

}  // namespace
}  // namespace gtdl
