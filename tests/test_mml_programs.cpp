// Cross-language Table 1: the MiniML ports of the small §5 programs get
// the same static verdicts as their FutLang originals — and where the
// structure is identical, the inferred graph types are alpha-EQUAL.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/mml/driver.hpp"

namespace gtdl {
namespace {

std::string read_program(const std::string& name) {
  const std::string path = std::string(GTDL_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct PairCase {
  const char* base;     // file stem: <base>.fut and <base>.mml
  bool ours_accepts;
  bool gml_reports_dl;
  bool types_alpha_equal;  // ports with identical structure
};

class CrossLanguageTable : public ::testing::TestWithParam<PairCase> {};

TEST_P(CrossLanguageTable, SameVerdictsInBothLanguages) {
  const PairCase& pc = GetParam();
  const CompiledProgram futlang =
      compile_futlang_or_throw(read_program(std::string(pc.base) + ".fut"));
  const mml::CompiledMml miniml = mml::compile_mml_or_throw(
      read_program(std::string(pc.base) + ".mml"));

  const GTypePtr from_fut = futlang.inferred.program_gtype;
  const GTypePtr from_mml = miniml.inferred.program_gtype;
  ASSERT_TRUE(check_wellformed(from_fut).ok);
  ASSERT_TRUE(check_wellformed(from_mml).ok);

  EXPECT_EQ(check_deadlock_freedom(from_fut).deadlock_free, pc.ours_accepts)
      << pc.base << " (futlang)";
  EXPECT_EQ(check_deadlock_freedom(from_mml).deadlock_free, pc.ours_accepts)
      << pc.base << " (miniml)";

  EXPECT_EQ(gml_baseline_check(from_fut).deadlock_reported,
            pc.gml_reports_dl)
      << pc.base << " (futlang)";
  EXPECT_EQ(gml_baseline_check(from_mml).deadlock_reported,
            pc.gml_reports_dl)
      << pc.base << " (miniml)";

  if (pc.types_alpha_equal) {
    EXPECT_TRUE(alpha_equal(*from_fut, *from_mml))
        << pc.base << "\nfutlang: " << to_string(from_fut)
        << "\nminiml:  " << to_string(from_mml);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CrossLanguageTable,
    ::testing::Values(
        // base          ours   gmlDL  alpha-equal
        // (fibonacci.fut prints both results; the .mml port is
        // structurally identical including main's two touches)
        PairCase{"fibonacci", true, false, true},
        PairCase{"fib_dl", false, true, false},  // .fut main omits f7
        PairCase{"pipeline", true, false, true},
        PairCase{"counterex", false, false, true}),
    [](const ::testing::TestParamInfo<PairCase>& info) {
      return info.param.base;
    });

}  // namespace
}  // namespace gtdl
