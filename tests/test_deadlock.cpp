// Tests for the deadlock-freedom kind system (Fig. 4) — the paper's core
// contribution — including the qualitative examples of §5.

#include <gtest/gtest.h>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

DeadlockVerdict df(const char* src) {
  return check_deadlock_freedom(parse_gtype_or_throw(src));
}

DeadlockVerdict df_no_push(const char* src) {
  DetectOptions options;
  options.new_pushing = false;
  return check_deadlock_freedom(parse_gtype_or_throw(src), options);
}

TEST(Deadlock, EmptyGraphAccepted) {
  EXPECT_TRUE(df("1").deadlock_free);
}

TEST(Deadlock, SpawnThenTouchAccepted) {
  EXPECT_TRUE(df("new u. 1 / u ; ~u").deadlock_free);
}

TEST(Deadlock, TouchBeforeSpawnRejected) {
  const DeadlockVerdict v = df("new u. ~u ; 1 / u");
  EXPECT_FALSE(v.deadlock_free);
  EXPECT_NE(v.diags.render().find("touch"), std::string::npos);
}

TEST(Deadlock, NeverSpawnedVertexRejected) {
  // Situation (1): u could be touched but is never spawned. Linearity of
  // the spawn context rejects it even without a touch.
  EXPECT_FALSE(df_no_push("new u. 1").deadlock_free);
  EXPECT_FALSE(df_no_push("new u. ~u").deadlock_free);
}

TEST(Deadlock, NewPushingDropsUnusedBinder) {
  // With new pushing, νu.• rewrites to • (the binder is unused), which is
  // then accepted — semantically right: no graph of this type deadlocks.
  EXPECT_TRUE(df("new u. 1").deadlock_free);
}

TEST(Deadlock, CrossTouchDeadlockRejected) {
  // §2.1's classic: a touches b inside a's future body, b touches a.
  EXPECT_FALSE(
      df("new a. new b. (~b) / a ; (~a) / b").deadlock_free);
}

TEST(Deadlock, FutureBodyMayNotTouchItself) {
  EXPECT_FALSE(df("new u. (~u) / u").deadlock_free);
}

TEST(Deadlock, FutureBodyMayTouchEarlierFuture) {
  // Pipeline shape: second future touches the first.
  EXPECT_TRUE(
      df("new a. new b. 1 / a ; (~a) / b ; ~b").deadlock_free);
}

TEST(Deadlock, FutureBodyMayNotTouchLaterFuture) {
  EXPECT_FALSE(
      df("new a. new b. (~b) / a ; 1 / b ; ~a").deadlock_free);
}

TEST(Deadlock, OrBranchesMustSpawnSameVertices) {
  const DeadlockVerdict v = df_no_push("new u. (1 | 1 / u) ; ~u");
  EXPECT_FALSE(v.deadlock_free);
  EXPECT_NE(v.diags.render().find("branches"), std::string::npos);
  // Both branches spawning works.
  EXPECT_TRUE(df_no_push("new u. (1 / u | 1 / u) ; ~u").deadlock_free);
}

TEST(Deadlock, TouchInBothBranchesUnrestricted) {
  EXPECT_TRUE(df("new u. 1 / u ; (~u | ~u ; ~u)").deadlock_free);
}

TEST(Deadlock, SequenceMakesSpawnedTouchable) {
  // DF:SEQ moves spawned vertices into Ψ for the right operand.
  EXPECT_TRUE(df("new a. new b. (1 / a ; 1 / b) ; (~a ; ~b)").deadlock_free);
}

TEST(Deadlock, DivideAndConquerAcceptedWithNewPushing) {
  // GML's hoisted form (§5) — rejected raw, accepted after new pushing.
  const char* src = "rec g. new u. 1 | g / u ; g ; ~u";
  EXPECT_FALSE(df_no_push(src).deadlock_free);
  EXPECT_TRUE(df(src).deadlock_free);
}

TEST(Deadlock, DivideAndConquerPrePushedAccepted) {
  EXPECT_TRUE(df_no_push("rec g. 1 | new u. g / u ; g ; ~u").deadlock_free);
}

TEST(Deadlock, RecursiveTypeKindIsPi) {
  const DeadlockVerdict v =
      df("rec g. pi[a; x]. ~x ; 1 / a ; (1 | g[a; x])");
  // Note: this type reuses a after consuming it in the recursive call —
  // should be rejected. Spawn arg a is consumed by "1 / a" already.
  EXPECT_FALSE(v.deadlock_free);
}

TEST(Deadlock, ParameterizedPipelineStageAccepted) {
  // pi[a; x]: touch the previous stage (x), spawn the next (a).
  const DeadlockVerdict v = df("rec g. pi[a; x]. (~x) / a ; (1 | ~a)");
  EXPECT_TRUE(v.deadlock_free);
  EXPECT_EQ(v.kind, GraphKind::pi(1, 1));
}

TEST(Deadlock, SpawnParameterMustBeSpawned) {
  const DeadlockVerdict v = df("rec g. pi[a; x]. ~x");
  EXPECT_FALSE(v.deadlock_free);
  EXPECT_NE(v.diags.render().find("never spawned"), std::string::npos);
}

TEST(Deadlock, TouchParameterTouchableImmediately) {
  EXPECT_TRUE(df("pi[; x]. ~x ; ~x").deadlock_free);
}

TEST(Deadlock, ApplicationTouchArgMustBeTouchable) {
  // Passing an unspawned vertex as a touch argument is the §3 bug.
  const DeadlockVerdict v = df(
      "new u. new w. 1 / w ; (pi[a; x]. ~x ; 1 / a)[u; u]");
  EXPECT_FALSE(v.deadlock_free);
  // Spawned first: fine. (w spawned, passed as touch arg.)
  EXPECT_TRUE(
      df("new u. new w. 1 / w ; (pi[a; x]. ~x ; 1 / a)[u; w]")
          .deadlock_free);
}

TEST(Deadlock, ApplicationSpawnArgConsumedLinearly) {
  // Same vertex passed twice in spawn positions.
  EXPECT_FALSE(
      df("new u. new w. 1 / w ; (pi[a, b; x]. 1 / a ; 1 / b ; ~x)[u, u; w]")
          .deadlock_free);
}

TEST(Deadlock, RecMayNotCaptureAmbientSpawns) {
  EXPECT_FALSE(
      df_no_push("new u. (rec g. 1 / u) ; ~u").deadlock_free);
}

TEST(Deadlock, NonRecursivePiMayCaptureAmbientSpawns) {
  // DF:PI permits capture: the pi body spawns the outer u.
  EXPECT_TRUE(
      df("new u. (pi[; x]. 1 / u ; ~x) [; u] ; ~u").deadlock_free == false)
      << "capture + touch-arg u unspawned must still reject";
  // A cleaner capture: outer w spawned first, pi spawns u and touches w.
  EXPECT_TRUE(
      df("new u. new w. 1 / w ; (pi[; x]. 1 / u ; ~x)[; w] ; ~u")
          .deadlock_free);
}

TEST(Deadlock, CounterexampleRejected) {
  // §3, m = 1 — the type GML's detector wrongly accepts.
  const DeadlockVerdict v = df(
      "new u1. new u2. 1 / u2 ; "
      "(rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u])[u1; u2]");
  EXPECT_FALSE(v.deadlock_free);
  EXPECT_NE(v.diags.render().find("u"), std::string::npos);
}

TEST(Deadlock, FibonacciChainAccepted) {
  // Eight futures, each touching the previous two (§5's Fibonacci),
  // spawned sequentially by main here.
  std::string src = "new f1. new f2. new f3. new f4. new f5. ";
  src += "1 / f1 ; 1 / f2 ; ";
  src += "(~f1 ; ~f2) / f3 ; (~f2 ; ~f3) / f4 ; (~f3 ; ~f4) / f5 ; ~f5";
  EXPECT_TRUE(check_deadlock_freedom(parse_gtype_or_throw(src)).deadlock_free);
}

TEST(Deadlock, FibonacciWithCycleRejected) {
  // FibDL: one touch altered to look forward (f3 touches f4).
  std::string src = "new f1. new f2. new f3. new f4. new f5. ";
  src += "1 / f1 ; 1 / f2 ; ";
  src += "(~f1 ; ~f4) / f3 ; (~f2 ; ~f3) / f4 ; (~f3 ; ~f4) / f5 ; ~f5";
  EXPECT_FALSE(
      check_deadlock_freedom(parse_gtype_or_throw(src)).deadlock_free);
}

TEST(Deadlock, UnboundGraphVariableRejected) {
  EXPECT_FALSE(df("g").deadlock_free);
}

TEST(Deadlock, ZeroArityRecUsableBare) {
  EXPECT_TRUE(df("rec g. 1 | g").deadlock_free);
}

TEST(Deadlock, IllFormedTypeRejectedBeforeAnalysis) {
  const DeadlockVerdict v = df("new u. 1 / u ; 1 / u");
  EXPECT_FALSE(v.deadlock_free);
  EXPECT_NE(v.diags.render().find("not well-formed"), std::string::npos);
}

TEST(Deadlock, NullTypeRejected) {
  EXPECT_FALSE(check_deadlock_freedom(nullptr).deadlock_free);
}

TEST(Deadlock, AnalyzedFieldHoldsPushedType) {
  const DeadlockVerdict v = df("rec g. new u. 1 | g / u ; g ; ~u");
  ASSERT_TRUE(v.deadlock_free);
  EXPECT_EQ(to_string(v.analyzed), "rec g. 1 | (new u. g / u ; g ; ~u)");
}

}  // namespace
}  // namespace gtdl
