// Tests for the FutLang interpreter: values, control flow, futures,
// recorded graphs, deadlock detection, and trace generation.

#include <gtest/gtest.h>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace gtdl {
namespace {

InterpResult run(const char* source, InterpOptions options = {}) {
  Program program = parse_program_or_throw(source);
  DiagnosticEngine diags;
  EXPECT_TRUE(typecheck_program(program, diags)) << diags.render();
  return interpret(program, options);
}

TEST(Interp, ArithmeticAndPrint) {
  const InterpResult r = run(R"(
    fun main() {
      print(int_to_string(2 + 3 * 4));
      print(int_to_string(10 / 3));
      print(int_to_string(10 % 3));
      print(int_to_string(-5));
    }
  )");
  ASSERT_TRUE(r.completed) << r.error.value_or("") + r.deadlock.value_or("");
  EXPECT_EQ(r.output, "14\n3\n1\n-5\n");
}

TEST(Interp, BoolsAndComparisons) {
  const InterpResult r = run(R"(
    fun main() {
      if 1 < 2 && !(2 < 1) || false { print("yes"); } else { print("no"); }
      if "a" == "a" { print("str"); } else { }
    }
  )");
  EXPECT_EQ(r.output, "yes\nstr\n");
}

TEST(Interp, ShortCircuitEvaluation) {
  // (1/0) on the right of && must not evaluate when the left is false.
  const InterpResult r = run(R"(
    fun boom() -> bool { let x = 1 / 0; return true; }
    fun main() {
      if false && boom() { print("bad"); } else { print("ok"); }
    }
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, "ok\n");
}

TEST(Interp, ListsAndBuiltins) {
  const InterpResult r = run(R"(
    fun main() {
      let l = range(0, 5);
      print(int_to_string(length(l)));
      print(int_to_string(head(l)));
      print(int_to_string(head(tail(l))));
      print(int_to_string(length(take(l, 2))));
      print(int_to_string(head(drop(l, 3))));
      let m = cons(99, nil);
      print(int_to_string(head(append(m, l))));
    }
  )");
  ASSERT_TRUE(r.completed) << r.error.value_or("");
  EXPECT_EQ(r.output, "5\n0\n1\n2\n3\n99\n");
}

TEST(Interp, WhileLoopsAndAssignment) {
  const InterpResult r = run(R"(
    fun main() {
      let i = 0;
      let sum = 0;
      while i < 5 {
        sum = sum + i;
        i = i + 1;
      }
      print(int_to_string(sum));
    }
  )");
  EXPECT_EQ(r.output, "10\n");
}

TEST(Interp, RecursionAndCalls) {
  const InterpResult r = run(R"(
    fun fib(n: int) -> int {
      if n < 2 { return n; } else { return fib(n - 1) + fib(n - 2); }
    }
    fun main() { print(int_to_string(fib(10))); }
  )");
  EXPECT_EQ(r.output, "55\n");
}

TEST(Interp, RandScriptThenLcg) {
  InterpOptions options;
  options.rand_script = {7, 8};
  options.seed = 123;
  const InterpResult r = run(R"(
    fun main() {
      print(int_to_string(rand()));
      print(int_to_string(rand()));
      let x = rand();
      if x >= 0 { print("nonneg"); } else { print("neg"); }
    }
  )",
                             options);
  EXPECT_EQ(r.output.substr(0, 4), "7\n8\n");
  EXPECT_NE(r.output.find("nonneg"), std::string::npos);
}

TEST(Interp, FutureSpawnTouchValue) {
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 40 + 2; }
      print(int_to_string(touch(h)));
    }
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, "42\n");
  EXPECT_FALSE(r.graph_deadlock().any());
  // Graph: fork then join by main.
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].kind, ActionKind::kInit);
  EXPECT_EQ(r.trace[1].kind, ActionKind::kFork);
  EXPECT_EQ(r.trace[2].kind, ActionKind::kJoin);
}

TEST(Interp, FutureBodySeesClosureState) {
  const InterpResult r = run(R"(
    fun main() {
      let x = 10;
      let h = new_future[int]();
      spawn h { return x * 2; }
      print(int_to_string(touch(h)));
    }
  )");
  EXPECT_EQ(r.output, "20\n");
}

TEST(Interp, UnforcedFuturesRunAtProgramEnd) {
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { print("side effect"); return 1; }
    }
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, "side effect\n");
  // The spawn is recorded even though main never touched it.
  EXPECT_EQ(spawned_vertices(*r.graph).size(), 1u);
}

TEST(Interp, DoubleSpawnIsRuntimeError) {
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 1; }
      spawn h { return 2; }
    }
  )");
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->find("twice"), std::string::npos);
}

TEST(Interp, TouchOfNeverSpawnedDeadlocks) {
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      let v = touch(h);
    }
  )");
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_NE(r.deadlock->find("spawns"), std::string::npos);
  EXPECT_TRUE(r.graph_deadlock().unspawned_touch);
}

TEST(Interp, SpawnAfterTouchByOtherThreadSucceeds) {
  // a's body touches h; h is spawned by main after a — the lazy scheduler
  // forces a only at the end, when h is available.
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      let a = new_future[int]();
      spawn a { return touch(h) + 1; }
      spawn h { return 10; }
      print(int_to_string(touch(a)));
    }
  )");
  ASSERT_TRUE(r.completed) << r.deadlock.value_or("");
  EXPECT_EQ(r.output, "11\n");
  EXPECT_FALSE(r.graph_deadlock().any());
}

TEST(Interp, PendingSpawnerRescuesUnspawnedTouch) {
  // main touches h, which only gets spawned inside pending future a.
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      let a = new_future[int]();
      spawn a { spawn h { return 5; } return 0; }
      print(int_to_string(touch(h)));
    }
  )");
  ASSERT_TRUE(r.completed) << r.deadlock.value_or("");
  EXPECT_EQ(r.output, "5\n");
}

TEST(Interp, CrossTouchDeadlockDetected) {
  // §2.1's classic two-future deadlock.
  const InterpResult r = run(R"(
    fun main() {
      let a = new_future[int]();
      let b = new_future[int]();
      spawn a { return touch(b); }
      spawn b { return touch(a); }
    }
  )");
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_NE(r.deadlock->find("cyclic"), std::string::npos);
  EXPECT_TRUE(r.graph_deadlock().cycle);
  // The dynamic policies reject the trace too.
  EXPECT_FALSE(check_transitive_joins(r.trace).valid);
  EXPECT_FALSE(check_known_joins(r.trace).valid);
}

TEST(Interp, SelfTouchDeadlockDetected) {
  const InterpResult r = run(R"(
    fun main() {
      let a = new_future[int]();
      spawn a { return touch(a); }
      let v = touch(a);
    }
  )");
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_TRUE(r.graph_deadlock().cycle);
}

TEST(Interp, CounterexampleDeadlocksWhenDrivenDeep) {
  Program program = parse_program_or_throw(counterexample_futlang(1));
  DiagnosticEngine diags;
  ASSERT_TRUE(typecheck_program(program, diags));
  // Take the else branch twice: the second call touches the fresh future
  // created by the first call, which nobody ever spawns.
  InterpOptions options;
  options.rand_script = {1, 1};
  const InterpResult r = interpret(program, options);
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_TRUE(r.graph_deadlock().any());

  // Taking the then branch immediately is fine.
  InterpOptions safe;
  safe.rand_script = {0};
  const InterpResult r2 = interpret(program, safe);
  EXPECT_TRUE(r2.completed) << r2.deadlock.value_or("");
  EXPECT_FALSE(r2.graph_deadlock().any());
}

TEST(Interp, StepBudgetStopsRunawayPrograms) {
  InterpOptions options;
  options.max_steps = 1000;
  const InterpResult r = run(R"(
    fun main() {
      let i = 0;
      while true { i = i + 1; }
    }
  )",
                             options);
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->find("budget"), std::string::npos);
}

TEST(Interp, CallDepthBudget) {
  InterpOptions options;
  options.max_call_depth = 50;
  const InterpResult r = run(R"(
    fun loop(n: int) -> int { return loop(n + 1); }
    fun main() { let x = loop(0); }
  )",
                             options);
  ASSERT_TRUE(r.error.has_value());
}

TEST(Interp, RuntimeErrors) {
  EXPECT_TRUE(run("fun main() { let x = 1 / 0; }").error.has_value());
  EXPECT_TRUE(run("fun main() { let x = 1 % 0; }").error.has_value());
  EXPECT_TRUE(
      run("fun main() { let l: list[int] = nil; let h = head(l); }")
          .error.has_value());
  EXPECT_TRUE(
      run("fun main() { let l: list[int] = nil; let t = tail(l); }")
          .error.has_value());
}

TEST(Interp, TraceMatchesGraphSerialization) {
  const InterpResult r = run(R"(
    fun main() {
      let h = new_future[int]();
      let k = new_future[int]();
      spawn h { return 1; }
      spawn k { return touch(h); }
      print(int_to_string(touch(k)));
    }
  )");
  ASSERT_TRUE(r.completed);
  const Trace expected = trace_with_init(*r.graph, Symbol::intern("main"));
  EXPECT_EQ(r.trace, expected);
  EXPECT_TRUE(check_transitive_joins(r.trace).valid);
  EXPECT_TRUE(check_known_joins(r.trace).valid);
}

}  // namespace
}  // namespace gtdl
