// Tests for the FutLang lexer/parser.

#include <gtest/gtest.h>

#include "gtdl/frontend/parser.hpp"

namespace gtdl {
namespace {

TEST(FutLangParser, EmptyMain) {
  const Program p = parse_program_or_throw("fun main() { }");
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].name, Symbol::intern("main"));
  EXPECT_TRUE(p.functions[0].params.empty());
  EXPECT_TRUE(is_prim(*p.functions[0].return_type, PrimKind::kUnit));
}

TEST(FutLangParser, ParamsAndReturnType) {
  const Program p = parse_program_or_throw(
      "fun add(a: int, b: int) -> int { return a + b; } fun main() {}");
  ASSERT_EQ(p.functions.size(), 2u);
  const Function& add = p.functions[0];
  ASSERT_EQ(add.params.size(), 2u);
  EXPECT_TRUE(is_prim(*add.params[0].type, PrimKind::kInt));
  EXPECT_TRUE(is_prim(*add.return_type, PrimKind::kInt));
}

TEST(FutLangParser, FutureAndListTypes) {
  const Program p = parse_program_or_throw(
      "fun f(h: future[int], l: list[list[string]]) { } fun main() {}");
  const Function& f = p.functions[0];
  EXPECT_TRUE(is_future(*f.params[0].type));
  EXPECT_TRUE(is_list(*f.params[1].type));
  EXPECT_EQ(to_string(*f.params[1].type), "list[list[string]]");
}

TEST(FutLangParser, SpawnStatementAndMethodForms) {
  const Program p = parse_program_or_throw(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 1; }
      let k = new_future[int]();
      k.spawn { return 2; };
      let a = touch(h);
      let b = k.touch();
    }
  )");
  const Block& body = p.functions[0].body;
  ASSERT_EQ(body.size(), 6u);
  // statement spawn
  const auto* s1 = std::get_if<SExpr>(&body[1]->node);
  ASSERT_NE(s1, nullptr);
  EXPECT_TRUE(std::holds_alternative<ESpawn>(s1->expr->node));
  // method spawn
  const auto* s3 = std::get_if<SExpr>(&body[3]->node);
  ASSERT_NE(s3, nullptr);
  EXPECT_TRUE(std::holds_alternative<ESpawn>(s3->expr->node));
  // touch call and method
  const auto* let_a = std::get_if<SLet>(&body[4]->node);
  ASSERT_NE(let_a, nullptr);
  EXPECT_TRUE(std::holds_alternative<ETouch>(let_a->init->node));
  const auto* let_b = std::get_if<SLet>(&body[5]->node);
  ASSERT_NE(let_b, nullptr);
  EXPECT_TRUE(std::holds_alternative<ETouch>(let_b->init->node));
}

TEST(FutLangParser, IfElseChains) {
  const Program p = parse_program_or_throw(R"(
    fun main() {
      if 1 < 2 {
        return;
      } else if 2 < 3 {
        return;
      } else {
        return;
      }
    }
  )");
  const auto* sif = std::get_if<SIf>(&p.functions[0].body[0]->node);
  ASSERT_NE(sif, nullptr);
  ASSERT_EQ(sif->else_block.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<SIf>(sif->else_block[0]->node));
}

TEST(FutLangParser, OperatorPrecedence) {
  const Program p = parse_program_or_throw(
      "fun main() { let x = 1 + 2 * 3 == 7 && true; }");
  const auto* let = std::get_if<SLet>(&p.functions[0].body[0]->node);
  ASSERT_NE(let, nullptr);
  // Top node is &&.
  const auto* top = std::get_if<EBinary>(&let->init->node);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->op, BinaryOp::kAnd);
  const auto* eq = std::get_if<EBinary>(&top->lhs->node);
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->op, BinaryOp::kEq);
  const auto* add = std::get_if<EBinary>(&eq->lhs->node);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->op, BinaryOp::kAdd);
  const auto* mul = std::get_if<EBinary>(&add->rhs->node);
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->op, BinaryOp::kMul);
}

TEST(FutLangParser, StringEscapes) {
  const Program p = parse_program_or_throw(
      "fun main() { print(\"a\\n\\\"b\\\"\"); }");
  const auto* stmt = std::get_if<SExpr>(&p.functions[0].body[0]->node);
  ASSERT_NE(stmt, nullptr);
  const auto* call = std::get_if<ECall>(&stmt->expr->node);
  ASSERT_NE(call, nullptr);
  const auto* lit = std::get_if<EStringLit>(&call->args[0]->node);
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->value, "a\n\"b\"");
}

TEST(FutLangParser, CommentsAndWhile) {
  const Program p = parse_program_or_throw(R"(
    # leading comment
    fun main() {
      let i = 0;       # trailing comment
      while i < 3 {
        i = i + 1;
      }
    }
  )");
  EXPECT_TRUE(std::holds_alternative<SWhile>(p.functions[0].body[1]->node));
}

TEST(FutLangParser, AssignmentVsExpressionStatement) {
  const Program p = parse_program_or_throw(R"(
    fun main() {
      let x = 1;
      x = 2;
      x + 1;
    }
  )");
  EXPECT_TRUE(std::holds_alternative<SAssign>(p.functions[0].body[1]->node));
  EXPECT_TRUE(std::holds_alternative<SExpr>(p.functions[0].body[2]->node));
}

struct BadCase {
  const char* name;
  const char* source;
};

class FutLangParserErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(FutLangParserErrors, Rejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_program(GetParam().source, diags).has_value());
  EXPECT_TRUE(diags.has_errors());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FutLangParserErrors,
    ::testing::Values(
        BadCase{"MissingBrace", "fun main() {"},
        BadCase{"MissingParamType", "fun f(a) {} fun main() {}"},
        BadCase{"BadAssignTarget", "fun main() { 1 + 2 = 3; }"},
        BadCase{"UnterminatedString", "fun main() { print(\"abc); }"},
        BadCase{"DanglingDot", "fun main() { let h = new_future[int]();"
                               " h.frob(); }"},
        BadCase{"MissingSemicolon", "fun main() { let x = 1 }"},
        BadCase{"GarbageTopLevel", "function main() {}"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gtdl
