// End-to-end soundness fuzz: random FutLang programs through the WHOLE
// pipeline (parse -> typecheck -> inference -> kind system), checked
// against actual executions.
//
// The generator emits straight-line main() bodies over a pool of future
// handles with new/spawn/touch in arbitrary (often unsafe) orders, plus
// spawn bodies that may touch earlier handles. The pipeline-level
// Theorem-1 property:
//
//     if the kind system ACCEPTS the inferred graph type, then NO
//     execution of the program deadlocks (checked over several rand()
//     seeds)
//
// and, symmetrically useful as a smoke check, any execution that DOES
// deadlock must come from a rejected program.

#include <gtest/gtest.h>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "random_program.hpp"

namespace gtdl {
namespace {

using fuzz::RandomProgram;

struct FuzzStats {
  unsigned accepted = 0;
  unsigned rejected = 0;
  unsigned deadlocked_runs = 0;
};

void fuzz_one(std::uint64_t seed, FuzzStats& stats) {
  RandomProgram generator(seed);
  const std::string source = generator.generate();

  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags);
  ASSERT_TRUE(compiled.has_value())
      << "generator must emit compilable programs; seed " << seed << "\n"
      << source << diags.render();

  const DeadlockVerdict verdict =
      check_deadlock_freedom(compiled->inferred.program_gtype);
  (verdict.deadlock_free ? stats.accepted : stats.rejected) += 1;

  for (std::uint64_t run_seed = 1; run_seed <= 3; ++run_seed) {
    InterpOptions options;
    options.seed = run_seed * 7919 + seed;
    const InterpResult run = interpret(compiled->program, options);
    ASSERT_FALSE(run.error.has_value())
        << "seed " << seed << "\n" << source << *run.error;
    if (run.deadlock.has_value()) ++stats.deadlocked_runs;
    if (verdict.deadlock_free) {
      // THE soundness property, end to end.
      EXPECT_FALSE(run.deadlock.has_value())
          << "UNSOUND: accepted program deadlocked; seed " << seed << "\n"
          << source << "type: "
          << to_string(compiled->inferred.program_gtype) << "\nreason: "
          << *run.deadlock;
      EXPECT_FALSE(run.graph_deadlock().any()) << "seed " << seed;
      // Theorem 1: the executed trace obeys Transitive Joins.
      EXPECT_TRUE(check_transitive_joins(run.trace).valid)
          << "seed " << seed << "\n" << source;
    }
    // Ground truth coherence: the interpreter's deadlock signal and the
    // recorded graph's verdict must agree.
    EXPECT_EQ(run.deadlock.has_value(), run.graph_deadlock().any())
        << "seed " << seed << " run " << run_seed << "\n" << source;
  }
}

class EndToEndFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndFuzz, AcceptedProgramsNeverDeadlock) {
  FuzzStats stats;
  for (std::uint64_t seed = GetParam(); seed < GetParam() + 40; ++seed) {
    fuzz_one(seed, stats);
    if (HasFatalFailure()) return;
  }
  // Guard against vacuity within each shard: programs of both verdicts
  // and at least some deadlocking executions must occur.
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(stats.deadlocked_runs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, EndToEndFuzz,
                         ::testing::Values(0u, 40u, 80u, 120u, 160u));

}  // namespace
}  // namespace gtdl
