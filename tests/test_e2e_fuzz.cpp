// End-to-end soundness fuzz: random FutLang programs through the WHOLE
// pipeline (parse -> typecheck -> inference -> kind system), checked
// against actual executions.
//
// The generator emits straight-line main() bodies over a pool of future
// handles with new/spawn/touch in arbitrary (often unsafe) orders, plus
// spawn bodies that may touch earlier handles. The pipeline-level
// Theorem-1 property:
//
//     if the kind system ACCEPTS the inferred graph type, then NO
//     execution of the program deadlocks (checked over several rand()
//     seeds)
//
// and, symmetrically useful as a smoke check, any execution that DOES
// deadlock must come from a rejected program.

#include <gtest/gtest.h>

#include <random>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace gtdl {
namespace {

// Emits a random but always well-typed FutLang main(). Handle h<k> may be
// new'd, spawned (body touching a random earlier handle or returning a
// constant), and touched, in shuffled orders — including touch-before-
// spawn, double-touch, never-spawned, conditional regions, and nested
// spawn bodies.
class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    const unsigned handles = 2 + pick(3);  // 2..4 handles
    std::string body;
    for (unsigned h = 0; h < handles; ++h) {
      body += "  let h" + std::to_string(h) + " = new_future[int]();\n";
    }
    // A shuffled multiset of operations over the handles.
    std::vector<std::string> ops;
    for (unsigned h = 0; h < handles; ++h) {
      // Most handles get spawned (sometimes twice-attempted programs are
      // invalid at runtime, so exactly once here); some never.
      if (pick(10) != 0) ops.push_back(spawn_stmt(h, handles));
      const unsigned touches = pick(3);  // 0..2 touches
      for (unsigned t = 0; t < touches; ++t) {
        ops.push_back("  let v" + fresh() + " = touch(h" +
                      std::to_string(h) + ");\n");
      }
    }
    std::shuffle(ops.begin(), ops.end(), rng_);
    for (std::string& op : ops) body += op;
    return "fun main() {\n" + body + "}\n";
  }

 private:
  unsigned pick(unsigned bound) {
    return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng_);
  }

  std::string fresh() { return std::to_string(counter_++); }

  std::string spawn_stmt(unsigned h, unsigned handles) {
    std::string body;
    switch (pick(3)) {
      case 0:
        body = "return " + std::to_string(pick(100)) + ";";
        break;
      case 1: {
        // Touch some other handle from inside the future body.
        const unsigned other = pick(handles);
        if (other == h) {
          body = "return 1;";
        } else {
          body = "return touch(h" + std::to_string(other) + ") + 1;";
        }
        break;
      }
      default: {
        // A conditional body.
        body = "if rand() % 2 == 0 { return 0; } else { return " +
               std::to_string(pick(50)) + "; }";
        break;
      }
    }
    return "  spawn h" + std::to_string(h) + " { " + body + " }\n";
  }

  std::mt19937_64 rng_;
  unsigned counter_ = 0;
};

struct FuzzStats {
  unsigned accepted = 0;
  unsigned rejected = 0;
  unsigned deadlocked_runs = 0;
};

void fuzz_one(std::uint64_t seed, FuzzStats& stats) {
  RandomProgram generator(seed);
  const std::string source = generator.generate();

  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags);
  ASSERT_TRUE(compiled.has_value())
      << "generator must emit compilable programs; seed " << seed << "\n"
      << source << diags.render();

  const DeadlockVerdict verdict =
      check_deadlock_freedom(compiled->inferred.program_gtype);
  (verdict.deadlock_free ? stats.accepted : stats.rejected) += 1;

  for (std::uint64_t run_seed = 1; run_seed <= 3; ++run_seed) {
    InterpOptions options;
    options.seed = run_seed * 7919 + seed;
    const InterpResult run = interpret(compiled->program, options);
    ASSERT_FALSE(run.error.has_value())
        << "seed " << seed << "\n" << source << *run.error;
    if (run.deadlock.has_value()) ++stats.deadlocked_runs;
    if (verdict.deadlock_free) {
      // THE soundness property, end to end.
      EXPECT_FALSE(run.deadlock.has_value())
          << "UNSOUND: accepted program deadlocked; seed " << seed << "\n"
          << source << "type: "
          << to_string(compiled->inferred.program_gtype) << "\nreason: "
          << *run.deadlock;
      EXPECT_FALSE(run.graph_deadlock().any()) << "seed " << seed;
      // Theorem 1: the executed trace obeys Transitive Joins.
      EXPECT_TRUE(check_transitive_joins(run.trace).valid)
          << "seed " << seed << "\n" << source;
    }
    // Ground truth coherence: the interpreter's deadlock signal and the
    // recorded graph's verdict must agree.
    EXPECT_EQ(run.deadlock.has_value(), run.graph_deadlock().any())
        << "seed " << seed << " run " << run_seed << "\n" << source;
  }
}

class EndToEndFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndFuzz, AcceptedProgramsNeverDeadlock) {
  FuzzStats stats;
  for (std::uint64_t seed = GetParam(); seed < GetParam() + 40; ++seed) {
    fuzz_one(seed, stats);
    if (HasFatalFailure()) return;
  }
  // Guard against vacuity within each shard: programs of both verdicts
  // and at least some deadlocking executions must occur.
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(stats.deadlocked_runs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, EndToEndFuzz,
                         ::testing::Values(0u, 40u, 80u, 120u, 160u));

}  // namespace
}  // namespace gtdl
