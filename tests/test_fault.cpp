// Tests for the deterministic fault-injection harness (support/fault.hpp)
// and the recovery paths it exists to exercise: every instrumented point
// at rate 1.0 must unwind to a clean report or a caught exception — never
// a hang, a half-registered task, or a poisoned memo table.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/thread_pool.hpp"
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl {
namespace {

// Every test starts and ends disarmed — a leaked configuration would
// poison unrelated suites in the same binary.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

TEST_F(FaultTest, ConfigureRejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(fault::configure("", &error));
  EXPECT_FALSE(fault::configure("parse", &error));
  EXPECT_FALSE(fault::configure("parse:1", &error));
  EXPECT_FALSE(fault::configure("parse:nope:1", &error));
  EXPECT_FALSE(fault::configure("parse:2:1", &error));   // rate > 1
  EXPECT_FALSE(fault::configure("parse:-1:1", &error));  // rate < 0
  EXPECT_FALSE(fault::configure("parse:1:nope", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::armed());

  EXPECT_TRUE(fault::configure("parse:1:42"));
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::configure("memo:0.5:7"));  // reconfigure replaces
  fault::clear();
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultTest, UnmatchedPointNeverFires) {
  ASSERT_TRUE(fault::configure("memo:1:1"));
  for (int i = 0; i < 100; ++i) {
    fault::maybe_inject("parse");  // must not throw
  }
  EXPECT_EQ(fault::injected_count(), 0u);
}

TEST_F(FaultTest, ParsePointThrowsAtRateOne) {
  ASSERT_TRUE(fault::configure("parse:1:1"));
  DiagnosticEngine diags;
  bool caught = false;
  try {
    (void)parse_gtype("new u. 1 / u ; ~u", diags);
  } catch (const fault::FaultInjected& f) {
    caught = true;
    EXPECT_STREQ(f.point, "parse");
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(fault::injected_count(), 1u);
}

TEST_F(FaultTest, AllocPointUnwindsOutOfBaselineScan) {
  const GTypePtr g = parse_gtype_or_throw("new u. 1 / u ; ~u");
  ASSERT_TRUE(fault::configure("alloc:1:5"));
  bool caught = false;
  try {
    (void)gml_baseline_check(g);
  } catch (const fault::FaultInjected& f) {
    caught = true;
    EXPECT_STREQ(f.point, "alloc");
  }
  EXPECT_TRUE(caught);
}

TEST_F(FaultTest, CorpusFoldsFaultIntoPerFileReport) {
  // FaultInjected is deliberately NOT a std::exception, so this is the
  // regression test for the corpus driver's catch-all fallback: the
  // non-std throw must become a per-file exit-2 report, not a lost batch.
  const std::string path = "test_fault_corpus_input.gt";
  {
    std::ofstream out(path);
    out << "new u. 1 / u ; ~u\n";
  }
  ASSERT_TRUE(fault::configure("parse:1:42"));

  CorpusOptions options;
  const FileReport report = analyze_file(path, options, nullptr);
  EXPECT_EQ(report.exit_code, 2);
  EXPECT_NE(report.text.find("unknown exception"), std::string::npos);

  // Same contract through the concurrent driver: the batch survives and
  // the corpus exit code is the max over files.
  options.jobs = 2;
  const CorpusReport corpus = drive_corpus({path, path}, options);
  EXPECT_EQ(corpus.exit_code, 2);
  ASSERT_EQ(corpus.files.size(), 2u);
  for (const FileReport& file : corpus.files) {
    EXPECT_EQ(file.exit_code, 2);
    EXPECT_NE(file.text.find("unknown exception"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(FaultTest, MemoOwnerFaultDoesNotPoisonTheEngine) {
  // The memo point fires on the owner's publish path; the owner must
  // publish-invalid before rethrowing so blocked waiters wake instead of
  // waiting forever on a result that will never come. The assertions
  // here are (a) the faulted call RETURNS (throw or result, no hang) and
  // (b) the engine is still fully usable afterwards.
  const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  Engine engine(4);
  ASSERT_TRUE(fault::configure("memo:1:7"));
  try {
    (void)engine.normalize(g, 4);
  } catch (...) {
    // Expected shape: the injected fault surfaces through wait().
  }
  EXPECT_GE(fault::injected_count(), 1u);

  fault::clear();
  const NormalizeResult clean = engine.normalize(g, 3);
  const NormalizeResult reference = normalize(g, 3);
  EXPECT_FALSE(clean.truncated);
  EXPECT_EQ(clean.graphs.size(), reference.graphs.size());
}

TEST_F(FaultTest, TaskFaultLeavesGroupDrainable) {
  // The task point fires BEFORE any queue or completion-cell state
  // changes, so a failed submission must leave the group empty: wait()
  // returns immediately and later submissions work.
  ThreadPool pool(2);
  TaskGroup group(pool);
  ASSERT_TRUE(fault::configure("task:1:3"));
  bool caught = false;
  try {
    group.run([] {});
  } catch (const fault::FaultInjected& f) {
    caught = true;
    EXPECT_STREQ(f.point, "task");
  }
  EXPECT_TRUE(caught);
  fault::clear();
  group.wait();  // nothing registered — must not hang

  std::atomic<bool> ran{false};
  group.run([&] { ran.store(true); });
  group.wait();
  EXPECT_TRUE(ran.load());
}

TEST_F(FaultTest, FractionalRateIsDeterministicInArrivalOrder) {
  // The k-th arrival's decision is a pure function of (seed, k): two
  // identically configured single-threaded runs inject at exactly the
  // same arrivals.
  const auto sample = [] {
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      bool injected = false;
      try {
        fault::maybe_inject("parse");
      } catch (const fault::FaultInjected&) {
        injected = true;
      }
      pattern.push_back(injected);
    }
    return pattern;
  };
  ASSERT_TRUE(fault::configure("parse:0.5:99"));
  const std::vector<bool> first = sample();
  ASSERT_TRUE(fault::configure("parse:0.5:99"));  // resets arrivals
  const std::vector<bool> second = sample();
  EXPECT_EQ(first, second);

  std::size_t hits = 0;
  for (const bool b : first) hits += b ? 1u : 0u;
  EXPECT_GT(hits, 0u);   // rate 0.5 over 64 arrivals: some fire...
  EXPECT_LT(hits, 64u);  // ...and some don't
}

}  // namespace
}  // namespace gtdl
