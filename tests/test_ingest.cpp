// The trace-ingestion pipeline (docs/TRACE_FORMAT.md), end to end:
//
//   * round-trip — every examples/programs/*.fut is executed with a
//     TraceDumpWriter attached, the dump is merged back, and the
//     observed graph must be STRUCTURALLY IDENTICAL to the graph the
//     interpreter recorded (same to_string), so every verdict —
//     cycle/unspawned-touch, TJ, KJ — matches the ground truth;
//   * the threaded FutureRuntime as a producer (including a genuine
//     cross-thread cyclic deadlock, poisoned by the registry but fully
//     present in the dump);
//   * merge semantics on hand-written shards (placement irrelevance);
//   * malformed-dump rejection with file:line provenance;
//   * budgets (exit 3) and --jobs byte-identity via drive_ingest.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/ingest/ingest.hpp"
#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/runtime/futures.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {
namespace {

namespace fs = std::filesystem;

// A fresh directory under the system temp root, removed on destruction.
class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("gtdl_ingest_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string read_program(const std::string& name) {
  const std::string path = std::string(GTDL_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr const char* kMeta0 =
    R"({"trace_version":1,"kind":"meta","shard":0,"shards":1,"root":"main"})"
    "\n";

// --- round-trip over every example program ---------------------------------

struct RoundTripCase {
  const char* file;
  bool has_deadlock;
  std::vector<std::int64_t> rand_script;
};

class IngestRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(IngestRoundTrip, ObservedGraphMatchesInterpreter) {
  const RoundTripCase& rc = GetParam();
  auto compiled = compile_futlang_or_throw(read_program(rc.file));

  TempDir dir;
  ingest::TraceDumpWriter writer(dir.file("rt"));
  InterpOptions options;
  options.rand_script = rc.rand_script;
  options.graph_dump = &writer;
  const InterpResult run = interpret(compiled.program, options);
  ASSERT_FALSE(run.error.has_value()) << rc.file << ": " << *run.error;
  ASSERT_EQ(run.deadlock.has_value(), rc.has_deadlock)
      << rc.file << ": " << run.deadlock.value_or("(none)");

  std::string flush_error;
  const std::vector<std::string> shards = writer.flush(&flush_error);
  ASSERT_TRUE(flush_error.empty()) << flush_error;
  ASSERT_EQ(shards.size(), writer.shard_count());

  const ingest::MergedTrace merged = ingest::merge_trace_dumps(shards);
  ASSERT_TRUE(merged.ok) << rc.file << "\n" << merged.diags.render();
  ASSERT_NE(merged.graph, nullptr);

  // The reconstruction is exact, not merely verdict-equivalent.
  EXPECT_EQ(to_string(*merged.graph), to_string(*run.graph)) << rc.file;

  // Hence every detector agrees with the interpreter's ground truth.
  EXPECT_EQ(find_ground_deadlock(*merged.graph).any(), rc.has_deadlock)
      << rc.file;
  const Trace observed = trace_with_init(*merged.graph, merged.root);
  EXPECT_EQ(check_transitive_joins(observed).valid,
            check_transitive_joins(run.trace).valid)
      << rc.file;
  EXPECT_EQ(check_known_joins(observed).valid,
            check_known_joins(run.trace).valid)
      << rc.file;

  // And the CLI-level report lands on the matching observed verdict.
  const ingest::IngestReport report =
      ingest::ingest_dump_set(dir.file("rt") + ".*.json");
  EXPECT_EQ(report.exit_code, rc.has_deadlock ? 1 : 0) << report.text;
  EXPECT_EQ(report.deadlock_observed, rc.has_deadlock);
  EXPECT_NE(report.text.find(rc.has_deadlock ? "DEADLOCK OBSERVED"
                                             : "NO DEADLOCK OBSERVED"),
            std::string::npos)
      << report.text;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IngestRoundTrip,
    ::testing::Values(
        RoundTripCase{"fibonacci.fut", false, {}},
        RoundTripCase{"fib_dl.fut", true, {}},
        RoundTripCase{"pipeline.fut", false, {}},
        RoundTripCase{"counterex.fut", true, {1, 1}},
        RoundTripCase{"webserver.fut", false, {}},
        RoundTripCase{"webserver_dl.fut", true, {}},
        RoundTripCase{"vec_reduce.fut", false, {}},
        RoundTripCase{"vec_indexed.fut", false, {}},
        RoundTripCase{"vec_pipeline.fut", false, {}},
        RoundTripCase{"pipeline_buffer.fut", false, {}},
        RoundTripCase{"pipeline_source.fut", false, {}},
        RoundTripCase{"vec_skip_dl.fut", true, {}},
        RoundTripCase{"pipeline_dl.fut", true, {}}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// --- the threaded runtime as a producer ------------------------------------

TEST(IngestRuntime, CleanExecutionRoundTrips) {
  TempDir dir;
  ingest::TraceDumpWriter writer(dir.file("rt"));
  {
    RuntimeOptions options;
    options.graph_dump = &writer;
    FutureRuntime rt(options);
    auto a = rt.new_future<int>("a");
    auto b = rt.new_future<int>("b");
    a.spawn([] { return 1; });
    b.spawn([a]() mutable { return a.touch() + 1; });
    EXPECT_EQ(b.touch(), 2);
  }
  std::string error;
  const auto shards = writer.flush(&error);
  ASSERT_TRUE(error.empty()) << error;
  const ingest::MergedTrace merged = ingest::merge_trace_dumps(shards);
  ASSERT_TRUE(merged.ok) << merged.diags.render();
  EXPECT_FALSE(find_ground_deadlock(*merged.graph).any())
      << to_string(*merged.graph);
}

TEST(IngestRuntime, PoisonedCyclicDeadlockIsInTheDump) {
  TempDir dir;
  ingest::TraceDumpWriter writer(dir.file("rt"));
  {
    RuntimeOptions options;
    options.graph_dump = &writer;
    FutureRuntime rt(options);
    auto a = rt.new_future<int>("a");
    auto b = rt.new_future<int>("b");
    a.spawn([b]() mutable { return b.touch(); });
    b.spawn([a]() mutable { return a.touch(); });
    EXPECT_THROW((void)a.touch(), DeadlockError);
  }
  std::string error;
  const auto shards = writer.flush(&error);
  ASSERT_TRUE(error.empty()) << error;

  // The registry poisoned the cycle so the process survived — but the
  // touches happened, so the OBSERVED graph still contains the deadlock.
  const ingest::MergedTrace merged = ingest::merge_trace_dumps(shards);
  ASSERT_TRUE(merged.ok) << merged.diags.render();
  EXPECT_TRUE(find_ground_deadlock(*merged.graph).any())
      << to_string(*merged.graph);

  const ingest::IngestReport report =
      ingest::ingest_dump_set(dir.file("rt") + ".*.json");
  EXPECT_EQ(report.exit_code, 1) << report.text;
}

// --- writer mechanics -------------------------------------------------------

TEST(TraceWriter, EveryShardIsWrittenEvenWhenEmpty) {
  TempDir dir;
  ingest::TraceDumpWriter::Options options;
  options.shards = 4;
  ingest::TraceDumpWriter writer(dir.file("d"), options);
  writer.record_spawn(Symbol::intern("main"), Symbol::intern("only"));
  std::string error;
  const auto paths = writer.flush(&error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(paths.size(), 4u);
  for (const std::string& p : paths) {
    std::ifstream in(p);
    ASSERT_TRUE(in.is_open()) << p;
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("\"kind\":\"meta\""), std::string::npos) << p;
  }
  EXPECT_EQ(writer.record_count(), 1u);
}

TEST(TraceWriter, JsonEscapeCoversControlAndQuotes) {
  EXPECT_EQ(ingest::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(ingest::json_escape("x\n\t"), "x\\n\\t");
  EXPECT_EQ(ingest::json_escape(std::string("\x01", 1)), "\\u0001");
}

// --- merge semantics on hand-written shards --------------------------------

TEST(IngestMerge, ShardPlacementCarriesNoMeaning) {
  // The same execution, sharded two different ways, merges to the same
  // graph: a cyclic wait between `a` and `b`.
  const std::string spawn_a =
      R"({"kind":"spawn","seq":0,"thread":"main","vertex":"a"})" "\n";
  const std::string spawn_b =
      R"({"kind":"spawn","seq":1,"thread":"main","vertex":"b"})" "\n";
  const std::string touches =
      R"({"kind":"touch","seq":2,"thread":"a","vertex":"b"})" "\n"
      R"({"kind":"touch","seq":3,"thread":"b","vertex":"a"})" "\n"
      R"({"kind":"touch","seq":4,"thread":"main","vertex":"a"})" "\n";

  TempDir one;
  write_file(one.file("d.0.json"), kMeta0 + spawn_a + spawn_b + touches);
  const auto single =
      ingest::merge_trace_dumps({one.file("d.0.json")});
  ASSERT_TRUE(single.ok) << single.diags.render();

  TempDir two;
  write_file(
      two.file("d.0.json"),
      R"({"trace_version":1,"kind":"meta","shard":0,"shards":2,"root":"main"})"
      "\n" +
          touches);
  write_file(
      two.file("d.1.json"),
      R"({"trace_version":1,"kind":"meta","shard":1,"shards":2,"root":"main"})"
      "\n" +
          spawn_a + spawn_b);
  const auto split = ingest::merge_trace_dumps(
      {two.file("d.0.json"), two.file("d.1.json")});
  ASSERT_TRUE(split.ok) << split.diags.render();

  EXPECT_EQ(to_string(*single.graph), to_string(*split.graph));
  EXPECT_TRUE(find_ground_deadlock(*split.graph).any());

  const ingest::IngestReport report =
      ingest::ingest_dump_set(two.file("d.*.json"));
  EXPECT_EQ(report.exit_code, 1);
  EXPECT_NE(report.text.find("witness (observed cyclic wait): a -> b -> a"),
            std::string::npos)
      << report.text;
}

TEST(IngestMerge, UnknownKeysAreIgnoredForForwardCompat) {
  TempDir dir;
  write_file(dir.file("d.0.json"),
             std::string(kMeta0) +
                 R"({"kind":"spawn","seq":0,"thread":"main",)"
                 R"("vertex":"a","ts_ns":12345,"cpu":"3"})" "\n"
                 R"({"kind":"touch","seq":1,"thread":"main","vertex":"a"})"
                 "\n");
  const auto merged = ingest::merge_trace_dumps({dir.file("d.0.json")});
  EXPECT_TRUE(merged.ok) << merged.diags.render();
}

// --- malformed dumps: every rejection carries file:line provenance ---------

// Returns the diagnostics for a single-shard dump with `body` appended
// after a valid meta line.
std::string reject(const std::string& body, const std::string& meta = kMeta0) {
  TempDir dir;
  write_file(dir.file("bad.0.json"), meta + body);
  const auto merged = ingest::merge_trace_dumps({dir.file("bad.0.json")});
  EXPECT_FALSE(merged.ok) << "expected rejection for: " << body;
  return merged.diags.render();
}

TEST(IngestMalformed, TruncatedJsonLine) {
  const std::string diags =
      reject(R"({"kind":"spawn","seq":0,"thread":"main)" "\n");
  EXPECT_NE(diags.find("bad.0.json:2:"), std::string::npos) << diags;
}

TEST(IngestMalformed, DuplicateSpawnOfVertex) {
  const std::string diags = reject(
      R"({"kind":"spawn","seq":0,"thread":"main","vertex":"a"})" "\n"
      R"({"kind":"spawn","seq":1,"thread":"main","vertex":"a"})" "\n");
  EXPECT_NE(diags.find("duplicate spawn of vertex 'a'"), std::string::npos)
      << diags;
  EXPECT_NE(diags.find("bad.0.json:3"), std::string::npos) << diags;
}

TEST(IngestMalformed, DanglingRecordByUnspawnedThread) {
  const std::string diags =
      reject(R"({"kind":"touch","seq":0,"thread":"ghost","vertex":"a"})" "\n");
  EXPECT_NE(diags.find("dangling record"), std::string::npos) << diags;
}

TEST(IngestMalformed, DuplicateSeq) {
  const std::string diags = reject(
      R"({"kind":"spawn","seq":0,"thread":"main","vertex":"a"})" "\n"
      R"({"kind":"touch","seq":0,"thread":"main","vertex":"a"})" "\n");
  EXPECT_NE(diags.find("duplicate seq 0"), std::string::npos) << diags;
}

TEST(IngestMalformed, ResolveOfNeverSpawnedFuture) {
  const std::string diags =
      reject(R"({"kind":"resolve","seq":0,"thread":"main","vertex":"a"})" "\n");
  EXPECT_NE(diags.find("never spawned"), std::string::npos) << diags;
}

TEST(IngestMalformed, MissingMetaRecord) {
  TempDir dir;
  write_file(dir.file("bad.0.json"),
             R"({"kind":"spawn","seq":0,"thread":"main","vertex":"a"})" "\n");
  const auto merged = ingest::merge_trace_dumps({dir.file("bad.0.json")});
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.diags.render().find("meta record"), std::string::npos);
}

TEST(IngestMalformed, UnsupportedTraceVersion) {
  TempDir dir;
  write_file(
      dir.file("bad.0.json"),
      R"({"trace_version":2,"kind":"meta","shard":0,"shards":1,"root":"main"})"
      "\n");
  const auto merged = ingest::merge_trace_dumps({dir.file("bad.0.json")});
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.diags.render().find("trace_version"), std::string::npos);
}

TEST(IngestMalformed, IncompleteShardSet) {
  TempDir dir;
  write_file(
      dir.file("d.0.json"),
      R"({"trace_version":1,"kind":"meta","shard":0,"shards":2,"root":"main"})"
      "\n");
  const auto merged = ingest::merge_trace_dumps({dir.file("d.0.json")});
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.diags.render().find("incomplete set"), std::string::npos)
      << merged.diags.render();
}

TEST(IngestMalformed, RejectsNestedValuesAndNegativeNumbers) {
  EXPECT_NE(
      reject(R"({"kind":"spawn","seq":-1,"thread":"main","vertex":"a"})" "\n")
          .find("at column"),
      std::string::npos);
  EXPECT_NE(
      reject(
          R"({"kind":"spawn","seq":0,"thread":"main","vertex":["a"]})" "\n")
          .find("at column"),
      std::string::npos);
}

TEST(IngestMalformed, UnknownKindIsRejected) {
  const std::string diags =
      reject(R"({"kind":"steal","seq":0,"thread":"main","vertex":"a"})" "\n");
  EXPECT_FALSE(diags.empty());
}

// --- budgets and parallel driving ------------------------------------------

TEST(IngestDrive, BudgetExhaustionIsExitThreeNotAVerdict) {
  TempDir dir;
  std::string body;
  for (int i = 0; i < 64; ++i) {
    body += R"({"kind":"spawn","seq":)" + std::to_string(i) +
            R"(,"thread":"main","vertex":"v)" + std::to_string(i) + "\"}\n";
  }
  write_file(dir.file("d.0.json"), kMeta0 + body);
  ingest::IngestOptions options;
  options.budget_steps = 3;
  const ingest::IngestReport report =
      ingest::ingest_dump_set(dir.file("d.*.json"), options);
  EXPECT_EQ(report.exit_code, 3) << report.text;
  EXPECT_NE(report.text.find("UNKNOWN"), std::string::npos) << report.text;
}

TEST(IngestDrive, ReportsAreByteIdenticalAcrossJobCounts) {
  TempDir dir;
  std::vector<std::string> patterns;
  for (int set = 0; set < 3; ++set) {
    const std::string base = "s" + std::to_string(set);
    std::string body;
    for (int i = 0; i < 4; ++i) {
      const std::string v = base + "_v" + std::to_string(i);
      body += R"({"kind":"spawn","seq":)" + std::to_string(2 * i) +
              R"(,"thread":"main","vertex":")" + v + "\"}\n";
      body += R"({"kind":"touch","seq":)" + std::to_string(2 * i + 1) +
              R"(,"thread":"main","vertex":")" + v + "\"}\n";
    }
    write_file(dir.file(base + ".0.json"), kMeta0 + body);
    patterns.push_back(dir.file(base + ".*.json"));
  }

  ingest::IngestOptions serial;
  serial.jobs = 1;
  ingest::IngestOptions wide;
  wide.jobs = 4;
  const auto a = ingest::drive_ingest(patterns, serial);
  const auto b = ingest::drive_ingest(patterns, wide);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (std::size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].text, b.sets[i].text) << patterns[i];
    EXPECT_EQ(a.sets[i].exit_code, b.sets[i].exit_code);
  }
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.exit_code, 0);
}

TEST(IngestDrive, NoMatchingFilesIsAnError) {
  std::string error;
  const auto files =
      ingest::expand_dump_glob("/nonexistent/nope.*.json", &error);
  EXPECT_TRUE(files.empty());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace gtdl
