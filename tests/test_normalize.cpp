// Tests for normalization (Fig. 3): the set of ground graphs a graph type
// represents.

#include <gtest/gtest.h>

#include <algorithm>

#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

std::vector<std::string> spellings(const NormalizeResult& result) {
  std::vector<std::string> out;
  out.reserve(result.graphs.size());
  for (const auto& g : result.graphs) out.push_back(to_string(*g));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Normalize, DepthZeroIsEmpty) {
  EXPECT_TRUE(normalize(gt::empty(), 0).graphs.empty());
}

TEST(Normalize, Singleton) {
  const NormalizeResult r = normalize(gt::empty(), 1);
  ASSERT_EQ(r.graphs.size(), 1u);
  EXPECT_EQ(to_string(*r.graphs[0]), "1");
  EXPECT_FALSE(r.truncated);
}

TEST(Normalize, TouchAndSpawnPassThrough) {
  const NormalizeResult r =
      normalize(parse_gtype_or_throw("1 / u ; ~u"), 1);
  ASSERT_EQ(r.graphs.size(), 1u);
  EXPECT_EQ(to_string(*r.graphs[0]), "1 / u ; ~u");
}

TEST(Normalize, DisjunctionUnions) {
  const NormalizeResult r = normalize(parse_gtype_or_throw("1 | ~u"), 1);
  EXPECT_EQ(spellings(r), (std::vector<std::string>{"1", "~u"}));
}

TEST(Normalize, SeqTakesCartesianProduct) {
  const NormalizeResult r =
      normalize(parse_gtype_or_throw("(1 | ~a) ; (1 | ~b)"), 1);
  EXPECT_EQ(r.graphs.size(), 4u);
}

TEST(Normalize, NuInstantiatesFreshNames) {
  // νu.(1/u) normalized twice gives different concrete names, but the
  // graphs are alpha-equivalent — dedup keeps one per call.
  const GTypePtr g = parse_gtype_or_throw("new u. 1 / u");
  const NormalizeResult r1 = normalize(g, 1);
  const NormalizeResult r2 = normalize(g, 1);
  ASSERT_EQ(r1.graphs.size(), 1u);
  ASSERT_EQ(r2.graphs.size(), 1u);
  const auto sp1 = spawned_vertices(*r1.graphs[0]);
  const auto sp2 = spawned_vertices(*r2.graphs[0]);
  ASSERT_EQ(sp1.size(), 1u);
  ASSERT_EQ(sp2.size(), 1u);
  EXPECT_NE(sp1[0], sp2[0]);
  EXPECT_NE(sp1[0], S("u"));  // genuinely fresh, not the bound name
}

TEST(Normalize, RecUnrollsUpToDepth) {
  // μγ.(• ∨ (• ⊕ γ)): graphs are chains of 1..k singletons.
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | 1 ; g");
  // Depth n admits up to n-1 unrollings.
  const NormalizeResult r = normalize(g, 4);
  // Chains with 1, 2, 3 singletons (after dedup of alpha-equal results).
  EXPECT_EQ(r.graphs.size(), 3u);
}

TEST(Normalize, RecRequiresUnrollingToProduceGraphs) {
  // μγ.γ never reaches a base case: no graphs at any depth.
  const GTypePtr g = parse_gtype_or_throw("rec g. g");
  EXPECT_TRUE(normalize(g, 6).graphs.empty());
}

TEST(Normalize, DivideAndConquerProducesFreshVerticesPerUnrolling) {
  const GTypePtr g = parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  const NormalizeResult r = normalize(g, 3);
  ASSERT_FALSE(r.graphs.empty());
  for (const auto& graph : r.graphs) {
    // Every graph must have unique designated vertices (ν freshness).
    const auto spawned = spawned_vertices(*graph);
    OrderedSet<Symbol> unique{std::vector<Symbol>(spawned.begin(),
                                                  spawned.end())};
    EXPECT_EQ(unique.size(), spawned.size())
        << "duplicate designated vertex in " << to_string(*graph);
    // And no unspawned touches, and no cycles.
    EXPECT_FALSE(find_ground_deadlock(*graph).any())
        << to_string(*graph);
  }
}

TEST(Normalize, ApplicationSubstitutesArguments) {
  const GTypePtr g = parse_gtype_or_throw("(pi[a; x]. ~x ; 1 / a)[u; w]");
  const NormalizeResult r = normalize(g, 1);
  ASSERT_EQ(r.graphs.size(), 1u);
  EXPECT_EQ(to_string(*r.graphs[0]), "~w ; 1 / u");
}

TEST(Normalize, ApplicationUnrollsRecDecrementingFuel) {
  // (μγ.Π[a;x]. • ∨ (~x ⊕ •/a ⊕ γ[u;u] under νu))[u0;w0]
  const GTypePtr g = parse_gtype_or_throw(
      "new u0. new w0. 1 / w0 ; "
      "(rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u])[u0; w0]");
  // Depth 2: one unrolling for the outer application, then the base case.
  const NormalizeResult shallow = normalize(g, 2);
  ASSERT_EQ(shallow.graphs.size(), 1u);
  EXPECT_FALSE(find_ground_deadlock(*shallow.graphs[0]).any());

  // Depth 4: includes the 3-unrolling graph with the cycle (§3).
  const NormalizeResult deep = normalize(g, 4);
  EXPECT_GT(deep.graphs.size(), 1u);
  bool found_deadlock = false;
  for (const auto& graph : deep.graphs) {
    if (find_ground_deadlock(*graph).any()) found_deadlock = true;
  }
  EXPECT_TRUE(found_deadlock);
}

TEST(Normalize, BarePiHasNoGraphs) {
  EXPECT_TRUE(normalize(parse_gtype_or_throw("pi[a; x]. 1 / a"), 5)
                  .graphs.empty());
}

TEST(Normalize, FreeGraphVariableHasNoGraphs) {
  EXPECT_TRUE(normalize(parse_gtype_or_throw("g"), 5).graphs.empty());
}

TEST(Normalize, ArityMismatchYieldsNoGraphs) {
  const GTypePtr g = parse_gtype_or_throw("(pi[a; x]. 1 / a ; ~x)[u, v; w]");
  EXPECT_TRUE(normalize(g, 3).graphs.empty());
}

TEST(Normalize, MaxGraphsTruncates) {
  // 2^6 = 64 graphs; cap at 10.
  const GTypePtr g = parse_gtype_or_throw(
      "(1|1) ; (1|1) ; (1|1) ; (1|1) ; (1|1) ; (1|1)");
  NormalizeLimits limits;
  limits.max_graphs = 10;
  limits.dedup_alpha = false;
  const NormalizeResult r = normalize(g, 1, limits);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.graphs.size(), 10u);
}

TEST(Normalize, MaxStepsTruncates) {
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | 1 ; g");
  NormalizeLimits limits;
  limits.max_steps = 5;
  const NormalizeResult r = normalize(g, 30, limits);
  EXPECT_TRUE(r.truncated);
}

TEST(CountNormalizations, MatchesSmallCases) {
  EXPECT_EQ(count_normalizations(gt::empty(), 0), 0u);
  EXPECT_EQ(count_normalizations(gt::empty(), 1), 1u);
  EXPECT_EQ(count_normalizations(parse_gtype_or_throw("1 | 1"), 1), 2u);
  EXPECT_EQ(count_normalizations(parse_gtype_or_throw("(1|1) ; (1|1)"), 1),
            4u);
}

TEST(CountNormalizations, GrowsWithDepthForRecursiveTypes) {
  const GTypePtr g = parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  const std::uint64_t c3 = count_normalizations(g, 3);
  const std::uint64_t c5 = count_normalizations(g, 5);
  const std::uint64_t c8 = count_normalizations(g, 8);
  EXPECT_GT(c3, 0u);
  EXPECT_GT(c5, c3);
  EXPECT_GT(c8, c5);
  // §3: exponential in n — by depth 8 the count dwarfs depth 5's.
  EXPECT_GT(c8, 4 * c5);
}

TEST(CountNormalizations, CountsWithoutDedupExceedMaterializedDedup) {
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | 1 ; g");
  const NormalizeResult r = normalize(g, 5);
  const std::uint64_t raw = count_normalizations(g, 5);
  EXPECT_GE(raw, r.graphs.size());
}

}  // namespace
}  // namespace gtdl
