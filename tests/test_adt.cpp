// Collection-constructor (ADT) suite — ISSUE 6's vector/pipeline graph
// types end to end:
//
//   * kind-system accept/reject over VecSpawn / TouchAll / TouchIdx /
//     Pipe at the graph-type level (family-as-unit affine spawning,
//     out-of-bounds member indices, touch-before-spawn through a family),
//   * streaming-vs-materialized enumeration equivalence for types built
//     from the new constructors (the family-indexed memo must replay the
//     same graphs in the same order),
//   * a Table-1-style sweep of the pipeline/family example programs:
//     analyzer and GML baseline verdicts against the interpreter oracle
//     and the TJ/KJ trace judges,
//   * a rendered GML witness for the deadlocking pipeline and family
//     variants, and
//   * the collections-enabled random-program differential: accepted
//     fuzz programs never deadlock, and their graph types stream
//     identically to the materialized normalizer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "random_program.hpp"

namespace gtdl {
namespace {

std::string read_program(const std::string& name) {
  const std::string path = std::string(GTDL_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> keys_of(const std::vector<GraphExprPtr>& graphs) {
  std::vector<std::string> keys;
  keys.reserve(graphs.size());
  for (const auto& g : graphs) keys.push_back(graph_alpha_key(*g));
  return keys;
}

// The streamed enumeration must visit exactly the graphs the
// materialized normalizer stores, in the same order (the differential
// property from test_streaming.cpp, pointed at collection types).
void expect_stream_matches(const GTypePtr& g, unsigned fuel) {
  const NormalizeResult materialized = normalize(g, fuel);
  ASSERT_FALSE(materialized.truncated)
      << "differential fixture must not truncate (fuel " << fuel << ")";
  std::vector<std::string> streamed;
  const StreamStats stats =
      for_each_graph(g, fuel, {}, [&](const GraphExprPtr& gr) {
        streamed.push_back(graph_alpha_key(*gr));
        return true;
      });
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(streamed, keys_of(materialized.graphs))
      << "stream diverged from materialized path at fuel " << fuel;
}

// --- kinding: accept ---------------------------------------------------

TEST(AdtKinding, AcceptsSpawnedFamilies) {
  const char* sources[] = {
      // Spawn the family, join it as a unit.
      "new fs. (vec[fs; 3]. 1) ; touchall[fs; 3]",
      // Join individual members (any subset, any order).
      "new fs. (vec[fs; 3]. 1) ; touchidx[fs; 3; 2] ; touchidx[fs; 3; 0]",
      // A spawned-but-never-joined family is fine: spawning is affine,
      // not linear.
      "new fs. (vec[fs; 2]. 1) | 1",
      // Pure stage chain.
      "1 |> 1 |> 1",
      // A stage may touch a future spawned before the pipe.
      "new a. (1 / a) ; (~a |> 1)",
      // Families and pipes compose in sequence.
      "new fs. (vec[fs; 2]. 1) ; (touchall[fs; 2] |> 1)",
  };
  for (const char* src : sources) {
    SCOPED_TRACE(src);
    const GTypePtr g = parse_gtype_or_throw(src);
    const WellformedResult wf = check_wellformed(g);
    EXPECT_TRUE(wf.ok) << wf.diags.render();
    const DeadlockVerdict verdict = check_deadlock_freedom(g);
    EXPECT_TRUE(verdict.deadlock_free) << verdict.diags.render();
  }
}

// --- kinding: reject ---------------------------------------------------

TEST(AdtKinding, RejectsUnboundFamilySpawn) {
  const GTypePtr g = parse_gtype_or_throw("vec[fs; 2]. 1");
  const WellformedResult wf = check_wellformed(g);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.diags.render().find("not available for spawning"),
            std::string::npos)
      << wf.diags.render();
}

TEST(AdtKinding, RejectsDoubleFamilySpawn) {
  // Family-as-unit affinity: one vec binding consumes the whole family.
  const GTypePtr g =
      parse_gtype_or_throw("new fs. (vec[fs; 2]. 1) ; (vec[fs; 2]. 1)");
  const WellformedResult wf = check_wellformed(g);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.diags.render().find("not available for spawning"),
            std::string::npos)
      << wf.diags.render();
}

TEST(AdtKinding, RejectsOutOfBoundsMemberIndex) {
  const GTypePtr g =
      parse_gtype_or_throw("new fs. (vec[fs; 2]. 1) ; touchidx[fs; 2; 5]");
  const WellformedResult wf = check_wellformed(g);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.diags.render().find("out of bounds"), std::string::npos)
      << wf.diags.render();
}

TEST(AdtKinding, RejectsJoinBeforeFamilySpawn) {
  // Well-formed (fs is ν-bound) but not deadlock-free: the join precedes
  // the spawn, so no member can ever be satisfied.
  const char* sources[] = {
      "new fs. touchall[fs; 2] ; (vec[fs; 2]. 1)",
      "new fs. touchidx[fs; 2; 1] ; (vec[fs; 2]. 1)",
  };
  for (const char* src : sources) {
    SCOPED_TRACE(src);
    const GTypePtr g = parse_gtype_or_throw(src);
    EXPECT_TRUE(check_wellformed(g).ok);
    EXPECT_FALSE(check_deadlock_freedom(g).deadlock_free);
  }
}

TEST(AdtKinding, RejectsForwardTouchThroughPipe) {
  // Stage 1 touches a future spawned only after the pipe completes —
  // the desugared Pipe graph puts ~a before a's spawn.
  const GTypePtr g = parse_gtype_or_throw("new a. (~a |> 1) ; (1 / a)");
  EXPECT_TRUE(check_wellformed(g).ok);
  EXPECT_FALSE(check_deadlock_freedom(g).deadlock_free);
}

// --- streaming equivalence over the new constructors -------------------

TEST(AdtStreaming, MatchesMaterializedOnCollectionTypes) {
  const char* sources[] = {
      "new fs. (vec[fs; 3]. 1) ; touchall[fs; 3]",
      "new fs. (vec[fs; 3]. ~a) ; touchall[fs; 3]",
      "new fs. (vec[fs; 2]. 1) ; touchidx[fs; 2; 1]",
      "1 |> 1 |> 1",
      "new a. (1 / a) ; (~a |> 1)",
      "new fs. (vec[fs; 2]. 1) ; (touchall[fs; 2] |> 1)",
      // Recursion around a family: the family-indexed memo must replay
      // member graphs consistently across unrollings.
      "rec g. 1 | (new fs. (vec[fs; 2]. 1) ; touchall[fs; 2] ; g)",
      "rec g. 1 | ((1 |> ~a) ; g)",
  };
  for (const char* src : sources) {
    const GTypePtr g = parse_gtype_or_throw(src);
    for (unsigned fuel : {1u, 2u, 3u, 6u}) {
      SCOPED_TRACE(std::string(src) + " fuel=" + std::to_string(fuel));
      expect_stream_matches(g, fuel);
    }
  }
}

// --- Table-1-style sweep over the example family -----------------------

struct AdtProgramCase {
  const char* file;
  bool has_deadlock;    // ground truth by execution
  bool ours_accepts;    // kind-system verdict
  bool gml_reports_dl;  // baseline verdict
  bool kj_valid;        // Known Joins on the executed trace
  bool tj_valid;        // Transitive Joins on the executed trace
};

class AdtTable : public ::testing::TestWithParam<AdtProgramCase> {};

TEST_P(AdtTable, DetectorsAgreeWithOracle) {
  const AdtProgramCase& pc = GetParam();
  const std::string source = read_program(pc.file);

  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags);
  ASSERT_TRUE(compiled.has_value()) << pc.file << "\n" << diags.render();
  const GTypePtr gtype = compiled->inferred.program_gtype;
  ASSERT_TRUE(check_wellformed(gtype).ok) << pc.file;

  const DeadlockVerdict ours = check_deadlock_freedom(gtype);
  EXPECT_EQ(ours.deadlock_free, pc.ours_accepts)
      << pc.file << "\n"
      << ours.diags.render() << "\ntype: " << to_string(gtype);
  if (ours.deadlock_free) {
    EXPECT_FALSE(pc.has_deadlock) << pc.file;
  }

  const GmlBaselineReport gml = gml_baseline_check(gtype);
  EXPECT_EQ(gml.deadlock_reported, pc.gml_reports_dl)
      << pc.file << " unrolls=" << gml.unrolls_per_binding
      << " graphs=" << gml.graphs_checked << " witness=" << gml.witness;

  const InterpResult run = interpret(compiled->program);
  ASSERT_FALSE(run.error.has_value()) << pc.file << ": " << *run.error;
  EXPECT_EQ(run.deadlock.has_value(), pc.has_deadlock)
      << pc.file << ": " << run.deadlock.value_or("(none)");
  EXPECT_EQ(run.graph_deadlock().any(), pc.has_deadlock) << pc.file;

  const TraceVerdict kj = check_known_joins(run.trace);
  EXPECT_EQ(kj.valid, pc.kj_valid) << pc.file << ": " << kj.reason;
  const TraceVerdict tj = check_transitive_joins(run.trace);
  EXPECT_EQ(tj.valid, pc.tj_valid) << pc.file << ": " << tj.reason;
}

INSTANTIATE_TEST_SUITE_P(
    ExampleFamily, AdtTable,
    ::testing::Values(
        // file                 DL     ours   gmlDL  kj     tj
        AdtProgramCase{"vec_reduce.fut", false, true, false, true, true},
        AdtProgramCase{"vec_indexed.fut", false, true, false, true, true},
        AdtProgramCase{"vec_pipeline.fut", false, true, false, true, true},
        AdtProgramCase{"pipeline_buffer.fut", false, true, false, true,
                       true},
        AdtProgramCase{"pipeline_source.fut", false, true, false, true,
                       true},
        AdtProgramCase{"vec_skip_dl.fut", true, false, true, false, false},
        AdtProgramCase{"pipeline_dl.fut", true, false, true, false,
                       false}),
    [](const ::testing::TestParamInfo<AdtProgramCase>& info) {
      std::string name = info.param.file;
      name = name.substr(0, name.find('.'));
      return name;
    });

TEST(AdtPrograms, FamilyReducerComputesRightAnswer) {
  auto compiled = compile_futlang_or_throw(read_program("vec_reduce.fut"));
  const InterpResult run = interpret(compiled.program);
  ASSERT_TRUE(run.completed) << run.deadlock.value_or("")
                             << run.error.value_or("");
  EXPECT_NE(run.output.find("reduced = 40"), std::string::npos)
      << run.output;
}

TEST(AdtPrograms, StagesRunInPipeOrder) {
  auto compiled =
      compile_futlang_or_throw(read_program("pipeline_buffer.fut"));
  const InterpResult run = interpret(compiled.program);
  ASSERT_TRUE(run.completed);
  const std::size_t produce = run.output.find("produce");
  const std::size_t consume = run.output.find("consume");
  ASSERT_NE(produce, std::string::npos) << run.output;
  ASSERT_NE(consume, std::string::npos) << run.output;
  // Stage k+1 implicitly touches stage k, so the consumer's print cannot
  // precede the producer's.
  EXPECT_LT(produce, consume) << run.output;
}

// --- witness rendering -------------------------------------------------

TEST(AdtWitness, DeadlockingPipelineRendersCycleWitness) {
  auto compiled = compile_futlang_or_throw(read_program("pipeline_dl.fut"));
  const GmlBaselineReport gml =
      gml_baseline_check(compiled.inferred.program_gtype);
  EXPECT_TRUE(gml.deadlock_reported);
  EXPECT_NE(gml.witness.find("cycle"), std::string::npos) << gml.witness;
  // The witness names a desugared stage vertex, tying the rendered cycle
  // back to the pipeline's lowering.
  EXPECT_NE(gml.witness.find("pst$"), std::string::npos) << gml.witness;
}

TEST(AdtWitness, DeadlockingFamilyWitnessNamesAMember) {
  auto compiled = compile_futlang_or_throw(read_program("vec_skip_dl.fut"));
  const GmlBaselineReport gml =
      gml_baseline_check(compiled.inferred.program_gtype);
  EXPECT_TRUE(gml.deadlock_reported);
  EXPECT_NE(gml.witness.find("cycle"), std::string::npos) << gml.witness;
  // Member vertices print as family@index.
  EXPECT_NE(gml.witness.find("@0"), std::string::npos) << gml.witness;
}

// --- collections-enabled random-program differential -------------------

TEST(AdtDifferential, AcceptedCollectionProgramsNeverDeadlock) {
  unsigned accepted = 0;
  unsigned rejected = 0;
  unsigned deadlocked_runs = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    fuzz::RandomProgram generator(seed, /*collections=*/true);
    const std::string source = generator.generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + source);

    DiagnosticEngine diags;
    auto compiled = compile_futlang(source, diags);
    ASSERT_TRUE(compiled.has_value())
        << "generator must emit compilable programs\n" << diags.render();
    const GTypePtr gtype = compiled->inferred.program_gtype;
    ASSERT_TRUE(check_wellformed(gtype).ok);

    const DeadlockVerdict verdict = check_deadlock_freedom(gtype);
    (verdict.deadlock_free ? accepted : rejected) += 1;

    expect_stream_matches(gtype, 2);
    if (HasFatalFailure()) return;

    for (std::uint64_t run_seed = 1; run_seed <= 3; ++run_seed) {
      InterpOptions options;
      options.seed = run_seed * 7919 + seed;
      const InterpResult run = interpret(compiled->program, options);
      ASSERT_FALSE(run.error.has_value()) << *run.error;
      if (run.deadlock.has_value()) ++deadlocked_runs;
      if (verdict.deadlock_free) {
        EXPECT_FALSE(run.deadlock.has_value())
            << "UNSOUND: accepted program deadlocked\ntype: "
            << to_string(gtype) << "\nreason: " << *run.deadlock;
        EXPECT_TRUE(check_transitive_joins(run.trace).valid);
      }
      EXPECT_EQ(run.deadlock.has_value(), run.graph_deadlock().any());
    }
  }
  // Vacuity guards: the collection-enabled generator must produce both
  // verdicts and at least one genuinely deadlocking execution.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(deadlocked_runs, 0u);
}

}  // namespace
}  // namespace gtdl
