// Tests for the MiniML frontend — and the language-agnosticism headline:
// equivalent FutLang and MiniML programs infer alpha-EQUAL graph types,
// and the detector (which never sees source code) gives identical
// verdicts.

#include <gtest/gtest.h>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/mml/driver.hpp"
#include "gtdl/mml/parser.hpp"
#include "gtdl/mml/typecheck.hpp"

namespace gtdl {
namespace {

using mml::compile_mml;
using mml::compile_mml_or_throw;
using mml::parse_mml_or_throw;
using mml::typecheck_mml;

// --- parsing ---------------------------------------------------------------

TEST(MmlParser, MinimalMain) {
  const mml::MProgram p = parse_mml_or_throw("let main () : unit = ()");
  ASSERT_EQ(p.defs.size(), 1u);
  EXPECT_EQ(p.defs[0].name, Symbol::intern("main"));
  EXPECT_TRUE(p.defs[0].params.empty());
}

TEST(MmlParser, ParamsTypesAndRec) {
  const mml::MProgram p = parse_mml_or_throw(R"(
    let rec f (n : int) (h : int future) : int = n
    let main () : unit = ()
  )");
  const mml::MDef& f = p.defs[0];
  EXPECT_TRUE(f.recursive);
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_TRUE(is_future(*f.params[1].type));
}

TEST(MmlParser, PostfixTypes) {
  const mml::MProgram p = parse_mml_or_throw(
      "let f (l : int list list) (h : int future) : unit = ()\n"
      "let main () : unit = ()");
  EXPECT_EQ(to_string(*p.defs[0].params[0].type), "list[list[int]]");
  EXPECT_EQ(to_string(*p.defs[0].params[1].type), "future[int]");
}

TEST(MmlParser, LetInChainsAndSeq) {
  const mml::MProgram p = parse_mml_or_throw(R"(
    let main () : unit =
      let x = 1 in
      let y : int = x + 1 in
      print (string_of_int y);
      ()
  )");
  const auto* let = std::get_if<mml::MLet>(&p.defs[0].body->node);
  ASSERT_NE(let, nullptr);
}

TEST(MmlParser, MatchAndCons) {
  const mml::MProgram p = parse_mml_or_throw(R"(
    let rec sum (xs : int list) : int =
      match xs with
      | [] -> 0
      | x :: rest -> x + sum rest
    let main () : unit = print (string_of_int (sum (1 :: 2 :: [])))
  )");
  EXPECT_TRUE(
      std::holds_alternative<mml::MMatch>(p.defs[0].body->node));
}

TEST(MmlParser, CommentsAndOperators) {
  const mml::MProgram p = parse_mml_or_throw(R"(
    (* nested (* comments *) work *)
    let main () : unit =
      let b = 1 + 2 * 3 = 7 && not false in
      let s = "a" ^ "b" in
      ()
  )");
  EXPECT_EQ(p.defs.size(), 1u);
}

TEST(MmlParser, Errors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(mml::parse_mml("let main () : unit = (", diags).has_value());
  diags.clear();
  EXPECT_FALSE(mml::parse_mml("let f x : int = x\nlet main () : unit = ()",
                              diags)
                   .has_value());  // params need (x : T)
  diags.clear();
  EXPECT_FALSE(
      mml::parse_mml("let main () : unit = newfut 3", diags).has_value());
}

// --- typing ------------------------------------------------------------------

bool mml_checks(const char* source) {
  DiagnosticEngine diags;
  auto program = mml::parse_mml(source, diags);
  if (!program) return false;
  return typecheck_mml(*program, diags);
}

TEST(MmlTypecheck, NewfutNeedsAnnotation) {
  EXPECT_FALSE(mml_checks("let main () : unit = let h = newfut () in ()"));
  EXPECT_TRUE(mml_checks(
      "let main () : unit = let h : int future = newfut () in ()"));
}

TEST(MmlTypecheck, SpawnTouchTypes) {
  EXPECT_TRUE(mml_checks(R"(
    let main () : unit =
      let h : int future = newfut () in
      spawn h (40 + 2);
      print (string_of_int (touch h))
  )"));
  EXPECT_FALSE(mml_checks(R"(
    let main () : unit =
      let h : int future = newfut () in
      spawn h "nope"
  )"));
  EXPECT_FALSE(mml_checks("let main () : unit = touch 3; ()"));
}

TEST(MmlTypecheck, SeqRequiresUnitOnLeft) {
  EXPECT_FALSE(mml_checks("let main () : unit = 1 + 1; ()"));
  EXPECT_TRUE(mml_checks("let main () : unit = print \"x\"; ()"));
}

TEST(MmlTypecheck, RecRequiredForSelfCall) {
  EXPECT_FALSE(mml_checks(
      "let f (n : int) : int = f (n - 1)\nlet main () : unit = ()"));
  EXPECT_TRUE(mml_checks(
      "let rec f (n : int) : int = if n = 0 then 0 else f (n - 1)\n"
      "let main () : unit = ()"));
}

TEST(MmlTypecheck, BranchesMustAgree) {
  EXPECT_FALSE(mml_checks(
      "let main () : unit = let x = if true then 1 else \"s\" in ()"));
  EXPECT_FALSE(mml_checks(R"(
    let f (xs : int list) : int =
      match xs with | [] -> 0 | x :: r -> "s"
    let main () : unit = ()
  )"));
}

TEST(MmlTypecheck, NoFutureReturnsOrLists) {
  EXPECT_FALSE(mml_checks(
      "let f () : int future = newfut ()\nlet main () : unit = ()"));
  EXPECT_FALSE(mml_checks(
      "let f (l : int future list) : unit = ()\nlet main () : unit = ()"));
}

TEST(MmlTypecheck, MainShape) {
  EXPECT_FALSE(mml_checks("let f () : unit = ()"));
  EXPECT_FALSE(mml_checks("let main (x : int) : unit = ()"));
  EXPECT_FALSE(mml_checks("let main () : int = 3"));
}

// --- inference + detection ---------------------------------------------------

constexpr const char* kMmlDac = R"(
let rec dac (n : int) : int =
  if n < 2 then n
  else
    let h : int future = newfut () in
    spawn h (dac (n - 1));
    let right = dac (n - 2) in
    let left = touch h in
    left + right

let main () : unit = print (string_of_int (dac 10))
)";

TEST(MmlInfer, DivideAndConquerAcceptedWithNewPushing) {
  const mml::CompiledMml compiled = compile_mml_or_throw(kMmlDac);
  const GTypePtr g = compiled.inferred.program_gtype;
  EXPECT_TRUE(check_wellformed(g).ok);
  DetectOptions no_push;
  no_push.new_pushing = false;
  EXPECT_FALSE(check_deadlock_freedom(g, no_push).deadlock_free);
  EXPECT_TRUE(check_deadlock_freedom(g).deadlock_free);
}

TEST(MmlInfer, CrossTouchDeadlockRejected) {
  const mml::CompiledMml compiled = compile_mml_or_throw(R"(
    let main () : unit =
      let a : int future = newfut () in
      let b : int future = newfut () in
      spawn a (touch b);
      spawn b (touch a);
      ()
  )");
  EXPECT_FALSE(
      check_deadlock_freedom(compiled.inferred.program_gtype).deadlock_free);
}

TEST(MmlInfer, CounterexampleRejected) {
  // §3's program, in its (near-)original OCaml-flavoured form.
  const mml::CompiledMml compiled = compile_mml_or_throw(R"(
    let rec g (a : int future) (x : int future) : unit =
      let u : int future = newfut () in
      if rand () = 0 then ()
      else
        let y = touch x in
        spawn a 42;
        g u u

    let main () : unit =
      let u1 : int future = newfut () in
      let u2 : int future = newfut () in
      spawn u2 42;
      g u1 u2
  )");
  const auto& info = compiled.inferred.functions.at(Symbol::intern("g"));
  EXPECT_EQ(info.iterations, 2u);
  EXPECT_FALSE(
      check_deadlock_freedom(compiled.inferred.program_gtype).deadlock_free);
}

TEST(MmlInfer, MatchDrivenPipelineAccepted) {
  const mml::CompiledMml compiled = compile_mml_or_throw(R"(
    let rec pipe (xs : int list) (prev : int future) : int =
      match xs with
      | [] -> touch prev
      | x :: rest ->
        let next : int future = newfut () in
        spawn next (touch prev + x);
        pipe rest next

    let main () : unit =
      let src : int future = newfut () in
      spawn src 0;
      print (string_of_int (pipe (range 1 10) src))
  )");
  const auto& info = compiled.inferred.functions.at(Symbol::intern("pipe"));
  EXPECT_EQ(info.touch_vertex_params().size(), 1u);
  EXPECT_TRUE(
      check_deadlock_freedom(compiled.inferred.program_gtype).deadlock_free);
}

TEST(MmlInfer, OpaqueBranchFutureRejected) {
  DiagnosticEngine diags;
  auto compiled = compile_mml(R"(
    let main () : unit =
      let a : int future = newfut () in
      let b : int future = newfut () in
      let h = if rand () = 0 then a else b in
      spawn h 1;
      spawn a 1;
      ()
  )",
                              diags);
  EXPECT_FALSE(compiled.has_value());
  EXPECT_NE(diags.render().find("statically identify"), std::string::npos);
}

// --- THE language-agnosticism test -------------------------------------------

TEST(LanguageAgnostic, FutLangAndMiniMlInferAlphaEqualTypes) {
  // The same divide-and-conquer algorithm written in both languages.
  const char* futlang = R"(
    fun dac(n: int) -> int {
      if n < 2 {
        return n;
      } else {
        let h = new_future[int]();
        spawn h { return dac(n - 1); }
        let right = dac(n - 2);
        let left = touch(h);
        return left + right;
      }
    }
    fun main() { let x = dac(10); }
  )";
  const CompiledProgram from_futlang = compile_futlang_or_throw(futlang);
  const mml::CompiledMml from_mml = compile_mml_or_throw(kMmlDac);

  const auto& fl = from_futlang.inferred.functions.at(Symbol::intern("dac"));
  const auto& ml = from_mml.inferred.functions.at(Symbol::intern("dac"));
  EXPECT_TRUE(alpha_equal(*fl.gtype, *ml.gtype))
      << "futlang: " << to_string(fl.gtype)
      << "\nminiml:  " << to_string(ml.gtype);

  // And the detector, which never sees source code, agrees on both.
  EXPECT_EQ(
      check_deadlock_freedom(from_futlang.inferred.program_gtype)
          .deadlock_free,
      check_deadlock_freedom(from_mml.inferred.program_gtype).deadlock_free);
}

TEST(LanguageAgnostic, CrossLanguageCounterexampleTypesMatch) {
  const CompiledProgram futlang = compile_futlang_or_throw(R"(
    fun g(a: future[int], x: future[int]) {
      let u = new_future[int]();
      if rand() == 0 {
        return;
      } else {
        touch(x);
        spawn a { return 42; }
        g(u, u);
        return;
      }
    }
    fun main() {
      let u1 = new_future[int]();
      let u2 = new_future[int]();
      spawn u2 { return 42; }
      g(u1, u2);
    }
  )");
  const mml::CompiledMml miniml = compile_mml_or_throw(R"(
    let rec g (a : int future) (x : int future) : unit =
      let u : int future = newfut () in
      if rand () = 0 then ()
      else
        let y = touch x in
        spawn a 42;
        g u u

    let main () : unit =
      let u1 : int future = newfut () in
      let u2 : int future = newfut () in
      spawn u2 42;
      g u1 u2
  )");
  EXPECT_TRUE(alpha_equal(*futlang.inferred.program_gtype,
                          *miniml.inferred.program_gtype))
      << "futlang: " << to_string(futlang.inferred.program_gtype)
      << "\nminiml:  " << to_string(miniml.inferred.program_gtype);
}

}  // namespace
}  // namespace gtdl
