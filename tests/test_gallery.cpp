// Qualitative gallery — the paper's §5 claim that the analysis "is not
// overly restrictive", exercised over a spread of realistic future-usage
// patterns. Each entry is a small FutLang program with its expected
// properties: does it actually deadlock (ground truth by execution), and
// does the kind system accept it?
//
// Accepted programs must be genuinely deadlock-free (soundness); the two
// deliberate false positives at the bottom document the analysis'
// conservatism (a sound static analysis must reject SOME safe programs —
// the paper: "there will naturally be some programs that are valid under
// transitive joins ... but cannot be guaranteed so by our static
// analysis").

#include <gtest/gtest.h>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"

namespace gtdl {
namespace {

struct GalleryCase {
  const char* name;
  const char* source;
  bool deadlocks;      // ground truth under execution
  bool accepted;       // kind-system verdict
  std::vector<std::int64_t> rand_script;
};

class Gallery : public ::testing::TestWithParam<GalleryCase> {};

TEST_P(Gallery, VerdictAndGroundTruth) {
  const GalleryCase& c = GetParam();
  DiagnosticEngine diags;
  auto compiled = compile_futlang(c.source, diags);
  ASSERT_TRUE(compiled.has_value()) << c.name << "\n" << diags.render();

  const DeadlockVerdict verdict =
      check_deadlock_freedom(compiled->inferred.program_gtype);
  EXPECT_EQ(verdict.deadlock_free, c.accepted)
      << c.name << "\n" << verdict.diags.render();

  InterpOptions options;
  options.rand_script = c.rand_script;
  const InterpResult run = interpret(compiled->program, options);
  ASSERT_FALSE(run.error.has_value()) << c.name << ": " << *run.error;
  EXPECT_EQ(run.deadlock.has_value(), c.deadlocks) << c.name;

  // Soundness invariant of the whole gallery: accepted => no deadlock.
  if (c.accepted) {
    EXPECT_FALSE(c.deadlocks) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, Gallery,
    ::testing::Values(
        GalleryCase{
            "FanOutFanIn",
            R"(fun main() {
                 let a = new_future[int]();
                 let b = new_future[int]();
                 let c = new_future[int]();
                 spawn a { return 1; }
                 spawn b { return 2; }
                 spawn c { return 3; }
                 print(int_to_string(touch(a) + touch(b) + touch(c)));
               })",
            false, true, {}},
        GalleryCase{
            "NestedSpawns",
            R"(fun main() {
                 let outer = new_future[int]();
                 spawn outer {
                   let inner = new_future[int]();
                   spawn inner { return 21; }
                   return touch(inner) * 2;
                 }
                 print(int_to_string(touch(outer)));
               })",
            false, true, {}},
        GalleryCase{
            "HandleHandoffToChild",
            // The child receives a handle its parent spawned: the TJ
            // inheritance pattern.
            R"(fun reader(src: future[int]) -> int {
                 return touch(src) + 1;
               }
               fun main() {
                 let src = new_future[int]();
                 spawn src { return 10; }
                 let mid = new_future[int]();
                 spawn mid { return reader(src); }
                 print(int_to_string(touch(mid)));
               })",
            false, true, {}},
        GalleryCase{
            "SpawnInsideChildTouchedByParent",
            // The future body spawns a sibling the parent later touches:
            // sound thanks to DF:SEQ reading the spawn node's full
            // consumption.
            R"(fun main() {
                 let carrier = new_future[int]();
                 let cargo = new_future[int]();
                 spawn carrier {
                   spawn cargo { return 5; }
                   return 1;
                 }
                 print(int_to_string(touch(carrier) + touch(cargo)));
               })",
            false, true, {}},
        GalleryCase{
            "ConditionalTouch",
            // Touching only on one branch is fine (touches are
            // unrestricted once the spawn is to the left).
            R"(fun main() {
                 let h = new_future[int]();
                 spawn h { return 9; }
                 if rand() == 0 {
                   print(int_to_string(touch(h)));
                 } else {
                   print("skipped");
                 }
               })",
            false, true, {1}},
        GalleryCase{
            "RepeatedTouch",
            R"(fun main() {
                 let h = new_future[int]();
                 spawn h { return 4; }
                 let a = touch(h);
                 let b = touch(h);
                 print(int_to_string(a + b));
               })",
            false, true, {}},
        GalleryCase{
            "DeepRecursionChain",
            R"(fun chain(n: int, prev: future[int]) -> int {
                 if n == 0 {
                   return touch(prev);
                 } else {
                   let next = new_future[int]();
                   spawn next { return touch(prev) + 1; }
                   return chain(n - 1, next);
                 }
               }
               fun main() {
                 let seed = new_future[int]();
                 spawn seed { return 0; }
                 print(int_to_string(chain(50, seed)));
               })",
            false, true, {}},
        GalleryCase{
            "SelfTouchDeadlock",
            R"(fun main() {
                 let h = new_future[int]();
                 spawn h { return touch(h); }
                 let v = touch(h);
               })",
            true, false, {}},
        GalleryCase{
            "ForgottenSpawn",
            R"(fun main() {
                 let h = new_future[int]();
                 if rand() == 0 {
                   spawn h { return 1; }
                 } else {
                 }
                 let v = touch(h);
               })",
            true, false, {1}},  // else branch: nobody spawns h
        GalleryCase{
            "ThreeWayCycle",
            R"(fun main() {
                 let a = new_future[int]();
                 let b = new_future[int]();
                 let c = new_future[int]();
                 spawn a { return touch(b); }
                 spawn b { return touch(c); }
                 spawn c { return touch(a); }
               })",
            true, false, {}},
        // --- documented conservatism (false positives) ---
        GalleryCase{
            "FalsePositive_TouchBeforeLaterSpawnByOtherThread",
            // Dynamically fine under the lazy schedule (and under any
            // fair parallel one: the spawn of h is unconditional), but
            // the touch inside `waiter` precedes h's spawn in program
            // order, which the left-to-right Ψ discipline cannot order.
            R"(fun main() {
                 let h = new_future[int]();
                 let waiter = new_future[int]();
                 spawn waiter { return touch(h) + 1; }
                 spawn h { return 10; }
                 print(int_to_string(touch(waiter)));
               })",
            false, false, {}},
        GalleryCase{
            "FalsePositive_BranchDependentSpawnSite",
            // Both branches spawn h, but one of them touches it first on
            // the other side of the alternation's join; linearity makes
            // the branches equal, yet the touch of w sits before w's
            // spawn on one path only dynamically resolved as safe.
            R"(fun main() {
                 let h = new_future[int]();
                 let w = new_future[int]();
                 spawn w { return touch(h); }
                 spawn h { return 2; }
                 print(int_to_string(touch(w)));
               })",
            false, false, {}}));

}  // namespace
}  // namespace gtdl
