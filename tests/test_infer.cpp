// Tests for graph type inference — GML fidelity, including ν-hoisting and
// the 2-round Mycroft cap of paper footnote 3.

#include <gtest/gtest.h>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/wellformed.hpp"

namespace gtdl {
namespace {

constexpr const char* kDivideAndConquer = R"(
fun dac(n: int) -> int {
  if n < 2 {
    return n;
  } else {
    let h = new_future[int]();
    spawn h { return dac(n - 1); }
    let right = dac(n - 2);
    let left = touch(h);
    return left + right;
  }
}
fun main() {
  let x = dac(10);
  print(int_to_string(x));
}
)";

TEST(Infer, StraightLineProgram) {
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 42; }
      let v = touch(h);
    }
  )");
  // new u. (1/u ; ~u), with ν hoisted and fresh-named.
  const GTypePtr g = c.inferred.program_gtype;
  const auto* nu = std::get_if<GTNew>(&g->node);
  ASSERT_NE(nu, nullptr);
  EXPECT_TRUE(check_wellformed(g).ok);
  EXPECT_TRUE(check_deadlock_freedom(g).deadlock_free);
}

GTypePtr parse_paper_shape();

TEST(Infer, DivideAndConquerMatchesPaperShape) {
  const CompiledProgram c = compile_futlang_or_throw(kDivideAndConquer);
  const auto& info = c.inferred.functions.at(Symbol::intern("dac"));
  EXPECT_TRUE(info.recursive);
  EXPECT_TRUE(info.future_params.empty());
  // μγ.νu.(• ∨ (γ/u ⊕ γ ⊕ ᵘ\)) — the §2.3 example, with GML's hoisted ν.
  const GTypePtr expected = parse_paper_shape();
  EXPECT_TRUE(alpha_equal(*info.gtype, *expected))
      << "inferred: " << to_string(info.gtype);
  EXPECT_TRUE(check_wellformed(info.gtype).ok);
}

TEST(Infer, DivideAndConquerNeedsNewPushingToPass) {
  const CompiledProgram c = compile_futlang_or_throw(kDivideAndConquer);
  DetectOptions no_push;
  no_push.new_pushing = false;
  EXPECT_FALSE(check_deadlock_freedom(c.inferred.program_gtype, no_push)
                   .deadlock_free);
  EXPECT_TRUE(
      check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

TEST(Infer, ParamClassificationSpawnAndTouch) {
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun worker(a: future[int], x: future[int]) {
      spawn a { return 1; }
      let v = touch(x);
    }
    fun main() {
      let p = new_future[int]();
      let q = new_future[int]();
      spawn q { return 0; }
      worker(p, q);
      let r = touch(p);
    }
  )");
  const auto& info = c.inferred.functions.at(Symbol::intern("worker"));
  ASSERT_EQ(info.future_params.size(), 2u);
  EXPECT_TRUE(info.usage[0].spawned);
  EXPECT_FALSE(info.usage[0].touched);
  EXPECT_FALSE(info.usage[1].spawned);
  EXPECT_TRUE(info.usage[1].touched);
  EXPECT_TRUE(check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

TEST(Infer, SpawnedAndTouchedParamBindsAsSpawnOnly) {
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun both(p: future[int]) {
      spawn p { return 1; }
      let v = touch(p);
    }
    fun main() {
      let h = new_future[int]();
      both(h);
    }
  )");
  const auto& info = c.inferred.functions.at(Symbol::intern("both"));
  EXPECT_TRUE(info.usage[0].spawned);
  EXPECT_TRUE(info.usage[0].touched);
  EXPECT_EQ(info.spawn_vertex_params().size(), 1u);
  EXPECT_TRUE(info.touch_vertex_params().empty());
  EXPECT_TRUE(check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

TEST(Infer, TransitiveClassificationThroughCalls) {
  // outer's param flows into worker's spawn position: outer must classify
  // it as spawned even though outer never spawns directly.
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun worker(a: future[int]) {
      spawn a { return 1; }
    }
    fun outer(p: future[int]) {
      worker(p);
    }
    fun main() {
      let h = new_future[int]();
      outer(h);
      let v = touch(h);
    }
  )");
  const auto& info = c.inferred.functions.at(Symbol::intern("outer"));
  EXPECT_TRUE(info.usage[0].spawned);
  EXPECT_TRUE(check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

TEST(Infer, CounterexampleM1InfersWithDefaultCap) {
  DiagnosticEngine diags;
  auto c = compile_futlang(counterexample_futlang(1), diags);
  ASSERT_TRUE(c.has_value()) << diags.render();
  const auto& info = c->inferred.functions.at(Symbol::intern("g"));
  EXPECT_EQ(info.iterations, 2u);
  // The inferred whole-program type is rejected by the deadlock system...
  EXPECT_FALSE(
      check_deadlock_freedom(c->inferred.program_gtype).deadlock_free);
  // ...and matches the hand-built §3 type structurally.
  EXPECT_TRUE(check_wellformed(c->inferred.program_gtype).ok);
}

TEST(Infer, CounterexampleM2FailsAtGmlCap) {
  // Paper footnote 3: GML cannot infer the extended counterexample —
  // the type does not reach a fixed point within two iterations.
  DiagnosticEngine diags;
  auto c = compile_futlang(counterexample_futlang(2), diags);
  EXPECT_FALSE(c.has_value());
  EXPECT_NE(diags.render().find("fixed point"), std::string::npos);
}

TEST(Infer, CounterexampleM2InfersWithRaisedCap) {
  DiagnosticEngine diags;
  InferOptions options;
  options.max_signature_iterations = 4;
  auto c = compile_futlang(counterexample_futlang(2), diags, options);
  ASSERT_TRUE(c.has_value()) << diags.render();
  EXPECT_FALSE(
      check_deadlock_freedom(c->inferred.program_gtype).deadlock_free);
}

TEST(Infer, CounterexampleFamilyIterationsGrowWithM) {
  for (unsigned m = 1; m <= 3; ++m) {
    DiagnosticEngine diags;
    InferOptions options;
    options.max_signature_iterations = m + 2;
    auto c = compile_futlang(counterexample_futlang(m), diags, options);
    ASSERT_TRUE(c.has_value()) << "m=" << m << "\n" << diags.render();
    const auto& info = c->inferred.functions.at(Symbol::intern("g"));
    EXPECT_EQ(info.iterations, m + 1) << "m=" << m;
  }
}

TEST(Infer, WhileLoopRejected) {
  DiagnosticEngine diags;
  auto c = compile_futlang("fun main() { while true { } }", diags);
  EXPECT_FALSE(c.has_value());
  EXPECT_NE(diags.render().find("while"), std::string::npos);
}

TEST(Infer, EarlyReturnRejected) {
  DiagnosticEngine diags;
  auto c = compile_futlang(R"(
    fun main() {
      return;
      let x = 1;
    }
  )",
                           diags);
  EXPECT_FALSE(c.has_value());
  EXPECT_NE(diags.render().find("last statement"), std::string::npos);
}

TEST(Infer, ReturningIfMustBeLast) {
  DiagnosticEngine diags;
  auto c = compile_futlang(R"(
    fun main() {
      if true { return; } else { }
      let x = 1;
    }
  )",
                           diags);
  EXPECT_FALSE(c.has_value());
}

TEST(Infer, MutualRecursionRejected) {
  DiagnosticEngine diags;
  auto c = compile_futlang(R"(
    fun even(n: int) -> bool { return odd(n - 1); }
    fun odd(n: int) -> bool { return even(n - 1); }
    fun main() { }
  )",
                           diags);
  EXPECT_FALSE(c.has_value());
  EXPECT_NE(diags.render().find("declared before"), std::string::npos);
}

TEST(Infer, OpaqueFutureRejected) {
  // Reassigning a handle variable under a conditional merges two futures.
  DiagnosticEngine diags;
  auto c = compile_futlang(R"(
    fun main() {
      let a = new_future[int]();
      let b = new_future[int]();
      let h = a;
      if rand() == 0 { h = b; } else { }
      spawn h { return 1; }
      spawn a { return 1; }
      let v = touch(h);
    }
  )",
                           diags);
  EXPECT_FALSE(c.has_value());
  EXPECT_NE(diags.render().find("statically identify"), std::string::npos);
}

TEST(Infer, HandleFlowsThroughVariables) {
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun main() {
      let a = new_future[int]();
      let alias = a;
      spawn alias { return 7; }
      let v = touch(a);
    }
  )");
  EXPECT_TRUE(check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

TEST(Infer, NonRecursiveCalleeInlined) {
  const CompiledProgram c = compile_futlang_or_throw(R"(
    fun helper() {
      let h = new_future[int]();
      spawn h { return 3; }
      let v = touch(h);
    }
    fun main() {
      helper();
      helper();
    }
  )");
  // Each call site inlines helper's graph; its ν must instantiate freshly
  // per call, so the program type stays well-formed.
  EXPECT_TRUE(check_wellformed(c.inferred.program_gtype).ok);
  EXPECT_TRUE(check_deadlock_freedom(c.inferred.program_gtype).deadlock_free);
}

// Paper §2.3 example shape for the divide-and-conquer test above.
GTypePtr parse_paper_shape() {
  const Symbol g = Symbol::intern("zz_g");
  const Symbol u = Symbol::intern("zz_u");
  return gt::rec(
      g, gt::nu(u, gt::alt(gt::empty(),
                           gt::seq_all({gt::spawn(gt::var(g), u), gt::var(g),
                                        gt::touch(u)}))));
}

}  // namespace
}  // namespace gtdl
