// Tests for the observability layer (src/gtdl/obs/): gating semantics,
// registry behavior, exact counter values for hand-traced workloads,
// Chrome-trace JSON structure, and data-race freedom when engine/pool
// threads mutate the registry concurrently (this suite runs under the
// TSan CI job alongside test_intern/test_parallel).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"

namespace gtdl {
namespace {

// Every test leaves the process-global flags the way it found them
// (other suites in this binary must not observe stats/trace on).
class ObsFlagGuard {
 public:
  ObsFlagGuard()
      : stats_(obs::stats_enabled()), trace_(obs::trace_enabled()) {}
  ~ObsFlagGuard() {
    obs::set_stats_enabled(stats_);
    obs::set_trace_enabled(trace_);
  }

 private:
  bool stats_;
  bool trace_;
};

obs::Counter& named_counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(
      obs::MetricDesc{name, "test", "events", "test counter"});
}

// Reads an already-registered production counter by its catalog name.
std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::instance()
      .counter(obs::MetricDesc{name, "", "", ""})
      .get();
}

TEST(ObsMetrics, CounterGatedByGlobalFlag) {
  ObsFlagGuard guard;
  obs::Counter& c = named_counter("test.obs.gated_counter");
  c.reset();

  obs::set_stats_enabled(false);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 0u) << "disabled counters must not move";
  c.force_add(5);
  EXPECT_EQ(c.get(), 5u) << "force_add bypasses the gate";

  obs::set_stats_enabled(true);
  c.add();
  c.add(4);
  EXPECT_EQ(c.get(), 10u);
}

TEST(ObsMetrics, HistogramGatingAndBuckets) {
  ObsFlagGuard guard;
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h = reg.histogram(obs::MetricDesc{
      "test.obs.gated_histogram", "test", "events", "test histogram"});
  h.reset();

  obs::set_stats_enabled(false);
  h.observe(7);
  EXPECT_EQ(h.count(), 0u);

  obs::set_stats_enabled(true);
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_of(0)), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_of(1)), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_of(2)), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_of(1000)), 1u);

  // Log2 bucket geometry: 0 | 1 | 2-3 | 4-7 | ...
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_bound(3), 7u);
}

TEST(ObsMetrics, RegistryFindOrRegisterIsStable) {
  obs::Counter& a = named_counter("test.obs.same_name");
  obs::Counter& b = named_counter("test.obs.same_name");
  EXPECT_EQ(&a, &b) << "same name must resolve to the same instrument";

  // Re-registering an existing name as a different instrument type is a
  // catalog bug and must fail loudly.
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_THROW(reg.gauge(obs::MetricDesc{"test.obs.same_name", "test", "",
                                         ""}),
               std::logic_error);
}

TEST(ObsMetrics, RenderTextGroupsByLayerAndElidesZeroes) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);
  obs::Counter& c = named_counter("test.obs.render_me");
  c.reset();
  c.add(3);
  named_counter("test.obs.stay_zero").reset();

  auto& reg = obs::MetricsRegistry::instance();
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("[test]"), std::string::npos);
  EXPECT_NE(text.find("test.obs.render_me = 3"), std::string::npos);
  EXPECT_EQ(text.find("test.obs.stay_zero"), std::string::npos)
      << "zero-valued counters are elided by default";
  EXPECT_NE(reg.render_text(true).find("test.obs.stay_zero"),
            std::string::npos);

  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"test.obs.render_me\": 3"), std::string::npos);
}

// Hand-traced: one check_deadlock_freedom call bumps detect.checks by
// exactly one and exactly one of accepts/rejects, independent of any
// memoization underneath.
TEST(ObsMetrics, HandTracedDetectCounters) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);

  const std::uint64_t checks0 = counter_value("detect.checks");
  const std::uint64_t accepts0 = counter_value("detect.accepts");
  const std::uint64_t rejects0 = counter_value("detect.rejects");

  EXPECT_TRUE(check_deadlock_freedom(
                  parse_gtype_or_throw("new u. 1 / u ; ~u"))
                  .deadlock_free);
  EXPECT_EQ(counter_value("detect.checks"), checks0 + 1);
  EXPECT_EQ(counter_value("detect.accepts"), accepts0 + 1);
  EXPECT_EQ(counter_value("detect.rejects"), rejects0);

  EXPECT_FALSE(check_deadlock_freedom(
                   parse_gtype_or_throw("new u. ~u ; 1 / u"))
                   .deadlock_free);
  EXPECT_EQ(counter_value("detect.checks"), checks0 + 2);
  EXPECT_EQ(counter_value("detect.accepts"), accepts0 + 1);
  EXPECT_EQ(counter_value("detect.rejects"), rejects0 + 1);
}

// Hand-traced: the canonical-schedule interpreter forces each spawned
// future exactly once and counts every touch expression it executes.
TEST(ObsMetrics, HandTracedInterpCounters) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);

  Program program = parse_program_or_throw(R"(
    fun main() {
      let a = new_future[int]();
      let b = new_future[int]();
      spawn a { return 1; }
      spawn b { return touch(a) + 1; }
      print(int_to_string(touch(b) + touch(a)));
    }
  )");
  DiagnosticEngine diags;
  ASSERT_TRUE(typecheck_program(program, diags)) << diags.render();

  const std::uint64_t runs0 = counter_value("runtime.interp.executions");
  const std::uint64_t forced0 =
      counter_value("runtime.interp.futures_forced");
  const std::uint64_t touches0 = counter_value("runtime.interp.touches");
  const std::uint64_t deadlocks0 =
      counter_value("runtime.interp.deadlocks");

  const InterpResult r = interpret(program, {});
  ASSERT_TRUE(r.completed) << r.error.value_or("") + r.deadlock.value_or("");
  EXPECT_EQ(r.output, "3\n");

  EXPECT_EQ(counter_value("runtime.interp.executions"), runs0 + 1);
  // Two futures, each forced once — the second touch of `a` finds it
  // already done.
  EXPECT_EQ(counter_value("runtime.interp.futures_forced"), forced0 + 2);
  // Three touch expressions execute: touch(b), touch(a) in main, and
  // touch(a) inside b's body.
  EXPECT_EQ(counter_value("runtime.interp.touches"), touches0 + 3);
  EXPECT_EQ(counter_value("runtime.interp.deadlocks"), deadlocks0);
}

TEST(ObsMetrics, CorpusErrorCounterAndReport) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);
  const std::uint64_t errors0 = counter_value("corpus.errors");

  const FileReport report =
      analyze_file("/nonexistent/definitely_missing.fut", {}, nullptr);
  EXPECT_EQ(report.exit_code, 2);
  EXPECT_NE(report.text.find("cannot open"), std::string::npos);
  EXPECT_EQ(counter_value("corpus.errors"), errors0 + 1);
}

// --- trace ------------------------------------------------------------

// Scans JSON for balanced braces/brackets outside string literals — the
// cheap in-process "parses" check (CI additionally json.load()s real
// fdlc trace output).
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

std::string rendered_trace() {
  std::ostringstream out;
  obs::write_chrome_trace(out);
  return out.str();
}

TEST(ObsTrace, DisabledEmitsNothing) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(false);
  obs::trace_clear();
  {
    obs::Span span("test", "should_not_appear");
    obs::emit_instant("test", "also_not");
  }
  const std::string json = rendered_trace();
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(json.find("also_not"), std::string::npos);
}

TEST(ObsTrace, SpanEmitsCompleteEventAndJsonIsBalanced) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::trace_clear();
  {
    obs::Span outer("test", "outer_span");
    {
      obs::Span inner("test", std::string("inner \"quoted\" span"));
    }
    obs::emit_instant("test", "marker");
  }
  obs::set_trace_enabled(false);
  const std::string json = rendered_trace();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner \\\"quoted\\\" span\""),
            std::string::npos)
      << "quotes in dynamic span names must be escaped";
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  obs::trace_clear();
}

// Nesting in the Chrome trace format is implicit: a viewer nests event B
// under A iff [ts_B, ts_B+dur_B] lies inside [ts_A, ts_A+dur_A] on the
// same tid. Emit events with pinned timestamps and verify the writer
// preserves interval containment exactly (µs with three decimals).
TEST(ObsTrace, PinnedTimestampsNestByContainment) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::trace_clear();
  obs::emit_complete("test", "outer_pinned", 1'000, 100'000);
  obs::emit_complete("test", "inner_pinned", 2'500, 1'000);
  obs::set_trace_enabled(false);
  const std::string json = rendered_trace();

  const std::regex event_re(
      "\\{\"name\": \"(\\w+)\", [^}]*\"ts\": ([0-9.]+), "
      "\"dur\": ([0-9.]+)\\}");
  double outer_ts = -1, outer_end = -1, inner_ts = -1, inner_end = -1;
  for (std::sregex_iterator it(json.begin(), json.end(), event_re), end;
       it != end; ++it) {
    const double ts = std::stod((*it)[2]);
    const double end_ts = ts + std::stod((*it)[3]);
    if ((*it)[1] == "outer_pinned") {
      outer_ts = ts;
      outer_end = end_ts;
    } else if ((*it)[1] == "inner_pinned") {
      inner_ts = ts;
      inner_end = end_ts;
    }
  }
  ASSERT_GE(outer_ts, 0) << json;
  ASSERT_GE(inner_ts, 0) << json;
  EXPECT_DOUBLE_EQ(outer_ts, 1.0);     // 1000 ns = 1.000 µs
  EXPECT_DOUBLE_EQ(inner_ts, 2.5);     // 2500 ns = 2.500 µs
  EXPECT_DOUBLE_EQ(inner_end, 3.5);
  EXPECT_DOUBLE_EQ(outer_end, 101.0);
  EXPECT_GT(inner_ts, outer_ts);
  EXPECT_LT(inner_end, outer_end);
  obs::trace_clear();
}

// --- concurrency (the TSan job runs this binary) ----------------------

TEST(ObsConcurrency, RegistryIsRaceFreeUnderDirectHammering) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);
  obs::set_trace_enabled(true);
  obs::trace_clear();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5'000;
  obs::Counter& shared = named_counter("test.obs.hammered");
  shared.reset();
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& hist = reg.histogram(obs::MetricDesc{
      "test.obs.hammered_hist", "test", "events", "race test"});

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.add();
        hist.observe(static_cast<std::uint64_t>(i));
        if (i % 512 == 0) {
          // Concurrent registration of fresh names while others mutate.
          reg.counter(obs::MetricDesc{
              "test.obs.race." + std::to_string(t) + "." +
                  std::to_string(i),
              "test", "events", "registered mid-race"});
          obs::emit_instant("test", "hammer");
        }
      }
    });
  }
  go.store(true);
  // Snapshot + render while the workers mutate: the reader side of the
  // race test.
  for (int i = 0; i < 20; ++i) {
    (void)reg.snapshot();
    (void)reg.render_json();
    (void)rendered_trace();
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(shared.get(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  obs::set_trace_enabled(false);
  obs::trace_clear();
}

TEST(ObsConcurrency, EngineThreadsMutateRegistryRaceFree) {
  ObsFlagGuard guard;
  obs::set_stats_enabled(true);
  obs::set_trace_enabled(true);
  obs::trace_clear();

  // Real instrumented code paths from pool threads: the engine's fork
  // guards, the pool's queue counters, and the corpus driver's spans all
  // fire concurrently here.
  const GTypePtr g = parse_gtype_or_throw(
      "new a. new b. 1 / a ; (~a) / b ; (~b | ~b ; ~a)");
  Engine engine(4);
  for (int i = 0; i < 4; ++i) {
    (void)engine.normalize(g, 6, {});
  }
  const std::string json = rendered_trace();
  EXPECT_TRUE(json_balanced(json)) << json;

  obs::set_trace_enabled(false);
  obs::trace_clear();
}

}  // namespace
}  // namespace gtdl
