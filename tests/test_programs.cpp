// End-to-end integration over the six §5 evaluation programs: compile
// (parse + typecheck + infer), run all three analyses, execute, and
// check everything against the paper's Table 1.
//
//   Program      DL?   Ours   GML baseline   Known Joins
//   Fibonacci    no    ok     ok             WRONG (rejects)
//   FibDL        yes   ok     ok             ok
//   Pipeline     no    ok     ok             ok
//   Counterex.   yes   ok     WRONG (accepts) ok
//   Webserver    no    ok     ok             ok
//   WebserverDL  yes   ok     ok             ok

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace gtdl {
namespace {

std::string read_program(const std::string& name) {
  const std::string path = std::string(GTDL_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ProgramCase {
  const char* file;
  bool has_deadlock;
  bool ours_accepts;      // deadlock-free verdict from the kind system
  bool gml_reports_dl;    // baseline's verdict
  bool kj_valid;          // Known Joins on the executed trace
  bool tj_valid;          // Transitive Joins on the executed trace
  // rand() script driving the execution toward the interesting schedule.
  std::vector<std::int64_t> rand_script;
};

class Table1 : public ::testing::TestWithParam<ProgramCase> {};

TEST_P(Table1, MatchesPaper) {
  const ProgramCase& pc = GetParam();
  const std::string source = read_program(pc.file);

  // Compile through the full frontend.
  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags);
  ASSERT_TRUE(compiled.has_value()) << pc.file << "\n" << diags.render();
  const GTypePtr gtype = compiled->inferred.program_gtype;
  ASSERT_TRUE(check_wellformed(gtype).ok) << pc.file;

  // Column "Ours": the deadlock-freedom kind system.
  const DeadlockVerdict ours = check_deadlock_freedom(gtype);
  EXPECT_EQ(ours.deadlock_free, pc.ours_accepts)
      << pc.file << "\n"
      << ours.diags.render() << "\ntype: " << to_string(gtype);
  // Soundness: accept => genuinely deadlock-free in this table.
  if (ours.deadlock_free) {
    EXPECT_FALSE(pc.has_deadlock) << pc.file;
  }

  // Column "GML": the unrolling baseline at its own default depth.
  const GmlBaselineReport gml = gml_baseline_check(gtype);
  EXPECT_EQ(gml.deadlock_reported, pc.gml_reports_dl)
      << pc.file << " unrolls=" << gml.unrolls_per_binding
      << " graphs=" << gml.graphs_checked << " witness=" << gml.witness;

  // Ground truth + column "Known Joins": execute and judge the trace.
  InterpOptions options;
  options.rand_script = pc.rand_script;
  const InterpResult run = interpret(compiled->program, options);
  ASSERT_FALSE(run.error.has_value()) << pc.file << ": " << *run.error;
  EXPECT_EQ(run.deadlock.has_value(), pc.has_deadlock)
      << pc.file << ": " << run.deadlock.value_or("(none)");
  EXPECT_EQ(run.graph_deadlock().any(), pc.has_deadlock) << pc.file;

  const TraceVerdict kj = check_known_joins(run.trace);
  EXPECT_EQ(kj.valid, pc.kj_valid) << pc.file << ": " << kj.reason;
  const TraceVerdict tj = check_transitive_joins(run.trace);
  EXPECT_EQ(tj.valid, pc.tj_valid) << pc.file << ": " << tj.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, Table1,
    ::testing::Values(
        // file            DL     ours   gmlDL  kj     tj     rand
        ProgramCase{"fibonacci.fut", false, true, false, false, true, {}},
        ProgramCase{"fib_dl.fut", true, false, true, false, false, {}},
        ProgramCase{"pipeline.fut", false, true, false, true, true, {}},
        ProgramCase{"counterex.fut", true, false, false, false, false,
                    {1, 1}},
        ProgramCase{"webserver.fut", false, true, false, true, true, {}},
        ProgramCase{"webserver_dl.fut", true, false, true, false, false,
                    {}}),
    [](const ::testing::TestParamInfo<ProgramCase>& info) {
      std::string name = info.param.file;
      name = name.substr(0, name.find('.'));
      return name;
    });

TEST(Programs, FibonacciComputesRightAnswer) {
  auto compiled = compile_futlang_or_throw(read_program("fibonacci.fut"));
  const InterpResult run = interpret(compiled.program);
  ASSERT_TRUE(run.completed) << run.deadlock.value_or("")
                             << run.error.value_or("");
  EXPECT_NE(run.output.find("fib(8) = 21"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("fib(7) = 13"), std::string::npos);
}

TEST(Programs, PipelineComputesRightAnswer) {
  auto compiled = compile_futlang_or_throw(read_program("pipeline.fut"));
  const InterpResult run = interpret(compiled.program);
  ASSERT_TRUE(run.completed);
  EXPECT_NE(run.output.find("pipeline total = 45"), std::string::npos)
      << run.output;
}

TEST(Programs, WebserverServesEveryRequest) {
  auto compiled = compile_futlang_or_throw(read_program("webserver.fut"));
  const InterpResult run = interpret(compiled.program);
  ASSERT_TRUE(run.completed) << run.deadlock.value_or("")
                             << run.error.value_or("");
  EXPECT_NE(run.output.find("accepted connections: 24"), std::string::npos);
  EXPECT_NE(run.output.find("log entries flushed: 24"), std::string::npos)
      << run.output;
  // One log line per request.
  std::size_t log_lines = 0;
  for (std::size_t pos = 0; (pos = run.output.find("] ", pos)) !=
                            std::string::npos;
       ++pos) {
    ++log_lines;
  }
  EXPECT_GE(log_lines, 24u);
}

TEST(Programs, CounterexampleSafeScheduleCompletes) {
  auto compiled = compile_futlang_or_throw(read_program("counterex.fut"));
  InterpOptions options;
  options.rand_script = {0};  // bail out before the cycle forms
  const InterpResult run = interpret(compiled.program, options);
  EXPECT_TRUE(run.completed) << run.deadlock.value_or("");
  EXPECT_FALSE(run.graph_deadlock().any());
}

TEST(Programs, InferredTypesHaveExpectedShapes) {
  auto ws = compile_futlang_or_throw(read_program("webserver.fut"));
  const auto& serve = ws.inferred.functions.at(Symbol::intern("serve"));
  EXPECT_TRUE(serve.recursive);
  // warm and log_prev are touch parameters; the handler/log futures are
  // ν-bound locals.
  EXPECT_EQ(serve.touch_vertex_params().size(), 2u);
  EXPECT_TRUE(serve.spawn_vertex_params().empty());

  auto fib = compile_futlang_or_throw(read_program("fibonacci.fut"));
  const auto& stage = fib.inferred.functions.at(Symbol::intern("fib_stage"));
  EXPECT_TRUE(stage.recursive);
  // `out` is spawned and touched: binds as a spawn parameter only.
  EXPECT_EQ(stage.spawn_vertex_params().size(), 1u);
  EXPECT_TRUE(stage.touch_vertex_params().empty());
}

}  // namespace
}  // namespace gtdl
