// Stress tests for the futures runtime: randomized acyclic dependency
// DAGs must always complete (under every policy that admits them), and
// randomized graphs WITH a planted cycle must always be detected —
// never a hang, never a wrong value.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "gtdl/runtime/futures.hpp"

namespace gtdl {
namespace {

// Builds n futures where future i touches a random subset of futures
// with SMALLER index (so the dependency graph is acyclic) and sums their
// values plus its own index. Returns the expected values.
std::vector<long> run_random_dag(FutureRuntime& rt, std::mt19937_64& rng,
                                 int n, std::vector<long>& actual) {
  std::vector<FutureHandle<long>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> deps(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(rt.new_future<long>("dag"));
    if (i > 0) {
      std::uniform_int_distribution<int> count(0, std::min(i, 3));
      std::uniform_int_distribution<int> which(0, i - 1);
      const int k = count(rng);
      for (int j = 0; j < k; ++j) {
        deps[static_cast<std::size_t>(i)].push_back(which(rng));
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    auto mine = deps[static_cast<std::size_t>(i)];
    std::vector<FutureHandle<long>> handles;
    handles.reserve(mine.size());
    for (int d : mine) handles.push_back(futures[static_cast<std::size_t>(d)]);
    futures[static_cast<std::size_t>(i)].spawn([i, handles]() mutable {
      long total = i;
      for (auto& h : handles) total += h.touch();
      return total;
    });
  }
  // Expected values by the same recurrence, computed sequentially.
  std::vector<long> expected(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    long total = i;
    for (int d : deps[static_cast<std::size_t>(i)]) {
      total += expected[static_cast<std::size_t>(d)];
    }
    expected[static_cast<std::size_t>(i)] = total;
  }
  actual.clear();
  for (auto& f : futures) actual.push_back(f.touch());
  return expected;
}

class RuntimeStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeStress, RandomAcyclicDagsComplete) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    FutureRuntime rt;
    std::vector<long> actual;
    const std::vector<long> expected = run_random_dag(rt, rng, 24, actual);
    EXPECT_EQ(actual, expected) << "seed " << GetParam() << " round "
                                << round;
    EXPECT_EQ(rt.stats().deadlocks_detected, 0u);
  }
}

TEST_P(RuntimeStress, RandomDagsUnderTransitiveJoins) {
  // Backward-only touches by the spawner's children are TJ-legal in this
  // construction (every handle a future touches was forked by main before
  // the touching future was forked).
  std::mt19937_64 rng(GetParam() + 7);
  RuntimeOptions options;
  options.policy = RuntimePolicy::kTransitiveJoins;
  FutureRuntime rt(options);
  std::vector<long> actual;
  const std::vector<long> expected = run_random_dag(rt, rng, 16, actual);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(rt.stats().policy_violations, 0u);
}

TEST_P(RuntimeStress, PlantedCycleIsAlwaysDetected) {
  std::mt19937_64 rng(GetParam() + 13);
  for (int round = 0; round < 4; ++round) {
    FutureRuntime rt;
    // A random-length cycle among k futures, plus some innocents hanging
    // off it.
    std::uniform_int_distribution<int> len(2, 5);
    const int k = len(rng);
    std::vector<FutureHandle<int>> ring;
    ring.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) ring.push_back(rt.new_future<int>("ring"));
    for (int i = 0; i < k; ++i) {
      auto next = ring[static_cast<std::size_t>((i + 1) % k)];
      ring[static_cast<std::size_t>(i)].spawn(
          [next]() mutable { return next.touch(); });
    }
    auto innocent = rt.new_future<int>("innocent");
    auto member = ring[0];
    innocent.spawn([member]() mutable { return member.touch(); });

    EXPECT_THROW((void)ring[0].touch(), DeadlockError)
        << "seed " << GetParam() << " round " << round << " k=" << k;
    EXPECT_THROW((void)innocent.touch(), DeadlockError);
    EXPECT_GE(rt.stats().deadlocks_detected, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace gtdl
