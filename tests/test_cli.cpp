// Smoke tests for the fdlc command-line driver: exit codes, the two
// input languages, graph-type literals, and option handling. These run
// the real binary (path injected by CMake).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_fdlc(const std::string& args,
                const std::string& env_prefix = std::string()) {
  const std::string command =
      env_prefix + std::string(GTDL_FDLC_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CliRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string program(const char* name) {
  return std::string(GTDL_PROGRAMS_DIR) + "/" + name;
}

TEST(Cli, AcceptsDeadlockFreeProgram) {
  const CliRun r = run_fdlc(program("pipeline.fut"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("DEADLOCK-FREE"), std::string::npos) << r.output;
}

TEST(Cli, RejectsCounterexampleAndShowsBaselineUnsoundness) {
  const CliRun r = run_fdlc(program("counterex.fut") + " --baseline");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("POSSIBLE DEADLOCK"), std::string::npos);
  EXPECT_NE(r.output.find("reports deadlock-free"), std::string::npos)
      << "the GML baseline should (wrongly) accept: " << r.output;
}

TEST(Cli, RunsProgramAndJudgesTrace) {
  const CliRun r =
      run_fdlc(program("counterex.fut") + " --run --rand 1,1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("DEADLOCKED"), std::string::npos);
  EXPECT_NE(r.output.find("transitive joins: INVALID"), std::string::npos);
}

TEST(Cli, AnalyzesMiniMlByExtension) {
  const CliRun r = run_fdlc(program("counterex.mml"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("MiniML"), std::string::npos);
  EXPECT_NE(r.output.find("POSSIBLE DEADLOCK"), std::string::npos);
}

TEST(Cli, GraphTypeLiteral) {
  const CliRun ok = run_fdlc("--gtype 'new u. 1 / u ; ~u'");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  const CliRun bad = run_fdlc("--gtype 'new u. ~u ; 1 / u'");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
}

TEST(Cli, NewPushToggle) {
  // Divide-and-conquer shape: rejected without new pushing.
  const std::string literal = "'rec g. new u. 1 | g / u ; g ; ~u'";
  EXPECT_EQ(run_fdlc("--gtype " + literal).exit_code, 0);
  EXPECT_EQ(run_fdlc("--gtype " + literal + " --no-new-push").exit_code, 1);
}

TEST(Cli, MaxItersLiftsInferenceCap) {
  // webserver compiles under the default cap already; use the m=2 family
  // member shipped in the test as a literal program via --gtype is not
  // possible, so check the flag is at least accepted.
  const CliRun r = run_fdlc(program("pipeline.fut") + " --max-iters 5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Cli, UsageErrors) {
  EXPECT_EQ(run_fdlc("").exit_code, 2);
  EXPECT_EQ(run_fdlc("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_fdlc("/nonexistent/path.fut").exit_code, 2);
  EXPECT_EQ(run_fdlc("--gtype '1 ; ;'").exit_code, 2);
}

// --- resource budgets (docs/ROBUSTNESS.md) --------------------------------

// Deadlock-FREE §3-style alternation family: u is spawned before its
// touch, and each of the n optional spawns doubles |Norm_1|. The kind
// system accepts it instantly; an exhaustive baseline scan must grind
// through all 2^n graphs — which is what a wall-clock deadline exists to
// interrupt.
std::string alternation_literal(unsigned n) {
  std::string news = "new u.";
  std::string body = "1/u";
  for (unsigned i = 1; i <= n; ++i) {
    news += " new v" + std::to_string(i) + ".";
    body += " ; (1 | 1/v" + std::to_string(i) + ")";
  }
  return news + " " + body + " ; ~u";
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(),
            static_cast<std::streamoff>(bytes.size()));
}

TEST(Cli, BudgetDeadlineYieldsUnknownExitThree) {
  const CliRun r = run_fdlc("--gtype '" + alternation_literal(20) +
                            "' --baseline --timeout-ms 500");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("UNKNOWN"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("deadline"), std::string::npos) << r.output;
  // The kind system's own verdict still finished — only the baseline
  // scan gave up.
  EXPECT_NE(r.output.find("DEADLOCK-FREE"), std::string::npos) << r.output;
}

TEST(Cli, BudgetStepQuotaYieldsUnknownExitThree) {
  const CliRun r = run_fdlc(
      "--gtype 'rec g. new u. 1 | g / u ; g ; ~u' --budget-steps 10");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("UNKNOWN"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("steps"), std::string::npos) << r.output;
}

TEST(Cli, BudgetVerdictIsByteIdenticalAcrossJobs) {
  const std::string args = "--gtype '" + alternation_literal(20) +
                           "' --baseline --timeout-ms 500 --jobs ";
  const CliRun one = run_fdlc(args + "1");
  const CliRun eight = run_fdlc(args + "8");
  EXPECT_EQ(one.exit_code, 3) << one.output;
  EXPECT_EQ(eight.exit_code, 3) << eight.output;
  EXPECT_EQ(one.output, eight.output);
}

TEST(Cli, JobsZeroMeansOneWorkerPerHardwareThread) {
  const CliRun r = run_fdlc("--gtype 'new u. 1 / u ; ~u' --jobs 0");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Cli, MaxItersZeroRejected) {
  const CliRun r = run_fdlc("--gtype '1' --max-iters 0");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--max-iters must be >= 1"), std::string::npos)
      << r.output;
}

// --- fault injection ------------------------------------------------------

TEST(Cli, FaultFlagIsContainedAsInternalError) {
  const CliRun r = run_fdlc("--gtype '1' --fault parse:1:1");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("injected fault at point 'parse'"),
            std::string::npos)
      << r.output;
}

TEST(Cli, FaultFlagRejectsMalformedSpec) {
  const CliRun r = run_fdlc("--gtype '1' --fault bogus");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("bad --fault"), std::string::npos) << r.output;
}

TEST(Cli, FaultEnvVarHonoredAndValidated) {
  const CliRun injected =
      run_fdlc("--gtype '1'", "GTDL_FAULT=parse:1:7 ");
  EXPECT_EQ(injected.exit_code, 2) << injected.output;
  EXPECT_NE(injected.output.find("injected fault"), std::string::npos)
      << injected.output;

  const CliRun bad = run_fdlc("--gtype '1'", "GTDL_FAULT=nope ");
  EXPECT_EQ(bad.exit_code, 2) << bad.output;
  EXPECT_NE(bad.output.find("bad GTDL_FAULT"), std::string::npos)
      << bad.output;
}

TEST(Cli, FaultInjectionIsDeterministicGivenSeed) {
  const std::string args = "--gtype '" + alternation_literal(4) +
                           "' --baseline --fault alloc:0.5:1234";
  const CliRun first = run_fdlc(args);
  const CliRun second = run_fdlc(args);
  EXPECT_EQ(first.exit_code, second.exit_code);
  EXPECT_EQ(first.output, second.output);
}

// --- malformed inputs (fuzz-found shapes) ---------------------------------

TEST(Cli, MalformedInputsRejectedWithDiagnostics) {
  // Truncated input: dies mid-token, must produce a located diagnostic.
  write_file("cli_fuzz_trunc.gt", "new u. 1 /");
  const CliRun trunc = run_fdlc("--gtype-file cli_fuzz_trunc.gt");
  EXPECT_EQ(trunc.exit_code, 2) << trunc.output;
  EXPECT_NE(trunc.output.find("error"), std::string::npos) << trunc.output;

  // Nesting past the parser's depth guard: must be the guard's
  // diagnostic, not a stack overflow.
  write_file("cli_fuzz_deep.gt",
             std::string(3000, '(') + "1" + std::string(3000, ')'));
  const CliRun deep = run_fdlc("--gtype-file cli_fuzz_deep.gt");
  EXPECT_EQ(deep.exit_code, 2) << deep.output;
  EXPECT_NE(deep.output.find("nested too deeply"), std::string::npos)
      << deep.output;

  // Non-UTF8 bytes where a name should be.
  write_file("cli_fuzz_bin.gt", "new \xff\xfe. 1\n");
  const CliRun bin = run_fdlc("--gtype-file cli_fuzz_bin.gt");
  EXPECT_EQ(bin.exit_code, 2) << bin.output;
  EXPECT_NE(bin.output.find("error"), std::string::npos) << bin.output;

  // The same garbage as a program file goes through the FutLang parser
  // and must fail just as cleanly.
  write_file("cli_fuzz_trunc.fut", "fun main() { let x = ");
  const CliRun fut = run_fdlc("cli_fuzz_trunc.fut");
  EXPECT_EQ(fut.exit_code, 2) << fut.output;
  EXPECT_NE(fut.output.find("error"), std::string::npos) << fut.output;

  std::remove("cli_fuzz_trunc.gt");
  std::remove("cli_fuzz_deep.gt");
  std::remove("cli_fuzz_bin.gt");
  std::remove("cli_fuzz_trunc.fut");
}

// --- runtime-trace ingestion (docs/TRACE_FORMAT.md) -----------------------

TEST(Cli, TraceGraphThenIngestReproducesDeadlockVerdict) {
  const std::string base = "cli_ingest_dl";
  const CliRun emit = run_fdlc(program("fib_dl.fut") + " --run --trace-graph " +
                               base);
  EXPECT_EQ(emit.exit_code, 1) << emit.output;
  EXPECT_NE(emit.output.find("wrote trace dump"), std::string::npos)
      << emit.output;

  const CliRun observe = run_fdlc("--ingest '" + base + ".*.json'");
  EXPECT_EQ(observe.exit_code, 1) << observe.output;
  EXPECT_NE(observe.output.find("DEADLOCK OBSERVED"), std::string::npos)
      << observe.output;
  EXPECT_NE(observe.output.find("witness"), std::string::npos)
      << observe.output;
  for (int k = 0; k < 3; ++k) {
    std::remove((base + "." + std::to_string(k) + ".json").c_str());
  }
}

TEST(Cli, TraceGraphThenIngestReproducesCleanVerdict) {
  const std::string base = "cli_ingest_ok";
  const CliRun emit =
      run_fdlc(program("pipeline.fut") + " --run --trace-graph " + base);
  EXPECT_EQ(emit.exit_code, 0) << emit.output;

  const CliRun observe = run_fdlc("--ingest '" + base + ".*.json'");
  EXPECT_EQ(observe.exit_code, 0) << observe.output;
  EXPECT_NE(observe.output.find("NO DEADLOCK OBSERVED"), std::string::npos)
      << observe.output;
  for (int k = 0; k < 3; ++k) {
    std::remove((base + "." + std::to_string(k) + ".json").c_str());
  }
}

TEST(Cli, GraphDumpEnvVarArmsTheInterpreterToo) {
  const std::string base = "cli_ingest_env";
  const CliRun emit = run_fdlc(program("pipeline.fut") + " --run",
                               "GTDL_GRAPH_DUMP=" + base + " ");
  EXPECT_EQ(emit.exit_code, 0) << emit.output;
  const CliRun observe = run_fdlc("--ingest '" + base + ".*.json'");
  EXPECT_EQ(observe.exit_code, 0) << observe.output;
  for (int k = 0; k < 3; ++k) {
    std::remove((base + "." + std::to_string(k) + ".json").c_str());
  }
}

TEST(Cli, IngestNoMatchingFilesIsUsageErrorExitTwo) {
  const CliRun r = run_fdlc("--ingest '/nonexistent/dump.*.json'");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("no files match"), std::string::npos) << r.output;
}

TEST(Cli, IngestReportsAreByteIdenticalAcrossJobs) {
  const std::string base = "cli_ingest_jobs";
  const CliRun emit =
      run_fdlc(program("fibonacci.fut") + " --run --trace-graph " + base);
  ASSERT_EQ(emit.exit_code, 0) << emit.output;

  const std::string sets =
      "'" + base + ".*.json' '" + base + ".*.json' '" + base + ".*.json'";
  const CliRun one = run_fdlc("--ingest --jobs 1 " + sets);
  const CliRun four = run_fdlc("--ingest --jobs 4 " + sets);
  EXPECT_EQ(one.exit_code, 0) << one.output;
  EXPECT_EQ(one.output, four.output);
  for (int k = 0; k < 3; ++k) {
    std::remove((base + "." + std::to_string(k) + ".json").c_str());
  }
}

TEST(Cli, IngestFlagCombinationsRejected) {
  EXPECT_EQ(run_fdlc("--ingest").exit_code, 2);
  EXPECT_EQ(run_fdlc("--ingest --run 'd.*.json'").exit_code, 2);
  EXPECT_EQ(
      run_fdlc("--trace-graph base " + program("pipeline.fut")).exit_code, 2);
}

}  // namespace
