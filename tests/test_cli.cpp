// Smoke tests for the fdlc command-line driver: exit codes, the two
// input languages, graph-type literals, and option handling. These run
// the real binary (path injected by CMake).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_fdlc(const std::string& args) {
  const std::string command =
      std::string(GTDL_FDLC_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CliRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string program(const char* name) {
  return std::string(GTDL_PROGRAMS_DIR) + "/" + name;
}

TEST(Cli, AcceptsDeadlockFreeProgram) {
  const CliRun r = run_fdlc(program("pipeline.fut"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("DEADLOCK-FREE"), std::string::npos) << r.output;
}

TEST(Cli, RejectsCounterexampleAndShowsBaselineUnsoundness) {
  const CliRun r = run_fdlc(program("counterex.fut") + " --baseline");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("POSSIBLE DEADLOCK"), std::string::npos);
  EXPECT_NE(r.output.find("reports deadlock-free"), std::string::npos)
      << "the GML baseline should (wrongly) accept: " << r.output;
}

TEST(Cli, RunsProgramAndJudgesTrace) {
  const CliRun r =
      run_fdlc(program("counterex.fut") + " --run --rand 1,1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("DEADLOCKED"), std::string::npos);
  EXPECT_NE(r.output.find("transitive joins: INVALID"), std::string::npos);
}

TEST(Cli, AnalyzesMiniMlByExtension) {
  const CliRun r = run_fdlc(program("counterex.mml"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("MiniML"), std::string::npos);
  EXPECT_NE(r.output.find("POSSIBLE DEADLOCK"), std::string::npos);
}

TEST(Cli, GraphTypeLiteral) {
  const CliRun ok = run_fdlc("--gtype 'new u. 1 / u ; ~u'");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  const CliRun bad = run_fdlc("--gtype 'new u. ~u ; 1 / u'");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
}

TEST(Cli, NewPushToggle) {
  // Divide-and-conquer shape: rejected without new pushing.
  const std::string literal = "'rec g. new u. 1 | g / u ; g ; ~u'";
  EXPECT_EQ(run_fdlc("--gtype " + literal).exit_code, 0);
  EXPECT_EQ(run_fdlc("--gtype " + literal + " --no-new-push").exit_code, 1);
}

TEST(Cli, MaxItersLiftsInferenceCap) {
  // webserver compiles under the default cap already; use the m=2 family
  // member shipped in the test as a literal program via --gtype is not
  // possible, so check the flag is at least accepted.
  const CliRun r = run_fdlc(program("pipeline.fut") + " --max-iters 5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Cli, UsageErrors) {
  EXPECT_EQ(run_fdlc("").exit_code, 2);
  EXPECT_EQ(run_fdlc("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_fdlc("/nonexistent/path.fut").exit_code, 2);
  EXPECT_EQ(run_fdlc("--gtype '1 ; ;'").exit_code, 2);
}

}  // namespace
