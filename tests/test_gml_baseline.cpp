// Tests for the GML-style unrolling baseline detector — including the
// demonstration of its unsoundness on the §3 counterexample.

#include <gtest/gtest.h>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

TEST(ExpandRecursion, UnrollsEachBindingExactlyK) {
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | 1 ; g");
  // k = 2: 1 | 1 ; (1 | 1 ; γ⊥) — chains of length 1 and 2 normalize.
  const GTypePtr expanded = expand_recursion(g, 2);
  EXPECT_TRUE(free_gvars(*expanded).size() == 1u);  // the γ⊥ marker
  const NormalizeResult r = normalize(expanded, 1);
  EXPECT_EQ(r.graphs.size(), 2u);
}

TEST(ExpandRecursion, ZeroUnrollsKillsAllGraphs) {
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | 1 ; g");
  EXPECT_TRUE(normalize(expand_recursion(g, 0), 1).graphs.empty());
}

TEST(ExpandRecursion, ExpandedTypeIsMuFree) {
  const GTypePtr g = parse_gtype_or_throw(
      "rec g. new u. 1 | g / u ; g ; ~u");
  const GTypePtr expanded = expand_recursion(g, 3);
  EXPECT_EQ(stats(*expanded).mu_bindings, 0u);
}

TEST(GmlBaseline, AcceptsStraightLineDeadlockFree) {
  const GmlBaselineReport r =
      gml_baseline_check(parse_gtype_or_throw("new u. 1 / u ; ~u"));
  EXPECT_FALSE(r.deadlock_reported);
  EXPECT_EQ(r.graphs_checked, 1u);
}

TEST(GmlBaseline, DetectsDirectCycle) {
  const GmlBaselineReport r =
      gml_baseline_check(parse_gtype_or_throw("new u. ~u ; 1 / u"));
  EXPECT_TRUE(r.deadlock_reported);
  EXPECT_NE(r.witness.find("cycle"), std::string::npos);
}

TEST(GmlBaseline, DetectsUnspawnedTouch) {
  const GmlBaselineReport r =
      gml_baseline_check(parse_gtype_or_throw("new u. ~u"));
  EXPECT_TRUE(r.deadlock_reported);
  EXPECT_NE(r.witness.find("unspawned"), std::string::npos);
}

TEST(GmlBaseline, AcceptsDivideAndConquer) {
  const GmlBaselineReport r = gml_baseline_check(
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u"));
  EXPECT_FALSE(r.deadlock_reported);
  EXPECT_GT(r.graphs_checked, 1u);
}

TEST(GmlBaseline, DetectsCrossTouchDeadlock) {
  const GmlBaselineReport r = gml_baseline_check(
      parse_gtype_or_throw("new a. new b. (~b) / a ; (~a) / b"));
  EXPECT_TRUE(r.deadlock_reported);
}

TEST(GmlBaseline, UnsoundOnCounterexampleAtDefaultUnrolls) {
  // THE point of §3: with every binding unrolled twice (GML's own
  // setting) the cyclic graph is not among the normalized graphs, so the
  // baseline wrongly reports deadlock freedom — while the paper's kind
  // system rejects the same type.
  const GTypePtr g = counterexample_gtype(1);
  const GmlBaselineReport baseline = gml_baseline_check(g);
  EXPECT_FALSE(baseline.deadlock_reported)
      << "witness: " << baseline.witness;
  EXPECT_FALSE(baseline.truncated);
  EXPECT_GT(baseline.graphs_checked, 0u);

  const DeadlockVerdict ours = check_deadlock_freedom(g);
  EXPECT_FALSE(ours.deadlock_free);
}

TEST(GmlBaseline, FindsCounterexampleCycleWithEnoughUnrolls) {
  const GTypePtr g = counterexample_gtype(1);
  GmlBaselineOptions options;
  // m = 1: the cycle needs m + 2 = 3 recursive-call unrollings.
  options.unrolls_per_binding = 3;
  const GmlBaselineReport r = gml_baseline_check(g, options);
  EXPECT_TRUE(r.deadlock_reported);
  EXPECT_NE(r.witness.find("cycle"), std::string::npos);
}

TEST(GmlBaseline, NoFixedUnrollBoundWorksForTheFamily) {
  // For every member m, the bound that sufficed for m-1 misses m's cycle:
  // the §3 argument that no global n can exist.
  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    GmlBaselineOptions too_shallow;
    too_shallow.unrolls_per_binding = m + 1;
    EXPECT_FALSE(gml_baseline_check(g, too_shallow).deadlock_reported)
        << "m = " << m;
    GmlBaselineOptions deep_enough;
    deep_enough.unrolls_per_binding = m + 2;
    EXPECT_TRUE(gml_baseline_check(g, deep_enough).deadlock_reported)
        << "m = " << m;
  }
}

TEST(GmlBaseline, ReportsTruncation) {
  GmlBaselineOptions options;
  options.unrolls_per_binding = 10;
  options.limits.max_graphs = 8;
  options.limits.dedup_alpha = false;
  const GmlBaselineReport r = gml_baseline_check(
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u"), options);
  EXPECT_TRUE(r.truncated);
}

}  // namespace
}  // namespace gtdl
