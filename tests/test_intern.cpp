// Differential and invariant tests for the hash-consed graph-type core:
// interned construction must preserve every observable (printing, stats,
// free sets, equality relations) against reference recomputation done with
// independent walkers, and the interner's structural invariants (same id
// iff structurally equal, fact caches exact, hit counters moving) must
// hold on randomly generated types. Also the recursion-depth regressions:
// pathologically deep inputs produce diagnostics/truncation, not crashes.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

// --- Reference walkers (independent of the cached fact blocks) -------------

void ref_free_vertices(const GType& g, OrderedSet<Symbol>& bound,
                       OrderedSet<Symbol>& out) {
  std::visit(
      Overloaded{
          [&](const GTEmpty&) {},
          [&](const GTSeq& node) {
            ref_free_vertices(*node.lhs, bound, out);
            ref_free_vertices(*node.rhs, bound, out);
          },
          [&](const GTOr& node) {
            ref_free_vertices(*node.lhs, bound, out);
            ref_free_vertices(*node.rhs, bound, out);
          },
          [&](const GTSpawn& node) {
            if (!bound.contains(node.vertex)) out.insert(node.vertex);
            ref_free_vertices(*node.body, bound, out);
          },
          [&](const GTTouch& node) {
            if (!bound.contains(node.vertex)) out.insert(node.vertex);
          },
          [&](const GTRec& node) {
            ref_free_vertices(*node.body, bound, out);
          },
          [&](const GTVar&) {},
          [&](const GTNew& node) {
            const bool added = bound.insert(node.vertex);
            ref_free_vertices(*node.body, bound, out);
            if (added) bound.erase(node.vertex);
          },
          [&](const GTPi& node) {
            std::vector<Symbol> added;
            for (Symbol u : node.spawn_params) {
              if (bound.insert(u)) added.push_back(u);
            }
            for (Symbol u : node.touch_params) {
              if (bound.insert(u)) added.push_back(u);
            }
            ref_free_vertices(*node.body, bound, out);
            for (Symbol u : added) bound.erase(u);
          },
          [&](const GTApp& node) {
            ref_free_vertices(*node.fn, bound, out);
            for (Symbol u : node.spawn_args) {
              if (!bound.contains(u)) out.insert(u);
            }
            for (Symbol u : node.touch_args) {
              if (!bound.contains(u)) out.insert(u);
            }
          },
          [&](const GTVecSpawn& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
            ref_free_vertices(*node.body, bound, out);
          },
          [&](const GTTouchAll& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
          },
          [&](const GTTouchIdx& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
          },
          [&](const GTPipe& node) {
            ref_free_vertices(*node.lhs, bound, out);
            ref_free_vertices(*node.rhs, bound, out);
          },
      },
      g.node);
}

OrderedSet<Symbol> ref_free_vertices(const GType& g) {
  OrderedSet<Symbol> bound;
  OrderedSet<Symbol> out;
  ref_free_vertices(g, bound, out);
  return out;
}

void ref_free_gvars(const GType& g, OrderedSet<Symbol>& bound,
                    OrderedSet<Symbol>& out) {
  std::visit(
      Overloaded{
          [&](const GTEmpty&) {},
          [&](const GTSeq& node) {
            ref_free_gvars(*node.lhs, bound, out);
            ref_free_gvars(*node.rhs, bound, out);
          },
          [&](const GTOr& node) {
            ref_free_gvars(*node.lhs, bound, out);
            ref_free_gvars(*node.rhs, bound, out);
          },
          [&](const GTSpawn& node) { ref_free_gvars(*node.body, bound, out); },
          [&](const GTTouch&) {},
          [&](const GTRec& node) {
            const bool added = bound.insert(node.var);
            ref_free_gvars(*node.body, bound, out);
            if (added) bound.erase(node.var);
          },
          [&](const GTVar& node) {
            if (!bound.contains(node.var)) out.insert(node.var);
          },
          [&](const GTNew& node) { ref_free_gvars(*node.body, bound, out); },
          [&](const GTPi& node) { ref_free_gvars(*node.body, bound, out); },
          [&](const GTApp& node) { ref_free_gvars(*node.fn, bound, out); },
          [&](const GTVecSpawn& node) {
            ref_free_gvars(*node.body, bound, out);
          },
          [&](const GTTouchAll&) {},
          [&](const GTTouchIdx&) {},
          [&](const GTPipe& node) {
            ref_free_gvars(*node.lhs, bound, out);
            ref_free_gvars(*node.rhs, bound, out);
          },
      },
      g.node);
}

OrderedSet<Symbol> ref_free_gvars(const GType& g) {
  OrderedSet<Symbol> bound;
  OrderedSet<Symbol> out;
  ref_free_gvars(g, bound, out);
  return out;
}

void ref_stats(const GType& g, GTypeStats& out) {
  ++out.nodes;
  std::visit(Overloaded{
                 [&](const GTEmpty&) {},
                 [&](const GTSeq& node) {
                   ref_stats(*node.lhs, out);
                   ref_stats(*node.rhs, out);
                 },
                 [&](const GTOr& node) {
                   ref_stats(*node.lhs, out);
                   ref_stats(*node.rhs, out);
                 },
                 [&](const GTSpawn& node) {
                   ++out.spawns;
                   ref_stats(*node.body, out);
                 },
                 [&](const GTTouch&) { ++out.touches; },
                 [&](const GTRec& node) {
                   ++out.mu_bindings;
                   ref_stats(*node.body, out);
                 },
                 [&](const GTVar&) {},
                 [&](const GTNew& node) {
                   ++out.nu_bindings;
                   ref_stats(*node.body, out);
                 },
                 [&](const GTPi& node) {
                   ++out.pi_bindings;
                   ref_stats(*node.body, out);
                 },
                 [&](const GTApp& node) {
                   ++out.applications;
                   ref_stats(*node.fn, out);
                 },
                 [&](const GTVecSpawn& node) {
                   ++out.vecspawn_bindings;
                   out.spawns += node.width;
                   ref_stats(*node.body, out);
                 },
                 [&](const GTTouchAll& node) {
                   ++out.family_touches;
                   out.touches += node.width;
                 },
                 [&](const GTTouchIdx&) {
                   ++out.family_touches;
                   ++out.touches;
                 },
                 [&](const GTPipe& node) {
                   ++out.pipes;
                   ref_stats(*node.lhs, out);
                   ref_stats(*node.rhs, out);
                 },
             },
             g.node);
}

GTypeStats ref_stats(const GType& g) {
  GTypeStats out;
  ref_stats(g, out);
  return out;
}

bool ref_structurally_equal(const GType& a, const GType& b) {
  if (a.node.index() != b.node.index()) return false;
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return true; },
          [&](const GTSeq& x) {
            const auto& y = std::get<GTSeq>(b.node);
            return ref_structurally_equal(*x.lhs, *y.lhs) &&
                   ref_structurally_equal(*x.rhs, *y.rhs);
          },
          [&](const GTOr& x) {
            const auto& y = std::get<GTOr>(b.node);
            return ref_structurally_equal(*x.lhs, *y.lhs) &&
                   ref_structurally_equal(*x.rhs, *y.rhs);
          },
          [&](const GTSpawn& x) {
            const auto& y = std::get<GTSpawn>(b.node);
            return x.vertex == y.vertex &&
                   ref_structurally_equal(*x.body, *y.body);
          },
          [&](const GTTouch& x) {
            return x.vertex == std::get<GTTouch>(b.node).vertex;
          },
          [&](const GTRec& x) {
            const auto& y = std::get<GTRec>(b.node);
            return x.var == y.var && ref_structurally_equal(*x.body, *y.body);
          },
          [&](const GTVar& x) {
            return x.var == std::get<GTVar>(b.node).var;
          },
          [&](const GTNew& x) {
            const auto& y = std::get<GTNew>(b.node);
            return x.vertex == y.vertex &&
                   ref_structurally_equal(*x.body, *y.body);
          },
          [&](const GTPi& x) {
            const auto& y = std::get<GTPi>(b.node);
            return x.spawn_params == y.spawn_params &&
                   x.touch_params == y.touch_params &&
                   ref_structurally_equal(*x.body, *y.body);
          },
          [&](const GTApp& x) {
            const auto& y = std::get<GTApp>(b.node);
            return x.spawn_args == y.spawn_args &&
                   x.touch_args == y.touch_args &&
                   ref_structurally_equal(*x.fn, *y.fn);
          },
          [&](const GTVecSpawn& x) {
            const auto& y = std::get<GTVecSpawn>(b.node);
            return x.family == y.family && x.width == y.width &&
                   ref_structurally_equal(*x.body, *y.body);
          },
          [&](const GTTouchAll& x) {
            const auto& y = std::get<GTTouchAll>(b.node);
            return x.family == y.family && x.width == y.width;
          },
          [&](const GTTouchIdx& x) {
            const auto& y = std::get<GTTouchIdx>(b.node);
            return x.family == y.family && x.width == y.width &&
                   x.index == y.index;
          },
          [&](const GTPipe& x) {
            const auto& y = std::get<GTPipe>(b.node);
            return ref_structurally_equal(*x.lhs, *y.lhs) &&
                   ref_structurally_equal(*x.rhs, *y.rhs);
          },
      },
      a.node);
}

// --- Random graph-type generator -------------------------------------------

// Generates mostly-well-scoped types from a small name pool so that
// structurally equal subterms recur often (exercising the interner) and
// free/bound interactions are frequent.
class Gen {
 public:
  explicit Gen(std::uint32_t seed) : rng_(seed) {}

  GTypePtr type(int depth) {
    if (depth <= 0) return leaf();
    switch (pick(9)) {
      case 0:
        return leaf();
      case 1:
        return gt::seq(type(depth - 1), type(depth - 1));
      case 2:
        return gt::alt(type(depth - 1), type(depth - 1));
      case 3:
        return gt::spawn(type(depth - 1), vertex());
      case 4: {
        const Symbol v = gvar();
        gvars_.push_back(v);
        GTypePtr body = type(depth - 1);
        gvars_.pop_back();
        return gt::rec(v, std::move(body));
      }
      case 5: {
        const Symbol u = vertex();
        return gt::nu(u, type(depth - 1));
      }
      case 6: {
        std::vector<Symbol> spawn_params{vertex()};
        std::vector<Symbol> touch_params{vertex()};
        return gt::pi(std::move(spawn_params), std::move(touch_params),
                      type(depth - 1));
      }
      case 7:
        return gt::app(type(depth - 1), {vertex()}, {vertex()});
      default:
        return gt::seq(type(depth - 1), leaf());
    }
  }

 private:
  GTypePtr leaf() {
    switch (pick(4)) {
      case 0:
        return gt::empty();
      case 1:
        return gt::touch(vertex());
      case 2:
        return gvars_.empty() ? gt::empty() : gt::var(gvars_.back());
      default:
        return gt::spawn(gt::empty(), vertex());
    }
  }

  Symbol vertex() {
    static const char* kNames[] = {"u", "v", "w", "x", "y"};
    return S(kNames[pick(5)]);
  }

  Symbol gvar() {
    static const char* kNames[] = {"f", "g", "h"};
    return S(kNames[pick(3)]);
  }

  unsigned pick(unsigned n) {
    return std::uniform_int_distribution<unsigned>(0, n - 1)(rng_);
  }

  std::mt19937 rng_;
  std::vector<Symbol> gvars_;
};

// --- Differential properties ------------------------------------------------

TEST(InternDifferential, CachedFactsMatchReferenceWalkers) {
  Gen gen(20260805);
  for (int i = 0; i < 300; ++i) {
    const GTypePtr g = gen.type(5);
    ASSERT_NE(facts_of(g), nullptr);
    EXPECT_EQ(free_vertices(*g), ref_free_vertices(*g)) << to_string(*g);
    EXPECT_EQ(free_gvars(*g), ref_free_gvars(*g)) << to_string(*g);
    const GTypeStats cached = stats(*g);
    const GTypeStats reference = ref_stats(*g);
    EXPECT_EQ(cached.nodes, reference.nodes) << to_string(*g);
    EXPECT_EQ(cached.mu_bindings, reference.mu_bindings);
    EXPECT_EQ(cached.applications, reference.applications);
    EXPECT_EQ(cached.nu_bindings, reference.nu_bindings);
    EXPECT_EQ(cached.pi_bindings, reference.pi_bindings);
    EXPECT_EQ(cached.spawns, reference.spawns);
    EXPECT_EQ(cached.touches, reference.touches);
  }
}

TEST(InternDifferential, SameIdIffStructurallyEqual) {
  Gen gen(7);
  std::vector<GTypePtr> types;
  for (int i = 0; i < 60; ++i) types.push_back(gen.type(4));
  for (const GTypePtr& a : types) {
    for (const GTypePtr& b : types) {
      const bool ref = ref_structurally_equal(*a, *b);
      EXPECT_EQ(facts_of(a)->id == facts_of(b)->id, ref)
          << to_string(*a) << " vs " << to_string(*b);
      EXPECT_EQ(structurally_equal(*a, *b), ref);
      // Interning makes structural equality pointer equality.
      EXPECT_EQ(a.get() == b.get(), ref);
    }
  }
}

TEST(InternDifferential, PrintParseReturnsTheSameNode) {
  Gen gen(99);
  for (int i = 0; i < 200; ++i) {
    const GTypePtr g = gen.type(5);
    const GTypePtr reparsed = parse_gtype_or_throw(to_string(*g));
    // Round-tripping through the printer must produce the IDENTICAL node,
    // not merely an equal one.
    EXPECT_EQ(g.get(), reparsed.get()) << to_string(*g);
  }
}

TEST(InternDifferential, AlphaEqualAgreesWithFullWalkOnVariants) {
  // Alpha-variants made by consistently renaming binders in the text.
  const char* kPairs[][2] = {
      {"rec g. new u. 1 | g / u ; g ; ~u", "rec h. new w. 1 | h / w ; h ; ~w"},
      {"new u. (1 ; ~u) / u", "new v. (1 ; ~v) / v"},
      {"rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u]",
       "rec k. pi[b; y]. new w. 1 | ~y ; 1 / b ; k[w; w]"},
  };
  for (const auto& pair : kPairs) {
    const GTypePtr a = parse_gtype_or_throw(pair[0]);
    const GTypePtr b = parse_gtype_or_throw(pair[1]);
    EXPECT_TRUE(alpha_equal(*a, *b)) << pair[0] << " vs " << pair[1];
    EXPECT_TRUE(alpha_equal(*b, *a));
  }
  // And inequivalent pairs must stay inequivalent through the fast paths.
  const char* kDistinct[][2] = {
      {"rec g. new u. 1 | g / u ; g ; ~u", "rec g. new u. 1 | g / u ; ~u"},
      {"new u. (1 ; ~u) / u", "new u. (1 ; ~u) / u ; 1"},
      {"new u. ~u ; ~v", "new u. ~u ; ~w"},  // differ in a FREE name
  };
  for (const auto& pair : kDistinct) {
    const GTypePtr a = parse_gtype_or_throw(pair[0]);
    const GTypePtr b = parse_gtype_or_throw(pair[1]);
    EXPECT_FALSE(alpha_equal(*a, *b)) << pair[0] << " vs " << pair[1];
  }
}

TEST(InternDifferential, SubstitutionAgreesWithMemoizationOff) {
  auto& interner = GTypeInterner::instance();
  Gen gen(4242);
  for (int i = 0; i < 150; ++i) {
    const GTypePtr g = gen.type(5);
    const VertexSubst subst{{S("u"), S("z")}, {S("v"), S("u")}};
    const GTypePtr fast = substitute_vertices(g, subst);
    ASSERT_TRUE(interner.set_memoization(false));
    const GTypePtr slow = substitute_vertices(g, subst);
    interner.set_memoization(true);
    // Capture-avoiding renames pick fresh names, so compare up to alpha.
    EXPECT_TRUE(alpha_equal(*fast, *slow)) << to_string(*g);

    const GTypePtr replacement = parse_gtype_or_throw("new u. (1 ; ~u) / u");
    const GTypePtr gfast = substitute_gvar(g, S("g"), replacement);
    interner.set_memoization(false);
    const GTypePtr gslow = substitute_gvar(g, S("g"), replacement);
    interner.set_memoization(true);
    EXPECT_TRUE(alpha_equal(*gfast, *gslow)) << to_string(*g);
  }
}

// Canonical spelling of a ground graph with vertex names numbered by first
// occurrence — the graphs themselves carry call-specific fresh names.
std::string canon(const GraphExpr& g,
                  std::unordered_map<Symbol, unsigned>& numbering) {
  return std::visit(
      Overloaded{
          [&](const GESingleton&) { return std::string("1"); },
          [&](const GESeq& node) {
            std::string lhs = canon(*node.lhs, numbering);
            return "(" + lhs + ";" + canon(*node.rhs, numbering) + ")";
          },
          [&](const GESpawn& node) {
            std::string body = canon(*node.body, numbering);
            const auto [it, inserted] = numbering.try_emplace(
                node.vertex, static_cast<unsigned>(numbering.size()));
            (void)inserted;
            return "(" + body + "/" + std::to_string(it->second) + ")";
          },
          [&](const GETouch& node) {
            const auto [it, inserted] = numbering.try_emplace(
                node.vertex, static_cast<unsigned>(numbering.size()));
            (void)inserted;
            return "~" + std::to_string(it->second);
          },
      },
      g.node);
}

std::vector<std::string> canonical_keys(const NormalizeResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.graphs.size());
  for (const GraphExprPtr& g : result.graphs) {
    std::unordered_map<Symbol, unsigned> numbering;
    keys.push_back(canon(*g, numbering));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(InternDifferential, NormalizationAgreesWithMemoizationOff) {
  const char* kTypes[] = {
      "rec g. new u. 1 | g / u ; g ; ~u",
      "new u. (1 ; ~u) / u ; (new w. 1 / w ; ~w)",
      "rec g. 1 | (new u. g / u ; ~u)",
      // Shared ν subterm seq-composed with itself: the memo must refresh
      // fresh names or the two copies collide.
      "(new u. 1 / u ; ~u) ; (new u. 1 / u ; ~u)",
  };
  for (const char* text : kTypes) {
    const GTypePtr g = parse_gtype_or_throw(text);
    for (unsigned n = 1; n <= 5; ++n) {
      NormalizeLimits with_memo;
      const NormalizeResult fast = normalize(g, n, with_memo);
      NormalizeLimits without_memo;
      without_memo.enable_memo = false;
      const NormalizeResult slow = normalize(g, n, without_memo);
      EXPECT_EQ(fast.truncated, slow.truncated) << text << " n=" << n;
      EXPECT_EQ(canonical_keys(fast), canonical_keys(slow))
          << text << " n=" << n;
      EXPECT_EQ(count_normalizations(g, n) == 0, fast.graphs.empty());
      // Fresh names must stay globally unique: no graph may spawn the
      // same designated vertex twice.
      for (const GraphExprPtr& graph : fast.graphs) {
        std::vector<Symbol> spawned = spawned_vertices(*graph);
        OrderedSet<Symbol> unique(spawned);
        EXPECT_EQ(unique.size(), spawned.size()) << to_string(*graph);
      }
    }
  }
}

// --- Interner invariants ----------------------------------------------------

TEST(InternInvariants, HitCountersMoveOnSharedSubterms) {
  auto& interner = GTypeInterner::instance();
  interner.reset_counters();
  const GTypePtr shared = parse_gtype_or_throw("new u. (1 ; ~u) / u ; 1 ; 1");
  const GTypePtr twice = gt::seq(shared, shared);
  const GTypePtr again =
      parse_gtype_or_throw("new u. (1 ; ~u) / u ; 1 ; 1");  // all hits
  EXPECT_EQ(shared.get(), again.get());
  const GTypeInterner::Stats s = interner.stats();
  EXPECT_GT(s.intern_hits, 0u);
  EXPECT_GT(s.nodes, 0u);
  (void)twice;
}

TEST(InternInvariants, FactsAreSharedAcrossEqualSubterms) {
  const GTypePtr a = gt::seq(gt::empty(), gt::touch(S("u")));
  const GTypePtr b = gt::seq(gt::empty(), gt::touch(S("u")));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(facts_of(a), facts_of(b));
  EXPECT_EQ(facts_of(a)->stats.nodes, 3u);
  EXPECT_EQ(facts_of(a)->height, 1u);
}

TEST(InternInvariants, UnrollCacheReturnsStableResult) {
  const GTypePtr g = parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  auto& interner = GTypeInterner::instance();
  const GTypePtr once = interner.cached_unroll(g);
  const GTypePtr twice = interner.cached_unroll(g);
  EXPECT_EQ(once.get(), twice.get());
  EXPECT_TRUE(alpha_equal(*once, *unroll_rec(g)));
}

// --- Depth-limit regressions ------------------------------------------------

TEST(DepthLimits, HundredThousandDeepSeqChainDoesNotCrash) {
  // ';' chains parse iteratively, so this must parse fine...
  std::string text = "1";
  for (int i = 0; i < 100'000; ++i) text += " ; ~u";
  const GTypePtr g = parse_gtype_or_throw(text);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(stats(*g).nodes, 200'001u);
  // ...while the recursive walks bail out with truncation diagnostics
  // instead of overflowing the stack.
  const NormalizeResult result = normalize(g, 3);
  EXPECT_TRUE(result.truncated);
  EXPECT_TRUE(result.depth_limited);
  EXPECT_EQ(count_normalizations(g, 3),
            std::numeric_limits<std::uint64_t>::max());
  const WellformedResult wf = check_wellformed(g);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.diags.render().find("nested too deeply"), std::string::npos);
  const DeadlockVerdict df = check_deadlock_freedom(g);
  EXPECT_FALSE(df.deadlock_free);
}

TEST(DepthLimits, DeeplyNestedParensProduceDiagnosticNotCrash) {
  std::string text(50'000, '(');
  text += "1";
  text += std::string(50'000, ')');
  DiagnosticEngine diags;
  const GTypePtr g = parse_gtype(text, diags);
  EXPECT_EQ(g, nullptr);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render().find("nested too deeply"), std::string::npos);
}

TEST(DepthLimits, DeeplyNestedBindersProduceDiagnosticNotCrash) {
  std::string text;
  for (int i = 0; i < 50'000; ++i) text += "new u. (";
  text += "1";
  for (int i = 0; i < 50'000; ++i) text += ")";
  DiagnosticEngine diags;
  const GTypePtr g = parse_gtype(text, diags);
  EXPECT_EQ(g, nullptr);
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace gtdl
