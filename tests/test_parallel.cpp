// Differential tests for the parallel analysis engine (par/engine.hpp):
// the engine's contract is that, for workloads completing within the
// limits, its output is pairwise alpha-equal to the sequential
// normalizer's IN THE SAME ORDER, with the same truncation flags and step
// count — regardless of thread count. Fresh-name spellings are the only
// permitted difference, so comparisons go through graph_alpha_key (which
// erases them).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <regex>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/par/thread_pool.hpp"

namespace gtdl {
namespace {

std::vector<std::string> alpha_keys(const NormalizeResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.graphs.size());
  for (const GraphExprPtr& g : result.graphs) {
    keys.push_back(graph_alpha_key(*g));
  }
  return keys;
}

// Sequential vs engine(threads), element by element.
void expect_differential_equal(const GTypePtr& g, unsigned fuel,
                               unsigned threads,
                               const NormalizeLimits& limits = {}) {
  const NormalizeResult seq = normalize(g, fuel, limits);
  Engine engine(threads);
  const NormalizeResult par = engine.normalize(g, fuel, limits);
  ASSERT_FALSE(seq.truncated) << "test workload must fit the limits";
  EXPECT_FALSE(par.truncated);
  EXPECT_EQ(par.depth_limited, seq.depth_limited);
  EXPECT_EQ(par.graphs.size(), seq.graphs.size());
  // Untruncated runs do identical work: every node visit happens in both
  // schedules, memo owners/waiters pair up with sequential misses/hits.
  EXPECT_EQ(par.steps, seq.steps);
  EXPECT_EQ(alpha_keys(par), alpha_keys(seq));
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&ran] { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunEverythingAtJoin) {
  // With no workers, tasks stay pending until the joiner claims them.
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) {
    group.run([&ran] { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(Engine, OneThreadIsTheSequentialPath) {
  Engine engine(1);
  EXPECT_EQ(engine.threads(), 1u);
  EXPECT_EQ(engine.pool(), nullptr);
  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    const unsigned fuel = counterexample_cycle_depth(m) + 1;
    const NormalizeResult seq = normalize(g, fuel);
    const NormalizeResult par = engine.normalize(g, fuel);
    EXPECT_EQ(par.graphs.size(), seq.graphs.size());
    EXPECT_EQ(par.steps, seq.steps);
    EXPECT_EQ(par.truncated, seq.truncated);
    EXPECT_EQ(alpha_keys(par), alpha_keys(seq));
  }
}

TEST(Engine, ZeroThreadsNormalizedToOne) {
  Engine engine(0);
  EXPECT_EQ(engine.threads(), 1u);
  EXPECT_EQ(engine.pool(), nullptr);
}

TEST(Engine, DifferentialOnCounterexampleFamily) {
  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    for (unsigned fuel = counterexample_cycle_depth(m);
         fuel <= counterexample_cycle_depth(m) + 2; ++fuel) {
      for (unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE("m=" + std::to_string(m) +
                     " fuel=" + std::to_string(fuel) +
                     " threads=" + std::to_string(threads));
        expect_differential_equal(g, fuel, threads);
      }
    }
  }
}

TEST(Engine, DifferentialWithoutMemoization) {
  // enable_memo=false exercises the no-memo-table path (every subproblem
  // computed where encountered, forks still active).
  NormalizeLimits limits;
  limits.enable_memo = false;
  const GTypePtr g = counterexample_gtype(2);
  expect_differential_equal(g, counterexample_cycle_depth(2) + 1, 4, limits);
}

TEST(Engine, DifferentialWithoutAlphaDedup) {
  NormalizeLimits limits;
  limits.dedup_alpha = false;
  const GTypePtr g = counterexample_gtype(1);
  expect_differential_equal(g, 4, 4, limits);
}

// A deterministic pseudo-random closed graph type: μ variables are only
// referenced under their binder, vertices come from a small pool (free
// vertices are legal in normalize).
class TypeFuzzer {
 public:
  explicit TypeFuzzer(std::uint32_t seed) : rng_(seed) {}

  GTypePtr make(unsigned depth) { return build(depth); }

 private:
  GTypePtr build(unsigned depth) {
    if (depth == 0) return leaf();
    switch (rng_() % 8) {
      case 0:
        return gt::seq(build(depth - 1), build(depth - 1));
      case 1:
        return gt::alt(build(depth - 1), build(depth - 1));
      case 2:
        return gt::spawn(build(depth - 1), vertex());
      case 3: {
        const Symbol v = Symbol::intern("g" + std::to_string(rng_() % 100));
        mu_vars_.push_back(v);
        GTypePtr body = build(depth - 1);
        mu_vars_.pop_back();
        // Guarantee the variable occurs, so the μ actually recurses.
        return gt::rec(v, gt::alt(body, gt::seq(gt::var(v), gt::empty())));
      }
      case 4:
        return gt::nu(vertex(), build(depth - 1));
      case 5:
        if (!mu_vars_.empty()) {
          return gt::var(mu_vars_[rng_() % mu_vars_.size()]);
        }
        return leaf();
      case 6:
        return gt::seq(gt::touch(vertex()), build(depth - 1));
      default:
        return leaf();
    }
  }

  GTypePtr leaf() {
    switch (rng_() % 3) {
      case 0:
        return gt::empty();
      case 1:
        return gt::touch(vertex());
      default:
        return gt::spawn(gt::empty(), vertex());
    }
  }

  Symbol vertex() {
    return Symbol::intern("v" + std::to_string(rng_() % 6));
  }

  std::mt19937 rng_;
  std::vector<Symbol> mu_vars_;
};

TEST(Engine, DifferentialOnFuzzedTypes) {
  for (std::uint32_t seed = 1; seed <= 24; ++seed) {
    TypeFuzzer fuzzer(seed);
    const GTypePtr g = fuzzer.make(5);
    // μ-free gvar occurrences the fuzzer closed over binders; the type
    // may still be open in vertices, which normalize allows.
    ASSERT_TRUE(g->facts != nullptr);
    if (!g->facts->free_gvars.empty()) continue;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " type=" + to_string(g));
    NormalizeLimits limits;
    limits.max_graphs = 1u << 14;
    const NormalizeResult probe = normalize(g, 3, limits);
    if (probe.truncated) continue;  // differential contract needs completion
    expect_differential_equal(g, 3, 4, limits);
  }
}

TEST(Engine, ParallelDetectMatchesSequential) {
  Engine engine(4);
  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    DetectOptions seq_options;
    const DeadlockVerdict seq = check_deadlock_freedom(g, seq_options);
    DetectOptions par_options;
    par_options.engine = &engine;
    const DeadlockVerdict par = check_deadlock_freedom(g, par_options);
    EXPECT_EQ(par.deadlock_free, seq.deadlock_free);
    EXPECT_EQ(par.diags.render(), seq.diags.render());
  }
}

// --- Corpus determinism -----------------------------------------------------

// Fresh-name suffixes ("u$17") depend on the global fresh counter, which
// advances across runs in one process; strip them before comparing.
std::string strip_fresh_suffixes(const std::string& text) {
  static const std::regex suffix("\\$[0-9]+");
  return std::regex_replace(text, suffix, "$");
}

class CorpusDeterminism : public ::testing::Test {
 protected:
  void SetUp() override {
    write("corpus_ok.gt", "new u. (1/u ; ~u)");
    write("corpus_dl.gt", "new u. (~u ; 1/u)");
    write("corpus_bad.gt", "new u. (1/u ; ~");
    write("corpus_ce.fut", counterexample_futlang(1));
    files_ = {dir_ + "/corpus_ok.gt", dir_ + "/corpus_dl.gt",
              dir_ + "/corpus_bad.gt", dir_ + "/corpus_ce.fut"};
  }

  void TearDown() override {
    for (const std::string& f : files_) std::remove(f.c_str());
  }

  void write(const std::string& name, const std::string& contents) {
    std::ofstream out(dir_ + "/" + name);
    ASSERT_TRUE(out.is_open());
    out << contents;
  }

  std::string dir_ = ::testing::TempDir();
  std::vector<std::string> files_;
};

TEST_F(CorpusDeterminism, SameDiagnosticsRegardlessOfJobs) {
  CorpusOptions base;
  base.baseline = true;
  CorpusOptions one = base;
  one.jobs = 1;
  CorpusOptions four = base;
  four.jobs = 4;
  const CorpusReport seq = drive_corpus(files_, one);
  const CorpusReport par = drive_corpus(files_, four);
  ASSERT_EQ(seq.files.size(), files_.size());
  ASSERT_EQ(par.files.size(), files_.size());
  EXPECT_EQ(par.exit_code, seq.exit_code);
  EXPECT_EQ(seq.exit_code, 2);  // the unparsable file dominates
  for (std::size_t i = 0; i < files_.size(); ++i) {
    SCOPED_TRACE(files_[i]);
    EXPECT_EQ(par.files[i].path, seq.files[i].path);
    EXPECT_EQ(par.files[i].exit_code, seq.files[i].exit_code);
    EXPECT_EQ(strip_fresh_suffixes(par.files[i].text),
              strip_fresh_suffixes(seq.files[i].text));
  }
}

TEST_F(CorpusDeterminism, RepeatedParallelRunsAgree) {
  CorpusOptions options;
  options.jobs = 4;
  const CorpusReport a = drive_corpus(files_, options);
  const CorpusReport b = drive_corpus(files_, options);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].exit_code, b.files[i].exit_code);
    EXPECT_EQ(strip_fresh_suffixes(a.files[i].text),
              strip_fresh_suffixes(b.files[i].text));
  }
}

// --- set_memoization guard (intern.hpp contract) ----------------------------

TEST(ScopedAnalysis, SetMemoizationThrowsWhileAnalysisActive) {
  auto& interner = GTypeInterner::instance();
  const bool before = interner.memoization_enabled();
  {
    GTypeInterner::ScopedAnalysis guard;
    EXPECT_GE(interner.active_analyses(), 1u);
    EXPECT_THROW((void)interner.set_memoization(!before), std::logic_error);
    // The failed toggle must not have changed the flag.
    EXPECT_EQ(interner.memoization_enabled(), before);
  }
  // Guard released: toggling works again.
  EXPECT_EQ(interner.set_memoization(!before), before);
  EXPECT_EQ(interner.set_memoization(before), !before);
}

}  // namespace
}  // namespace gtdl
