// Differential suite for the streaming enumerator (for_each_graph): the
// stream must visit EXACTLY the graphs the materialized normalizer
// stores — same alpha-key multiset, same order, same first-witness index
// — over the §3 counterexample family, hand-written types, the example
// programs, and the e2e fuzz generator; plus determinism of the streamed
// GML baseline across --jobs N and the peak-materialization bound.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/par/engine.hpp"
#include "random_program.hpp"

namespace gtdl {
namespace {

std::vector<std::string> keys_of(const std::vector<GraphExprPtr>& graphs) {
  std::vector<std::string> keys;
  keys.reserve(graphs.size());
  for (const auto& g : graphs) keys.push_back(graph_alpha_key(*g));
  return keys;
}

struct StreamRun {
  std::vector<std::string> keys;
  StreamStats stats;
};

StreamRun stream_all(const GTypePtr& g, unsigned fuel,
                     const NormalizeLimits& limits = {}) {
  StreamRun run;
  run.stats = for_each_graph(g, fuel, limits, [&](const GraphExprPtr& gr) {
    run.keys.push_back(graph_alpha_key(*gr));
    return true;
  });
  return run;
}

// The streamed sequence must equal the materialized sequence exactly
// (same graphs, same order). Only meaningful for untruncated workloads —
// truncation keeps different subsets by design.
void expect_stream_matches(const GTypePtr& g, unsigned fuel,
                           const NormalizeLimits& limits = {}) {
  const NormalizeResult materialized = normalize(g, fuel, limits);
  ASSERT_FALSE(materialized.truncated)
      << "differential fixture must not truncate (fuel " << fuel << ")";
  const StreamRun streamed = stream_all(g, fuel, limits);
  EXPECT_FALSE(streamed.stats.truncated);
  EXPECT_FALSE(streamed.stats.stopped);
  EXPECT_EQ(streamed.keys, keys_of(materialized.graphs))
      << "stream diverged from materialized path at fuel " << fuel;
  EXPECT_EQ(streamed.stats.emitted, materialized.graphs.size());
}

TEST(Streaming, MatchesMaterializedOnCounterexampleFamily) {
  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    for (unsigned fuel = 1; fuel <= m + 4; ++fuel) {
      SCOPED_TRACE("m=" + std::to_string(m) +
                   " fuel=" + std::to_string(fuel));
      expect_stream_matches(g, fuel);
    }
  }
}

TEST(Streaming, MatchesMaterializedOnParsedTypes) {
  const char* sources[] = {
      "1",
      "~u",
      "new u. 1 / u ; ~u",
      "new u. ~u ; 1 / u",
      "new u. ~u",
      "(1 | ~a) ; (1 | ~b)",
      "rec g. 1 | 1 ; g",
      "rec g. 1 | (1 ; g)",
      "rec g. new u. 1 | (1 / u ; g ; ~u)",
      "(rec g. 1 | 1 ; g) ; (rec h. 1 | ~a ; h)",
      "new u. (1 / u ; (rec g. 1 | ~u ; g))",
      "rec g. (1 | g) ; (1 | new u. 1 / u)",
  };
  for (const char* src : sources) {
    const GTypePtr g = parse_gtype_or_throw(src);
    for (unsigned fuel : {1u, 2u, 3u, 6u}) {
      SCOPED_TRACE(std::string(src) + " fuel=" + std::to_string(fuel));
      expect_stream_matches(g, fuel);
    }
  }
}

TEST(Streaming, MatchesMaterializedOnGmlExpandedTypes) {
  // The GML baseline's exact workload: μ-expanded (hence heavily shared)
  // types normalized at depth 1 — the memo-replay path gets exercised.
  for (unsigned m = 1; m <= 2; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    for (unsigned k = 2; k <= 5; ++k) {
      SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k));
      expect_stream_matches(expand_recursion(g, k), 1);
    }
  }
}

TEST(Streaming, MatchesMaterializedOnFuzzPrograms) {
  unsigned compiled_count = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    fuzz::RandomProgram generator(seed);
    const std::string source = generator.generate();
    DiagnosticEngine diags;
    auto compiled = compile_futlang(source, diags);
    ASSERT_TRUE(compiled.has_value()) << "seed " << seed << "\n" << source;
    ++compiled_count;
    const GTypePtr g = compiled->inferred.program_gtype;
    for (unsigned fuel : {2u, 3u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   " fuel=" + std::to_string(fuel));
      expect_stream_matches(g, fuel);
    }
  }
  EXPECT_GT(compiled_count, 0u);
}

TEST(Streaming, MatchesMaterializedOnExamplePrograms) {
  unsigned checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(GTDL_PROGRAMS_DIR)) {
    if (entry.path().extension() != ".fut") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    DiagnosticEngine diags;
    auto compiled = compile_futlang(buf.str(), diags);
    // Some gallery programs intentionally fail inference (footnote-3
    // reproductions); the differential property applies to the rest.
    if (!compiled.has_value()) continue;
    ++checked;
    SCOPED_TRACE(entry.path().filename().string());
    expect_stream_matches(compiled->inferred.program_gtype, 3);
  }
  EXPECT_GT(checked, 0u);
}

TEST(Streaming, FirstWitnessIndexMatchesMaterializedScan) {
  // Short-circuit mode must stop at exactly the graph the materialized
  // scan would report first, having enumerated nothing beyond it.
  const unsigned m = 1;
  const GTypePtr g = counterexample_gtype(m);
  const unsigned fuel = m + 3;  // cycle manifests here (counterexample.hpp)
  const NormalizeResult materialized = normalize(g, fuel);
  ASSERT_FALSE(materialized.truncated);
  std::size_t first = materialized.graphs.size();
  for (std::size_t i = 0; i < materialized.graphs.size(); ++i) {
    if (find_ground_deadlock(*materialized.graphs[i]).any()) {
      first = i;
      break;
    }
  }
  ASSERT_LT(first, materialized.graphs.size());

  std::size_t streamed_first = 0;
  std::string witness_key;
  const StreamStats stats =
      for_each_graph(g, fuel, {}, [&](const GraphExprPtr& gr) {
        if (find_ground_deadlock(*gr).any()) {
          witness_key = graph_alpha_key(*gr);
          return false;
        }
        ++streamed_first;
        return true;
      });
  EXPECT_TRUE(stats.stopped);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(streamed_first, first);
  EXPECT_EQ(stats.emitted, first + 1);
  EXPECT_EQ(witness_key, graph_alpha_key(*materialized.graphs[first]));
}

TEST(Streaming, VisitorStopIsNotTruncation) {
  const GTypePtr g = parse_gtype_or_throw("(1 | ~a) ; (1 | ~b)");
  std::size_t seen = 0;
  const StreamStats stats =
      for_each_graph(g, 1, {}, [&](const GraphExprPtr&) {
        ++seen;
        return seen < 2;
      });
  EXPECT_EQ(seen, 2u);
  EXPECT_TRUE(stats.stopped);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.emitted, 2u);
}

TEST(Streaming, HonorsMaxGraphs) {
  NormalizeLimits limits;
  limits.max_graphs = 8;
  limits.dedup_alpha = false;
  const GTypePtr g = parse_gtype_or_throw(
      "(1 | ~a | ~b | ~c) ; (1 | ~d | ~e | ~f)");  // 16 raw graphs
  const StreamRun run = stream_all(g, 1, limits);
  EXPECT_TRUE(run.stats.truncated);
  EXPECT_FALSE(run.stats.stopped);
  EXPECT_EQ(run.stats.emitted, 8u);
}

TEST(Streaming, PeakMaterializedBoundedByCap) {
  // An 8x8 product of structurally DISTINCT alternatives (chains of
  // different lengths — free-vertex touches would all be alpha-equal):
  // the full rhs set does not fit a cap of 4, so the enumerator must
  // fall back to re-streaming — peak memory stays under the cap while
  // the emitted sequence is unchanged.
  std::string chains = "1";
  std::string chain = "1";
  for (int i = 1; i < 8; ++i) {
    chain += " ; 1";
    chains += " | (" + chain + ")";
  }
  const GTypePtr g = parse_gtype_or_throw("(" + chains + ") ; (" + chains +
                                          ")");
  NormalizeLimits tiny;
  tiny.stream_materialize_cap = 4;
  const StreamRun capped = stream_all(g, 1, tiny);
  EXPECT_LE(capped.stats.peak_materialized, 4u);
  EXPECT_EQ(capped.stats.emitted, 64u);

  const StreamRun roomy = stream_all(g, 1);
  EXPECT_EQ(capped.keys, roomy.keys);
  expect_stream_matches(g, 1, tiny);
}

TEST(Streaming, MemoCapForcesReenumerationWithSameStream) {
  // μ-expanded types replay subterm sets through the memo; with a cap of
  // 1 every capture is abandoned and the subterms re-stream. The output
  // must not change.
  const GTypePtr expanded =
      expand_recursion(counterexample_gtype(1), 4);
  NormalizeLimits tiny;
  tiny.stream_materialize_cap = 1;
  const StreamRun capped = stream_all(expanded, 1, tiny);
  const StreamRun roomy = stream_all(expanded, 1);
  EXPECT_EQ(capped.keys, roomy.keys);
  EXPECT_LE(capped.stats.peak_materialized, 1u);
}

// Fresh-name spellings differ run to run (a process-global counter), so
// witness strings are compared with the numeric suffixes erased.
std::string erase_fresh_suffixes(const std::string& s) {
  return std::regex_replace(s, std::regex("\\$\\d+"), "$$");
}

TEST(Streaming, GmlBaselineDeterministicAcrossJobs) {
  struct Case {
    GTypePtr g;
    unsigned unrolls;
  };
  const std::vector<Case> cases = {
      {counterexample_gtype(1), 4},        // deadlock: early witness
      {parse_gtype_or_throw("rec g. 1 | 1 ; g"), 6},  // deadlock-free
      {parse_gtype_or_throw("new u. ~u ; 1 / u"), 2},  // cycle, 1 graph
      {expand_recursion(counterexample_gtype(2), 3), 2},  // df at k=3
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    GmlBaselineOptions sequential;
    sequential.unrolls_per_binding = cases[i].unrolls;
    const GmlBaselineReport base = gml_baseline_check(cases[i].g, sequential);
    for (unsigned jobs : {2u, 4u}) {
      Engine engine(jobs);
      GmlBaselineOptions parallel = sequential;
      parallel.engine = &engine;
      const GmlBaselineReport report =
          gml_baseline_check(cases[i].g, parallel);
      EXPECT_EQ(report.deadlock_reported, base.deadlock_reported)
          << "jobs=" << jobs;
      EXPECT_EQ(report.graphs_checked, base.graphs_checked)
          << "jobs=" << jobs;
      EXPECT_EQ(report.truncated, base.truncated) << "jobs=" << jobs;
      EXPECT_EQ(erase_fresh_suffixes(report.witness),
                erase_fresh_suffixes(base.witness))
          << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace gtdl
