// Tests for capture-avoiding substitution and μ-unrolling.

#include <gtest/gtest.h>

#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/subst.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

TEST(VertexSubst, ReplacesFreeOccurrences) {
  const GTypePtr g = parse_gtype_or_throw("1 / u ; ~u ; ~w");
  const GTypePtr out =
      substitute_vertices(g, VertexSubst{{S("u"), S("z")}});
  EXPECT_EQ(to_string(*out), "1 / z ; ~z ; ~w");
}

TEST(VertexSubst, RespectsNuBinder) {
  const GTypePtr g = parse_gtype_or_throw("new u. ~u ; ~w");
  const GTypePtr out = substitute_vertices(
      g, VertexSubst{{S("u"), S("z")}, {S("w"), S("v")}});
  // Bound u untouched; free w replaced.
  EXPECT_EQ(to_string(*out), "new u. ~u ; ~v");
}

TEST(VertexSubst, AvoidsCaptureByRenamingBinder) {
  // Substituting w -> u under "new u" must not capture the new u.
  const GTypePtr g = parse_gtype_or_throw("new u. ~u ; ~w");
  const GTypePtr out = substitute_vertices(g, VertexSubst{{S("w"), S("u")}});
  const auto* nu = std::get_if<GTNew>(&out->node);
  ASSERT_NE(nu, nullptr);
  EXPECT_NE(nu->vertex, S("u"));  // binder was renamed
  // The substituted-in free u must appear... and the renamed binder's
  // occurrences track the new name.
  const GTypePtr expected = parse_gtype_or_throw(
      "new q. ~q ; ~u");  // alpha-equivalent shape
  EXPECT_TRUE(alpha_equal(*out, *expected));
}

TEST(VertexSubst, AppliesToApplicationArguments) {
  const GTypePtr g = parse_gtype_or_throw("g[a, b; x]");
  const GTypePtr out = substitute_vertices(
      g, VertexSubst{{S("a"), S("p")}, {S("x"), S("q")}});
  EXPECT_EQ(to_string(*out), "g[p, b; q]");
}

TEST(VertexSubst, RespectsPiBinder) {
  const GTypePtr g = parse_gtype_or_throw("pi[a; x]. 1 / a ; ~x ; ~w");
  const GTypePtr out = substitute_vertices(
      g, VertexSubst{{S("a"), S("z1")}, {S("x"), S("z2")}, {S("w"), S("z3")}});
  EXPECT_EQ(to_string(*out), "pi[a; x]. 1 / a ; ~x ; ~z3");
}

TEST(VertexSubst, RenamesPiParamsOnCapture) {
  const GTypePtr g = parse_gtype_or_throw("pi[a; x]. 1 / a ; ~x ; ~w");
  const GTypePtr out = substitute_vertices(g, VertexSubst{{S("w"), S("a")}});
  const GTypePtr expected =
      parse_gtype_or_throw("pi[p; x]. 1 / p ; ~x ; ~a");
  EXPECT_TRUE(alpha_equal(*out, *expected));
}

TEST(GvarSubst, ReplacesFreeVariable) {
  const GTypePtr g = parse_gtype_or_throw("g ; 1");
  const GTypePtr out = substitute_gvar(g, S("g"), parse_gtype_or_throw("~u"));
  EXPECT_EQ(to_string(*out), "~u ; 1");
}

TEST(GvarSubst, RespectsMuShadowing) {
  const GTypePtr g = parse_gtype_or_throw("g ; rec g. g");
  const GTypePtr out = substitute_gvar(g, S("g"), parse_gtype_or_throw("1"));
  EXPECT_EQ(to_string(*out), "1 ; (rec g. g)");
}

TEST(GvarSubst, AvoidsVertexCaptureOfReplacementFreeVertices) {
  // Replacement mentions free vertex u; the ν binder in the target must
  // be renamed before substituting under it.
  const GTypePtr g = parse_gtype_or_throw("new u. g ; 1 / u");
  const GTypePtr out = substitute_gvar(g, S("g"), parse_gtype_or_throw("~u"));
  const GTypePtr expected = parse_gtype_or_throw("new q. ~u ; 1 / q");
  EXPECT_TRUE(alpha_equal(*out, *expected));
}

TEST(GvarSubst, AvoidsGvarCaptureUnderMu) {
  // Substituting h := (g ; 1) under "rec g" must rename the μ binder.
  const GTypePtr g = parse_gtype_or_throw("rec g. h ; g");
  const GTypePtr out =
      substitute_gvar(g, S("h"), parse_gtype_or_throw("g ; 1"));
  const GTypePtr expected = parse_gtype_or_throw("rec k. (g ; 1) ; k");
  EXPECT_TRUE(alpha_equal(*out, *expected));
}

TEST(UnrollRec, SubstitutesWholeTypeForVariable) {
  const GTypePtr g = parse_gtype_or_throw("rec g. 1 | g ; ~u");
  const GTypePtr out = unroll_rec(g);
  const GTypePtr expected =
      parse_gtype_or_throw("1 | (rec g. 1 | g ; ~u) ; ~u");
  EXPECT_TRUE(alpha_equal(*out, *expected));
}

TEST(UnrollRec, ThrowsOnNonRec) {
  EXPECT_THROW((void)unroll_rec(gt::empty()), std::invalid_argument);
}

TEST(VertexSubst, EmptySubstIsIdentity) {
  const GTypePtr g = parse_gtype_or_throw("new u. 1 / u ; ~u");
  const GTypePtr out = substitute_vertices(g, VertexSubst{});
  EXPECT_EQ(g.get(), out.get());  // shares the same node
}

TEST(VertexSubst, SwapIsSimultaneous) {
  // {u -> w, w -> u} applied simultaneously, not sequentially.
  const GTypePtr g = parse_gtype_or_throw("~u ; ~w");
  const GTypePtr out = substitute_vertices(
      g, VertexSubst{{S("u"), S("w")}, {S("w"), S("u")}});
  EXPECT_EQ(to_string(*out), "~w ; ~u");
}

}  // namespace
}  // namespace gtdl
