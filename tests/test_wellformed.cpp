// Tests for the affine well-formedness kinding (the judgment of the
// original graph-types work): vertices may be spawned at most once, and
// touched names must be in scope.

#include <gtest/gtest.h>

#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"

namespace gtdl {
namespace {

WellformedResult wf(const char* src) {
  return check_wellformed(parse_gtype_or_throw(src));
}

TEST(Wellformed, EmptyGraph) {
  const WellformedResult r = wf("1");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.kind, GraphKind::star());
}

TEST(Wellformed, SpawnRequiresBoundVertex) {
  EXPECT_FALSE(wf("1 / u").ok);
  EXPECT_TRUE(wf("new u. 1 / u").ok);
}

TEST(Wellformed, TouchRequiresScopedVertex) {
  EXPECT_FALSE(wf("~u").ok);
  EXPECT_TRUE(wf("new u. ~u").ok);  // affine: unspawned touch is WF
}

TEST(Wellformed, DoubleSpawnRejected) {
  EXPECT_FALSE(wf("new u. 1 / u ; 1 / u").ok);
}

TEST(Wellformed, SpawnInBothOrBranchesAllowed) {
  // Affine: each execution path spawns u at most once.
  EXPECT_TRUE(wf("new u. (1 / u | 1 / u)").ok);
}

TEST(Wellformed, UnevenOrBranchesAllowed) {
  // Unlike the linear deadlock judgment, one branch may skip the spawn.
  EXPECT_TRUE(wf("new u. (1 | 1 / u)").ok);
}

TEST(Wellformed, TouchBeforeSpawnIsWellFormed) {
  // WF does not order touches — that is the deadlock system's job.
  EXPECT_TRUE(wf("new u. ~u ; 1 / u").ok);
}

TEST(Wellformed, NestedSpawnBodyMayUseRemainingVertices) {
  EXPECT_TRUE(wf("new u. new w. (1 / w) / u").ok);
  EXPECT_FALSE(wf("new u. (1 / u) / u").ok);
}

TEST(Wellformed, ShadowingRejected) {
  EXPECT_FALSE(wf("new u. new u. 1 / u").ok);
}

TEST(Wellformed, PiKindAndApplication) {
  const WellformedResult r = wf("pi[a; x]. 1 / a ; ~x");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.kind, GraphKind::pi(1, 1));

  EXPECT_TRUE(wf("new u. new w. (pi[a; x]. 1 / a ; ~x)[u; w]").ok);
}

TEST(Wellformed, ApplicationArityMismatch) {
  EXPECT_FALSE(wf("new u. (pi[a; x]. 1 / a ; ~x)[u; ]").ok);
  EXPECT_FALSE(wf("new u. new w. (pi[a;]. 1 / a)[u; w]").ok);
}

TEST(Wellformed, ApplicationSpawnArgConsumed) {
  // u passed as spawn argument twice: second use violates affinity.
  EXPECT_FALSE(
      wf("new u. (pi[a; ]. 1 / a)[u; ] ; (pi[a; ]. 1 / a)[u; ]").ok);
  // Touch args are unrestricted.
  EXPECT_TRUE(
      wf("new u. 1 / u ; (pi[; x]. ~x)[; u] ; (pi[; x]. ~x)[; u]").ok);
}

TEST(Wellformed, ApplicationOfStarKindRejected) {
  EXPECT_FALSE(wf("new u. (1)[u;]").ok);
}

TEST(Wellformed, RecWithPiBody) {
  const WellformedResult r =
      wf("rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u]");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.kind, GraphKind::pi(1, 1));
}

TEST(Wellformed, BareRecTreatedAsNullaryPi) {
  const WellformedResult r = wf("rec g. new u. 1 | g / u ; g ; ~u");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.kind, GraphKind::pi(0, 0));
}

TEST(Wellformed, RecBodyCannotCaptureOuterSpawnVertices) {
  // u is bound outside the μ; the recursive body must not spawn it (it
  // would be spawned once per unrolling).
  EXPECT_FALSE(wf("new u. (rec g. 1 | 1 / u ; g) ; 1 / u").ok);
}

TEST(Wellformed, RecBodyMayTouchOuterVertices) {
  EXPECT_TRUE(wf("new u. 1 / u ; (rec g. 1 | ~u ; g)").ok);
}

TEST(Wellformed, UnboundGraphVariableRejected) {
  EXPECT_FALSE(wf("g").ok);
  EXPECT_FALSE(wf("rec g. h").ok);
}

TEST(Wellformed, CounterexampleShapeIsWellFormed) {
  // The §3 counterexample is well-formed (it is the deadlock system that
  // must reject it).
  EXPECT_TRUE(
      wf("new u1. new u2. 1 / u2 ; "
         "(rec g. pi[a; x]. new u. 1 | ~x ; 1 / a ; g[u; u])[u1; u2]")
          .ok);
}

TEST(Wellformed, DiagnosticsNameTheVertex) {
  const WellformedResult r = wf("new u. 1 / u ; 1 / u");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.diags.render().find("'u'"), std::string::npos);
}

}  // namespace
}  // namespace gtdl
