// Property-based soundness tests — Theorem 1 of the paper, executable:
//
//   If the deadlock-freedom kind system accepts a graph type G, then
//   every graph in Norm_n(G) is free of ground deadlocks (no cycles, no
//   unspawned touches) and its Fig. 6 trace is Transitive-Joins-valid.
//
// The generator produces random WELL-FORMED graph types (affine spawns,
// scoped touches — well-formedness by construction) with completely
// random touch placement, so both accepted and rejected types occur.
// For every accepted type the soundness property is checked against all
// graphs up to a normalization depth; for rejected types nothing is
// asserted (the analysis is deliberately conservative), but we do check
// the rejection is stable under new pushing semantics-preservation.

#include <gtest/gtest.h>

#include <random>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/new_push.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {
namespace {

// Random well-formed graph types. Spawn-capable vertices are tracked
// affinely; touches may reference any vertex in scope, including ones
// never or not-yet spawned — exactly the situations the deadlock system
// must sort out.
class RandomGType {
 public:
  explicit RandomGType(std::uint64_t seed) : rng_(seed) {}

  GTypePtr generate() {
    scope_.clear();
    avail_.clear();
    counter_ = 0;
    return gen(4, avail_);
  }

 private:
  unsigned pick(unsigned bound) {
    return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng_);
  }

  Symbol fresh_vertex() {
    return Symbol::fresh("pv" + std::to_string(counter_++));
  }

  // `avail` is the set of spawnable vertices this subterm may consume;
  // consumed vertices are removed (affine discipline).
  GTypePtr gen(unsigned depth, OrderedSet<Symbol>& avail) {
    if (depth == 0) return leaf(avail);
    switch (pick(8)) {
      case 0:
        return leaf(avail);
      case 1: {  // seq: thread avail left to right
        GTypePtr lhs = gen(depth - 1, avail);
        GTypePtr rhs = gen(depth - 1, avail);
        return gt::seq(std::move(lhs), std::move(rhs));
      }
      case 2: {  // or: both branches see the same avail (affine union)
        OrderedSet<Symbol> left_avail = avail;
        OrderedSet<Symbol> right_avail = avail;
        GTypePtr lhs = gen(depth - 1, left_avail);
        GTypePtr rhs = gen(depth - 1, right_avail);
        // Anything consumed by either branch is unavailable afterwards.
        avail = left_avail.set_intersection(right_avail);
        return gt::alt(std::move(lhs), std::move(rhs));
      }
      case 3:
      case 4: {  // new: introduce a spawnable vertex
        const Symbol u = fresh_vertex();
        scope_.insert(u);
        avail.insert(u);
        GTypePtr body = gen(depth - 1, avail);
        avail.erase(u);
        scope_.erase(u);  // touches are lexically scoped
        // Within the body, touches may still have targeted u before (or
        // without) its spawn — the deadlocky shapes the analysis must
        // reject.
        return gt::nu(u, std::move(body));
      }
      case 5:
      case 6: {  // spawn an available vertex
        if (avail.empty()) return leaf(avail);
        const Symbol u = *std::next(avail.begin(),
                                    static_cast<std::ptrdiff_t>(
                                        pick(static_cast<unsigned>(
                                            avail.size()))));
        avail.erase(u);
        GTypePtr body = gen(depth - 1, avail);
        return gt::spawn(std::move(body), u);
      }
      default:
        return leaf(avail);
    }
  }

  GTypePtr leaf(OrderedSet<Symbol>& avail) {
    // Sometimes touch a random in-scope vertex; sometimes spawn; else •.
    const unsigned choice = pick(4);
    if (choice == 0 && !scope_.empty()) {
      const Symbol u = *std::next(
          scope_.begin(),
          static_cast<std::ptrdiff_t>(pick(static_cast<unsigned>(
              scope_.size()))));
      return gt::touch(u);
    }
    if (choice == 1 && !avail.empty()) {
      const Symbol u = *avail.begin();
      avail.erase(u);
      return gt::spawn(gt::empty(), u);
    }
    return gt::empty();
  }

  std::mt19937_64 rng_;
  OrderedSet<Symbol> scope_;
  OrderedSet<Symbol> avail_;
  unsigned counter_ = 0;
};

struct Outcome {
  bool well_formed = false;
  bool accepted = false;
};

Outcome check_one(std::uint64_t seed) {
  RandomGType generator(seed);
  const GTypePtr g = generator.generate();
  Outcome outcome;
  outcome.well_formed = check_wellformed(g).ok;
  EXPECT_TRUE(outcome.well_formed)
      << "generator must produce WF types; seed " << seed << ": "
      << to_string(g);
  if (!outcome.well_formed) return outcome;

  const DeadlockVerdict verdict = check_deadlock_freedom(g);
  outcome.accepted = verdict.deadlock_free;

  // New pushing preserves the set of graphs (checked via counts and
  // per-graph deadlock verdicts).
  const GTypePtr pushed = push_new_bindings(g);
  for (unsigned depth : {2u, 4u}) {
    const NormalizeResult before = normalize(g, depth);
    const NormalizeResult after = normalize(pushed, depth);
    EXPECT_EQ(before.graphs.size(), after.graphs.size())
        << "seed " << seed << " depth " << depth << ": " << to_string(g);
  }

  if (!outcome.accepted) return outcome;

  // THEOREM 1: every graph of an accepted type is deadlock-free and its
  // trace satisfies Transitive Joins.
  const Symbol main_thread = Symbol::intern("main");
  for (unsigned depth : {1u, 3u, 5u}) {
    const NormalizeResult norm = normalize(g, depth);
    EXPECT_FALSE(norm.truncated) << "seed " << seed;
    for (const GraphExprPtr& graph : norm.graphs) {
      const GroundDeadlock ground = find_ground_deadlock(*graph);
      EXPECT_FALSE(ground.any())
          << "UNSOUND for seed " << seed << ": accepted type "
          << to_string(g) << " has deadlocked graph " << to_string(*graph);
      const TraceVerdict tj =
          check_transitive_joins(trace_with_init(*graph, main_thread));
      EXPECT_TRUE(tj.valid)
          << "UNSOUND for seed " << seed << ": accepted type "
          << to_string(g) << " has TJ-invalid trace of "
          << to_string(*graph) << ": " << tj.reason;
    }
  }
  return outcome;
}

class SoundnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoundnessProperty, AcceptedTypesAreDeadlockFree) {
  const std::uint64_t base = GetParam();
  for (std::uint64_t seed = base; seed < base + 50; ++seed) {
    check_one(seed);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessProperty,
                         ::testing::Values(0u, 50u, 100u, 150u, 200u, 250u,
                                           300u, 350u));

TEST(SoundnessProperty, GeneratorExercisesBothOutcomes) {
  // The property is vacuous if the generator only produces one kind of
  // type; make sure both verdicts occur with healthy frequency.
  unsigned accepted = 0;
  unsigned rejected = 0;
  for (std::uint64_t seed = 1000; seed < 1200; ++seed) {
    RandomGType generator(seed);
    const GTypePtr g = generator.generate();
    if (!check_wellformed(g).ok) continue;
    if (check_deadlock_freedom(g).deadlock_free) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GE(accepted, 20u);
  EXPECT_GE(rejected, 20u);
}

}  // namespace
}  // namespace gtdl
