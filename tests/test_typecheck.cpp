// Tests for the FutLang type checker.

#include <gtest/gtest.h>

#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"

namespace gtdl {
namespace {

bool checks(const char* source, std::string* rendered = nullptr) {
  Program program = parse_program_or_throw(source);
  DiagnosticEngine diags;
  const bool ok = typecheck_program(program, diags);
  if (rendered != nullptr) *rendered = diags.render();
  return ok;
}

TEST(Typecheck, MinimalProgram) {
  EXPECT_TRUE(checks("fun main() { }"));
}

TEST(Typecheck, RequiresMain) {
  std::string msg;
  EXPECT_FALSE(checks("fun f() { }", &msg));
  EXPECT_NE(msg.find("main"), std::string::npos);
}

TEST(Typecheck, MainMustBeNullaryUnit) {
  EXPECT_FALSE(checks("fun main(x: int) { }"));
  EXPECT_FALSE(checks("fun main() -> int { return 1; }"));
}

TEST(Typecheck, DuplicateFunctionNames) {
  EXPECT_FALSE(checks("fun f() {} fun f() {} fun main() {}"));
}

TEST(Typecheck, DuplicateParams) {
  EXPECT_FALSE(checks("fun f(a: int, a: int) {} fun main() {}"));
}

TEST(Typecheck, FutureReturnTypeRejected) {
  std::string msg;
  EXPECT_FALSE(checks(
      "fun f() -> future[int] { return new_future[int](); } fun main() {}",
      &msg));
  EXPECT_NE(msg.find("future"), std::string::npos);
}

TEST(Typecheck, ListOfFuturesRejected) {
  EXPECT_FALSE(checks("fun f(l: list[future[int]]) {} fun main() {}"));
}

TEST(Typecheck, FutureOfFutureRejected) {
  EXPECT_FALSE(
      checks("fun main() { let h = new_future[future[int]](); }"));
}

TEST(Typecheck, SpawnAndTouchAgreeOnElementType) {
  EXPECT_TRUE(checks(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return 40 + 2; }
      let v = touch(h);
      let w = v + 1;
    }
  )"));
  // Spawn body returning the wrong type:
  EXPECT_FALSE(checks(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { return "nope"; }
    }
  )"));
}

TEST(Typecheck, SpawnBodyMustReturnOnEveryPath) {
  EXPECT_FALSE(checks(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { if true { return 1; } }
    }
  )"));
  EXPECT_TRUE(checks(R"(
    fun main() {
      let h = new_future[int]();
      spawn h { if true { return 1; } else { return 2; } }
    }
  )"));
}

TEST(Typecheck, TouchOfNonFutureRejected) {
  EXPECT_FALSE(checks("fun main() { let x = 1; touch(x); }"));
  EXPECT_FALSE(checks("fun main() { spawn 3 { return; } }"));
}

TEST(Typecheck, NonUnitFunctionMustReturn) {
  EXPECT_FALSE(checks("fun f() -> int { } fun main() {}"));
  EXPECT_TRUE(checks("fun f() -> int { return 3; } fun main() {}"));
}

TEST(Typecheck, ReturnTypeMismatch) {
  EXPECT_FALSE(checks("fun f() -> int { return true; } fun main() {}"));
  EXPECT_FALSE(checks("fun f() { return 3; } fun main() {}"));
}

TEST(Typecheck, LetAnnotationMismatch) {
  EXPECT_FALSE(checks("fun main() { let x: int = true; }"));
  EXPECT_TRUE(checks("fun main() { let x: int = 3; }"));
}

TEST(Typecheck, NilNeedsContext) {
  EXPECT_FALSE(checks("fun main() { let l = nil; }"));
  EXPECT_TRUE(checks("fun main() { let l: list[int] = nil; }"));
}

TEST(Typecheck, AssignmentTypeAndScope) {
  EXPECT_FALSE(checks("fun main() { x = 1; }"));
  EXPECT_FALSE(checks("fun main() { let x = 1; x = true; }"));
  EXPECT_TRUE(checks("fun main() { let x = 1; x = 2; }"));
}

TEST(Typecheck, BlockScoping) {
  EXPECT_FALSE(checks(R"(
    fun main() {
      if true { let y = 1; } else { }
      let z = y;
    }
  )"));
}

TEST(Typecheck, ConditionsMustBeBool) {
  EXPECT_FALSE(checks("fun main() { if 1 { } else { } }"));
  EXPECT_FALSE(checks("fun main() { while 1 { } }"));
}

TEST(Typecheck, CallArityAndTypes) {
  EXPECT_FALSE(checks(
      "fun f(a: int) {} fun main() { f(); }"));
  EXPECT_FALSE(checks(
      "fun f(a: int) {} fun main() { f(true); }"));
  EXPECT_TRUE(checks(
      "fun f(a: int) {} fun main() { f(1); }"));
  EXPECT_FALSE(checks("fun main() { g(); }"));
}

TEST(Typecheck, BuiltinSignatures) {
  EXPECT_TRUE(checks(R"(
    fun main() {
      let r = rand();
      print(int_to_string(r));
      print(concat("a", "b"));
      let l = range(0, 5);
      let n = length(l);
      let h = head(l);
      let t = tail(l);
      let c = cons(9, t);
      let a = append(c, l);
      let p = take(a, 2);
      let q = drop(a, 2);
    }
  )"));
  EXPECT_FALSE(checks("fun main() { print(42); }"));
  EXPECT_FALSE(checks("fun main() { let x = length(3); }"));
  EXPECT_FALSE(checks("fun main() { let x = head(nil); }"));
  EXPECT_FALSE(checks("fun main() { rand(1); }"));
  EXPECT_FALSE(checks("fun main() { let l = cons(1, range(0,1));"
                      " let m = append(l, cons(true, nil)); }"));
}

TEST(Typecheck, ShadowingABuiltinRejected) {
  EXPECT_FALSE(checks("fun rand() -> int { return 4; } fun main() {}"));
}

TEST(Typecheck, EqualityRules) {
  EXPECT_TRUE(checks("fun main() { let b = \"x\" == \"y\"; }"));
  EXPECT_FALSE(checks("fun main() { let b = 1 == true; }"));
  EXPECT_FALSE(checks(R"(
    fun main() {
      let h = new_future[int]();
      let k = new_future[int]();
      let b = h == k;
    }
  )"));
}

TEST(Typecheck, TypesAnnotatedOnExpressions) {
  Program program = parse_program_or_throw(
      "fun main() { let x = 1 + 2; }");
  DiagnosticEngine diags;
  ASSERT_TRUE(typecheck_program(program, diags));
  const auto* let = std::get_if<SLet>(&program.functions[0].body[0]->node);
  ASSERT_NE(let, nullptr);
  ASSERT_NE(let->init->type, nullptr);
  EXPECT_TRUE(is_prim(*let->init->type, PrimKind::kInt));
}

}  // namespace
}  // namespace gtdl
