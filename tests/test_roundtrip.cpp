// Property: print ∘ parse is the identity on graph types — checked over
// randomly generated types (covering all ten constructors, including
// binders and applications), plus determinism of the printer.

#include <gtest/gtest.h>

#include <random>

#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

// Generates arbitrary syntactically valid graph types (not necessarily
// well-formed — the parser and printer must handle those too).
class RandomSyntax {
 public:
  explicit RandomSyntax(std::uint64_t seed) : rng_(seed) {}

  GTypePtr generate() { return gen(4); }

 private:
  unsigned pick(unsigned bound) {
    return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng_);
  }

  Symbol vertex() { return Symbol::intern("v" + std::to_string(pick(6))); }
  Symbol gvar() { return Symbol::intern("G" + std::to_string(pick(3))); }

  std::vector<Symbol> vertex_list(unsigned max) {
    std::vector<Symbol> out;
    const unsigned n = pick(max + 1);
    for (unsigned i = 0; i < n; ++i) out.push_back(vertex());
    return out;
  }

  GTypePtr gen(unsigned depth) {
    if (depth == 0) {
      switch (pick(3)) {
        case 0:
          return gt::empty();
        case 1:
          return gt::touch(vertex());
        default:
          return gt::var(gvar());
      }
    }
    switch (pick(10)) {
      case 0:
        return gt::empty();
      case 1:
        return gt::touch(vertex());
      case 2:
        return gt::var(gvar());
      case 3:
        return gt::seq(gen(depth - 1), gen(depth - 1));
      case 4:
        return gt::alt(gen(depth - 1), gen(depth - 1));
      case 5:
        return gt::spawn(gen(depth - 1), vertex());
      case 6:
        return gt::nu(vertex(), gen(depth - 1));
      case 7:
        return gt::rec(gvar(), gen(depth - 1));
      case 8:
        return gt::pi(vertex_list(2), vertex_list(2), gen(depth - 1));
      default:
        return gt::app(gen(depth - 1), vertex_list(2), vertex_list(2));
    }
  }

  std::mt19937_64 rng_;
};

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, PrintParsePrintIsStable) {
  for (std::uint64_t seed = GetParam(); seed < GetParam() + 100; ++seed) {
    RandomSyntax generator(seed);
    const GTypePtr original = generator.generate();
    const std::string printed = to_string(*original);

    DiagnosticEngine diags;
    const GTypePtr reparsed = parse_gtype(printed, diags);
    ASSERT_NE(reparsed, nullptr)
        << "seed " << seed << ": '" << printed << "'\n" << diags.render();
    EXPECT_TRUE(structurally_equal(*original, *reparsed))
        << "seed " << seed << ": '" << printed << "' reparsed as '"
        << to_string(*reparsed) << "'";
    // Printing is deterministic and a fixed point after one round.
    EXPECT_EQ(printed, to_string(*reparsed)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(0u, 100u, 200u, 300u, 400u));

}  // namespace
}  // namespace gtdl
