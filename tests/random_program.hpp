// Forwarder: the random FutLang program generator moved into the fuzz
// library (src/gtdl/fuzz/random_program.hpp) when the differential
// fuzzing farm industrialized it — the farm, the fdlf binary, and the
// test suites must all draw the exact same (seed -> program) mapping.
// The RNG-stream compatibility note lives in the real header.

#pragma once

#include "gtdl/fuzz/random_program.hpp"
