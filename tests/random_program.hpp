// Random-but-always-well-typed FutLang program generator, shared by the
// end-to-end soundness fuzz (test_e2e_fuzz.cpp), the streaming
// enumeration differential suite (test_streaming.cpp), and the
// collection-constructor differential suite (test_adt.cpp).
//
// The generator emits straight-line main() bodies over a pool of future
// handles with new/spawn/touch in arbitrary (often unsafe) orders, plus
// spawn bodies that may touch earlier handles — including touch-before-
// spawn, double-touch, never-spawned, conditional regions, and nested
// spawn bodies.
//
// With `collections` enabled it additionally emits the ISSUE-6 forms —
// spawn_vec families (whose one body may touch scalar handles),
// touch_all joins, indexed member touches fs[i], and staged pipelines —
// wired into the same shuffled-hazard scheme, so touch-before-spawn and
// never-spawned bugs arise through family members and stages too. The
// flag is off by default and drawing it does not perturb the RNG stream,
// so existing seeds keep generating byte-identical programs.

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace gtdl::fuzz {

class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed, bool collections = false)
      : rng_(seed), collections_(collections) {}

  std::string generate() {
    const unsigned handles = 2 + pick(3);  // 2..4 handles
    std::string body;
    for (unsigned h = 0; h < handles; ++h) {
      body += "  let h" + std::to_string(h) + " = new_future[int]();\n";
    }
    // A shuffled multiset of operations over the handles.
    std::vector<std::string> ops;
    for (unsigned h = 0; h < handles; ++h) {
      // Most handles get spawned (sometimes twice-attempted programs are
      // invalid at runtime, so exactly once here); some never.
      if (pick(10) != 0) ops.push_back(spawn_stmt(h, handles));
      const unsigned touches = pick(3);  // 0..2 touches
      for (unsigned t = 0; t < touches; ++t) {
        ops.push_back("  let v" + fresh() + " = touch(h" +
                      std::to_string(h) + ");\n");
      }
    }
    if (collections_) {
      // Families must be bound before their joins can reference them, so
      // the spawn_vec statements join the header while touch_all /
      // indexed touches enter the shuffled pool. Hazards still flow
      // through the families: a member body may touch a scalar handle
      // whose spawn lands after the join (or never happens at all).
      const unsigned families = 1 + pick(2);  // 1..2 families
      for (unsigned f = 0; f < families; ++f) {
        const unsigned width = 2 + pick(3);  // 2..4 members
        body += "  let fs" + std::to_string(f) + " = spawn_vec[int] " +
                std::to_string(width) + " { " + member_body(handles) +
                " }\n";
        const unsigned joins = pick(3);  // 0..2 whole-family joins
        for (unsigned j = 0; j < joins; ++j) {
          ops.push_back("  let v" + fresh() + " = length(touch_all(fs" +
                        std::to_string(f) + "));\n");
        }
        const unsigned indexed = pick(3);  // 0..2 member joins
        for (unsigned j = 0; j < indexed; ++j) {
          ops.push_back("  let v" + fresh() + " = touch(fs" +
                        std::to_string(f) + "[" +
                        std::to_string(pick(width)) + "]);\n");
        }
      }
      if (pick(2) != 0) ops.push_back(pipeline_stmt(handles));
    }
    std::shuffle(ops.begin(), ops.end(), rng_);
    for (std::string& op : ops) body += op;
    return "fun main() {\n" + body + "}\n";
  }

 private:
  unsigned pick(unsigned bound) {
    return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng_);
  }

  std::string fresh() { return std::to_string(counter_++); }

  std::string spawn_stmt(unsigned h, unsigned handles) {
    std::string body;
    switch (pick(3)) {
      case 0:
        body = "return " + std::to_string(pick(100)) + ";";
        break;
      case 1: {
        // Touch some other handle from inside the future body.
        const unsigned other = pick(handles);
        if (other == h) {
          body = "return 1;";
        } else {
          body = "return touch(h" + std::to_string(other) + ") + 1;";
        }
        break;
      }
      default: {
        // A conditional body.
        body = "if rand() % 2 == 0 { return 0; } else { return " +
               std::to_string(pick(50)) + "; }";
        break;
      }
    }
    return "  spawn h" + std::to_string(h) + " { " + body + " }\n";
  }

  // The one body shared by every member of a spawn_vec family.
  std::string member_body(unsigned handles) {
    if (pick(2) == 0) {
      return "return " + std::to_string(pick(100)) + ";";
    }
    return "return touch(h" + std::to_string(pick(handles)) + ") + 1;";
  }

  // A 2..3-stage pipeline; stages may pull scalar handles in.
  std::string pipeline_stmt(unsigned handles) {
    const unsigned stages = 2 + pick(2);
    std::string stmt = "  pipeline {\n";
    for (unsigned s = 0; s < stages; ++s) {
      if (pick(2) == 0) {
        stmt += "    stage { let v" + fresh() + " = touch(h" +
                std::to_string(pick(handles)) + "); }\n";
      } else {
        stmt += "    stage { let v" + fresh() + " = " +
                std::to_string(pick(50)) + "; }\n";
      }
    }
    return stmt + "  }\n";
  }

  std::mt19937_64 rng_;
  bool collections_ = false;
  unsigned counter_ = 0;
};

}  // namespace gtdl::fuzz
