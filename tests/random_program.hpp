// Random-but-always-well-typed FutLang program generator, shared by the
// end-to-end soundness fuzz (test_e2e_fuzz.cpp) and the streaming
// enumeration differential suite (test_streaming.cpp).
//
// The generator emits straight-line main() bodies over a pool of future
// handles with new/spawn/touch in arbitrary (often unsafe) orders, plus
// spawn bodies that may touch earlier handles — including touch-before-
// spawn, double-touch, never-spawned, conditional regions, and nested
// spawn bodies.

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace gtdl::fuzz {

class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    const unsigned handles = 2 + pick(3);  // 2..4 handles
    std::string body;
    for (unsigned h = 0; h < handles; ++h) {
      body += "  let h" + std::to_string(h) + " = new_future[int]();\n";
    }
    // A shuffled multiset of operations over the handles.
    std::vector<std::string> ops;
    for (unsigned h = 0; h < handles; ++h) {
      // Most handles get spawned (sometimes twice-attempted programs are
      // invalid at runtime, so exactly once here); some never.
      if (pick(10) != 0) ops.push_back(spawn_stmt(h, handles));
      const unsigned touches = pick(3);  // 0..2 touches
      for (unsigned t = 0; t < touches; ++t) {
        ops.push_back("  let v" + fresh() + " = touch(h" +
                      std::to_string(h) + ");\n");
      }
    }
    std::shuffle(ops.begin(), ops.end(), rng_);
    for (std::string& op : ops) body += op;
    return "fun main() {\n" + body + "}\n";
  }

 private:
  unsigned pick(unsigned bound) {
    return std::uniform_int_distribution<unsigned>(0, bound - 1)(rng_);
  }

  std::string fresh() { return std::to_string(counter_++); }

  std::string spawn_stmt(unsigned h, unsigned handles) {
    std::string body;
    switch (pick(3)) {
      case 0:
        body = "return " + std::to_string(pick(100)) + ";";
        break;
      case 1: {
        // Touch some other handle from inside the future body.
        const unsigned other = pick(handles);
        if (other == h) {
          body = "return 1;";
        } else {
          body = "return touch(h" + std::to_string(other) + ") + 1;";
        }
        break;
      }
      default: {
        // A conditional body.
        body = "if rand() % 2 == 0 { return 0; } else { return " +
               std::to_string(pick(50)) + "; }";
        break;
      }
    }
    return "  spawn h" + std::to_string(h) + " { " + body + " }\n";
  }

  std::mt19937_64 rng_;
  unsigned counter_ = 0;
};

}  // namespace gtdl::fuzz
