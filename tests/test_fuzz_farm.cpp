// The fuzzing farm's own test suite (ISSUE 10): printer round-trips,
// oracle classification on hand-crafted findings, shrinker determinism
// and 1-minimality, process-level crash containment, and the curated
// regression corpus in examples/programs/fuzz/.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/printer.hpp"
#include "gtdl/fuzz/farm.hpp"
#include "gtdl/fuzz/oracle.hpp"
#include "gtdl/fuzz/random_program.hpp"
#include "gtdl/fuzz/shrink.hpp"

namespace gtdl::fuzz {
namespace {

// Scoped GTDL_TESTING_MISVERDICT=accept-all: the deliberately-unsound
// detector hook (detect/deadlock.cpp) the farm's self-test is built on.
struct MisverdictScope {
  MisverdictScope() { ::setenv("GTDL_TESTING_MISVERDICT", "accept-all", 1); }
  ~MisverdictScope() { ::unsetenv("GTDL_TESTING_MISVERDICT"); }
};

OracleOptions fast_oracle() {
  OracleOptions o;
  o.timeout_ms = 5000;
  return o;
}

const char* kDeadlocker =
    "fun main() {\n"
    "  let h0 = new_future[int]();\n"
    "  let v0 = touch(h0);\n"
    "  spawn h0 { return 1; }\n"
    "}\n";

// --- Printer -----------------------------------------------------------

TEST(Printer, RoundTripsGeneratedPrograms) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string source =
        RandomProgram(seed, /*collections=*/(seed & 1) != 0).generate();
    const Program p1 = parse_program_or_throw(source);
    const std::string printed = print_program(p1);
    const Program p2 = parse_program_or_throw(printed);
    // Structural identity via the printer itself: print(parse(print(p)))
    // must be a fixpoint.
    EXPECT_EQ(printed, print_program(p2)) << "seed " << seed;
  }
}

TEST(Printer, RoundTripPreservesClassification) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string source = RandomProgram(seed, true).generate();
    const std::string printed =
        print_program(parse_program_or_throw(source));
    const OracleResult a = classify_program(source, seed, fast_oracle());
    const OracleResult b = classify_program(printed, seed, fast_oracle());
    EXPECT_EQ(a.outcome, b.outcome) << "seed " << seed << "\n" << printed;
  }
}

TEST(Printer, EscapesStringLiterals) {
  const std::string source =
      "fun main() {\n  let s = \"a\\n\\t\\\\\\\"b\";\n  print(s);\n}\n";
  const Program p = parse_program_or_throw(source);
  const std::string printed = print_program(p);
  EXPECT_EQ(printed, print_program(parse_program_or_throw(printed)));
}

// --- Oracle ------------------------------------------------------------

TEST(Oracle, KnownDeadlockIsTruePositive) {
  const OracleResult r = classify_program(kDeadlocker, 1, fast_oracle());
  EXPECT_EQ(r.outcome, Outcome::kTruePositive);
  EXPECT_EQ(r.static_verdict, "may-deadlock");
  EXPECT_GT(r.deadlocked_runs, 0u);
}

TEST(Oracle, SafeProgramIsSoundFree) {
  const char* source =
      "fun main() {\n"
      "  let h0 = new_future[int]();\n"
      "  spawn h0 { return 1; }\n"
      "  let v0 = touch(h0);\n"
      "}\n";
  const OracleResult r = classify_program(source, 1, fast_oracle());
  EXPECT_EQ(r.outcome, Outcome::kSoundFree);
  EXPECT_EQ(r.deadlocked_runs, 0u);
}

TEST(Oracle, ConservativeRejectIsImprecise) {
  // h0's body touches h1 whose spawn comes later: rejected statically,
  // never deadlocks at runtime.
  const char* source =
      "fun main() {\n"
      "  let h0 = new_future[int]();\n"
      "  let h1 = new_future[int]();\n"
      "  spawn h0 { return touch(h1) + 1; }\n"
      "  spawn h1 { return 7; }\n"
      "  let v0 = touch(h0);\n"
      "}\n";
  const OracleResult r = classify_program(source, 1, fast_oracle());
  EXPECT_EQ(r.outcome, Outcome::kImprecise);
}

TEST(Oracle, GarbageIsCompileError) {
  const OracleResult r = classify_program("fun main( {", 1, fast_oracle());
  EXPECT_EQ(r.outcome, Outcome::kCompileError);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Oracle, InjectedFaultIsContainedCrash) {
  OracleOptions o = fast_oracle();
  o.fault_spec = "parse:1:42";
  const OracleResult r = classify_program(kDeadlocker, 1, o);
  EXPECT_EQ(r.outcome, Outcome::kCrash);
  // And the arming is per-call: the same program without the spec is
  // untouched afterwards.
  EXPECT_EQ(classify_program(kDeadlocker, 1, fast_oracle()).outcome,
            Outcome::kTruePositive);
}

TEST(Oracle, MisverdictHookProducesUnsound) {
  MisverdictScope misverdict;
  const OracleResult r = classify_program(kDeadlocker, 1, fast_oracle());
  EXPECT_EQ(r.outcome, Outcome::kUnsound);
  EXPECT_EQ(r.static_verdict, "deadlock-free");
}

TEST(Oracle, DeterministicForFixedSeed) {
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    const std::string source = RandomProgram(seed, true).generate();
    const OracleResult a = classify_program(source, seed, fast_oracle());
    const OracleResult b = classify_program(source, seed, fast_oracle());
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.deadlocked_runs, b.deadlocked_runs);
    EXPECT_EQ(a.detail, b.detail);
  }
}

// --- Generator ---------------------------------------------------------

TEST(Generator, PlatformPinnedStream) {
  // The splitmix64 reference vector: these values must never change, on
  // any platform — seed replay and crash attribution depend on it.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ull);
  // And a full generated program is byte-stable for a fixed seed.
  EXPECT_EQ(RandomProgram(42, true).generate(),
            RandomProgram(42, true).generate());
}

// --- Shrinker ----------------------------------------------------------

ShrinkEvaluator same_class(Outcome want, std::uint64_t seed) {
  return [want, seed](const std::string& candidate) {
    return classify_program(candidate, seed, fast_oracle()).outcome == want;
  };
}

TEST(Shrinker, PreservesClassificationAndShrinks) {
  // A generated program with a known deadlock, padded with removable
  // structure.
  const std::string source = RandomProgram(7, true).generate();
  ASSERT_EQ(classify_program(source, 7, fast_oracle()).outcome,
            Outcome::kTruePositive);
  const ShrinkResult r =
      shrink_program(source, same_class(Outcome::kTruePositive, 7));
  EXPECT_TRUE(r.reproduced);
  EXPECT_TRUE(r.one_minimal);
  EXPECT_GT(r.reductions_applied, 0u);
  EXPECT_LT(r.program.size(), source.size());
  EXPECT_EQ(classify_program(r.program, 7, fast_oracle()).outcome,
            Outcome::kTruePositive);
}

TEST(Shrinker, DeterministicForFixedInput) {
  const std::string source = RandomProgram(9, true).generate();
  const OracleResult orig = classify_program(source, 9, fast_oracle());
  const ShrinkResult a =
      shrink_program(source, same_class(orig.outcome, 9));
  const ShrinkResult b =
      shrink_program(source, same_class(orig.outcome, 9));
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.candidates_tried, b.candidates_tried);
  EXPECT_EQ(a.reductions_applied, b.reductions_applied);
}

TEST(Shrinker, ResultIsOneMinimalUnderPassList) {
  const std::string source = RandomProgram(5, false).generate();
  const OracleResult orig = classify_program(source, 5, fast_oracle());
  ASSERT_TRUE(orig.outcome == Outcome::kTruePositive ||
              orig.outcome == Outcome::kSoundFree ||
              orig.outcome == Outcome::kImprecise);
  const ShrinkResult first =
      shrink_program(source, same_class(orig.outcome, 5));
  ASSERT_TRUE(first.one_minimal);
  // 1-minimality, checked by the definition: shrinking the result again
  // finds nothing to remove.
  const ShrinkResult again =
      shrink_program(first.program, same_class(orig.outcome, 5));
  EXPECT_EQ(again.reductions_applied, 0u);
  EXPECT_EQ(again.program, first.program);
}

TEST(Shrinker, KnownCrashViaFaultShrinksToSameClass) {
  OracleOptions o = fast_oracle();
  o.fault_spec = "alloc:1:9";
  const std::string source = RandomProgram(7, true).generate();
  const OracleResult orig = classify_program(source, 7, o);
  ASSERT_EQ(orig.outcome, Outcome::kCrash);
  const ShrinkResult r = shrink_program(
      source, [&](const std::string& candidate) {
        return classify_program(candidate, 7, o).outcome == Outcome::kCrash;
      });
  EXPECT_TRUE(r.reproduced);
  EXPECT_EQ(classify_program(r.program, 7, o).outcome, Outcome::kCrash);
}

TEST(Shrinker, FlakyFindingIsNotShrunk) {
  const std::string source = RandomProgram(7, true).generate();
  const ShrinkResult r = shrink_program(
      source, [](const std::string&) { return false; });
  EXPECT_FALSE(r.reproduced);
  EXPECT_EQ(r.program, source);
}

TEST(Shrinker, LineFallbackForUnparseableSources) {
  const std::string source =
      "this is not futlang\nKEEP THIS LINE\nnor is this\nor this\n";
  const ShrinkResult r = shrink_program(
      source, [](const std::string& candidate) {
        return candidate.find("KEEP THIS LINE") != std::string::npos;
      });
  EXPECT_TRUE(r.reproduced);
  EXPECT_TRUE(r.one_minimal);
  EXPECT_EQ(r.program, "KEEP THIS LINE\n");
}

// --- Farm --------------------------------------------------------------

FarmOptions small_farm(std::uint64_t programs) {
  FarmOptions o;
  o.jobs = 2;
  o.seed_base = 1;
  o.max_programs = programs;
  o.oracle.timeout_ms = 5000;
  return o;
}

TEST(Farm, CountModeIsDeterministicAndClean) {
  const FarmReport a = run_farm(small_farm(40));
  const FarmReport b = run_farm(small_farm(40));
  EXPECT_EQ(a.programs, 40u);
  EXPECT_EQ(a.exit_code(), 0) << a.error;
  for (unsigned i = 0; i < kOutcomeCount; ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << to_string(static_cast<Outcome>(i));
  }
  EXPECT_TRUE(a.findings.empty());
  // Vacuity guard: the seed range must exercise both verdicts.
  EXPECT_GT(a.count(Outcome::kSoundFree), 0u);
  EXPECT_GT(a.count(Outcome::kTruePositive), 0u);
}

TEST(Farm, SeedSetIsIndependentOfJobs) {
  FarmOptions four = small_farm(40);
  four.jobs = 4;
  const FarmReport a = run_farm(small_farm(40));
  const FarmReport b = run_farm(four);
  for (unsigned i = 0; i < kOutcomeCount; ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << to_string(static_cast<Outcome>(i));
  }
}

TEST(Farm, CatchesDeliberatelyUnsoundDetector) {
  MisverdictScope misverdict;
  FarmOptions o = small_farm(20);
  o.max_shrink_findings = 4;
  const FarmReport report = run_farm(o);
  EXPECT_EQ(report.exit_code(), 1) << report.error;
  ASSERT_FALSE(report.findings.empty());
  std::size_t shrunk = 0;
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.outcome, Outcome::kUnsound);
    if (f.shrunk.empty()) continue;
    ++shrunk;
    EXPECT_TRUE(f.shrink_reproduced);
    // The acceptance bar: a shrunk unsound reproducer is tiny — at most
    // 10 definitions (ours are single-function programs).
    std::size_t defs = 0;
    for (std::size_t pos = f.shrunk.find("fun "); pos != std::string::npos;
         pos = f.shrunk.find("fun ", pos + 4)) {
      ++defs;
    }
    EXPECT_LE(defs, 10u);
    EXPECT_LT(f.shrunk.size(), f.program.size());
  }
  EXPECT_GT(shrunk, 0u);
}

TEST(Farm, SurvivesInjectedWorkerCrash) {
  FarmOptions o = small_farm(30);
  o.kill_seed = 9;  // worker 0's 5th seed (1, 3, 5, 7, 9, ...)
  const FarmReport report = run_farm(o);
  // The poisoned seed is recorded, the worker respawned, and every other
  // seed still classified.
  EXPECT_EQ(report.worker_restarts, 1u);
  EXPECT_FALSE(report.restart_storm);
  EXPECT_EQ(report.programs, 29u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].outcome, Outcome::kWorkerCrash);
  EXPECT_EQ(report.findings[0].seed, 9u);
  EXPECT_EQ(report.exit_code(), 4);
}

TEST(Farm, WritesFindingsDirAndBenchJson) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "gtdl_fuzz_farm_test";
  fs::remove_all(dir);
  MisverdictScope misverdict;
  FarmOptions o = small_farm(10);
  o.max_shrink_findings = 2;
  o.findings_dir = (dir / "findings").string();
  o.bench_json = (dir / "bench_fuzz.json").string();
  const FarmReport report = run_farm(o);
  EXPECT_EQ(report.exit_code(), 1);
  ASSERT_FALSE(report.findings.empty());
  // One .fut per finding, headed by its class and seed.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(o.findings_dir)) {
    if (entry.path().extension() == ".fut") ++files;
  }
  EXPECT_GE(files, report.findings.size());
  std::ifstream bench(o.bench_json);
  ASSERT_TRUE(bench.good());
  std::ostringstream contents;
  contents << bench.rdbuf();
  const std::string json = contents.str();
  for (const char* key :
       {"\"bench\": \"fuzz_farm\"", "\"programs\"", "\"precision\"",
        "\"unknown_rate\"", "\"programs_per_sec\"", "\"counts\"",
        "\"rng_stream\": \"splitmix64-v2\"", "\"exit_code\": 1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  fs::remove_all(dir);
}

TEST(Farm, RejectsContradictoryConfiguration) {
  FarmOptions o;
  o.jobs = 0;
  EXPECT_EQ(run_farm(o).exit_code(), 2);
  FarmOptions both;
  both.max_programs = 10;
  both.duration_s = 1;
  EXPECT_EQ(run_farm(both).exit_code(), 2);
}

TEST(Farm, ReplaySeedMatchesFarmClassification) {
  // Replay must be the exact worker pipeline: same generator, same
  // oracle seeds.
  OracleOptions o = fast_oracle();
  std::string program;
  const OracleResult a = replay_seed(7, o, &program);
  EXPECT_EQ(program, RandomProgram(7, true).generate());
  const OracleResult b = replay_seed(7, o);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.detail, b.detail);
}

// --- Regression corpus -------------------------------------------------

// Every curated finding in examples/programs/fuzz/ carries its recorded
// classification in a `# fuzz-class:` header; the oracle must keep
// honoring it (the CI corpus driver additionally checks the `# fdlc-exit:`
// headers through the real binary — scripts/check_fuzz_corpus.py).
TEST(RegressionCorpus, CuratedSeedsKeepTheirClassification) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(GTDL_PROGRAMS_DIR) / "fuzz";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".fut") continue;
    std::ifstream in(entry.path());
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string source = contents.str();
    const std::string tag = "# fuzz-class: ";
    const std::size_t at = source.find(tag);
    ASSERT_NE(at, std::string::npos) << entry.path();
    const std::size_t end = source.find('\n', at);
    const std::string want = source.substr(at + tag.size(),
                                           end - at - tag.size());
    const OracleResult r = classify_program(source, 1, fast_oracle());
    EXPECT_EQ(std::string(to_string(r.outcome)), want)
        << entry.path() << ": " << r.detail;
    ++checked;
  }
  EXPECT_GE(checked, 6u);
}

}  // namespace
}  // namespace gtdl::fuzz
