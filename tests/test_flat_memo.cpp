// Differential tests for the flat open-addressing memo tables
// (support/flat_memo.hpp). The contract under test: the flat backend and
// the map backend it replaced are behaviorally interchangeable — same
// lookup results at the container level, same verdicts / graph sets /
// memo hit counts at the analysis level — and a generation reset after a
// truncated or budget-cancelled run leaves no stale state behind for the
// next analysis on the same thread.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <regex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/flat_memo.hpp"

namespace gtdl {
namespace {

// Restores the backend toggle on scope exit so a failing assertion in
// one test cannot leak map mode into the rest of the binary.
class ScopedFlatMemo {
 public:
  explicit ScopedFlatMemo(bool enabled)
      : previous_(set_flat_memo_enabled(enabled)) {}
  ~ScopedFlatMemo() { set_flat_memo_enabled(previous_); }
  ScopedFlatMemo(const ScopedFlatMemo&) = delete;
  ScopedFlatMemo& operator=(const ScopedFlatMemo&) = delete;

 private:
  bool previous_;
};

// --- FlatMemo container level ----------------------------------------------

TEST(FlatMemo, FindOnEmptyTableMisses) {
  FlatMemo<std::uint64_t, int> memo;
  EXPECT_EQ(memo.find(7), nullptr);
  EXPECT_EQ(memo.size(), 0u);
}

TEST(FlatMemo, PutThenFindAndOverwrite) {
  FlatMemo<std::uint64_t, int> memo;
  memo.put(7, 70);
  ASSERT_NE(memo.find(7), nullptr);
  EXPECT_EQ(*memo.find(7), 70);
  memo.put(7, 71);  // insert_or_assign semantics
  EXPECT_EQ(*memo.find(7), 71);
  EXPECT_EQ(memo.size(), 1u);
}

TEST(FlatMemo, TryEmplaceElectsOneOwner) {
  FlatMemo<std::uint64_t, int> memo;
  auto [first, inserted_first] = memo.try_emplace(42);
  EXPECT_TRUE(inserted_first);
  *first = 5;
  auto [second, inserted_second] = memo.try_emplace(42);
  EXPECT_FALSE(inserted_second);
  EXPECT_EQ(*second, 5);
}

TEST(FlatMemo, GenerationResetInvalidatesEverything) {
  FlatMemo<std::uint64_t, int> memo;
  for (std::uint64_t k = 0; k < 40; ++k) memo.put(k, static_cast<int>(k));
  EXPECT_EQ(memo.size(), 40u);
  memo.reset();
  EXPECT_EQ(memo.size(), 0u);
  for (std::uint64_t k = 0; k < 40; ++k) {
    EXPECT_EQ(memo.find(k), nullptr) << "stale key " << k << " survived";
  }
  // The table is immediately reusable, and fresh writes win over the
  // stale slots they reclaim.
  memo.put(3, 33);
  ASSERT_NE(memo.find(3), nullptr);
  EXPECT_EQ(*memo.find(3), 33);
}

TEST(FlatMemo, GrowthKeepsLiveEntriesAndDropsStale) {
  FlatMemo<std::uint64_t, std::uint64_t> memo;
  for (std::uint64_t k = 0; k < 100; ++k) memo.put(k, k * 2);
  memo.reset();  // 100 stale entries
  // Enough live inserts to force growth past the stale population.
  for (std::uint64_t k = 1000; k < 1800; ++k) memo.put(k, k * 3);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(memo.find(k), nullptr);
  }
  for (std::uint64_t k = 1000; k < 1800; ++k) {
    ASSERT_NE(memo.find(k), nullptr) << k;
    EXPECT_EQ(*memo.find(k), k * 3);
  }
}

TEST(FlatMemo, ManyResetsStayCoherent) {
  // The generation tag is the entire reset mechanism; hammer it.
  FlatMemo<std::uint64_t, std::uint64_t> memo;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    memo.put(round % 7, round);
    ASSERT_NE(memo.find(round % 7), nullptr);
    EXPECT_EQ(*memo.find(round % 7), round);
    EXPECT_EQ(memo.size(), 1u);
    memo.reset();
    EXPECT_EQ(memo.find(round % 7), nullptr);
  }
}

TEST(FlatMemo, PayloadHintTracksVectorInserts) {
  FlatMemo<std::uint64_t, std::vector<int>> memo;
  memo.put(1, std::vector<int>(100));
  memo.put(2, std::vector<int>(50));
  EXPECT_EQ(memo.payload_hint(), 150u);
  memo.purge();
  EXPECT_EQ(memo.payload_hint(), 0u);
  EXPECT_EQ(memo.find(1), nullptr);
  EXPECT_EQ(memo.find(2), nullptr);
}

// Differential fuzz against std::unordered_map: identical random op
// sequences, identical observable results — including across resets,
// which the reference models by clearing.
TEST(FlatMemo, MatchesUnorderedMapOnRandomOps) {
  std::mt19937_64 rng(0xf1a7);
  FlatMemo<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng() % 512;  // enough collisions to matter
    switch (rng() % 4) {
      case 0: {  // put
        const std::uint64_t value = rng();
        flat.put(key, value);
        reference.insert_or_assign(key, value);
        break;
      }
      case 1: {  // try_emplace
        auto [slot, inserted] = flat.try_emplace(key);
        auto [it, ref_inserted] = reference.try_emplace(key);
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        if (inserted) *slot = it->second = rng();
        ASSERT_EQ(*slot, it->second) << "op " << op;
        break;
      }
      case 2: {  // find
        const std::uint64_t* hit = flat.find(key);
        auto it = reference.find(key);
        ASSERT_EQ(hit != nullptr, it != reference.end()) << "op " << op;
        if (hit != nullptr) {
          ASSERT_EQ(*hit, it->second) << "op " << op;
        }
        break;
      }
      case 3: {  // occasional epoch boundary
        if (rng() % 64 == 0) {
          flat.reset();
          reference.clear();
        }
        break;
      }
    }
  }
  EXPECT_EQ(flat.size(), reference.size());
}

// --- LeasedMemo facade ------------------------------------------------------

TEST(LeasedMemo, FlatAndMapModesAgree) {
  std::mt19937_64 rng(0x5eed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int i = 0; i < 2000; ++i) ops.emplace_back(rng() % 128, rng());

  const auto run = [&](bool flat_mode) {
    ScopedFlatMemo mode(flat_mode);
    LeasedMemo<std::uint64_t, std::uint64_t> memo;
    std::vector<std::uint64_t> observations;
    for (const auto& [key, value] : ops) {
      if (const std::uint64_t* hit = memo.find(key)) {
        observations.push_back(*hit);
      } else {
        observations.push_back(memo.put(key, value));
      }
    }
    return observations;
  };

  EXPECT_EQ(run(true), run(false));
}

TEST(LeasedMemo, LeaseStartsLogicallyEmptyAcrossReuse) {
  ScopedFlatMemo mode(true);
  {
    LeasedMemo<std::uint64_t, int> first;
    first.put(11, 1);
  }
  // The pooled table comes back warm but generation-bumped: nothing from
  // the previous lease may be visible.
  LeasedMemo<std::uint64_t, int> second;
  EXPECT_EQ(second.find(11), nullptr);
}

TEST(LeasedMemo, NestedLeasesAreIndependent) {
  ScopedFlatMemo mode(true);
  LeasedMemo<std::uint64_t, int> outer;
  outer.put(1, 10);
  {
    LeasedMemo<std::uint64_t, int> inner;  // distinct table from the pool
    EXPECT_EQ(inner.find(1), nullptr);
    inner.put(1, 20);
    EXPECT_EQ(*outer.find(1), 10);
  }
  EXPECT_EQ(*outer.find(1), 10);
}

// --- Analysis level ---------------------------------------------------------

// §3-style ⊕-alternation family (the memo-bound workload bench_memo
// gates on): n "maybe spawn v_i" factors, then a touch-before-spawn
// cycle on u.
GTypePtr alternation_family(unsigned n) {
  std::vector<Symbol> binders;
  std::vector<GTypePtr> parts;
  for (unsigned i = 1; i <= n; ++i) {
    const Symbol v = Symbol::intern("v" + std::to_string(i));
    binders.push_back(v);
    parts.push_back(gt::alt(gt::empty(), gt::spawn(gt::empty(), v)));
  }
  const Symbol u = Symbol::intern("u");
  binders.push_back(u);
  parts.push_back(gt::touch(u));
  parts.push_back(gt::spawn(gt::empty(), u));
  return gt::nu_all(binders, gt::seq_all(std::move(parts)));
}

std::vector<std::string> alpha_keys(const NormalizeResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.graphs.size());
  for (const GraphExprPtr& g : result.graphs) {
    keys.push_back(graph_alpha_key(*g));
  }
  return keys;
}

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::instance()
      .counter(obs::MetricDesc{name, "", "", ""})
      .get();
}

struct MemoTraffic {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  friend bool operator==(const MemoTraffic&, const MemoTraffic&) = default;
};

// Runs `fn` with stats on and returns the norm-memo hit/miss deltas.
template <typename Fn>
MemoTraffic norm_memo_traffic(Fn&& fn) {
  const bool was = obs::set_stats_enabled(true);
  const std::uint64_t hits0 = counter_value("gtype.norm.memo_hits");
  const std::uint64_t misses0 = counter_value("gtype.norm.memo_misses");
  fn();
  MemoTraffic traffic;
  traffic.hits = counter_value("gtype.norm.memo_hits") - hits0;
  traffic.misses = counter_value("gtype.norm.memo_misses") - misses0;
  obs::set_stats_enabled(was);
  return traffic;
}

TEST(FlatMemoAnalysis, SameGraphsAndMemoTrafficOnAlternationFamily) {
  for (unsigned n : {4u, 8u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const GTypePtr g = alternation_family(n);

    NormalizeResult flat_result;
    MemoTraffic flat_traffic;
    {
      ScopedFlatMemo mode(true);
      flat_traffic =
          norm_memo_traffic([&] { flat_result = normalize(g, 1); });
    }
    NormalizeResult map_result;
    MemoTraffic map_traffic;
    {
      ScopedFlatMemo mode(false);
      map_traffic =
          norm_memo_traffic([&] { map_result = normalize(g, 1); });
    }

    ASSERT_FALSE(flat_result.truncated);
    ASSERT_FALSE(map_result.truncated);
    EXPECT_EQ(flat_result.steps, map_result.steps);
    EXPECT_EQ(alpha_keys(flat_result), alpha_keys(map_result));
    // Not just the same answer: the same memo behavior — every hit in
    // one backend is a hit in the other.
    EXPECT_EQ(flat_traffic, map_traffic);
  }
}

TEST(FlatMemoAnalysis, SameVerdictsOnExamplePrograms) {
  unsigned checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(GTDL_PROGRAMS_DIR)) {
    if (entry.path().extension() != ".fut") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    DiagnosticEngine diags;
    auto compiled = compile_futlang(buf.str(), diags);
    if (!compiled.has_value()) continue;  // gallery inference failures
    ++checked;
    SCOPED_TRACE(entry.path().filename().string());
    const GTypePtr g = compiled->inferred.program_gtype;

    DeadlockVerdict flat_verdict;
    {
      ScopedFlatMemo mode(true);
      flat_verdict = check_deadlock_freedom(g);
    }
    DeadlockVerdict map_verdict;
    {
      ScopedFlatMemo mode(false);
      map_verdict = check_deadlock_freedom(g);
    }
    EXPECT_EQ(flat_verdict.deadlock_free, map_verdict.deadlock_free);
    EXPECT_EQ(flat_verdict.verdict, map_verdict.verdict);
    // Byte-identical rejection text, not just the same boolean.
    EXPECT_EQ(flat_verdict.diags.render(), map_verdict.diags.render());
  }
  EXPECT_GT(checked, 0u);
}

TEST(FlatMemoAnalysis, TruncatedRunLeavesNoStaleStateBehind) {
  ScopedFlatMemo mode(true);
  const GTypePtr g = counterexample_gtype(2);

  // Map-mode reference, computed first so the flat runs below cannot
  // influence it.
  NormalizeResult reference;
  {
    ScopedFlatMemo map_mode(false);
    reference = normalize(g, 8);
  }
  ASSERT_FALSE(reference.truncated);

  // A truncated analysis purges its leased memo on release (partial
  // results under a cut-off stream are not valid for reuse) ...
  NormalizeLimits tiny;
  tiny.max_steps = 10;
  const NormalizeResult truncated = normalize(g, 8, tiny);
  EXPECT_TRUE(truncated.truncated);

  // ... so the next analysis on this thread, which leases the same
  // pooled table, must reproduce the reference exactly.
  const NormalizeResult full = normalize(g, 8);
  ASSERT_FALSE(full.truncated);
  EXPECT_EQ(full.steps, reference.steps);
  EXPECT_EQ(alpha_keys(full), alpha_keys(reference));
}

TEST(FlatMemoAnalysis, BudgetCancelledDetectRecoversOnRerun) {
  ScopedFlatMemo mode(true);
  const GTypePtr g = counterexample_gtype(2);

  Budget::Limits limits;
  limits.max_steps = 3;  // trips inside the WF/DF kinding
  Budget budget(limits);
  DetectOptions cancelled_options;
  cancelled_options.budget = &budget;
  const DeadlockVerdict cancelled = check_deadlock_freedom(g, cancelled_options);
  EXPECT_EQ(cancelled.verdict, Verdict::kUnknown);

  // The cancelled run's memos (wellformed + DF closed-kind tables) were
  // released mid-analysis; the unbudgeted rerun must still match the
  // map-backed reference byte for byte.
  const DeadlockVerdict rerun = check_deadlock_freedom(g);
  DeadlockVerdict reference;
  {
    ScopedFlatMemo map_mode(false);
    reference = check_deadlock_freedom(g);
  }
  EXPECT_EQ(rerun.verdict, reference.verdict);
  EXPECT_EQ(rerun.deadlock_free, reference.deadlock_free);
  EXPECT_EQ(rerun.diags.render(), reference.diags.render());
}

// Fresh-name suffixes ("u$17") depend on the global fresh counter, which
// advances across runs in one process; strip them before comparing (the
// same normalization test_parallel's corpus determinism tests use — in
// separate processes the reports are byte-identical, suffixes included).
std::string strip_fresh_suffixes(const std::string& text) {
  static const std::regex suffix("\\$[0-9]+");
  return std::regex_replace(text, suffix, "$");
}

TEST(FlatMemoAnalysis, EngineVerdictsByteIdenticalAcrossJobs) {
  ScopedFlatMemo mode(true);
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GTDL_PROGRAMS_DIR)) {
    if (entry.path().extension() == ".fut" ||
        entry.path().extension() == ".mml") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  CorpusOptions jobs1;
  jobs1.jobs = 1;
  const CorpusReport report1 = drive_corpus(files, jobs1);
  CorpusOptions jobs4;
  jobs4.jobs = 4;
  const CorpusReport report4 = drive_corpus(files, jobs4);

  ASSERT_EQ(report1.files.size(), report4.files.size());
  EXPECT_EQ(report1.exit_code, report4.exit_code);
  for (std::size_t i = 0; i < report1.files.size(); ++i) {
    SCOPED_TRACE(report1.files[i].path);
    EXPECT_EQ(report1.files[i].exit_code, report4.files[i].exit_code);
    EXPECT_EQ(strip_fresh_suffixes(report1.files[i].text),
              strip_fresh_suffixes(report4.files[i].text));
  }
}

}  // namespace
}  // namespace gtdl
