// Tests for concrete graphs: the Fig. 2 combinators, lowering, cycle
// detection, and the ground-deadlock verdict.

#include <gtest/gtest.h>

#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/graph/graph_expr.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

TEST(GraphExpr, BuildersAndPrinting) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("u")));
  EXPECT_EQ(to_string(*g), "1 / u ; ~u");
}

TEST(GraphExpr, SeqAllOfNothingIsSingleton) {
  EXPECT_EQ(to_string(*ge::seq_all({})), "1");
}

TEST(GraphExpr, SeqAllChainsLeftToRight) {
  const GraphExprPtr g =
      ge::seq_all({ge::touch(S("a")), ge::touch(S("b")), ge::touch(S("c"))});
  EXPECT_EQ(to_string(*g), "~a ; ~b ; ~c");
}

TEST(GraphExpr, SpawnedAndTouchedVertices) {
  // spawn u (body touches w), then touch u.
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::touch(S("w")), S("u")), ge::touch(S("u")));
  EXPECT_EQ(spawned_vertices(*g), std::vector<Symbol>{S("u")});
  EXPECT_EQ(touched_vertices(*g), (std::vector<Symbol>{S("w"), S("u")}));
}

TEST(GraphExpr, UnspawnedTouchTargets) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("w")));
  const OrderedSet<Symbol> unspawned = unspawned_touch_targets(*g);
  EXPECT_TRUE(unspawned.contains(S("w")));
  EXPECT_FALSE(unspawned.contains(S("u")));
}

TEST(GraphExpr, NodeCount) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("u")));
  // seq + spawn + singleton + touch = 4
  EXPECT_EQ(node_count(*g), 4u);
}

TEST(Graph, AddVertexDetectsDuplicates) {
  Graph g;
  EXPECT_TRUE(g.add_vertex(S("a")));
  EXPECT_FALSE(g.add_vertex(S("a")));
  EXPECT_EQ(g.duplicate_vertices(), std::vector<Symbol>{S("a")});
}

TEST(Graph, UndeclaredEndpoints) {
  Graph g;
  g.add_vertex(S("a"));
  g.add_edge(S("ghost"), S("a"));
  EXPECT_EQ(g.undeclared_vertices(), std::vector<Symbol>{S("ghost")});
}

TEST(Graph, CycleDetectionOnHandMadeGraphs) {
  Graph acyclic;
  acyclic.add_vertex(S("a"));
  acyclic.add_vertex(S("b"));
  acyclic.add_edge(S("a"), S("b"));
  EXPECT_FALSE(acyclic.has_cycle());

  Graph cyclic;
  cyclic.add_vertex(S("a"));
  cyclic.add_vertex(S("b"));
  cyclic.add_edge(S("a"), S("b"));
  cyclic.add_edge(S("b"), S("a"));
  ASSERT_TRUE(cyclic.has_cycle());
  const auto cycle = cyclic.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

TEST(Graph, SelfLoopIsACycle) {
  Graph g;
  g.add_vertex(S("a"));
  g.add_edge(S("a"), S("a"));
  EXPECT_TRUE(g.has_cycle());
}

TEST(Graph, Reachability) {
  Graph g;
  for (const char* v : {"a", "b", "c", "d"}) g.add_vertex(S(v));
  g.add_edge(S("a"), S("b"));
  g.add_edge(S("b"), S("c"));
  EXPECT_TRUE(g.reachable(S("a"), S("c")));
  EXPECT_TRUE(g.reachable(S("a"), S("a")));
  EXPECT_FALSE(g.reachable(S("c"), S("a")));
  EXPECT_FALSE(g.reachable(S("a"), S("d")));
}

TEST(Graph, TopologicalOrder) {
  Graph g;
  for (const char* v : {"a", "b", "c"}) g.add_vertex(S(v));
  g.add_edge(S("a"), S("b"));
  g.add_edge(S("b"), S("c"));
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ(order->front(), S("a"));
  EXPECT_EQ(order->back(), S("c"));

  g.add_edge(S("c"), S("a"));
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Lowering, SingletonHasOneVertex) {
  const Graph g = lower_to_graph(*ge::singleton());
  EXPECT_EQ(g.vertex_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.start(), g.end());
}

TEST(Lowering, SeqAddsLinkingEdge) {
  const Graph g = lower_to_graph(*ge::seq(ge::singleton(), ge::singleton()));
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_NE(g.start(), g.end());
  EXPECT_TRUE(g.reachable(g.start(), g.end()));
}

TEST(Lowering, SpawnCreatesFutureThreadWithDesignatedEnd) {
  // Fig. 2: (V,E,s,t)/u adds u and a fresh main vertex u', with edges
  // (u', s) and (t, u).
  const Graph g = lower_to_graph(*ge::spawn(ge::singleton(), S("fut")));
  EXPECT_EQ(g.vertex_count(), 3u);  // body vertex, designated u, main u'
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_vertex(S("fut")));
  // The future's designated vertex is reachable from the main vertex.
  EXPECT_TRUE(g.reachable(g.start(), S("fut")));
  // Start and end are the same single main-thread vertex.
  EXPECT_EQ(g.start(), g.end());
}

TEST(Lowering, SpawnThenTouchIsAcyclic) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("u")));
  const Graph graph = lower_to_graph(*g);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_TRUE(graph.undeclared_vertices().empty());
  // The touch edge makes the future's end vertex an ancestor of the main
  // thread's continuation.
  EXPECT_TRUE(graph.reachable(S("u"), graph.end()));
}

TEST(Lowering, TouchBeforeSpawnCreatesCycle) {
  // ~u ; (1 / u): the touch waits for a future spawned later in the same
  // thread — the classic self-deadlock of the §3 counterexample.
  const GraphExprPtr g =
      ge::seq(ge::touch(S("u")), ge::spawn(ge::singleton(), S("u")));
  const Graph graph = lower_to_graph(*g);
  EXPECT_TRUE(graph.has_cycle());
}

TEST(Lowering, TouchOfNeverSpawnedIsDanglingNotCyclic) {
  const GraphExprPtr g = ge::touch(S("phantom"));
  const Graph graph = lower_to_graph(*g);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_EQ(graph.undeclared_vertices(), std::vector<Symbol>{S("phantom")});
}

TEST(Lowering, CrossTouchDeadlockIsACycle) {
  // a's body touches b, b's body touches a: the paper's two-future
  // deadlock (§2.1).
  const GraphExprPtr g = ge::seq(ge::spawn(ge::touch(S("b")), S("a")),
                                 ge::spawn(ge::touch(S("a")), S("b")));
  EXPECT_TRUE(lower_to_graph(*g).has_cycle());
}

TEST(Lowering, PipelineOfFuturesIsAcyclic) {
  // Each future touches the previous one; the main thread touches the
  // last. No cycle.
  GraphExprPtr body0 = ge::singleton();
  GraphExprPtr chain = ge::spawn(body0, S("p0"));
  for (int i = 1; i < 5; ++i) {
    const Symbol prev = Symbol::intern("p" + std::to_string(i - 1));
    const Symbol cur = Symbol::intern("p" + std::to_string(i));
    chain = ge::seq(chain, ge::spawn(ge::touch(prev), cur));
  }
  chain = ge::seq(chain, ge::touch(S("p4")));
  const Graph graph = lower_to_graph(*chain);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_TRUE(graph.undeclared_vertices().empty());
}

TEST(GroundDeadlock, ReportsCycle) {
  const GraphExprPtr g =
      ge::seq(ge::touch(S("u")), ge::spawn(ge::singleton(), S("u")));
  const GroundDeadlock verdict = find_ground_deadlock(*g);
  EXPECT_TRUE(verdict.any());
  EXPECT_TRUE(verdict.cycle);
  EXPECT_FALSE(verdict.unspawned_touch);
  EXPECT_FALSE(verdict.witness.empty());
}

TEST(GroundDeadlock, ReportsUnspawnedTouch) {
  const GroundDeadlock verdict = find_ground_deadlock(*ge::touch(S("nope")));
  EXPECT_TRUE(verdict.any());
  EXPECT_TRUE(verdict.unspawned_touch);
  EXPECT_EQ(verdict.witness, std::vector<Symbol>{S("nope")});
}

TEST(GroundDeadlock, CleanGraphHasNone) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("u")));
  EXPECT_FALSE(find_ground_deadlock(*g).any());
}

TEST(Graph, DotExportEscapesQuotesAndBackslashes) {
  // A vertex name containing `"` or `\` must not terminate the quoted
  // DOT id early or start a stray escape sequence.
  Graph g;
  g.add_vertex(S("a\"b"));
  g.add_vertex(S("c\\d"));
  g.add_edge(S("a\"b"), S("c\\d"));
  g.set_start(S("a\"b"));
  g.set_end(S("c\\d"));
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("\"a\\\"b\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"c\\\\d\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("label=\"a\\\"b (start)\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"a\\\"b\" -> \"c\\\\d\""), std::string::npos) << dot;
  // No bare inner quote survives: every `"` is either a delimiter next
  // to punctuation or preceded by a backslash.
  EXPECT_EQ(dot.find("\"a\"b\""), std::string::npos) << dot;
}

TEST(Graph, DotExportMentionsAllVertices) {
  Graph g;
  g.add_vertex(S("a"));
  g.add_edge(S("a"), S("missing"));
  g.set_start(S("a"));
  const std::string dot = g.to_dot("test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("\"missing\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// The lowering, trace, event-walk, rendering, and destruction paths used
// to recurse over the GraphExpr tree, capping usable spawn depth at a few
// thousand (bench_ingest documented the 4k ceiling). All of them are
// explicit-worklist walks now; this pins a depth 25x past the old cap.
TEST(GraphExpr, DeepSpawnChainBeyondOldRecursionCap) {
  constexpr std::size_t kDepth = 100'000;  // old ceiling was ~4'000
  // chain_k = spawn(chain_{k+1} ; ~c_{k+1}, c_k) nested to kDepth, i.e.
  // future k spawns future k+1 and touches it — the bench_ingest "chain"
  // shape, built directly.
  std::vector<Symbol> names;
  names.reserve(kDepth);
  for (std::size_t i = 0; i < kDepth; ++i) {
    names.push_back(S(("c" + std::to_string(i)).c_str()));
  }
  GraphExprPtr body = ge::singleton();
  for (std::size_t i = kDepth; i-- > 0;) {
    body = ge::seq(ge::spawn(std::move(body), names[i]), ge::touch(names[i]));
  }

  EXPECT_EQ(node_count(*body), 3 * kDepth + 1);
  EXPECT_EQ(spawned_vertices(*body).size(), kDepth);
  EXPECT_EQ(touched_vertices(*body).size(), kDepth);
  EXPECT_TRUE(unspawned_touch_targets(*body).empty());

  const std::string rendered = to_string(*body);
  EXPECT_EQ(rendered.substr(0, 2), "((");
  EXPECT_EQ(rendered.substr(rendered.size() - 3), "~c0");

  GraphArena arena;
  const CsrGraph csr = lower_to_csr(*body, arena);
  EXPECT_EQ(csr.vertex_count(), 3 * kDepth + 1);
  EXPECT_FALSE(csr.has_cycle());
  EXPECT_TRUE(csr.unspawned_touches().empty());

  // Destruction of the 400k-node expression is the last deep walk.
  body.reset();
}

}  // namespace
}  // namespace gtdl
