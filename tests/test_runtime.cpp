// Tests for the threaded futures runtime: values, blocking, deadlock
// poisoning, quiescence detection, and the online TJ/KJ policies.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gtdl/runtime/futures.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace gtdl {
namespace {

TEST(Runtime, SpawnTouchRoundTrip) {
  FutureRuntime rt;
  auto h = rt.new_future<int>();
  h.spawn([] { return 40 + 2; });
  EXPECT_EQ(h.touch(), 42);
  EXPECT_EQ(h.touch(), 42);  // touching a done future is idempotent
}

TEST(Runtime, ValuesOfDifferentTypes) {
  FutureRuntime rt;
  auto s = rt.new_future<std::string>();
  s.spawn([] { return std::string("hello"); });
  auto b = rt.new_future<bool>();
  b.spawn([] { return true; });
  EXPECT_EQ(s.touch(), "hello");
  EXPECT_TRUE(b.touch());
}

TEST(Runtime, TouchBlocksUntilCompletion) {
  FutureRuntime rt;
  std::atomic<bool> released{false};
  auto h = rt.new_future<int>();
  h.spawn([&] {
    while (!released.load()) std::this_thread::yield();
    return 7;
  });
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    released.store(true);
  });
  EXPECT_EQ(h.touch(), 7);
  releaser.join();
}

TEST(Runtime, FuturesTouchingEarlierFutures) {
  FutureRuntime rt;
  auto a = rt.new_future<int>("a");
  auto b = rt.new_future<int>("b");
  a.spawn([] { return 1; });
  b.spawn([a]() mutable { return a.touch() + 1; });
  EXPECT_EQ(b.touch(), 2);
  const RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.futures_spawned, 2u);
  EXPECT_EQ(stats.futures_completed, 2u);
  EXPECT_EQ(stats.deadlocks_detected, 0u);
}

TEST(Runtime, PipelineOfFutures) {
  FutureRuntime rt;
  std::vector<FutureHandle<int>> stages;
  for (int i = 0; i < 16; ++i) stages.push_back(rt.new_future<int>("p"));
  stages[0].spawn([] { return 0; });
  for (int i = 1; i < 16; ++i) {
    auto prev = stages[static_cast<std::size_t>(i) - 1];
    stages[static_cast<std::size_t>(i)].spawn(
        [prev, i]() mutable { return prev.touch() + i; });
  }
  EXPECT_EQ(stages[15].touch(), 120);  // 0 + 1 + ... + 15
}

TEST(Runtime, SpawnAfterHandleCreationByAnotherFuture) {
  // touch of a handle whose spawn happens in another thread: the paper's
  // "touch waits for a thread to be installed" semantics.
  FutureRuntime rt;
  auto h = rt.new_future<int>("h");
  auto installer = rt.new_future<int>("installer");
  installer.spawn([h, &rt]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)rt;
    h.spawn([] { return 99; });
    return 0;
  });
  EXPECT_EQ(h.touch(), 99);
}

TEST(Runtime, DoubleSpawnThrows) {
  FutureRuntime rt;
  auto h = rt.new_future<int>();
  h.spawn([] { return 1; });
  EXPECT_THROW(h.spawn([] { return 2; }), std::logic_error);
  EXPECT_EQ(h.touch(), 1);
}

TEST(Runtime, CrossTouchDeadlockPoisonsBothFutures) {
  FutureRuntime rt;
  auto a = rt.new_future<int>("dl_a");
  auto b = rt.new_future<int>("dl_b");
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([a]() mutable { return a.touch(); });
  EXPECT_THROW(a.touch(), DeadlockError);
  EXPECT_THROW(b.touch(), DeadlockError);
  EXPECT_GE(rt.stats().deadlocks_detected, 1u);
  EXPECT_GE(rt.stats().futures_poisoned, 2u);
}

TEST(Runtime, ThreeWayCycleDetected) {
  FutureRuntime rt;
  auto a = rt.new_future<int>("c_a");
  auto b = rt.new_future<int>("c_b");
  auto c = rt.new_future<int>("c_c");
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([c]() mutable { return c.touch(); });
  c.spawn([a]() mutable { return a.touch(); });
  EXPECT_THROW(c.touch(), DeadlockError);
}

TEST(Runtime, SelfTouchDeadlock) {
  FutureRuntime rt;
  auto a = rt.new_future<int>("self");
  a.spawn([a]() mutable { return a.touch(); });
  EXPECT_THROW(a.touch(), DeadlockError);
}

TEST(Runtime, TouchOfNeverSpawnedIsPoisonedAtQuiescence) {
  FutureRuntime rt;
  auto h = rt.new_future<int>("ghost");
  // Main blocks on h; nobody else exists; quiescence fires immediately.
  EXPECT_THROW(h.touch(), DeadlockError);
}

TEST(Runtime, ShutdownPoisonsDeadlockedFuturesSoDtorTerminates) {
  // The runtime's destructor must not hang even when futures deadlock
  // and nobody touches them from main.
  RuntimeStats stats;
  {
    FutureRuntime rt;
    auto a = rt.new_future<int>("sd_a");
    auto b = rt.new_future<int>("sd_b");
    a.spawn([b]() mutable { return b.touch(); });
    b.spawn([a]() mutable { return a.touch(); });
    // Give the threads a moment to actually block on each other.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    rt.shutdown();
    stats = rt.stats();
  }
  EXPECT_GE(stats.futures_poisoned, 2u);
}

TEST(Runtime, ShutdownHandlesUnspawnedWaiters) {
  FutureRuntime rt;
  auto never = rt.new_future<int>("never");
  auto waiter = rt.new_future<int>("waiter");
  waiter.spawn([never]() mutable { return never.touch(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rt.shutdown();
  EXPECT_GE(rt.stats().futures_poisoned, 1u);
  EXPECT_THROW(waiter.touch(), std::logic_error);  // touch after shutdown
}

TEST(Runtime, DeadlockErrorPropagatesThroughDependentFutures) {
  FutureRuntime rt;
  auto a = rt.new_future<int>("pp_a");
  auto b = rt.new_future<int>("pp_b");
  auto c = rt.new_future<int>("pp_c");
  a.spawn([b]() mutable { return b.touch(); });
  b.spawn([a]() mutable { return a.touch(); });
  c.spawn([a]() mutable { return a.touch() + 1; });  // depends on the cycle
  EXPECT_THROW(c.touch(), DeadlockError);
}

TEST(Runtime, BodyExceptionPoisonsFuture) {
  FutureRuntime rt;
  auto h = rt.new_future<int>("thrower");
  h.spawn([]() -> int { throw std::runtime_error("boom"); });
  try {
    (void)h.touch();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Runtime, RecordedTraceMatchesOperations) {
  RuntimeOptions options;
  options.record_trace = true;
  FutureRuntime rt(options);
  auto h = rt.new_future<int>("tr");
  h.spawn([] { return 5; });
  (void)h.touch();
  const Trace trace = rt.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].kind, ActionKind::kInit);
  EXPECT_EQ(trace[1].kind, ActionKind::kFork);
  EXPECT_EQ(trace[2].kind, ActionKind::kJoin);
  EXPECT_TRUE(check_transitive_joins(trace).valid);
}

TEST(RuntimePolicy_, TransitiveJoinsAllowsInheritedPermissions) {
  RuntimeOptions options;
  options.policy = RuntimePolicy::kTransitiveJoins;
  FutureRuntime rt(options);
  auto a = rt.new_future<int>("tj_a");
  auto c = rt.new_future<int>("tj_c");
  // a forks c; main may join c via TJ-LEFT closure.
  a.spawn([c, &rt]() mutable {
    c.spawn([] { return 10; });
    return 1;
  });
  EXPECT_EQ(a.touch(), 1);
  EXPECT_EQ(c.touch(), 10);
  EXPECT_EQ(rt.stats().policy_violations, 0u);
}

TEST(RuntimePolicy_, KnownJoinsRejectsGrandchildJoin) {
  RuntimeOptions options;
  options.policy = RuntimePolicy::kKnownJoins;
  FutureRuntime rt(options);
  auto a = rt.new_future<int>("kj_a");
  auto c = rt.new_future<int>("kj_c");
  a.spawn([c]() mutable {
    c.spawn([] { return 10; });
    return 1;
  });
  EXPECT_EQ(a.touch(), 1);
  // main never learned about c under KJ.
  EXPECT_THROW((void)c.touch(), PolicyViolationError);
  EXPECT_EQ(rt.stats().policy_violations, 1u);
}

TEST(RuntimePolicy_, TransitiveJoinsPreventsCyclicTouchBeforeBlocking) {
  // Under TJ the second future's touch of its sibling is a violation
  // (sibling spawned after it), so the deadlock is AVOIDED: the thread
  // throws instead of blocking.
  RuntimeOptions options;
  options.policy = RuntimePolicy::kTransitiveJoins;
  FutureRuntime rt(options);
  auto a = rt.new_future<int>("av_a");
  auto b = rt.new_future<int>("av_b");
  a.spawn([b]() mutable { return b.touch(); });  // b not yet forked: violation
  b.spawn([] { return 2; });
  try {
    (void)a.touch();
    FAIL() << "expected DeadlockError wrapping the policy violation";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("transitive-joins"),
              std::string::npos);
  }
  EXPECT_EQ(b.touch(), 2);
  EXPECT_GE(rt.stats().policy_violations, 1u);
}

TEST(Runtime, ManyIndependentFutures) {
  FutureRuntime rt;
  std::vector<FutureHandle<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(rt.new_future<int>("w"));
    futures.back().spawn([i] { return i * i; });
  }
  long total = 0;
  for (auto& f : futures) total += f.touch();
  EXPECT_EQ(total, 10416);  // sum of squares 0..31
}

TEST(Runtime, StatsCountCreatedAndSpawned) {
  FutureRuntime rt;
  auto a = rt.new_future<int>();
  auto b = rt.new_future<int>();
  (void)b;
  a.spawn([] { return 1; });
  (void)a.touch();
  const RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.futures_created, 2u);
  EXPECT_EQ(stats.futures_spawned, 1u);
  EXPECT_EQ(stats.futures_completed, 1u);
}

}  // namespace
}  // namespace gtdl
