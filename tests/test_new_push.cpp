// Tests for the "new pushing" transformation (§5): semantic preservation
// and scope minimization.

#include <gtest/gtest.h>

#include <algorithm>

#include "gtdl/detect/new_push.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

std::string pushed(const char* src) {
  return to_string(*push_new_bindings(parse_gtype_or_throw(src)));
}

TEST(NewPush, DropsUnusedBinder) {
  EXPECT_EQ(pushed("new u. 1"), "1");
  EXPECT_EQ(pushed("new u. ~w"), "~w");
}

TEST(NewPush, PushesIntoOrBranches) {
  EXPECT_EQ(pushed("new u. 1 | 1 / u"), "1 | (new u. 1 / u)");
}

TEST(NewPush, PushesIntoUsedSeqSide) {
  EXPECT_EQ(pushed("new u. 1 ; 1 / u"), "1 ; (new u. 1 / u)");
  EXPECT_EQ(pushed("new u. 1 / u ; 1"), "(new u. 1 / u) ; 1");
}

TEST(NewPush, StaysWhenBothSeqSidesUse) {
  EXPECT_EQ(pushed("new u. 1 / u ; ~u"), "new u. 1 / u ; ~u");
}

TEST(NewPush, PushesThroughSpawnBody) {
  EXPECT_EQ(pushed("new u. (1 / u) / w"), "(new u. 1 / u) / w");
  // But not when the spawn's own vertex is the bound one.
  EXPECT_EQ(pushed("new u. 1 / u"), "new u. 1 / u");
}

TEST(NewPush, ReordersThroughOtherNew) {
  EXPECT_EQ(pushed("new u. new w. 1 / w ; 1 / u"),
            "(new w. 1 / w) ; (new u. 1 / u)");
}

TEST(NewPush, StopsAtRecBoundary) {
  // Pushing ν into μ would change per-recursion freshness.
  EXPECT_EQ(pushed("new u. rec g. 1 | 1 / u ; ~u"),
            "new u. rec g. 1 | 1 / u ; ~u");
}

TEST(NewPush, DivideAndConquerMotivatingExample) {
  EXPECT_EQ(pushed("rec g. new u. 1 | g / u ; g ; ~u"),
            "rec g. 1 | (new u. g / u ; g ; ~u)");
}

TEST(NewPush, HandlesNestedOrs) {
  EXPECT_EQ(pushed("new u. (1 | 1 / u) | ~w"),
            "1 | (new u. 1 / u) | ~w");
}

TEST(NewPush, TransformsInsidePiAndApp) {
  EXPECT_EQ(pushed("pi[a; x]. new u. 1 | 1 / a ; 1 / u"),
            "pi[a; x]. 1 | 1 / a ; (new u. 1 / u)");
}

TEST(NewPush, IdempotentOnExamples) {
  for (const char* src :
       {"rec g. new u. 1 | g / u ; g ; ~u", "new u. 1 / u ; ~u",
        "new u. new w. (1 / u ; ~u) | (1 / w ; ~w)"}) {
    const GTypePtr once = push_new_bindings(parse_gtype_or_throw(src));
    const GTypePtr twice = push_new_bindings(once);
    EXPECT_TRUE(structurally_equal(*once, *twice)) << src;
  }
}

// Semantic preservation: pushing must not change the normalization
// (compared via ground-deadlock verdicts and graph counts, which are
// invariant under the fresh-name choices).
class NewPushSemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(NewPushSemantics, PreservesNormalization) {
  const GTypePtr original = parse_gtype_or_throw(GetParam());
  const GTypePtr rewritten = push_new_bindings(original);
  for (unsigned depth : {1u, 2u, 3u, 4u}) {
    const NormalizeResult before = normalize(original, depth);
    const NormalizeResult after = normalize(rewritten, depth);
    ASSERT_EQ(before.graphs.size(), after.graphs.size())
        << "depth " << depth << ": " << to_string(*rewritten);
    std::size_t deadlocks_before = 0;
    std::size_t deadlocks_after = 0;
    for (const auto& g : before.graphs) {
      deadlocks_before += find_ground_deadlock(*g).any() ? 1 : 0;
    }
    for (const auto& g : after.graphs) {
      deadlocks_after += find_ground_deadlock(*g).any() ? 1 : 0;
    }
    EXPECT_EQ(deadlocks_before, deadlocks_after) << "depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, NewPushSemantics,
    ::testing::Values("rec g. new u. 1 | g / u ; g ; ~u",
                      "new u. 1 | 1 / u",
                      "new u. 1 ; 1 / u",
                      "new u. (1 / u) / w",
                      "new u. new w. 1 / w ; 1 / u",
                      "new u. (1 | 1 / u) | ~w",
                      "new u. rec g. 1 | 1 / u ; ~u",
                      "new a. new b. (~b) / a ; (~a) / b",
                      "new u. ~u ; 1 / u"));

}  // namespace
}  // namespace gtdl
