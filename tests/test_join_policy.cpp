// Tests for the Transitive Joins and Known Joins validators.
//
// The key behavioural difference (exploited by Table 1 of the paper):
// TJ's permission relation is transitively closed at fork time, so a
// thread may join futures its spawner could join — even futures spawned
// by total strangers, as long as a permission chain exists. KJ only ever
// learns futures from its spawner's knowledge at fork time plus its own
// forks.

#include <gtest/gtest.h>

#include "gtdl/tj/join_policy.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }
const Symbol kMain = Symbol::intern("main");

TEST(TransitiveJoins, SpawnerMayJoinChild) {
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::join(kMain, S("a"))};
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, StrangerJoinRejected) {
  // b attempts to join a, but got no permission: a was forked AFTER b, so
  // b did not inherit it and no TJ-LEFT propagation reaches b.
  const Trace t{Action::init(kMain), Action::fork(kMain, S("b")),
                Action::fork(kMain, S("a")), Action::join(S("b"), S("a"))};
  const TraceVerdict verdict = check_transitive_joins(t);
  EXPECT_FALSE(verdict.valid);
  EXPECT_EQ(verdict.failing_index, 3u);
}

TEST(TransitiveJoins, ChildInheritsParentPermissions) {
  // main forks a, then forks b; b inherited permission to join a
  // (TJ-RIGHT with main ≤ a at fork time).
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(kMain, S("b")), Action::join(S("b"), S("a"))};
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, LeftClosurePropagatesToPermittedJoiners) {
  // main forks a; a forks c. main may join c because main ⊑ a at the time
  // a forked c (TJ-LEFT applied to every thread with permission on a).
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(S("a"), S("c")), Action::join(kMain, S("c"))};
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, LeftClosureIsTransitive) {
  // main forks a; main forks b (b may join a); a forks c — now b may join
  // c too, because b ≤ a held when a forked c.
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(kMain, S("b")), Action::fork(S("a"), S("c")),
                Action::join(S("b"), S("c"))};
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, PermissionIsTemporal) {
  // main forks a; a forks c; only then does main fork b. b inherits
  // main's permissions at ITS fork time — which include both a and c.
  // But a future fork by a after b's creation is NOT joinable by b... it
  // is, actually, because b ≤ a persists (TJ-LEFT fires for b as well).
  // What is genuinely not joinable: a future forked by a thread b has no
  // permission chain to.
  const Trace ok{Action::init(kMain),    Action::fork(kMain, S("a")),
                 Action::fork(S("a"), S("c")), Action::fork(kMain, S("b")),
                 Action::join(S("b"), S("c"))};
  EXPECT_TRUE(check_transitive_joins(ok).valid);

  // c never appears in any permission chain for d (d forked by c's
  // sibling before c existed... construct: main forks d first, then a,
  // then a forks c; d has no permission on a (a forked later), hence none
  // on c either.
  const Trace bad{Action::init(kMain),    Action::fork(kMain, S("d")),
                  Action::fork(kMain, S("a")), Action::fork(S("a"), S("c")),
                  Action::join(S("d"), S("c"))};
  EXPECT_FALSE(check_transitive_joins(bad).valid);
}

TEST(TransitiveJoins, ForkOfExistingThreadRejected) {
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(kMain, S("a"))};
  EXPECT_FALSE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, ForkByUnknownThreadRejected) {
  const Trace t{Action::init(kMain), Action::fork(S("ghost"), S("a"))};
  EXPECT_FALSE(check_transitive_joins(t).valid);
}

TEST(TransitiveJoins, ActionsBeforeInitRejected) {
  const Trace t{Action::fork(kMain, S("a"))};
  EXPECT_FALSE(check_transitive_joins(t).valid);
  const Trace t2{Action::init(kMain), Action::init(kMain)};
  EXPECT_FALSE(check_transitive_joins(t2).valid);
}

TEST(KnownJoins, SpawnerKnowsChild) {
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::join(kMain, S("a"))};
  EXPECT_TRUE(check_known_joins(t).valid);
}

TEST(KnownJoins, ChildKnowsWhatSpawnerKnew) {
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(kMain, S("b")), Action::join(S("b"), S("a"))};
  EXPECT_TRUE(check_known_joins(t).valid);
}

TEST(KnownJoins, NoSidewaysPropagation) {
  // THE distinguishing case: main forks a, then b (b knows a); a forks c.
  // Under TJ, b may join c; under KJ, b never learns about c.
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(kMain, S("b")), Action::fork(S("a"), S("c")),
                Action::join(S("b"), S("c"))};
  EXPECT_FALSE(check_known_joins(t).valid);
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(KnownJoins, ParentDoesNotLearnGrandchildren) {
  // a forks c; main does not know c under KJ (but may join it under TJ).
  const Trace t{Action::init(kMain), Action::fork(kMain, S("a")),
                Action::fork(S("a"), S("c")), Action::join(kMain, S("c"))};
  EXPECT_FALSE(check_known_joins(t).valid);
  EXPECT_TRUE(check_transitive_joins(t).valid);
}

TEST(KnownJoins, KnowledgeIsSnapshotAtForkTime) {
  // main forks b BEFORE a exists: b does not know a.
  const Trace t{Action::init(kMain), Action::fork(kMain, S("b")),
                Action::fork(kMain, S("a")), Action::join(S("b"), S("a"))};
  EXPECT_FALSE(check_known_joins(t).valid);
}

TEST(Policies, GraphSerializationsValidateEndToEnd) {
  // spawn u; touch u — valid under both policies.
  const GraphExprPtr ok =
      ge::seq(ge::spawn(ge::singleton(), S("tu")), ge::touch(S("tu")));
  EXPECT_TRUE(check_transitive_joins(trace_with_init(*ok, kMain)).valid);
  EXPECT_TRUE(check_known_joins(trace_with_init(*ok, kMain)).valid);

  // Cross-touch deadlock: a touches b before b exists.
  const GraphExprPtr dead = ge::seq(ge::spawn(ge::touch(S("tb")), S("ta")),
                                    ge::spawn(ge::touch(S("ta")), S("tb")));
  EXPECT_FALSE(check_transitive_joins(trace_with_init(*dead, kMain)).valid);
  EXPECT_FALSE(check_known_joins(trace_with_init(*dead, kMain)).valid);
}

TEST(Policies, VerdictCarriesReasonAndIndex) {
  const Trace t{Action::init(kMain), Action::join(kMain, S("nope"))};
  const TraceVerdict verdict = check_transitive_joins(t);
  ASSERT_FALSE(verdict.valid);
  EXPECT_EQ(verdict.failing_index, 1u);
  EXPECT_NE(verdict.reason.find("may not join"), std::string::npos);
}

TEST(Monitors, MayJoinAndKnowsAccessors) {
  TransitiveJoinsMonitor tj;
  ASSERT_TRUE(tj.on_init(kMain).ok());
  ASSERT_TRUE(tj.on_fork(kMain, S("x1")).ok());
  EXPECT_TRUE(tj.may_join(kMain, S("x1")));
  EXPECT_FALSE(tj.may_join(S("x1"), kMain));

  KnownJoinsMonitor kj;
  ASSERT_TRUE(kj.on_init(kMain).ok());
  ASSERT_TRUE(kj.on_fork(kMain, S("x2")).ok());
  EXPECT_TRUE(kj.knows(kMain, S("x2")));
  EXPECT_FALSE(kj.knows(S("x2"), kMain));
}

}  // namespace
}  // namespace gtdl
