// Tests for the may-happen-in-parallel extension.

#include <gtest/gtest.h>

#include "gtdl/detect/mhp.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/gtype/parse.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }

TEST(MhpGraph, IndependentFuturesAreParallel) {
  // main spawns a and b and touches both at the end.
  const GraphExprPtr g = ge::seq_all({
      ge::spawn(ge::singleton(), S("a")),
      ge::spawn(ge::singleton(), S("b")),
      ge::touch(S("a")),
      ge::touch(S("b")),
  });
  EXPECT_EQ(mhp_in_graph(*g, S("a"), S("b")), std::optional<bool>(true));
}

TEST(MhpGraph, TouchOrdersThreads) {
  // b's body touches a: a happens before b.
  const GraphExprPtr g = ge::seq_all({
      ge::spawn(ge::singleton(), S("a")),
      ge::spawn(ge::touch(S("a")), S("b")),
      ge::touch(S("b")),
  });
  EXPECT_EQ(mhp_in_graph(*g, S("a"), S("b")), std::optional<bool>(false));
  EXPECT_EQ(mhp_in_graph(*g, S("b"), S("a")), std::optional<bool>(false));
}

TEST(MhpGraph, TouchBetweenSpawnsOrders) {
  // main touches a before spawning b: ordered even without a direct edge
  // between the threads.
  const GraphExprPtr g = ge::seq_all({
      ge::spawn(ge::singleton(), S("a")),
      ge::touch(S("a")),
      ge::spawn(ge::singleton(), S("b")),
      ge::touch(S("b")),
  });
  EXPECT_EQ(mhp_in_graph(*g, S("a"), S("b")), std::optional<bool>(false));
}

TEST(MhpGraph, UnknownOrEqualVerticesAreRejected) {
  const GraphExprPtr g = ge::spawn(ge::singleton(), S("a"));
  EXPECT_FALSE(mhp_in_graph(*g, S("a"), S("ghost")).has_value());
  EXPECT_FALSE(mhp_in_graph(*g, S("a"), S("a")).has_value());
}

TEST(MhpInstances, MatchesFreshNames) {
  EXPECT_TRUE(is_vertex_instance(S("u"), S("u")));
  EXPECT_TRUE(is_vertex_instance(Symbol::intern("u$17"), S("u")));
  EXPECT_TRUE(is_vertex_instance(Symbol::intern("u$17$3"), S("u")));
  EXPECT_FALSE(is_vertex_instance(Symbol::intern("uv$1"), S("u")));
  EXPECT_FALSE(is_vertex_instance(S("u"), Symbol::intern("u$17")));
}

TEST(MhpType, SiblingSpawnsMayOverlap) {
  const GTypePtr g = parse_gtype_or_throw(
      "new a. new b. 1 / a ; 1 / b ; ~a ; ~b");
  const MhpResult r = mhp_in_type(g, S("a"), S("b"), 3);
  EXPECT_TRUE(r.may_happen_in_parallel);
  EXPECT_GE(r.witnesses_checked, 1u);
}

TEST(MhpType, SequentializedSpawnsDoNot) {
  const GTypePtr g = parse_gtype_or_throw(
      "new a. new b. 1 / a ; ~a ; 1 / b ; ~b");
  EXPECT_FALSE(mhp_in_type(g, S("a"), S("b"), 3).may_happen_in_parallel);
}

TEST(MhpType, RecursiveUnrollingsOfSameBinderOverlap) {
  // Divide-and-conquer: two recursive instances of u run in parallel.
  const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  const MhpResult shallow = mhp_in_type(g, S("u"), S("u"), 2);
  EXPECT_FALSE(shallow.may_happen_in_parallel);  // at most one instance
  const MhpResult deep = mhp_in_type(g, S("u"), S("u"), 4);
  EXPECT_TRUE(deep.may_happen_in_parallel);
}

TEST(MhpType, PipelineStagesOverlapButChainIsOrderedEndToEnd) {
  // prev-stage touch orders stage k after stage k-1's END vertex; but a
  // stage and the NEXT next stage share no path until the chain drains.
  const GTypePtr g = parse_gtype_or_throw(
      "new a. new b. new c. 1 / a ; (~a) / b ; (~b ; 1) / c ; ~c");
  // a happens before b (b touches a).
  EXPECT_FALSE(mhp_in_type(g, S("a"), S("b"), 2).may_happen_in_parallel);
  EXPECT_FALSE(mhp_in_type(g, S("a"), S("c"), 2).may_happen_in_parallel);
}

TEST(MhpType, FromInferredProgram) {
  // Two handlers spawned by the webserver-style acceptor overlap.
  const CompiledProgram compiled = compile_futlang_or_throw(R"(
    fun handle(req: int) -> int { return req * 2; }
    fun serve(reqs: list[int]) -> int {
      if length(reqs) == 0 {
        return 0;
      } else {
        let h = new_future[int]();
        spawn h { return handle(head(reqs)); }
        let rest = serve(tail(reqs));
        return rest + touch(h);
      }
    }
    fun main() { let total = serve(range(0, 8)); }
  )");
  // The handler vertex binder is serve's hoisted local; find its base
  // name from the inferred info.
  const auto& info =
      compiled.inferred.functions.at(Symbol::intern("serve"));
  ASSERT_TRUE(info.recursive);
  const GTypePtr g = compiled.inferred.program_gtype;
  // The ν binder name is an instance base like "serve_u$k"; query two
  // unrollings of it against each other.
  const auto* rec = std::get_if<GTRec>(&g->node);
  ASSERT_NE(rec, nullptr);
  const auto* nu = std::get_if<GTNew>(&rec->body->node);
  ASSERT_NE(nu, nullptr);
  const MhpResult r = mhp_in_type(g, nu->vertex, nu->vertex, 4);
  EXPECT_TRUE(r.may_happen_in_parallel)
      << "handlers of different requests should overlap";
}

}  // namespace
}  // namespace gtdl
