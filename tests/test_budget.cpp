// Tests for the resource-governance layer (support/budget.hpp): the
// Budget/CancelToken primitives, the three-valued verdicts they induce in
// the detect and baseline layers, the parallel engine's cooperative
// cancellation, and the interpreter's --run watchdog.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/par/engine.hpp"
#include "gtdl/support/budget.hpp"

namespace gtdl {
namespace {

// The §2.3 divide-and-conquer type: exponentially many graphs per
// depth, so even modest step quotas trip mid-normalization.
const GTypePtr& dnc() {
  static const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  return g;
}

TEST(Budget, UnlimitedNeverTrips) {
  Budget budget;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(budget.checkpoint());
  }
  EXPECT_FALSE(budget.check_memory(1ull << 40));
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.reason(), BudgetReason::kNone);
  EXPECT_EQ(budget.status().render(), "within budget");
}

TEST(Budget, StepQuotaTrips) {
  Budget::Limits limits;
  limits.max_steps = 5;
  Budget budget(limits);
  EXPECT_FALSE(budget.checkpoint(5));  // exactly at the quota: still fine
  EXPECT_TRUE(budget.checkpoint(1));   // first step past it trips
  EXPECT_TRUE(budget.checkpoint(1));   // and stays tripped
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.reason(), BudgetReason::kSteps);
  const BudgetStatus status = budget.status();
  EXPECT_EQ(status.limit, 5u);
  EXPECT_GE(status.spent, 6u);
  EXPECT_EQ(status.render(), "budget exhausted: steps (limit 5 steps)");
}

TEST(Budget, DeadlineTrips) {
  Budget::Limits limits;
  limits.deadline_ms = 1;
  Budget budget(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A charge of kClockStride always crosses a stride boundary, so the
  // clock is guaranteed to be consulted on this poll.
  EXPECT_TRUE(budget.checkpoint(Budget::kClockStride));
  EXPECT_EQ(budget.reason(), BudgetReason::kDeadline);
  EXPECT_EQ(budget.status().render(),
            "budget exhausted: deadline (limit 1 ms)");
}

TEST(Budget, DeadlineClockReadIsStrided) {
  Budget::Limits limits;
  limits.deadline_ms = 1;
  Budget budget(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Sub-stride polling must not consult the clock: the deadline is long
  // past, but no stride boundary has been crossed yet.
  EXPECT_FALSE(budget.checkpoint(1));
  EXPECT_FALSE(budget.exhausted());
}

TEST(Budget, MemoryQuotaTrips) {
  Budget::Limits limits;
  limits.max_bytes = 1000;
  Budget budget(limits);
  EXPECT_FALSE(budget.check_memory(500));
  EXPECT_TRUE(budget.check_memory(2000));
  EXPECT_EQ(budget.reason(), BudgetReason::kMemory);
  const BudgetStatus status = budget.status();
  EXPECT_EQ(status.spent, 2000u);  // high-water mark
  EXPECT_EQ(status.limit, 1000u);
  EXPECT_EQ(status.render(),
            "budget exhausted: memory (limit 1000 bytes)");
}

TEST(Budget, ExternalCancelObservedByCheckpoint) {
  Budget budget;  // unlimited — only the token can stop it
  EXPECT_FALSE(budget.checkpoint());
  budget.cancel();
  EXPECT_TRUE(budget.checkpoint());
  EXPECT_EQ(budget.reason(), BudgetReason::kCancelled);
  EXPECT_EQ(budget.status().limit, 0u);
  EXPECT_EQ(budget.status().render(), "budget exhausted: cancelled");
}

TEST(Budget, FirstCancelReasonWins) {
  CancelToken token;
  token.cancel(BudgetReason::kDeadline);
  token.cancel(BudgetReason::kMemory);
  EXPECT_EQ(token.reason(), BudgetReason::kDeadline);

  Budget::Limits limits;
  limits.max_steps = 1;
  Budget budget(limits);
  budget.cancel(BudgetReason::kCancelled);
  budget.checkpoint(100);  // would trip kSteps, but the cancel came first
  EXPECT_EQ(budget.reason(), BudgetReason::kCancelled);
}

TEST(Budget, ReasonNamesAreStable) {
  EXPECT_STREQ(to_string(BudgetReason::kNone), "none");
  EXPECT_STREQ(to_string(BudgetReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(BudgetReason::kSteps), "steps");
  EXPECT_STREQ(to_string(BudgetReason::kMemory), "memory");
  EXPECT_STREQ(to_string(BudgetReason::kCancelled), "cancelled");
}

// --- three-valued verdicts ------------------------------------------------

TEST(Budget, DetectReturnsUnknownWhenBudgetExhausted) {
  Budget budget;
  budget.cancel();  // already spent before the query even starts
  DetectOptions options;
  options.budget = &budget;
  const DeadlockVerdict v =
      check_deadlock_freedom(parse_gtype_or_throw("new u. 1 / u ; ~u"),
                             options);
  EXPECT_EQ(v.verdict, Verdict::kUnknown);
  EXPECT_FALSE(v.deadlock_free);  // unknown is never a freedom claim
  EXPECT_EQ(v.budget.reason, BudgetReason::kCancelled);
  EXPECT_STREQ(to_string(v.verdict), "unknown");
}

TEST(Budget, DetectUnaffectedByGenerousBudget) {
  Budget::Limits limits;
  limits.max_steps = 1'000'000;
  Budget budget(limits);
  DetectOptions options;
  options.budget = &budget;
  const DeadlockVerdict v =
      check_deadlock_freedom(parse_gtype_or_throw("new u. 1 / u ; ~u"),
                             options);
  EXPECT_EQ(v.verdict, Verdict::kDeadlockFree);
  EXPECT_TRUE(v.deadlock_free);
  EXPECT_FALSE(budget.exhausted());
}

TEST(Budget, WellformednessReportsTrippedBudget) {
  Budget budget;
  budget.cancel();
  const WellformedResult wf =
      check_wellformed(parse_gtype_or_throw("1"), &budget);
  EXPECT_TRUE(wf.budget_exhausted);
  EXPECT_FALSE(wf.ok);
}

TEST(Budget, BaselineReportsUnknownOnStepQuota) {
  Budget::Limits limits;
  limits.max_steps = 10;
  Budget budget(limits);
  GmlBaselineOptions options;
  options.limits.budget = &budget;
  const GmlBaselineReport report = gml_baseline_check(dnc(), options);
  EXPECT_TRUE(report.unknown);
  EXPECT_FALSE(report.deadlock_reported);
  EXPECT_EQ(report.budget.reason, BudgetReason::kSteps);
}

TEST(Budget, BaselineDeadlockWitnessBeatsBudgetAbort) {
  // The very first graph deadlocks; the memory quota is hopeless. The
  // witness is real regardless of what was skipped, so it must win.
  Budget::Limits limits;
  limits.max_bytes = 1;
  Budget budget(limits);
  GmlBaselineOptions options;
  options.limits.budget = &budget;
  const GmlBaselineReport report =
      gml_baseline_check(parse_gtype_or_throw("new u. ~u ; 1 / u"),
                         options);
  EXPECT_TRUE(report.deadlock_reported);
  EXPECT_FALSE(report.unknown);
}

TEST(Budget, BaselineUnknownVerdictIsDeterministic) {
  // Two fresh budgets with the same step quota must render the same
  // verdict text — BudgetStatus::render() excludes run-varying counts.
  std::string renders[2];
  for (std::string& render : renders) {
    Budget::Limits limits;
    limits.max_steps = 10;
    Budget budget(limits);
    GmlBaselineOptions options;
    options.limits.budget = &budget;
    const GmlBaselineReport report = gml_baseline_check(dnc(), options);
    ASSERT_TRUE(report.unknown);
    render = report.budget.render();
  }
  EXPECT_EQ(renders[0], renders[1]);
}

// --- concurrent core ------------------------------------------------------

TEST(Budget, SequentialNormalizeHonorsBudget) {
  Budget::Limits blimits;
  blimits.max_steps = 20;
  Budget budget(blimits);
  NormalizeLimits limits;
  limits.budget = &budget;
  const NormalizeResult result = normalize(dnc(), 6, limits);
  EXPECT_TRUE(result.truncated);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.reason(), BudgetReason::kSteps);
}

TEST(Budget, ParallelEngineCancelsCooperatively) {
  // A tripped budget must wind the whole task DAG down — memo waiters
  // wake, the group drains, normalize() returns truncated. The test's
  // real assertion is that it returns at all.
  Engine engine(4);
  Budget::Limits blimits;
  blimits.max_steps = 20;
  Budget budget(blimits);
  NormalizeLimits limits;
  limits.budget = &budget;
  const NormalizeResult result = engine.normalize(dnc(), 6, limits);
  EXPECT_TRUE(result.truncated);
  EXPECT_TRUE(budget.exhausted());

  // The engine survives the cancellation: a fresh un-budgeted query on
  // the same pool still completes and agrees with the sequential path.
  const NormalizeResult clean = engine.normalize(dnc(), 2);
  const NormalizeResult reference = normalize(dnc(), 2);
  EXPECT_FALSE(clean.truncated);
  EXPECT_EQ(clean.graphs.size(), reference.graphs.size());
}

TEST(Budget, StreamingEnumerationHonorsBudget) {
  Budget::Limits blimits;
  blimits.max_steps = 20;
  Budget budget(blimits);
  NormalizeLimits limits;
  limits.budget = &budget;
  const StreamStats stats = for_each_graph(
      dnc(), 6, limits, [](const GraphExprPtr&) { return true; });
  EXPECT_TRUE(stats.truncated);
  EXPECT_TRUE(budget.exhausted());
}

// --- interpreter watchdog -------------------------------------------------

TEST(Budget, InterpreterWatchdogAbortsRunawayProgram) {
  Program program = parse_program_or_throw(R"(
    fun spin(n: int) -> int {
      if n == 0 { return 0; } else { return spin(n - 1); }
    }
    fun main() { let x = spin(1000000); }
  )");
  DiagnosticEngine diags;
  ASSERT_TRUE(typecheck_program(program, diags)) << diags.render();
  Budget::Limits limits;
  limits.max_steps = 1000;
  Budget budget(limits);
  InterpOptions options;
  options.budget = &budget;
  const InterpResult result = interpret(program, options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_FALSE(result.completed);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_NE(result.error->find("execution aborted"), std::string::npos);
  EXPECT_NE(result.error->find("budget exhausted: steps"),
            std::string::npos);
}

TEST(Budget, InterpreterUnaffectedByGenerousWatchdog) {
  Program program = parse_program_or_throw(R"(
    fun main() { print("ok"); }
  )");
  DiagnosticEngine diags;
  ASSERT_TRUE(typecheck_program(program, diags)) << diags.render();
  Budget::Limits limits;
  limits.deadline_ms = 60'000;
  Budget budget(limits);
  InterpOptions options;
  options.budget = &budget;
  const InterpResult result = interpret(program, options);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.output, "ok\n");
}

}  // namespace
}  // namespace gtdl
