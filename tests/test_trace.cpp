// Tests for trace generation (Fig. 6) from ground graphs.

#include <gtest/gtest.h>

#include "gtdl/tj/trace.hpp"

namespace gtdl {
namespace {

Symbol S(const char* s) { return Symbol::intern(s); }
const Symbol kMain = Symbol::intern("main");

TEST(Trace, SingletonProducesEmptyTrace) {
  EXPECT_TRUE(trace_of_graph(*ge::singleton(), kMain).empty());
}

TEST(Trace, WithInitPrepends) {
  const Trace t = trace_with_init(*ge::singleton(), kMain);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], Action::init(kMain));
}

TEST(Trace, SpawnEmitsForkAndNamesChildAfterVertex) {
  // TR:SPAWN — g /u ~>_a fork(a,u); t where g ~>_u t.
  const GraphExprPtr g = ge::spawn(ge::touch(S("w")), S("u"));
  const Trace t = trace_of_graph(*g, kMain);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], Action::fork(kMain, S("u")));
  // The body's actions are attributed to the new thread u.
  EXPECT_EQ(t[1], Action::join(S("u"), S("w")));
}

TEST(Trace, TouchEmitsJoin) {
  const Trace t = trace_of_graph(*ge::touch(S("u")), kMain);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], Action::join(kMain, S("u")));
}

TEST(Trace, SeqConcatenates) {
  const GraphExprPtr g =
      ge::seq(ge::spawn(ge::singleton(), S("u")), ge::touch(S("u")));
  const Trace t = trace_of_graph(*g, kMain);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], Action::fork(kMain, S("u")));
  EXPECT_EQ(t[1], Action::join(kMain, S("u")));
}

TEST(Trace, NestedSpawnsAttributeActionsToSpawningThread) {
  // main spawns u; u spawns w; u touches w; main touches u.
  const GraphExprPtr inner = ge::seq(ge::spawn(ge::singleton(), S("w")),
                                     ge::touch(S("w")));
  const GraphExprPtr g =
      ge::seq(ge::spawn(inner, S("u")), ge::touch(S("u")));
  const Trace t = trace_of_graph(*g, kMain);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], Action::fork(kMain, S("u")));
  EXPECT_EQ(t[1], Action::fork(S("u"), S("w")));
  EXPECT_EQ(t[2], Action::join(S("u"), S("w")));
  EXPECT_EQ(t[3], Action::join(kMain, S("u")));
}

TEST(Trace, Rendering) {
  const Trace t{Action::init(kMain), Action::fork(kMain, S("u")),
                Action::join(kMain, S("u"))};
  EXPECT_EQ(to_string(t), "init(main); fork(main,u); join(main,u)");
}

}  // namespace
}  // namespace gtdl
