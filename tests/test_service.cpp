// Differential tests for the fdld service layer (DESIGN.md §S23):
// warm-vs-cold byte identity, dirty-cone invalidation, snapshot
// round-trips, quota eviction, and budget-exhaustion hygiene — both
// in-process through service::Service and end-to-end through the real
// fdld binary in --stdio mode (path injected by CMake).
//
// Byte-identity assertions use inputs whose rendered reports contain no
// fresh-name spellings: deadlock-free programs (verdict lines only) and
// textual graph types (diagnostics name source vertices). Rejecting
// .fut programs render fresh names like `g_u$5` into their diagnostics,
// which drift across compiles by design — those cases compare exit
// codes and verdict substrings instead.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "gtdl/service/protocol.hpp"
#include "gtdl/service/service.hpp"
#include "gtdl/service/snapshot.hpp"

namespace {

namespace fs = std::filesystem;
using gtdl::service::Request;
using gtdl::service::Service;
using gtdl::service::ServiceOptions;

std::string programs_dir() { return GTDL_PROGRAMS_DIR; }

// --- tiny response-side JSON helpers ---------------------------------------
// Responses are produced by append_json_string, whose escape set is
// exactly \" \\ \n \r \t and \u00XX — this decoder handles just that.

std::optional<std::string> decode_string_at(const std::string& text,
                                            std::size_t quote_pos) {
  if (quote_pos >= text.size() || text[quote_pos] != '"') return std::nullopt;
  std::string out;
  for (std::size_t i = quote_pos + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= text.size()) return std::nullopt;
    switch (text[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= text.size()) return std::nullopt;
        const std::string hex = text.substr(i + 1, 4);
        out.push_back(static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16)));
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return std::nullopt;
}

// All decoded values of `"key":"..."` in order of appearance.
std::vector<std::string> json_strings(const std::string& text,
                                      const std::string& key) {
  std::vector<std::string> out;
  const std::string needle = "\"" + key + "\":\"";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Skip matches inside an escaped context: the needle itself cannot
    // appear inside a report string because its quotes would be escaped.
    const auto value = decode_string_at(text, pos + needle.size() - 1);
    if (value) out.push_back(*value);
    pos += needle.size();
  }
  return out;
}

std::optional<long long> json_int(const std::string& text,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
}

std::vector<long long> json_ints(const std::string& text,
                                 const std::string& key) {
  std::vector<long long> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtoll(text.c_str() + pos, nullptr, 10));
  }
  return out;
}

// --- fixtures ---------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string pattern =
        (fs::temp_directory_path() / "gtdl_service_XXXXXX").string();
    ASSERT_NE(mkdtemp(pattern.data()), nullptr);
    dir_ = pattern;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write(const std::string& name, const std::string& content) {
    const std::string path = (fs::path(dir_) / name).string();
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return path;
  }

  std::string dir_;
};

std::string submit_line(const std::vector<std::string>& files,
                        const std::string& extra = std::string(),
                        const char* op = "submit") {
  std::string line = "{\"op\":\"";
  line += op;
  line += "\"";
  for (const std::string& f : files) {
    line += ",\"file\":";
    gtdl::service::append_json_string(line, f);
  }
  line += extra;
  line += "}";
  return line;
}

std::string handle(Service& service, const std::string& line) {
  bool shutdown = false;
  return service.handle_line(line, &shutdown);
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesFlatRequestWithRepeatedFiles) {
  Request req;
  std::string error;
  ASSERT_TRUE(gtdl::service::parse_request(
      R"({"op":"submit","id":"7","file":"a.fut","file":"b.gt","budget_steps":42,"future_key":"ignored"})",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "submit");
  EXPECT_EQ(req.id, "7");
  ASSERT_EQ(req.files.size(), 2u);
  EXPECT_EQ(req.files[0], "a.fut");
  EXPECT_EQ(req.files[1], "b.gt");
  ASSERT_TRUE(req.budget_steps.has_value());
  EXPECT_EQ(*req.budget_steps, 42u);
  EXPECT_FALSE(req.timeout_ms.has_value());
}

TEST(Protocol, DecodesEscapes) {
  Request req;
  std::string error;
  ASSERT_TRUE(gtdl::service::parse_request(
      R"({"op":"submit","file":"a b\n.gt"})", &req, &error))
      << error;
  ASSERT_EQ(req.files.size(), 1u);
  EXPECT_EQ(req.files[0], "a b\n.gt");
}

TEST(Protocol, RejectsMalformedLines) {
  Request req;
  std::string error;
  EXPECT_FALSE(gtdl::service::parse_request("", &req, &error));
  EXPECT_FALSE(gtdl::service::parse_request("{\"id\":\"1\"}", &req, &error));
  EXPECT_NE(error.find("op"), std::string::npos);
  EXPECT_FALSE(gtdl::service::parse_request(
      R"({"op":"submit","unrolls":1.5})", &req, &error));
  EXPECT_FALSE(gtdl::service::parse_request(
      R"({"op":"submit","unrolls":-1})", &req, &error));
  EXPECT_FALSE(gtdl::service::parse_request(
      R"({"op":"submit","files":["a"]})", &req, &error));
  EXPECT_FALSE(
      gtdl::service::parse_request(R"({"op":"x"} trailing)", &req, &error));
  EXPECT_FALSE(
      gtdl::service::parse_request(R"({"op":"unterminated)", &req, &error));
}

TEST(Protocol, JsonStringEscaping) {
  std::string out;
  gtdl::service::append_json_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// --- service core -----------------------------------------------------------

TEST_F(ServiceTest, WarmReplayIsByteIdenticalAndCounted) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string dl = write("dl.gt", "new u. ~u ; 1/u");

  Service service(ServiceOptions{});
  const std::string cold = handle(service, submit_line({df, dl}));
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  EXPECT_EQ(json_int(cold, "exit_code").value_or(-1), 1);
  const std::vector<std::string> cold_reports = json_strings(cold, "report");
  ASSERT_EQ(cold_reports.size(), 2u);
  EXPECT_NE(cold_reports[0].find("DEADLOCK-FREE"), std::string::npos);
  EXPECT_NE(cold_reports[1].find("POSSIBLE DEADLOCK"), std::string::npos);
  EXPECT_EQ(json_ints(cold, "cached"), (std::vector<long long>{0, 0}));

  const std::string warm = handle(service, submit_line({df, dl}, "", "reanalyze"));
  EXPECT_EQ(json_ints(warm, "cached"), (std::vector<long long>{1, 1}));
  EXPECT_EQ(json_strings(warm, "report"), cold_reports);
  EXPECT_EQ(json_int(warm, "exit_code"), json_int(cold, "exit_code"));

  const std::string stats = handle(service, "{\"op\":\"stats\"}");
  EXPECT_EQ(json_int(stats, "cache_hits").value_or(-1), 2);
  EXPECT_EQ(json_int(stats, "cache_invalidated").value_or(-1), 0);
}

TEST_F(ServiceTest, VerdictBytesIdenticalAcrossJobs) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string dl = write("dl.gt", "new u. ~u ; 1/u");
  const std::string fut = programs_dir() + "/pipeline.fut";

  ServiceOptions seq;
  seq.jobs = 1;
  ServiceOptions par;
  par.jobs = 4;
  Service service1(seq);
  Service service4(par);

  const std::string r1 = handle(service1, submit_line({df, dl, fut}));
  const std::string r4 = handle(service4, submit_line({df, dl, fut}));
  EXPECT_EQ(json_strings(r1, "report"), json_strings(r4, "report"));
  EXPECT_EQ(json_int(r1, "exit_code"), json_int(r4, "exit_code"));
}

TEST_F(ServiceTest, OneFileChangeInvalidatesOnlyItsCone) {
  const std::string a = write("a.gt", "new u. (1/u) ; ~u");
  const std::string b = write("b.gt", "new u. new v. ((1/u) ; 1/v) ; ~u ; ~v");
  const std::string c = write("c.gt", "new u. ~u ; 1/u");

  Service service(ServiceOptions{});
  const std::string cold = handle(service, submit_line({a, b, c}));
  const std::vector<std::string> cold_reports = json_strings(cold, "report");
  ASSERT_EQ(cold_reports.size(), 3u);

  // Touch b with a content change (b's verdict flips to rejecting).
  write("b.gt", "new u. new v. (~u ; 1/v) ; (1/u) ; ~v");
  const std::string warm = handle(service, submit_line({a, b, c}, "", "reanalyze"));
  EXPECT_EQ(json_ints(warm, "cached"), (std::vector<long long>{1, 0, 1}));
  const std::vector<std::string> warm_reports = json_strings(warm, "report");
  ASSERT_EQ(warm_reports.size(), 3u);
  EXPECT_EQ(warm_reports[0], cold_reports[0]);
  EXPECT_NE(warm_reports[1], cold_reports[1]);
  EXPECT_EQ(warm_reports[2], cold_reports[2]);

  // Exactly b's dirty cone went: its def entry plus its gtype entry.
  const std::string stats = handle(service, "{\"op\":\"stats\"}");
  EXPECT_EQ(json_int(stats, "cache_invalidated").value_or(-1), 2);
  EXPECT_EQ(json_int(stats, "cache_hits").value_or(-1), 2);
}

TEST_F(ServiceTest, IdenticalContentSharesGtypeLevelEntry) {
  const std::string a = write("a.gt", "new w. (1/w) ; ~w");
  const std::string b = write("twin.gt", "new w. (1/w) ; ~w");

  Service service(ServiceOptions{});
  const std::string first = handle(service, submit_line({a, b}));
  // Sequential service: the twin compiles to the SAME interned graph
  // type and replays a.gt's analysis block on the very first submit.
  EXPECT_EQ(json_ints(first, "cached"), (std::vector<long long>{0, 1}));
  const std::vector<std::string> reports = json_strings(first, "report");
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0], reports[1]);  // .gt inputs have empty headers
}

TEST_F(ServiceTest, OptionsChangeDoesNotReuseCachedVerdicts) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  Service service(ServiceOptions{});
  const std::string plain = handle(service, submit_line({df}));
  EXPECT_EQ(json_ints(plain, "cached"), (std::vector<long long>{0}));
  // Same file under different analysis options: a fresh cache namespace.
  const std::string baseline =
      handle(service, submit_line({df}, ",\"baseline\":1"));
  EXPECT_EQ(json_ints(baseline, "cached"), (std::vector<long long>{0}));
  EXPECT_NE(json_strings(baseline, "report")[0].find("gml baseline"),
            std::string::npos);
  // And each namespace replays independently.
  const std::string again = handle(service, submit_line({df}));
  EXPECT_EQ(json_ints(again, "cached"), (std::vector<long long>{1}));
  EXPECT_EQ(json_strings(again, "report"), json_strings(plain, "report"));
}

TEST_F(ServiceTest, SnapshotRoundTripInProcess) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string fut = programs_dir() + "/pipeline.fut";
  Service service(ServiceOptions{});
  (void)handle(service, submit_line({df, fut}));

  const std::string snap = (fs::path(dir_) / "snap.bin").string();
  const auto written = gtdl::service::save_snapshot(snap);
  ASSERT_TRUE(written.ok) << written.error;
  EXPECT_GT(written.nodes, 0u);
  EXPECT_GT(written.bytes, 0u);

  // Replaying into the live interner is idempotent: every node
  // re-interns to itself, so the recorded ids match exactly.
  const auto loaded = gtdl::service::load_snapshot(snap);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.nodes, written.nodes);
  EXPECT_TRUE(loaded.ids_identical);
}

TEST_F(ServiceTest, CorruptedSnapshotsAreRejectedWithDiagnostics) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  Service service(ServiceOptions{});
  (void)handle(service, submit_line({df}));
  const std::string snap = (fs::path(dir_) / "snap.bin").string();
  ASSERT_TRUE(gtdl::service::save_snapshot(snap).ok);

  EXPECT_FALSE(gtdl::service::load_snapshot(snap + ".missing").ok);

  const std::string garbage =
      write("garbage.bin", std::string(64, 'x'));  // past the header size
  const auto bad_magic = gtdl::service::load_snapshot(garbage);
  EXPECT_FALSE(bad_magic.ok);
  EXPECT_NE(bad_magic.error.find("magic"), std::string::npos);

  std::string bytes;
  {
    std::ifstream in(snap, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::string patched = bytes;
    patched[8] = static_cast<char>(patched[8] + 1);  // version field
    const std::string p = write("version.bin", patched);
    const auto r = gtdl::service::load_snapshot(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
  }
  {
    std::string patched = bytes;
    patched[patched.size() / 2] ^= 0x5A;  // payload corruption
    const std::string p = write("flipped.bin", patched);
    const auto r = gtdl::service::load_snapshot(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("checksum"), std::string::npos) << r.error;
  }
  {
    const std::string p =
        write("truncated.bin", bytes.substr(0, bytes.size() - 7));
    const auto r = gtdl::service::load_snapshot(p);
    EXPECT_FALSE(r.ok);
  }
}

TEST_F(ServiceTest, EvictionUnderTinyQuotaStaysCorrect) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string dl = write("dl.gt", "new u. ~u ; 1/u");

  ServiceOptions options;
  options.cache_quota_bytes = 256;  // far below two entries
  Service service(options);

  for (int round = 0; round < 3; ++round) {
    const std::string r = handle(service, submit_line({df, dl}));
    EXPECT_EQ(json_int(r, "exit_code").value_or(-1), 1) << r;
    const std::vector<std::string> reports = json_strings(r, "report");
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_NE(reports[0].find("DEADLOCK-FREE"), std::string::npos);
    EXPECT_NE(reports[1].find("POSSIBLE DEADLOCK"), std::string::npos);
  }
  const std::string stats = handle(service, "{\"op\":\"stats\"}");
  EXPECT_GT(json_int(stats, "cache_evictions").value_or(0), 0) << stats;
  EXPECT_LE(json_int(stats, "cache_bytes").value_or(-1), 256) << stats;
}

TEST_F(ServiceTest, BudgetExhaustionIsNeverCached) {
  const std::string fut = programs_dir() + "/fib_dl.fut";
  Service service(ServiceOptions{});

  const std::string before = handle(service, "{\"op\":\"stats\"}");
  const long long entries_before =
      json_int(before, "cache_entries").value_or(-1);

  const std::string starved =
      handle(service, submit_line({fut}, ",\"budget_steps\":1"));
  EXPECT_EQ(json_int(starved, "exit_code").value_or(-1), 3) << starved;
  EXPECT_NE(json_strings(starved, "report")[0].find("UNKNOWN"),
            std::string::npos);

  // Nothing was cached for the exhausted request...
  const std::string mid = handle(service, "{\"op\":\"stats\"}");
  EXPECT_EQ(json_int(mid, "cache_entries").value_or(-1), entries_before);

  // ...the unlimited request computes the real verdict...
  const std::string full = handle(service, submit_line({fut}));
  EXPECT_EQ(json_int(full, "exit_code").value_or(-1), 1) << full;
  EXPECT_EQ(json_ints(full, "cached"), (std::vector<long long>{0}));

  // ...and the starved namespace still reports exhaustion, never a
  // replay of the unlimited verdict.
  const std::string starved_again =
      handle(service, submit_line({fut}, ",\"budget_steps\":1"));
  EXPECT_EQ(json_int(starved_again, "exit_code").value_or(-1), 3);
  EXPECT_EQ(json_ints(starved_again, "cached"), (std::vector<long long>{0}));
}

TEST_F(ServiceTest, ProtocolLevelErrorsAndMisc) {
  Service service(ServiceOptions{});
  bool shutdown = false;

  EXPECT_NE(service.handle_line("{\"op\":\"ping\",\"id\":\"9\"}", &shutdown)
                .find("\"id\":\"9\""),
            std::string::npos);
  EXPECT_FALSE(shutdown);

  EXPECT_NE(service.handle_line("not json", &shutdown).find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(service.handle_line("{\"op\":\"warp\"}", &shutdown)
                .find("unknown op"),
            std::string::npos);
  EXPECT_NE(service.handle_line("{\"op\":\"submit\"}", &shutdown)
                .find("at least one"),
            std::string::npos);
  EXPECT_NE(service.handle_line("{\"op\":\"snapshot\"}", &shutdown)
                .find("path"),
            std::string::npos);

  const std::string missing = handle(
      service, submit_line({"/nonexistent/definitely_missing.gt"}));
  EXPECT_EQ(json_int(missing, "exit_code").value_or(-1), 2) << missing;

  EXPECT_NE(service.handle_line("{\"op\":\"shutdown\"}", &shutdown)
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_TRUE(shutdown);
}

// --- fdld binary, --stdio transport ----------------------------------------

struct FdldRun {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

FdldRun run_fdld(const std::string& args, const std::string& input,
                 const std::string& stderr_file) {
  std::string script;
  for (const char c : input) {
    if (c == '\n') {
      script += "\\n";
    } else if (c == '\'') {
      script += "'\\''";
    } else {
      script.push_back(c);
    }
  }
  const std::string command = "printf '%b' '" + script + "' | " +
                              std::string(GTDL_FDLD_PATH) + " " + args +
                              " 2>" + stderr_file;
  FdldRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.stdout_text += buffer.data();
  }
  result.exit_code = WEXITSTATUS(pclose(pipe));
  std::ifstream err(stderr_file);
  result.stderr_text.assign(std::istreambuf_iterator<char>(err),
                            std::istreambuf_iterator<char>());
  return result;
}

TEST_F(ServiceTest, FdldStdioEndToEnd) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string dl = write("dl.gt", "new u. ~u ; 1/u");
  const std::string stderr_file = (fs::path(dir_) / "err.txt").string();

  const std::string input = submit_line({df, dl}) + "\n" +
                            submit_line({df, dl}, "", "reanalyze") + "\n" +
                            "{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n";
  const FdldRun run = run_fdld("--stdio --jobs 2", input, stderr_file);
  ASSERT_EQ(run.exit_code, 0) << run.stdout_text << run.stderr_text;

  std::vector<std::string> lines;
  std::istringstream stream(run.stdout_text);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << run.stdout_text;

  EXPECT_EQ(json_ints(lines[0], "cached"), (std::vector<long long>{0, 0}));
  EXPECT_EQ(json_ints(lines[1], "cached"), (std::vector<long long>{1, 1}));
  EXPECT_EQ(json_strings(lines[0], "report"), json_strings(lines[1], "report"));
  EXPECT_EQ(json_int(lines[2], "requests").value_or(-1), 3);
  EXPECT_EQ(json_int(lines[2], "cache_hits").value_or(-1), 2);
  EXPECT_NE(lines[3].find("\"op\":\"shutdown\""), std::string::npos);
}

TEST_F(ServiceTest, FdldSnapshotWarmStartIdenticalIdsAndVerdicts) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string dl = write("dl.gt", "new u. ~u ; 1/u");
  const std::string snap = (fs::path(dir_) / "snap.bin").string();
  const std::string stderr_file = (fs::path(dir_) / "err.txt").string();

  std::string snap_req = "{\"op\":\"snapshot\",\"path\":";
  gtdl::service::append_json_string(snap_req, snap);
  snap_req += "}";

  const std::string input1 =
      submit_line({df, dl}) + "\n" + snap_req + "\n{\"op\":\"shutdown\"}\n";
  const FdldRun cold = run_fdld("--stdio", input1, stderr_file);
  ASSERT_EQ(cold.exit_code, 0) << cold.stderr_text;
  std::istringstream cold_stream(cold.stdout_text);
  std::string cold_submit;
  ASSERT_TRUE(std::getline(cold_stream, cold_submit));

  const std::string input2 =
      submit_line({df, dl}) + "\n{\"op\":\"shutdown\"}\n";
  const FdldRun warm =
      run_fdld("--stdio --warm-start " + snap, input2, stderr_file);
  ASSERT_EQ(warm.exit_code, 0) << warm.stderr_text;
  // A fresh interner replays the snapshot to the exact same ids.
  EXPECT_NE(warm.stderr_text.find("ids identical"), std::string::npos)
      << warm.stderr_text;
  std::istringstream warm_stream(warm.stdout_text);
  std::string warm_submit;
  ASSERT_TRUE(std::getline(warm_stream, warm_submit));
  // Cold daemon vs snapshot-warmed daemon: byte-identical verdicts.
  EXPECT_EQ(json_strings(warm_submit, "report"),
            json_strings(cold_submit, "report"));
}

TEST_F(ServiceTest, FdldBadWarmStartFallsBackCold) {
  const std::string df = write("df.gt", "new u. (1/u) ; ~u");
  const std::string garbage = write("garbage.bin", "definitely not a snapshot");
  const std::string stderr_file = (fs::path(dir_) / "err.txt").string();

  const std::string input =
      submit_line({df}) + "\n{\"op\":\"shutdown\"}\n";
  const FdldRun run =
      run_fdld("--stdio --warm-start " + garbage, input, stderr_file);
  ASSERT_EQ(run.exit_code, 0) << run.stderr_text;
  EXPECT_NE(run.stderr_text.find("starting cold"), std::string::npos)
      << run.stderr_text;
  std::istringstream stream(run.stdout_text);
  std::string submit;
  ASSERT_TRUE(std::getline(stream, submit));
  EXPECT_EQ(json_int(submit, "exit_code").value_or(-1), 0) << submit;
  EXPECT_NE(json_strings(submit, "report")[0].find("DEADLOCK-FREE"),
            std::string::npos);
}

}  // namespace
