// E4 — the §3 blow-up claim: "the number of graphs in Norm_n(G) is, for
// most graph types, exponential in n."
//
// The series below counts |Norm_n(G)| exactly as Fig. 3 defines it (no
// set-level deduplication, computed combinatorially) for the
// divide-and-conquer type of §2.3 and for the §3 counterexample, and
// also reports the number of semantically distinct graphs (alpha-deduped)
// that a detector would actually have to check. Both grow exponentially;
// materializing them is what makes deeper unrolling bounds impractical,
// motivating the paper's normalization-free kind system.
//
// The first-witness table then pits the streamed enumeration
// (for_each_graph + CSR scan, stopping at the first deadlocked graph)
// against the materialized path (normalize into a vector, then scan) on
// the counterexample at depths past the cycle's manifestation. Results —
// including the stream's buffered-graph high-water mark, which stays
// bounded by NormalizeLimits::stream_materialize_cap while the
// materialized set keeps growing — go to bench_normalization.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <inttypes.h>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"

namespace {

using namespace gtdl;

const GTypePtr& dnc_type() {
  static const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  return g;
}

void print_series(const char* label, const GTypePtr& g, unsigned max_depth) {
  std::printf("%s\n%-5s %20s %16s %12s\n", label, "n", "|Norm_n| (Fig.3)",
              "distinct", "truncated");
  for (unsigned n = 1; n <= max_depth; ++n) {
    const std::uint64_t raw = count_normalizations(g, n);
    NormalizeLimits limits;
    limits.max_graphs = 200000;
    limits.max_steps = 5'000'000;
    const NormalizeResult materialized = normalize(g, n, limits);
    std::printf("%-5u %20" PRIu64 " %16zu %12s\n", n, raw,
                materialized.graphs.size(),
                materialized.truncated ? "yes" : "no");
  }
  std::printf("\n");
}

// --- first-witness vs exhaustive ------------------------------------------

// §3-style ⊕-alternation family with an early witness: n independent
// "maybe spawn v_i" factors followed by a touch-before-spawn cycle on u.
//
//   new u, v1..vn. (1 | 1/v1) ; ... ; (1 | 1/vn) ; ~u ; 1/u
//
// The factors are pairwise alpha-distinct (each subset of spawns keeps
// its seq-tree position), so |Norm_1| = 2^n even after dedup — and every
// member contains the cycle, so a first-witness scan is done after ONE
// graph while the materialized path builds all 2^n first.
GTypePtr alternation_family(unsigned n) {
  std::vector<Symbol> binders;
  std::vector<GTypePtr> parts;
  for (unsigned i = 1; i <= n; ++i) {
    const Symbol v = Symbol::intern("v" + std::to_string(i));
    binders.push_back(v);
    parts.push_back(gt::alt(gt::empty(), gt::spawn(gt::empty(), v)));
  }
  const Symbol u = Symbol::intern("u");
  binders.push_back(u);
  parts.push_back(gt::touch(u));
  parts.push_back(gt::spawn(gt::empty(), u));
  return gt::nu_all(binders, gt::seq_all(std::move(parts)));
}

struct WitnessRow {
  unsigned n = 0;  // family member / depth, per table
  unsigned depth = 0;
  std::size_t materialized_graphs = 0;  // |Norm_n| after alpha-dedup
  double materialized_ms = 0;           // normalize-all + scan to first hit
  double first_witness_ms = 0;          // streamed, stop at first hit
  double speedup = 0;
  std::size_t streamed = 0;           // graphs enumerated before the stop
  std::size_t peak_materialized = 0;  // stream buffer high-water
  bool deadlock = false;
};

NormalizeLimits witness_limits() {
  NormalizeLimits limits;
  limits.max_graphs = 1u << 22;
  limits.max_steps = 500'000'000;
  return limits;
}

template <typename Fn>
double min_ms_of_3(Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

WitnessRow measure_first_witness(const GTypePtr& g, unsigned n,
                                 unsigned depth) {
  const NormalizeLimits limits = witness_limits();
  WitnessRow row;
  row.n = n;
  row.depth = depth;

  // Materialized path: what gml_baseline_check did before streaming —
  // build the whole graph vector, then scan it front to back.
  row.materialized_ms = min_ms_of_3([&] {
    const NormalizeResult materialized = normalize(g, depth, limits);
    row.materialized_graphs = materialized.graphs.size();
    GraphArena arena;
    for (const GraphExprPtr& graph : materialized.graphs) {
      if (find_ground_deadlock(*graph, arena).any()) break;
    }
  });

  // Streamed path: stop the enumeration at the first offending graph.
  row.first_witness_ms = min_ms_of_3([&] {
    GraphArena arena;
    bool found = false;
    const StreamStats stats =
        for_each_graph(g, depth, limits, [&](const GraphExprPtr& graph) {
          if (find_ground_deadlock(*graph, arena).any()) {
            found = true;
            return false;
          }
          return true;
        });
    row.streamed = stats.emitted;
    row.peak_materialized = stats.peak_materialized;
    row.deadlock = found;
  });

  row.speedup = row.first_witness_ms > 0
                    ? row.materialized_ms / row.first_witness_ms
                    : 0;
  return row;
}

void print_witness_rows(const char* title,
                        const std::vector<WitnessRow>& rows) {
  std::printf(
      "first-witness (streamed) vs exhaustive (materialize + scan), %s\n"
      "%-5s %14s %14s %14s %9s %10s %10s %9s\n",
      title, "n", "|Norm|", "material. ms", "1st-wit. ms", "speedup",
      "streamed", "peak-buf", "deadlock");
  for (const WitnessRow& row : rows) {
    std::printf("%-5u %14zu %14.3f %14.3f %8.1fx %10zu %10zu %9s\n", row.n,
                row.materialized_graphs, row.materialized_ms,
                row.first_witness_ms, row.speedup, row.streamed,
                row.peak_materialized, row.deadlock ? "yes" : "no");
  }
  std::printf(
      "(peak-buf is the enumerator's buffered-graph high-water mark — "
      "bounded by stream_materialize_cap, not by |Norm|)\n\n");
}

void write_witness_rows(std::FILE* json, const char* key,
                        const std::vector<WitnessRow>& rows) {
  std::fprintf(json, "  \"%s\": [", key);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WitnessRow& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"n\": %u, \"depth\": %u, "
                 "\"materialized_graphs\": %zu, "
                 "\"materialized_ms\": %.3f, \"first_witness_ms\": %.3f, "
                 "\"speedup\": %.2f, \"streamed\": %zu, "
                 "\"peak_materialized\": %zu, \"deadlock\": %s}",
                 i == 0 ? "" : ",", r.n, r.depth, r.materialized_graphs,
                 r.materialized_ms, r.first_witness_ms, r.speedup,
                 r.streamed, r.peak_materialized,
                 r.deadlock ? "true" : "false");
  }
  std::fprintf(json, "\n  ],\n");
}

int write_witness_json(const std::vector<WitnessRow>& alternation,
                       const std::vector<WitnessRow>& counterexample) {
  std::FILE* json = std::fopen("bench_normalization.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_normalization.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  write_witness_rows(json, "alternation_family", alternation);
  write_witness_rows(json, "counterexample_m1", counterexample);
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote bench_normalization.json\n");
  return 0;
}

void BM_CountNormalizations(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_normalizations(dnc_type(), depth));
  }
}

void BM_MaterializeNormalization(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  NormalizeLimits limits;
  limits.max_graphs = 1u << 22;
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalize(dnc_type(), depth, limits).graphs);
  }
  state.SetComplexityN(depth);
}

BENCHMARK(BM_CountNormalizations)->DenseRange(2, 12, 2);
BENCHMARK(BM_MaterializeNormalization)->DenseRange(2, 8, 1);

}  // namespace

int main(int argc, char** argv) {
  print_series("divide-and-conquer type  rec g. new u. 1 | g/u ; g ; ~u",
               dnc_type(), 12);
  print_series("S3 counterexample (m = 1)", counterexample_gtype(1), 12);
  obs::set_stats_enabled(true);
  std::vector<WitnessRow> alternation;
  for (unsigned n = 4; n <= 14; n += 2) {
    alternation.push_back(measure_first_witness(alternation_family(n), n, 1));
  }
  print_witness_rows("S3-style alternation family (|Norm_1| = 2^n)",
                     alternation);
  std::vector<WitnessRow> counterexample;
  for (unsigned depth = 4; depth <= 10; ++depth) {
    counterexample.push_back(
        measure_first_witness(counterexample_gtype(1), depth, depth));
  }
  print_witness_rows("S3 counterexample m = 1 at fuel n", counterexample);
  obs::set_stats_enabled(false);
  if (write_witness_json(alternation, counterexample) != 0) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
