// E4 — the §3 blow-up claim: "the number of graphs in Norm_n(G) is, for
// most graph types, exponential in n."
//
// The series below counts |Norm_n(G)| exactly as Fig. 3 defines it (no
// set-level deduplication, computed combinatorially) for the
// divide-and-conquer type of §2.3 and for the §3 counterexample, and
// also reports the number of semantically distinct graphs (alpha-deduped)
// that a detector would actually have to check. Both grow exponentially;
// materializing them is what makes deeper unrolling bounds impractical,
// motivating the paper's normalization-free kind system.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <inttypes.h>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"

namespace {

using namespace gtdl;

const GTypePtr& dnc_type() {
  static const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  return g;
}

void print_series(const char* label, const GTypePtr& g, unsigned max_depth) {
  std::printf("%s\n%-5s %20s %16s %12s\n", label, "n", "|Norm_n| (Fig.3)",
              "distinct", "truncated");
  for (unsigned n = 1; n <= max_depth; ++n) {
    const std::uint64_t raw = count_normalizations(g, n);
    NormalizeLimits limits;
    limits.max_graphs = 200000;
    limits.max_steps = 5'000'000;
    const NormalizeResult materialized = normalize(g, n, limits);
    std::printf("%-5u %20" PRIu64 " %16zu %12s\n", n, raw,
                materialized.graphs.size(),
                materialized.truncated ? "yes" : "no");
  }
  std::printf("\n");
}

void BM_CountNormalizations(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_normalizations(dnc_type(), depth));
  }
}

void BM_MaterializeNormalization(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  NormalizeLimits limits;
  limits.max_graphs = 1u << 22;
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalize(dnc_type(), depth, limits).graphs);
  }
  state.SetComplexityN(depth);
}

BENCHMARK(BM_CountNormalizations)->DenseRange(2, 12, 2);
BENCHMARK(BM_MaterializeNormalization)->DenseRange(2, 8, 1);

}  // namespace

int main(int argc, char** argv) {
  print_series("divide-and-conquer type  rec g. new u. 1 | g/u ; g ; ~u",
               dnc_type(), 12);
  print_series("S3 counterexample (m = 1)", counterexample_gtype(1), 12);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
