// E15 — fdld warm requests vs cold process starts (DESIGN.md §S23).
//
// Three experiments, all recorded in bench_service.json:
//
// 1. GATED warm-vs-cold per-request latency. For each workload, "cold"
//    is one full fdld process lifecycle (exec, compile, analyze, exit —
//    what an editor pays shelling out per keystroke), measured by
//    piping a submit+shutdown script through a fresh `fdld --stdio`.
//    "Warm" is the same submit handled by a long-lived in-process
//    Service whose caches the first request already populated — the
//    daemon steady state. The gate: geomean cold/warm speedup across
//    workloads must be >= 5x or main exits 1.
//
// 2. Ungated incremental re-analysis: a 12-file .gt corpus, one file
//    modified between requests. The reanalyze recomputes only the dirty
//    cone (1 of 12 files) and replays the rest, vs a cold process run
//    of the full corpus.
//
// 3. Ungated snapshot warm-start: cold fdld process start vs one that
//    pre-loads the interner snapshot written by experiment 1's corpus.
//
// Workload verdicts are checked against ground truth before timing —
// a fast wrong daemon would be worse than a slow right one.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/service/protocol.hpp"
#include "gtdl/service/service.hpp"
#include "gtdl/service/snapshot.hpp"

namespace {

namespace fs = std::filesystem;
using gtdl::service::Service;
using gtdl::service::ServiceOptions;

std::string fdld_path() {
#ifdef GTDL_FDLD_PATH
  return GTDL_FDLD_PATH;
#else
  return "fdld";
#endif
}

std::string submit_line(const std::vector<std::string>& files,
                        const char* op = "submit") {
  std::string line = "{\"op\":\"";
  line += op;
  line += "\"";
  for (const std::string& f : files) {
    line += ",\"file\":";
    gtdl::service::append_json_string(line, f);
  }
  line += "}";
  return line;
}

// One cold daemon lifecycle: start fdld --stdio, feed it the script,
// drain stdout, wait for exit. Returns the exit code (or -1).
int run_cold(const std::string& extra_args, const std::string& script,
             std::string* out = nullptr) {
  const std::string command = "printf '%s\\n' '" + script + "' | " +
                              fdld_path() + " --stdio " + extra_args +
                              " 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    if (out != nullptr) *out += buffer;
  }
  return WEXITSTATUS(pclose(pipe));
}

template <typename Fn>
double min_ms_of(int reps, Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

long long field_int(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
}

struct Workload {
  std::string name;
  std::vector<std::string> files;
  int expected_exit = 0;
};

struct Row {
  std::string name;
  double cold_ms = 0;
  double warm_ms = 0;
  double speedup = 0;
};

constexpr double kGate = 5.0;

}  // namespace

int main() {
  using gtdl::bench::eval_programs;
  using gtdl::bench::programs_dir;

  std::string tmp_pattern =
      (fs::temp_directory_path() / "gtdl_bench_service_XXXXXX").string();
  if (mkdtemp(tmp_pattern.data()) == nullptr) {
    std::fprintf(stderr, "cannot create temp dir\n");
    return 1;
  }
  const fs::path tmp = tmp_pattern;

  // --- workloads --------------------------------------------------------
  std::vector<Workload> workloads;
  {
    Workload table1{"table1 corpus (6 .fut)", {}, 1};
    for (const auto& p : eval_programs()) {
      table1.files.push_back(programs_dir() + "/" + p.file);
    }
    workloads.push_back(std::move(table1));
  }
  {
    Workload df{"pipeline.fut", {programs_dir() + "/pipeline.fut"}, 0};
    workloads.push_back(std::move(df));
  }
  {
    // A 12-definition textual graph-type corpus (the incremental
    // experiment reuses it): 11 deadlock-free chains + 1 rejecting.
    Workload gts{"12-file .gt corpus", {}, 1};
    for (int i = 0; i < 11; ++i) {
      const std::string path = (tmp / ("chain" + std::to_string(i) + ".gt")).string();
      std::ofstream out(path);
      out << "new u. new v. ((1/u) ; 1/v) ; ~u ; ~v";
      for (int k = 0; k < i; ++k) out << " ; 1";  // distinct contents
      gts.files.push_back(path);
    }
    const std::string bad = (tmp / "cycle.gt").string();
    std::ofstream(bad) << "new u. ~u ; 1/u";
    gts.files.push_back(bad);
    workloads.push_back(std::move(gts));
  }

  // --- experiment 1: gated warm vs cold ---------------------------------
  Service service(ServiceOptions{});
  bool shutdown = false;
  bool verdicts_agree = true;

  std::printf("fdld warm request vs cold process start\n%-24s %12s %12s %9s\n",
              "workload", "cold ms", "warm ms", "speedup");
  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    const std::string line = submit_line(w.files);
    const std::string script = line + "\n{\"op\":\"shutdown\"}";

    std::string cold_out;
    const int cold_exit = run_cold("", script, &cold_out);
    const std::string warm_prime = service.handle_line(line, &shutdown);
    const long long cold_verdict = field_int(cold_out, "exit_code");
    const long long warm_verdict = field_int(warm_prime, "exit_code");
    if (cold_verdict != w.expected_exit || warm_verdict != w.expected_exit ||
        cold_exit != 0) {
      verdicts_agree = false;
      std::fprintf(stderr,
                   "FAIL %s: expected exit %d, cold %lld, warm %lld "
                   "(process exit %d)\n",
                   w.name.c_str(), w.expected_exit, cold_verdict,
                   warm_verdict, cold_exit);
    }

    Row row;
    row.name = w.name;
    row.cold_ms = min_ms_of(5, [&] { (void)run_cold("", script); });
    row.warm_ms =
        min_ms_of(5, [&] { (void)service.handle_line(line, &shutdown); });
    row.speedup = row.warm_ms > 0 ? row.cold_ms / row.warm_ms : 0;
    std::printf("%-24s %12.3f %12.3f %8.1fx\n", row.name.c_str(),
                row.cold_ms, row.warm_ms, row.speedup);
    rows.push_back(row);
  }

  double log_sum = 0;
  for (const Row& row : rows) log_sum += std::log(row.speedup);
  const double geomean = std::exp(log_sum / static_cast<double>(rows.size()));
  const bool gate_passed = verdicts_agree && geomean >= kGate;
  std::printf("geomean speedup %.1fx (gate >= %.1fx): %s\n\n", geomean, kGate,
              gate_passed ? "PASS" : "FAIL");

  // --- experiment 2: incremental re-analysis ----------------------------
  const Workload& gts = workloads.back();
  const std::string gt_line = submit_line(gts.files, "reanalyze");
  const std::string gt_script = submit_line(gts.files) + "\n{\"op\":\"shutdown\"}";
  const std::string changed = gts.files.front();
  int flip = 0;
  const auto touch_one = [&] {
    // Alternate between two deadlock-free spellings so every reanalyze
    // sees a genuine content change in exactly one definition.
    std::ofstream out(changed, std::ios::trunc);
    out << ((flip++ % 2) == 0 ? "new u. (1/u) ; ~u ; 1"
                              : "new u. (1/u) ; 1 ; ~u");
  };
  touch_one();
  (void)service.handle_line(gt_line, &shutdown);  // prime the new spelling
  const double incremental_cold_ms =
      min_ms_of(5, [&] { (void)run_cold("", gt_script); });
  const double incremental_warm_ms = min_ms_of(5, [&] {
    touch_one();
    (void)service.handle_line(gt_line, &shutdown);
  });
  const double incremental_speedup =
      incremental_warm_ms > 0 ? incremental_cold_ms / incremental_warm_ms : 0;
  std::printf(
      "incremental: 1-of-12 .gt changed, reanalyze %12.3f ms vs cold "
      "%12.3f ms (%.1fx)\n",
      incremental_warm_ms, incremental_cold_ms, incremental_speedup);

  // --- experiment 3: snapshot warm start --------------------------------
  const std::string snap = (tmp / "snap.bin").string();
  const auto written = gtdl::service::save_snapshot(snap);
  double warm_start_cold_ms = 0;
  double warm_start_warm_ms = 0;
  if (written.ok) {
    const std::string fut_script =
        submit_line(workloads[1].files) + "\n{\"op\":\"shutdown\"}";
    warm_start_cold_ms = min_ms_of(5, [&] { (void)run_cold("", fut_script); });
    warm_start_warm_ms = min_ms_of(
        5, [&] { (void)run_cold("--warm-start " + snap, fut_script); });
    std::printf(
        "snapshot warm start (%zu nodes): process %12.3f ms vs cold "
        "%12.3f ms\n",
        written.nodes, warm_start_warm_ms, warm_start_cold_ms);
  } else {
    std::fprintf(stderr, "snapshot write failed: %s\n", written.error.c_str());
  }

  // --- JSON -------------------------------------------------------------
  std::FILE* json = std::fopen("bench_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_service.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"warm_vs_cold\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"workload\": \"%s\", \"cold_ms\": %.3f, "
                 "\"warm_ms\": %.3f, \"speedup\": %.1f}",
                 i == 0 ? "" : ",", r.name.c_str(), r.cold_ms, r.warm_ms,
                 r.speedup);
  }
  std::fprintf(json,
               "\n  ],\n  \"geomean_speedup\": %.1f,\n  \"gate\": %.1f,\n"
               "  \"gate_passed\": %s,\n",
               geomean, kGate, gate_passed ? "true" : "false");
  std::fprintf(json,
               "  \"incremental\": {\"files\": %zu, \"changed\": 1, "
               "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.1f},\n",
               gts.files.size(), incremental_cold_ms, incremental_warm_ms,
               incremental_speedup);
  std::fprintf(json,
               "  \"snapshot_warm_start\": {\"nodes\": %zu, "
               "\"cold_ms\": %.3f, \"warm_ms\": %.3f},\n",
               written.ok ? written.nodes : 0, warm_start_cold_ms,
               warm_start_warm_ms);
  gtdl::bench::write_json_env(json);
  std::fprintf(json, ",\n");
  gtdl::bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_service.json\n");

  std::error_code ec;
  fs::remove_all(tmp, ec);
  return gate_passed ? 0 : 1;
}
