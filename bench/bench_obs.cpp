// E-obs — self-overhead of the observability layer (src/gtdl/obs/).
//
// The instrumentation contract is "zero-cost unless enabled": every
// counter bump and span is behind a relaxed atomic flag load, so a build
// with observability compiled in but switched off should analyze at the
// same speed as one with no instrumentation at all. There is no
// uninstrumented binary to diff against, so dormant overhead is bounded
// two ways:
//
//   1. Macro: the same analysis workload timed with everything off,
//      with --stats-style counting on, and with counting + tracing on.
//      The off/on deltas bound what enabling costs; the off time is the
//      denominator for the dormant estimate below.
//   2. Micro: a tight loop over a dormant Counter::add measures the
//      per-call cost of the disabled fast path (one relaxed load + a
//      never-taken branch). One stats-on run of the workload counts how
//      many gated operations it performs; dormant cost x gated ops /
//      off-time is the estimated whole-run overhead of the disabled
//      instrumentation — the "<5%" acceptance number.
//
// The workload compiles a fresh synthetic chain program per iteration
// (fresh symbols defeat the normalization memo, so every iteration does
// real interner + detect work) and runs the deadlock-freedom check.
//
// Results go to stdout and bench_obs.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/gtype/wellformed.hpp"
#include "gtdl/obs/trace.hpp"

namespace {

using namespace gtdl;

constexpr unsigned kChainStages = 24;
constexpr unsigned kItersPerRun = 48;
constexpr unsigned kRuns = 9;
constexpr std::uint64_t kMicroCalls = 50'000'000;

// Keeps the optimizer from deleting the micro loops outright.
inline void clobber() { asm volatile("" ::: "memory"); }

double run_workload_once() {
  const auto start = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < kItersPerRun; ++i) {
    const CompiledProgram prog = compile_futlang_or_throw(
        bench::synthetic_chain_program(kChainStages));
    const GTypePtr gtype = prog.inferred.program_gtype;
    (void)check_wellformed(gtype);
    (void)check_deadlock_freedom(gtype);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

struct Mode {
  const char* label;
  bool stats;
  bool trace;
  std::vector<double> times;
};

// One timed repetition of every mode per round, so drift (interner table
// growth, frequency scaling) lands on all modes equally instead of
// penalizing whichever mode happens to run first.
void run_modes(std::vector<Mode>& modes) {
  for (unsigned r = 0; r < kRuns; ++r) {
    for (Mode& mode : modes) {
      obs::set_stats_enabled(mode.stats);
      obs::set_trace_enabled(mode.trace);
      mode.times.push_back(run_workload_once());
      if (mode.trace) obs::trace_clear();
    }
  }
  obs::set_stats_enabled(false);
  obs::set_trace_enabled(false);
}

// Minimum over the interleaved repetitions: on a busy single-core host
// the distribution is best-case-plus-noise, and the minimum is the run
// least distorted by scheduler interference.
double best_ms(const Mode& mode) {
  const double best = *std::min_element(mode.times.begin(), mode.times.end());
  std::printf("%-34s %10.2f ms  (min of %u, interleaved)\n", mode.label,
              best, kRuns);
  return best;
}

// Sum of every counter increment and histogram observation the workload
// performed — the number of times a gated fast path was actually taken.
std::uint64_t gated_ops_delta(const std::vector<obs::MetricSample>& before,
                              const std::vector<obs::MetricSample>& after) {
  auto total = [](const std::vector<obs::MetricSample>& samples) {
    std::uint64_t sum = 0;
    for (const obs::MetricSample& s : samples) {
      if (s.type == obs::MetricType::kCounter ||
          s.type == obs::MetricType::kHistogram) {
        sum += s.value;
      }
    }
    return sum;
  };
  return total(after) - total(before);
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("host %s, %u hardware threads, %s build\n\n",
              env.hostname.c_str(), env.hardware_threads,
              env.build_type.c_str());

  // Warm the interner/global tables once so the first timed run is not
  // paying one-time setup.
  obs::set_stats_enabled(false);
  obs::set_trace_enabled(false);
  (void)run_workload_once();

  std::vector<Mode> modes{
      {"workload, observability off", false, false, {}},
      {"workload, --stats counting on", true, false, {}},
      {"workload, --stats + --trace on", true, true, {}},
  };
  run_modes(modes);
  const double off_ms = best_ms(modes[0]);
  const double stats_ms = best_ms(modes[1]);
  const double trace_ms = best_ms(modes[2]);

  // Count how many gated operations one workload run performs.
  auto& reg = obs::MetricsRegistry::instance();
  obs::set_stats_enabled(true);
  const auto before = reg.snapshot();
  (void)run_workload_once();
  const auto after = reg.snapshot();
  const std::uint64_t gated_ops = gated_ops_delta(before, after);
  obs::set_stats_enabled(false);

  // Dormant fast path: relaxed load + never-taken branch per call site.
  obs::set_stats_enabled(false);
  obs::Counter& dormant = reg.counter(obs::MetricDesc{
      "bench.obs.dormant", "obs", "calls",
      "micro-bench target; never enabled, measures the disabled path"});
  auto micro = [](auto&& body) {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kMicroCalls; ++i) {
      body();
      clobber();
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(stop - start).count() /
           static_cast<double>(kMicroCalls);
  };
  const double empty_ns = micro([] {});
  const double dormant_call_ns = micro([&dormant] { dormant.add(); });
  const double dormant_ns = std::max(0.0, dormant_call_ns - empty_ns);

  const double stats_pct = (stats_ms - off_ms) / off_ms * 100.0;
  const double trace_pct = (trace_ms - off_ms) / off_ms * 100.0;
  const double est_disabled_pct =
      static_cast<double>(gated_ops) * dormant_ns / (off_ms * 1e6) * 100.0;

  std::printf(
      "\ndormant counter fast path: %.2f ns/call (loop baseline %.2f ns)\n"
      "gated operations per workload run: %llu\n"
      "estimated disabled-mode overhead: %.3f%% of the off-mode run\n"
      "stats-on overhead: %+.1f%%, stats+trace overhead: %+.1f%%\n",
      dormant_ns, empty_ns, static_cast<unsigned long long>(gated_ops),
      est_disabled_pct, stats_pct, trace_pct);

  std::FILE* json = std::fopen("bench_obs.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_obs.json\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"workload\": \"compile+wf+detect synthetic chain, %u stages, "
      "%u iters/run, min of %u interleaved runs\",\n"
      "  \"off_ms\": %.3f,\n"
      "  \"stats_ms\": %.3f,\n"
      "  \"trace_ms\": %.3f,\n"
      "  \"stats_overhead_pct\": %.2f,\n"
      "  \"trace_overhead_pct\": %.2f,\n"
      "  \"dormant_ns_per_call\": %.3f,\n"
      "  \"gated_ops_per_run\": %llu,\n"
      "  \"estimated_disabled_overhead_pct\": %.4f,\n",
      kChainStages, kItersPerRun, kRuns, off_ms, stats_ms, trace_ms,
      stats_pct, trace_pct, dormant_ns,
      static_cast<unsigned long long>(gated_ops), est_disabled_pct);
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_obs.json\n");
  return 0;
}
