// E12 — collection-aware graph types (VecSpawn / TouchAll / TouchIdx /
// Pipe) over the pipeline/family example programs.
//
// Three claims, each with a printed table and a JSON series:
//
//   1. Precision: over the ISSUE-6 example family the kind system and
//      the GML baseline agree with the executed ground truth (a
//      Table-1-style precision table).
//   2. Width-independence: the family-as-unit kinding rule makes the
//      deadlock-freedom check O(1) in the family width, while the
//      enumeration side (which must unroll ū@0..ū@n-1 member vertices)
//      grows linearly — the whole point of keeping families symbolic in
//      the type.
//   3. Stage composition: Pipe chains kind-check through their desugared
//      form with cost linear in the stage count.
//
// Prints tables first, then writes bench_pipeline.json (env + metrics
// blocks included), then runs google-benchmark timings — so the CI
// smoke (--benchmark_filter=__smoke_none__) regenerates the tables and
// JSON without the slow timing section.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;

// The ISSUE-6 pipeline/family evaluation programs, in table order.
struct AdtProgram {
  const char* name;
  const char* file;
  bool has_deadlock;
};

const std::vector<AdtProgram>& adt_programs() {
  static const std::vector<AdtProgram> programs{
      {"VecReduce", "vec_reduce.fut", false},
      {"VecIndexed", "vec_indexed.fut", false},
      {"VecPipeline", "vec_pipeline.fut", false},
      {"PipeBuffer", "pipeline_buffer.fut", false},
      {"PipeSource", "pipeline_source.fut", false},
      {"VecSkipDL", "vec_skip_dl.fut", true},
      {"PipeDL", "pipeline_dl.fut", true},
  };
  return programs;
}

struct PrecisionRow {
  const char* name;
  bool has_deadlock;
  bool ours_accepts;
  bool gml_reports_dl;
  bool executed_deadlock;
};

std::vector<PrecisionRow> run_precision_table() {
  std::vector<PrecisionRow> rows;
  std::printf(
      "E12 precision — collection constructors (accept = proved "
      "deadlock-free):\n"
      "%-12s %-6s | %-8s %-10s %s\n", "Program", "DL?", "ours",
      "GML", "executed");
  for (const AdtProgram& p : adt_programs()) {
    const CompiledProgram compiled = compile_file(p.file);
    const bool ours =
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free;
    const bool gml =
        gml_baseline_check(compiled.inferred.program_gtype)
            .deadlock_reported;
    const InterpResult run = interpret(compiled.program);
    const bool executed_dl = run.deadlock.has_value();
    std::printf("%-12s %-6s | %-8s %-10s %s\n", p.name,
                p.has_deadlock ? "yes" : "no",
                ours ? "accept" : "reject",
                gml ? "deadlock" : "clean",
                executed_dl ? "deadlocked" : "completed");
    rows.push_back({p.name, p.has_deadlock, ours, gml, executed_dl});
  }
  std::printf(
      "(expected: verdict columns track the DL? column exactly — no\n"
      " false positives on the deadlock-free family/pipeline programs)\n\n");
  return rows;
}

// --- width sweep -------------------------------------------------------

// new fs. (vec[fs; width]. 1) ; touchall[fs; width]
GTypePtr family_type(std::uint32_t width) {
  const Symbol fs = Symbol::intern("fs");
  return gt::nu(fs, gt::seq(gt::vecspawn(gt::empty(), fs, width),
                            gt::touch_all(fs, width)));
}

// 1 |> 1 |> ... ({stages} empties), left-associated like the parser.
GTypePtr pipe_type(unsigned stages) {
  GTypePtr g = gt::empty();
  for (unsigned s = 1; s < stages; ++s) g = gt::pipe(g, gt::empty());
  return g;
}

template <typename Fn>
double time_us(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count();
}

struct WidthRow {
  std::uint32_t width;
  double kind_check_us;   // deadlock-freedom check: should be ~flat
  double enumerate_us;    // streamed unrolling: grows with width
  std::size_t graph_nodes;  // nodes in the (single) unrolled graph
};

std::vector<WidthRow> run_width_sweep() {
  std::vector<WidthRow> rows;
  std::printf(
      "Family-width sweep over  new fs. (vec[fs; n]. 1) ; touchall[fs; n]\n"
      "%-8s %-16s %-16s %s\n", "width", "kind check (us)",
      "enumerate (us)", "graph nodes");
  // 512 keeps the unrolled member chain under the normalizer's 2000-level
  // nesting guard; the kind check itself never unrolls, so it would take
  // any width.
  for (const std::uint32_t width : {1u, 8u, 64u, 256u, 512u}) {
    const GTypePtr g = family_type(width);
    WidthRow row{width, 0.0, 0.0, 0};
    row.kind_check_us = time_us([&] {
      if (!check_deadlock_freedom(g).deadlock_free) std::abort();
    });
    row.enumerate_us = time_us([&] {
      (void)for_each_graph(g, 1, {}, [&](const GraphExprPtr& gr) {
        row.graph_nodes = lower_to_graph(*gr).vertex_count();
        return true;
      });
    });
    std::printf("%-8u %-16.1f %-16.1f %zu\n", width, row.kind_check_us,
                row.enumerate_us, row.graph_nodes);
    rows.push_back(row);
  }
  std::printf(
      "(expected: the kind-check column stays flat while enumeration\n"
      " and graph size grow linearly — families stay symbolic in the "
      "type)\n\n");
  return rows;
}

struct StageRow {
  unsigned stages;
  double kind_check_us;
};

std::vector<StageRow> run_stage_sweep() {
  std::vector<StageRow> rows;
  std::printf("Pipe-depth sweep over  1 |> 1 |> ... (n stages)\n"
              "%-8s %s\n", "stages", "kind check (us)");
  // Each desugared stage adds a handful of nesting levels, so 256 stays
  // under the well-formedness checker's 2000-level guard (deeper chains
  // are rejected conservatively by design).
  for (const unsigned stages : {2u, 8u, 32u, 128u, 256u}) {
    const GTypePtr g = pipe_type(stages);
    StageRow row{stages, 0.0};
    row.kind_check_us = time_us([&] {
      if (!check_deadlock_freedom(g).deadlock_free) std::abort();
    });
    std::printf("%-8u %.1f\n", stages, row.kind_check_us);
    rows.push_back(row);
  }
  std::printf("\n");
  return rows;
}

int write_json(const std::vector<PrecisionRow>& precision,
               const std::vector<WidthRow>& widths,
               const std::vector<StageRow>& stages) {
  std::FILE* json = std::fopen("bench_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_pipeline.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"precision\": [");
  for (std::size_t i = 0; i < precision.size(); ++i) {
    const PrecisionRow& r = precision[i];
    std::fprintf(json,
                 "%s\n    {\"program\": \"%s\", \"has_deadlock\": %s, "
                 "\"ours_accepts\": %s, \"gml_reports_deadlock\": %s, "
                 "\"executed_deadlock\": %s}",
                 i == 0 ? "" : ",", r.name,
                 r.has_deadlock ? "true" : "false",
                 r.ours_accepts ? "true" : "false",
                 r.gml_reports_dl ? "true" : "false",
                 r.executed_deadlock ? "true" : "false");
  }
  std::fprintf(json, "\n  ],\n  \"family_width_sweep\": [");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const WidthRow& r = widths[i];
    std::fprintf(json,
                 "%s\n    {\"width\": %u, \"kind_check_us\": %.1f, "
                 "\"enumerate_us\": %.1f, \"graph_nodes\": %zu}",
                 i == 0 ? "" : ",", r.width, r.kind_check_us,
                 r.enumerate_us, r.graph_nodes);
  }
  std::fprintf(json, "\n  ],\n  \"pipe_depth_sweep\": [");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageRow& r = stages[i];
    std::fprintf(json,
                 "%s\n    {\"stages\": %u, \"kind_check_us\": %.1f}",
                 i == 0 ? "" : ",", r.stages, r.kind_check_us);
  }
  std::fprintf(json, "\n  ],\n");
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote bench_pipeline.json\n");
  return 0;
}

// --- google-benchmark timings -----------------------------------------

void BM_KindCheckFamily(benchmark::State& state) {
  const GTypePtr g = family_type(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_deadlock_freedom(g).deadlock_free);
  }
}

void BM_EnumerateFamily(benchmark::State& state) {
  const GTypePtr g = family_type(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    std::size_t nodes = 0;
    (void)for_each_graph(g, 1, {}, [&](const GraphExprPtr& gr) {
      nodes += lower_to_graph(*gr).vertex_count();
      return true;
    });
    benchmark::DoNotOptimize(nodes);
  }
}

void BM_KindCheckPipe(benchmark::State& state) {
  const GTypePtr g = pipe_type(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_deadlock_freedom(g).deadlock_free);
  }
}

BENCHMARK(BM_KindCheckFamily)->RangeMultiplier(8)->Range(1, 512);
BENCHMARK(BM_EnumerateFamily)->RangeMultiplier(8)->Range(1, 512);
BENCHMARK(BM_KindCheckPipe)->RangeMultiplier(4)->Range(2, 256);

}  // namespace

int main(int argc, char** argv) {
  obs::set_stats_enabled(true);
  const std::vector<PrecisionRow> precision = run_precision_table();
  const std::vector<WidthRow> widths = run_width_sweep();
  const std::vector<StageRow> stages = run_stage_sweep();
  if (write_json(precision, widths, stages) != 0) return 1;
  // The precision table IS a gate: any disagreement with ground truth is
  // a regression in the collection constructors.
  for (const PrecisionRow& r : precision) {
    if (r.ours_accepts == r.has_deadlock ||
        r.gml_reports_dl != r.has_deadlock ||
        r.executed_deadlock != r.has_deadlock) {
      std::fprintf(stderr, "precision regression on %s\n", r.name);
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
