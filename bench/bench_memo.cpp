// E13 — flat-table memos vs the map-backed baseline they replaced.
//
// Two experiments, both recorded in bench_memo.json:
//
// 1. GATED key-trace replay (the CI regression gate). The trace is the
//    access pattern an analysis memo actually sees: a DFS over the
//    interned DAG of the §3-style alternation family at fuels 1..8,
//    emitting one (node id, fuel) key per visit — interner sharing makes
//    repeat visits, which replay as memo hits. One "analysis" replays
//    the trace 16 times (the 16-branch-alt shape: first pass misses and
//    inserts, later passes hit). The baseline backend builds fresh
//    32-way sharded std::unordered_maps per analysis — byte-for-byte
//    what par/engine.cpp held before the flat tables; the flat backend
//    generation-resets warm FlatMemo shards, which is what it holds now.
//    Both replay identical traces and must produce identical lookup
//    checksums (same hits, same misses). The gate: geomean speedup over
//    n in {8, 10, 12, 14} must be >= 1.3x or main exits 1.
//
// 2. Ungated end-to-end sanity: whole analyses (normalize, streamed
//    count) timed under set_flat_memo_enabled(false) vs (true), with
//    identical results demanded — the speedup here includes all the
//    non-memo work, so it is reported but not gated.

#include <array>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/support/flat_memo.hpp"

namespace {

using namespace gtdl;

// Mirrors the (anonymous-namespace) memo key of gtype/normalize.cpp and
// par/engine.cpp: (interned node id, remaining fuel). The family index is
// irrelevant here — the replay trace only exercises scalar keys.
struct MemoKey {
  std::uint64_t id = 0;
  unsigned fuel = 0;

  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(k.id);
    h ^= std::hash<unsigned>{}(k.fuel) * 0x9e3779b97f4a7c15ull;
    return h;
  }
};

constexpr std::size_t kShards = 32;  // par/engine.cpp's shard count
// Four walks per analysis puts the replay's hit ratio at ~83% — the
// ballpark the real memos run at (repeat visits via interner sharing
// plus the per-depth sweeps) — while keeping the per-analysis setup and
// teardown cost, which is precisely what the flat tables eliminate, at
// its true relative weight.
constexpr int kPassesPerAnalysis = 4;
constexpr int kAnalysesPerRep = 600;

// §3-style ⊕-alternation family (bench_normalization's memo-bound
// workload): n "maybe spawn v_i" factors, then a touch-before-spawn
// cycle on u.
GTypePtr alternation_family(unsigned n) {
  std::vector<Symbol> binders;
  std::vector<GTypePtr> parts;
  for (unsigned i = 1; i <= n; ++i) {
    const Symbol v = Symbol::intern("v" + std::to_string(i));
    binders.push_back(v);
    parts.push_back(gt::alt(gt::empty(), gt::spawn(gt::empty(), v)));
  }
  const Symbol u = Symbol::intern("u");
  binders.push_back(u);
  parts.push_back(gt::touch(u));
  parts.push_back(gt::spawn(gt::empty(), u));
  return gt::nu_all(binders, gt::seq_all(std::move(parts)));
}

// One (id, fuel) key per DAG node visit, children after parent, fuel
// burned at μ exactly as the normalizers burn it. Interned sharing (every
// `1 | 1/v_i` factor shares its • and its spawn body) produces the
// repeat visits that replay as hits.
void trace_walk(const GTypePtr& g, unsigned fuel,
                std::vector<MemoKey>& out) {
  out.push_back(MemoKey{g->facts->id, fuel});
  if (const auto* seq = std::get_if<GTSeq>(&g->node)) {
    trace_walk(seq->lhs, fuel, out);
    trace_walk(seq->rhs, fuel, out);
  } else if (const auto* alt = std::get_if<GTOr>(&g->node)) {
    trace_walk(alt->lhs, fuel, out);
    trace_walk(alt->rhs, fuel, out);
  } else if (const auto* spawn = std::get_if<GTSpawn>(&g->node)) {
    trace_walk(spawn->body, fuel, out);
  } else if (const auto* nu = std::get_if<GTNew>(&g->node)) {
    trace_walk(nu->body, fuel, out);
  } else if (const auto* rec = std::get_if<GTRec>(&g->node)) {
    if (fuel > 1) trace_walk(rec->body, fuel - 1, out);
  }
}

// The per-depth sweeps an analysis performs: one walk per fuel bound.
std::vector<MemoKey> build_trace(const GTypePtr& g, unsigned max_fuel) {
  std::vector<MemoKey> trace;
  for (unsigned fuel = 1; fuel <= max_fuel; ++fuel) {
    trace_walk(g, fuel, trace);
  }
  return trace;
}

std::uint64_t value_for(const MemoKey& k) noexcept {
  return k.id * 0x9e3779b97f4a7c15ull + k.fuel;
}

// Baseline: what one analysis cost before this change — construct 32
// sharded unordered_maps, replay, destroy them (the per-call memo
// lifetime every pass had).
std::uint64_t replay_shard_maps(const std::vector<MemoKey>& trace) {
  std::uint64_t checksum = 0;
  for (int analysis = 0; analysis < kAnalysesPerRep; ++analysis) {
    std::array<std::unordered_map<MemoKey, std::uint64_t, MemoKeyHash>,
               kShards>
        shards;
    for (int pass = 0; pass < kPassesPerAnalysis; ++pass) {
      for (const MemoKey& key : trace) {
        auto& shard = shards[MemoKeyHash{}(key) % kShards];
        auto it = shard.find(key);
        if (it == shard.end()) {
          shard.emplace(key, value_for(key));
        } else {
          checksum += it->second;
        }
      }
    }
  }
  return checksum;
}

// Flat: what the same analysis costs now — warm tables, O(1) generation
// reset per analysis, no per-insert node allocation.
std::uint64_t replay_flat(
    const std::vector<MemoKey>& trace,
    std::array<FlatMemo<MemoKey, std::uint64_t, MemoKeyHash>, kShards>&
        shards) {
  std::uint64_t checksum = 0;
  for (int analysis = 0; analysis < kAnalysesPerRep; ++analysis) {
    for (auto& shard : shards) shard.reset();
    for (int pass = 0; pass < kPassesPerAnalysis; ++pass) {
      for (const MemoKey& key : trace) {
        auto& shard = shards[MemoKeyHash{}(key) % kShards];
        if (const std::uint64_t* hit = shard.find(key)) {
          checksum += *hit;
        } else {
          shard.put(key, value_for(key));
        }
      }
    }
  }
  return checksum;
}

template <typename Fn>
double min_ms_of_5(Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

struct ReplayRow {
  unsigned n = 0;
  std::size_t unique_keys = 0;
  std::size_t ops_per_analysis = 0;
  double map_ms = 0;
  double flat_ms = 0;
  double speedup = 0;
};

struct EndToEndRow {
  std::string workload;
  double map_ms = 0;
  double flat_ms = 0;
  double speedup = 0;
};

constexpr double kGate = 1.3;

}  // namespace

int main() {
  // --- Part 1: gated key-trace replay ---------------------------------
  // Stats stay off while timing so both backends run their true hot
  // path (the obs branches are identical either way, but histogram
  // mutation inside the loop would not be).
  std::printf(
      "memo replay: sec.3 alternation family, fuels 1..8, %d passes x %d "
      "analyses\n"
      "%-5s %12s %14s %14s %14s %9s\n",
      kPassesPerAnalysis, kAnalysesPerRep, "n", "unique-keys", "ops/analysis",
      "shard-map ms", "flat ms", "speedup");

  std::vector<ReplayRow> rows;
  bool checksums_agree = true;
  for (unsigned n = 8; n <= 14; n += 2) {
    const GTypePtr family = alternation_family(n);
    const std::vector<MemoKey> trace = build_trace(family, 8);

    std::unordered_set<MemoKey, MemoKeyHash> unique(trace.begin(),
                                                    trace.end());
    ReplayRow row;
    row.n = n;
    row.unique_keys = unique.size();
    row.ops_per_analysis = trace.size() * kPassesPerAnalysis;

    std::uint64_t map_sum = 0;
    std::uint64_t flat_sum = 0;
    row.map_ms = min_ms_of_5([&] { map_sum = replay_shard_maps(trace); });
    std::array<FlatMemo<MemoKey, std::uint64_t, MemoKeyHash>, kShards>
        flat_shards;
    row.flat_ms =
        min_ms_of_5([&] { flat_sum = replay_flat(trace, flat_shards); });
    row.speedup = row.flat_ms > 0 ? row.map_ms / row.flat_ms : 0;

    if (map_sum != flat_sum) {
      checksums_agree = false;
      std::fprintf(stderr,
                   "FAIL n=%u: backend checksums differ (map %" PRIu64
                   ", flat %" PRIu64 ") — hit/miss behavior diverged\n",
                   n, map_sum, flat_sum);
    }
    std::printf("%-5u %12zu %14zu %14.3f %14.3f %8.2fx\n", row.n,
                row.unique_keys, row.ops_per_analysis, row.map_ms,
                row.flat_ms, row.speedup);
    rows.push_back(row);
  }

  double log_sum = 0;
  for (const ReplayRow& row : rows) log_sum += std::log(row.speedup);
  const double geomean = std::exp(log_sum / static_cast<double>(rows.size()));
  const bool gate_passed = checksums_agree && geomean >= kGate;
  std::printf("geomean speedup %.2fx (gate >= %.2fx): %s\n\n", geomean,
              kGate, gate_passed ? "PASS" : "FAIL");

  // --- Part 2: ungated end-to-end comparison --------------------------
  // Whole analyses under each backend; results must match exactly, the
  // timing includes everything that is not the memo, so no gate.
  obs::set_stats_enabled(true);
  std::vector<EndToEndRow> end_to_end;
  bool verdicts_agree = true;
  const auto compare_modes = [&](std::string workload, auto&& fn) {
    EndToEndRow row;
    row.workload = std::move(workload);
    const bool was_flat = set_flat_memo_enabled(false);
    const std::uint64_t map_result = fn();  // warm interner caches
    row.map_ms = min_ms_of_5([&] { (void)fn(); });
    set_flat_memo_enabled(true);
    const std::uint64_t flat_result = fn();
    row.flat_ms = min_ms_of_5([&] { (void)fn(); });
    set_flat_memo_enabled(was_flat);
    row.speedup = row.flat_ms > 0 ? row.map_ms / row.flat_ms : 0;
    if (map_result != flat_result) {
      verdicts_agree = false;
      std::fprintf(stderr,
                   "FAIL %s: map result %" PRIu64 " != flat result %" PRIu64
                   "\n",
                   row.workload.c_str(), map_result, flat_result);
    }
    std::printf("%-44s %10.3f ms %10.3f ms %8.2fx\n", row.workload.c_str(),
                row.map_ms, row.flat_ms, row.speedup);
    end_to_end.push_back(row);
  };

  std::printf("%-44s %13s %13s %9s\n", "end-to-end workload", "map ms",
              "flat ms", "speedup");
  const NormalizeLimits limits;
  const GTypePtr m3 = counterexample_gtype(3);
  compare_modes("normalize sec.3 m=3 n=8", [&] {
    return static_cast<std::uint64_t>(normalize(m3, 8, limits).graphs.size());
  });
  const GTypePtr m2 = counterexample_gtype(2);
  compare_modes("count_normalizations sec.3 m=2 n=12",
                [&] { return count_normalizations(m2, 12); });
  const GTypePtr alt12 = alternation_family(12);
  compare_modes("normalize alternation family n=12 depth 1", [&] {
    return static_cast<std::uint64_t>(
        normalize(alt12, 1, limits).graphs.size());
  });
  obs::set_stats_enabled(false);

  // --- JSON ------------------------------------------------------------
  std::FILE* json = std::fopen("bench_memo.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_memo.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"replay\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReplayRow& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"n\": %u, \"unique_keys\": %zu, "
                 "\"ops_per_analysis\": %zu, \"shard_map_ms\": %.3f, "
                 "\"flat_ms\": %.3f, \"speedup\": %.2f}",
                 i == 0 ? "" : ",", r.n, r.unique_keys, r.ops_per_analysis,
                 r.map_ms, r.flat_ms, r.speedup);
  }
  std::fprintf(json,
               "\n  ],\n  \"geomean_speedup\": %.2f,\n  \"gate\": %.2f,\n"
               "  \"gate_passed\": %s,\n  \"end_to_end\": [",
               geomean, kGate, gate_passed ? "true" : "false");
  for (std::size_t i = 0; i < end_to_end.size(); ++i) {
    const EndToEndRow& r = end_to_end[i];
    std::fprintf(json,
                 "%s\n    {\"workload\": \"%s\", \"map_ms\": %.3f, "
                 "\"flat_ms\": %.3f, \"speedup\": %.2f}",
                 i == 0 ? "" : ",", r.workload.c_str(), r.map_ms, r.flat_ms,
                 r.speedup);
  }
  std::fprintf(json, "\n  ],\n");
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_memo.json\n");

  if (!verdicts_agree) return 1;
  return gate_passed ? 0 : 1;
}
