// E-intern — before/after measurements for the hash-consed graph-type
// core. "Before" runs with GTypeInterner::set_memoization(false), which
// disables the unroll cache, the substitution and normalization memo
// tables, and the alpha fast paths — i.e. the pre-interning algorithms
// (hash-consing itself stays on; node identity must remain canonical).
// "After" is the default configuration.
//
// Reports wall-clock speedups for
//   * materializing Norm_n on the exponential families of §2.3/§3 at the
//     repo's default bench depth (n = 8),
//   * capture-avoiding substitution over a large unrolled type,
//   * alpha-equality on large alpha-equal (but not pointer-equal) pairs,
// plus the interner's cache hit-rate counters, and writes the same data
// as JSON to bench_intern.json next to the textual output.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/gtype/subst.hpp"

namespace {

using namespace gtdl;

constexpr unsigned kDefaultDepth = 8;  // bench_normalization's max depth

const GTypePtr& dnc_type() {
  static const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  return g;
}

// Best-of-N wall time in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn, int reps = 3) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

struct Row {
  std::string name;
  double before_ms = 0;
  double after_ms = 0;
  [[nodiscard]] double speedup() const {
    return after_ms > 0 ? before_ms / after_ms : 0;
  }
};

template <typename Fn>
Row measure(std::string name, Fn&& fn) {
  auto& interner = GTypeInterner::instance();
  Row row;
  row.name = std::move(name);
  interner.set_memoization(false);
  row.before_ms = time_ms(fn);
  interner.set_memoization(true);
  row.after_ms = time_ms(fn);
  std::printf("%-44s %10.3f ms %10.3f ms %8.2fx\n", row.name.c_str(),
              row.before_ms, row.after_ms, row.speedup());
  return row;
}

// A large type whose free vertex `target` appears once at the very end:
// substitution with the identity fast path touches O(spine), without it
// O(whole term).
GTypePtr wide_subst_subject(int width) {
  GTypePtr chunk = parse_gtype_or_throw("new u. (1 ; ~u) / u ; (1 | 1 ; 1)");
  GTypePtr acc = gt::touch(Symbol::intern("target"));
  for (int i = 0; i < width; ++i) acc = gt::seq(chunk, acc);
  return acc;
}

// Deeply nested subject whose innermost graph is `tail`. Two subjects
// with alpha-variant binder names and different tails of the same size
// agree on every cached fact except the alpha-canonical hash, so the
// cached-hash fast path rejects in O(1) where the reference walk descends
// the whole nest.
GTypePtr alpha_subject(const char* prefix, int depth, const char* tail) {
  std::string text;
  for (int i = 0; i < depth; ++i) {
    const std::string u = std::string(prefix) + std::to_string(i);
    text += "new " + u + ". (1 / " + u + " ; ~" + u + " ; ";
  }
  text += tail;
  for (int i = 0; i < depth; ++i) text += ")";
  return parse_gtype_or_throw(text);
}

void print_interner_stats(std::FILE* json) {
  const GTypeInterner::Stats s = GTypeInterner::instance().stats();
  auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  };
  std::printf(
      "\ninterner: %" PRIu64 " nodes\n"
      "  intern        %10" PRIu64 " hits %10" PRIu64
      " misses (hit rate %.3f)\n"
      "  unroll        %10" PRIu64 " hits %10" PRIu64
      " misses (hit rate %.3f)\n"
      "  subst         %10" PRIu64 " hits %10" PRIu64
      " misses (hit rate %.3f) + %" PRIu64 " identity\n"
      "  norm          %10" PRIu64 " hits %10" PRIu64
      " misses (hit rate %.3f)\n"
      "  alpha         %10" PRIu64 " fast accepts, %" PRIu64
      " fast rejects, %" PRIu64 " full walks\n",
      s.nodes, s.intern_hits, s.intern_misses,
      rate(s.intern_hits, s.intern_misses), s.unroll_hits, s.unroll_misses,
      rate(s.unroll_hits, s.unroll_misses), s.subst_memo_hits,
      s.subst_memo_misses, rate(s.subst_memo_hits, s.subst_memo_misses),
      s.subst_identity_hits, s.norm_memo_hits, s.norm_memo_misses,
      rate(s.norm_memo_hits, s.norm_memo_misses), s.alpha_fast_accepts,
      s.alpha_fast_rejects, s.alpha_full_walks);
  std::fprintf(
      json,
      "  \"interner\": {\n"
      "    \"nodes\": %" PRIu64 ",\n"
      "    \"intern_hits\": %" PRIu64 ", \"intern_misses\": %" PRIu64 ",\n"
      "    \"unroll_hits\": %" PRIu64 ", \"unroll_misses\": %" PRIu64 ",\n"
      "    \"subst_identity_hits\": %" PRIu64 ",\n"
      "    \"subst_memo_hits\": %" PRIu64 ", \"subst_memo_misses\": %" PRIu64
      ",\n"
      "    \"norm_memo_hits\": %" PRIu64 ", \"norm_memo_misses\": %" PRIu64
      ",\n"
      "    \"alpha_fast_accepts\": %" PRIu64
      ", \"alpha_fast_rejects\": %" PRIu64 ", \"alpha_full_walks\": %" PRIu64
      "\n  }\n",
      s.nodes, s.intern_hits, s.intern_misses, s.unroll_hits, s.unroll_misses,
      s.subst_identity_hits, s.subst_memo_hits, s.subst_memo_misses,
      s.norm_memo_hits, s.norm_memo_misses, s.alpha_fast_accepts,
      s.alpha_fast_rejects, s.alpha_full_walks);
}

}  // namespace

int main() {
  // Populate the process-wide registry so the JSON gains a "metrics"
  // block describing the instrumented workloads.
  gtdl::obs::set_stats_enabled(true);
  std::vector<Row> rows;
  std::printf("%-44s %13s %13s %9s\n", "workload", "before", "after",
              "speedup");

  // Repo-default limits: |Norm_8| of the divide-and-conquer type is
  // ~1.3e18 raw, so materialization is capped identically on both sides
  // (same max_graphs / max_steps); the comparison is the work done to
  // reach the cap. n = 6 is the deepest fully-materializable depth and is
  // measured uncapped.
  const NormalizeLimits limits;
  rows.push_back(measure(
      "normalize dnc (sec.2.3) n=" + std::to_string(kDefaultDepth), [&] {
        (void)normalize(dnc_type(), kDefaultDepth, limits);
      }));
  rows.push_back(measure("normalize dnc (sec.2.3) n=6 (complete)", [&] {
    const NormalizeResult r = normalize(dnc_type(), 6, limits);
    if (r.truncated) std::printf("(truncated!)\n");
  }));
  const GTypePtr cx = counterexample_gtype(1);
  rows.push_back(measure(
      "normalize counterexample m=1 (sec.3) n=" + std::to_string(kDefaultDepth),
      [&] { (void)normalize(cx, kDefaultDepth, limits); }));

  // Sixteen structurally identical branches (a program whose branches all
  // call the same §3 family member): hash-consing interns every branch to
  // the SAME node, so the per-call memo normalizes it once and reuses the
  // result 15 times; without it each branch is renormalized from scratch.
  GTypePtr alt_chain = counterexample_gtype(4);
  {
    const GTypePtr branch = alt_chain;
    for (int i = 0; i < 15; ++i) alt_chain = gt::alt(alt_chain, branch);
  }
  rows.push_back(measure(
      "normalize 16-branch alt of sec.3 m=4, n=" + std::to_string(kDefaultDepth),
      [&] {
        const NormalizeResult r =
            normalize(alt_chain, kDefaultDepth, limits);
        if (r.truncated) std::printf("(truncated!)\n");
      }));
  rows.push_back(measure("count_normalizations dnc n=12",
                         [&] { (void)count_normalizations(dnc_type(), 12); }));

  // The GML baseline on the §3 family expands every μ-binding k times via
  // repeated substitute_gvar before normalizing; the seed's family sweep
  // tops out at m = 6, whose needed bound is m + 2 = 8.
  const GTypePtr family_m6 = counterexample_gtype(6);
  GmlBaselineOptions gml_options;
  gml_options.unrolls_per_binding = 8;
  rows.push_back(measure("gml_baseline sec.3 family m=6, bound 8", [&] {
    (void)gml_baseline_check(family_m6, gml_options);
  }));

  const GTypePtr subst_subject = wide_subst_subject(4'000);
  const VertexSubst subst{{Symbol::intern("target"), Symbol::intern("z")}};
  rows.push_back(measure("substitute_vertices, 4k-chunk spine", [&] {
    for (int i = 0; i < 20; ++i) {
      (void)substitute_vertices(subst_subject, subst);
    }
  }));

  // Each layer contributes two nesting levels (binder body + parens);
  // stay under the parser's 2000-level guard. The tails have identical
  // node counts and free-name sets but different structure, so only the
  // innermost layer distinguishes the two terms.
  const GTypePtr alpha_a = alpha_subject("a", 900, "~a0 ; 1");
  const GTypePtr alpha_b = alpha_subject("b", 900, "1 ; ~b0");
  rows.push_back(measure("alpha_equal, 900-layer near-miss pair", [&] {
    for (int i = 0; i < 50; ++i) {
      if (alpha_equal(*alpha_a, *alpha_b)) std::printf("(equal!)\n");
    }
  }));

  GTypeInterner::instance().reset_counters();
  // One instrumented pass with memoization on, so the hit-rate counters
  // below describe exactly the "after" workloads.
  (void)normalize(dnc_type(), kDefaultDepth, limits);
  (void)normalize(cx, kDefaultDepth, limits);
  (void)normalize(alt_chain, kDefaultDepth, limits);
  (void)count_normalizations(dnc_type(), 12);
  (void)gml_baseline_check(family_m6, gml_options);
  (void)substitute_vertices(subst_subject, subst);
  (void)alpha_equal(*alpha_a, *alpha_b);

  std::FILE* json = std::fopen("bench_intern.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_intern.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"before_ms\": %.3f, "
                 "\"after_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 rows[i].name.c_str(), rows[i].before_ms, rows[i].after_ms,
                 rows[i].speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  gtdl::bench::write_json_env(json);
  std::fprintf(json, ",\n");
  print_interner_stats(json);
  std::fprintf(json, ",\n");
  gtdl::bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_intern.json\n");
  return 0;
}
