// E7 (extension) — overhead and behaviour of the DYNAMIC alternatives on
// the real threaded runtime: no policy (waits-for detection only),
// online Transitive Joins, online Known Joins.
//
// The paper's pitch for a static analysis is that dynamic policies pay
// per-operation bookkeeping at runtime and reject some deadlock-free
// programs only once they are already running. The table shows the
// verdict each policy gives to the two Table-1 shapes (pipeline:
// accepted by all; fibonacci grandchild-join: rejected by KJ at
// runtime); the benchmarks measure the per-spawn/touch cost each policy
// adds.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "gtdl/runtime/futures.hpp"

namespace {

using namespace gtdl;

// Sequential pipeline: futures spawned and touched by main.
bool run_pipeline(RuntimePolicy policy, int stages) {
  RuntimeOptions options;
  options.policy = policy;
  FutureRuntime rt(options);
  try {
    auto prev = rt.new_future<int>("p");
    prev.spawn([] { return 0; });
    for (int k = 1; k < stages; ++k) {
      auto next = rt.new_future<int>("p");
      next.spawn([prev]() mutable { return prev.touch() + 1; });
      prev = next;
    }
    return prev.touch() == stages - 1;
  } catch (const std::exception&) {
    return false;
  }
}

// The Fibonacci chain (grandchild joins).
int fib_chain(FutureRuntime& rt, int k, FutureHandle<int> out) {
  if (k <= 2) {
    out.spawn([] { return 1; });
    return 1;
  }
  auto prev2 = rt.new_future<int>("f");
  out.spawn([&rt, k, prev2]() mutable { return fib_chain(rt, k - 1, prev2); });
  return out.touch() + prev2.touch();
}

bool run_fib(RuntimePolicy policy) {
  RuntimeOptions options;
  options.policy = policy;
  FutureRuntime rt(options);
  try {
    auto top = rt.new_future<int>("f");
    auto prev = rt.new_future<int>("f");
    top.spawn([&rt, prev]() mutable { return fib_chain(rt, 8, prev); });
    return top.touch() == 21;
  } catch (const std::exception&) {
    return false;
  }
}

const char* policy_name(RuntimePolicy policy) {
  switch (policy) {
    case RuntimePolicy::kNone:
      return "none (detect)";
    case RuntimePolicy::kTransitiveJoins:
      return "transitive joins";
    case RuntimePolicy::kKnownJoins:
      return "known joins";
  }
  return "?";
}

void print_policy_table() {
  std::printf("Online policy verdicts on running programs:\n%-18s %-12s %-12s\n",
              "policy", "pipeline", "fib chain");
  for (RuntimePolicy policy :
       {RuntimePolicy::kNone, RuntimePolicy::kTransitiveJoins,
        RuntimePolicy::kKnownJoins}) {
    std::printf("%-18s %-12s %-12s\n", policy_name(policy),
                run_pipeline(policy, 24) ? "completes" : "rejected",
                run_fib(policy) ? "completes" : "rejected");
  }
  std::printf(
      "(expected: KJ rejects the deadlock-free fib chain at runtime — the "
      "static\n analysis proved it safe before running anything)\n\n");
}

void BM_SpawnTouch(benchmark::State& state) {
  const auto policy = static_cast<RuntimePolicy>(state.range(0));
  for (auto _ : state) {
    RuntimeOptions options;
    options.policy = policy;
    FutureRuntime rt(options);
    auto h = rt.new_future<int>("b");
    h.spawn([] { return 1; });
    benchmark::DoNotOptimize(h.touch());
  }
}

void BM_PipelineThroughput(benchmark::State& state) {
  const auto policy = static_cast<RuntimePolicy>(state.range(0));
  const int stages = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(policy, stages));
  }
  state.SetItemsProcessed(state.iterations() * stages);
}

BENCHMARK(BM_SpawnTouch)
    ->Arg(static_cast<int>(RuntimePolicy::kNone))
    ->Arg(static_cast<int>(RuntimePolicy::kTransitiveJoins))
    ->Arg(static_cast<int>(RuntimePolicy::kKnownJoins));
BENCHMARK(BM_PipelineThroughput)
    ->Arg(static_cast<int>(RuntimePolicy::kNone))
    ->Arg(static_cast<int>(RuntimePolicy::kTransitiveJoins))
    ->Arg(static_cast<int>(RuntimePolicy::kKnownJoins))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_policy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
