// E2 — the §5 timing claims:
//
//   "the deadlock detection algorithm takes under 1 ms ... on all
//    examples except Webserver and WebserverDL ... Even on these
//    examples, deadlock detection takes under 5 ms, which is less time
//    than is taken than type inference on these examples."
//
// The summary table reports one-shot wall times per stage (parse+check,
// inference, new pushing + kind check), followed by steady-state
// google-benchmark timings for each stage.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/new_push.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void print_timing_table() {
  std::printf(
      "Per-stage one-shot wall time (ms). Paper claims: detection < 1 ms "
      "on small\nexamples, < 5 ms on Webserver*, and always less than "
      "inference.\n");
  std::printf("%-12s %10s %10s %12s %12s  %s\n", "Program", "infer",
              "detect", "detect<infer", "detect<5ms", "verdict");
  for (const EvalProgram& p : eval_programs()) {
    const std::string source = read_program(p.file);

    // Inference time (parse + typecheck + graph inference, GML's job).
    const auto t0 = Clock::now();
    const CompiledProgram compiled = compile_futlang_or_throw(source);
    const double infer_ms = ms_since(t0);

    // Detection time (new pushing + the DF kind system, our job).
    const auto t1 = Clock::now();
    const DeadlockVerdict verdict =
        check_deadlock_freedom(compiled.inferred.program_gtype);
    const double detect_ms = ms_since(t1);

    std::printf("%-12s %10.3f %10.3f %12s %12s  %s\n", p.name, infer_ms,
                detect_ms, mark(detect_ms < infer_ms),
                mark(detect_ms < 5.0),
                verdict.deadlock_free ? "deadlock-free" : "deadlock");
  }
  std::printf("\n");
}

void BM_ParseAndTypecheck(benchmark::State& state, std::string file) {
  const std::string source = read_program(file);
  for (auto _ : state) {
    Program program = parse_program_or_throw(source);
    DiagnosticEngine diags;
    benchmark::DoNotOptimize(typecheck_program(program, diags));
  }
}

void BM_FullInference(benchmark::State& state, std::string file) {
  const std::string source = read_program(file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_futlang_or_throw(source));
  }
}

void BM_NewPushing(benchmark::State& state, std::string file) {
  const CompiledProgram compiled = compile_file(file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        push_new_bindings(compiled.inferred.program_gtype));
  }
}

void BM_Detection(benchmark::State& state, std::string file) {
  const CompiledProgram compiled = compile_file(file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_timing_table();
  for (const EvalProgram& p : eval_programs()) {
    const std::string file = p.file;
    benchmark::RegisterBenchmark(
        (std::string("BM_ParseAndTypecheck/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_ParseAndTypecheck(s, file); });
    benchmark::RegisterBenchmark(
        (std::string("BM_FullInference/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_FullInference(s, file); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NewPushing/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_NewPushing(s, file); });
    benchmark::RegisterBenchmark(
        (std::string("BM_Detection/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_Detection(s, file); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
