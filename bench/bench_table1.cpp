// E1 — Table 1 of the paper: precision of the three detectors on the six
// evaluation programs.
//
//   Paper's result: Ours answers correctly on all six; GML is wrong on
//   Counterex. (it accepts a deadlocking program — the §3 unsoundness);
//   Known Joins is wrong on Fibonacci (it rejects a deadlock-free
//   program). "Correct" below compares each verdict with the executed
//   ground truth.
//
// The google-benchmark section times each analysis per program.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;

InterpOptions interp_options_for(const EvalProgram& p) {
  InterpOptions options;
  // Drive the counterexample into its else branches so the executed
  // ground truth exhibits the deadlock.
  if (std::string(p.file) == "counterex.fut") options.rand_script = {1, 1};
  return options;
}

void print_table1() {
  std::printf(
      "Table 1 — does each analysis give the correct answer?\n"
      "%-12s %-4s | %-22s %-22s %-22s\n", "Program", "DL?",
      "Ours (static)", "GML [14] (static)", "Known Joins [8] (dyn)");
  std::printf(
      "--------------------------------------------------------------------"
      "-----------------\n");
  for (const EvalProgram& p : eval_programs()) {
    const CompiledProgram compiled = compile_file(p.file);
    const GTypePtr gtype = compiled.inferred.program_gtype;

    const bool ours_accepts = check_deadlock_freedom(gtype).deadlock_free;
    const bool gml_reports = gml_baseline_check(gtype).deadlock_reported;
    const InterpResult run =
        interpret(compiled.program, interp_options_for(p));
    const bool kj_valid = check_known_joins(run.trace).valid;

    // A static analysis is "correct" when it accepts exactly the
    // deadlock-free programs; the dynamic KJ policy when it validates
    // exactly the deadlock-free executions.
    const bool ours_correct = ours_accepts == !p.has_deadlock;
    const bool gml_correct = gml_reports == p.has_deadlock;
    const bool kj_correct = kj_valid == !p.has_deadlock;

    char ours_desc[64];
    std::snprintf(ours_desc, sizeof ours_desc, "%-8s correct:%s",
                  ours_accepts ? "accept" : "reject", mark(ours_correct));
    char gml_desc[64];
    std::snprintf(gml_desc, sizeof gml_desc, "%-8s correct:%s",
                  gml_reports ? "reject" : "accept", mark(gml_correct));
    char kj_desc[64];
    std::snprintf(kj_desc, sizeof kj_desc, "%-8s correct:%s",
                  kj_valid ? "accept" : "reject", mark(kj_correct));
    std::printf("%-12s %-4s | %-22s %-22s %-22s\n", p.name,
                p.has_deadlock ? "yes" : "no", ours_desc, gml_desc,
                kj_desc);
  }
  std::printf(
      "(paper: Ours correct on all six; GML wrong on Counterex.; Known "
      "Joins wrong on Fibonacci)\n\n");
}

// --- timing section ---------------------------------------------------------

void BM_OurAnalysis(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free);
  }
}

void BM_GmlBaseline(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gml_baseline_check(compiled.inferred.program_gtype)
            .deadlock_reported);
  }
}

void BM_KnownJoinsTrace(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  const InterpResult run =
      interpret(compiled.program, interp_options_for(program));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_known_joins(run.trace).valid);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  for (const EvalProgram& p : eval_programs()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_OurAnalysis/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_OurAnalysis(s, p); });
    benchmark::RegisterBenchmark(
        (std::string("BM_GmlBaseline/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_GmlBaseline(s, p); });
    benchmark::RegisterBenchmark(
        (std::string("BM_KnownJoinsTrace/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_KnownJoinsTrace(s, p); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
