// E1 — Table 1 of the paper: precision of the three detectors on the six
// evaluation programs.
//
//   Paper's result: Ours answers correctly on all six; GML is wrong on
//   Counterex. (it accepts a deadlocking program — the §3 unsoundness);
//   Known Joins is wrong on Fibonacci (it rejects a deadlock-free
//   program). "Correct" below compares each verdict with the executed
//   ground truth.
//
// The GML section also compares the streamed first-witness scan against
// the old materialize-then-scan path per program and records both (with
// the stream's peak buffered-graph count) in bench_table1.json.
//
// The google-benchmark section times each analysis per program.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/graph/csr.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/tj/join_policy.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;

InterpOptions interp_options_for(const EvalProgram& p) {
  InterpOptions options;
  // Drive the counterexample into its else branches so the executed
  // ground truth exhibits the deadlock.
  if (std::string(p.file) == "counterex.fut") options.rand_script = {1, 1};
  return options;
}

void print_table1() {
  std::printf(
      "Table 1 — does each analysis give the correct answer?\n"
      "%-12s %-4s | %-22s %-22s %-22s\n", "Program", "DL?",
      "Ours (static)", "GML [14] (static)", "Known Joins [8] (dyn)");
  std::printf(
      "--------------------------------------------------------------------"
      "-----------------\n");
  for (const EvalProgram& p : eval_programs()) {
    const CompiledProgram compiled = compile_file(p.file);
    const GTypePtr gtype = compiled.inferred.program_gtype;

    const bool ours_accepts = check_deadlock_freedom(gtype).deadlock_free;
    const bool gml_reports = gml_baseline_check(gtype).deadlock_reported;
    const InterpResult run =
        interpret(compiled.program, interp_options_for(p));
    const bool kj_valid = check_known_joins(run.trace).valid;

    // A static analysis is "correct" when it accepts exactly the
    // deadlock-free programs; the dynamic KJ policy when it validates
    // exactly the deadlock-free executions.
    const bool ours_correct = ours_accepts == !p.has_deadlock;
    const bool gml_correct = gml_reports == p.has_deadlock;
    const bool kj_correct = kj_valid == !p.has_deadlock;

    char ours_desc[64];
    std::snprintf(ours_desc, sizeof ours_desc, "%-8s correct:%s",
                  ours_accepts ? "accept" : "reject", mark(ours_correct));
    char gml_desc[64];
    std::snprintf(gml_desc, sizeof gml_desc, "%-8s correct:%s",
                  gml_reports ? "reject" : "accept", mark(gml_correct));
    char kj_desc[64];
    std::snprintf(kj_desc, sizeof kj_desc, "%-8s correct:%s",
                  kj_valid ? "accept" : "reject", mark(kj_correct));
    std::printf("%-12s %-4s | %-22s %-22s %-22s\n", p.name,
                p.has_deadlock ? "yes" : "no", ours_desc, gml_desc,
                kj_desc);
  }
  std::printf(
      "(paper: Ours correct on all six; GML wrong on Counterex.; Known "
      "Joins wrong on Fibonacci)\n\n");
}

// --- GML first-witness vs materialized --------------------------------------

struct GmlRow {
  const char* name = "";
  std::size_t graphs = 0;  // graphs consumed by the streamed check
  double materialized_ms = 0;
  double first_witness_ms = 0;
  double speedup = 0;
  std::size_t peak_buffered = 0;
  bool deadlock = false;
};

template <typename Fn>
double min_ms_of_3(Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

GmlRow measure_gml(const EvalProgram& p) {
  const CompiledProgram compiled = compile_file(p.file);
  const GTypePtr gtype = compiled.inferred.program_gtype;
  GmlRow row;
  row.name = p.name;

  // What gml_baseline_check did before streaming: materialize the whole
  // normalization of the 2-unroll expansion, then scan front to back.
  row.materialized_ms = min_ms_of_3([&] {
    const GTypePtr expanded = expand_recursion(gtype, 2);
    const NormalizeResult normalized = normalize(expanded, 1);
    GraphArena arena;
    for (const GraphExprPtr& graph : normalized.graphs) {
      if (find_ground_deadlock(*graph, arena).any()) break;
    }
  });

  row.first_witness_ms = min_ms_of_3([&] {
    const GmlBaselineReport report = gml_baseline_check(gtype);
    row.graphs = report.graphs_checked;
    row.peak_buffered = report.peak_buffered;
    row.deadlock = report.deadlock_reported;
  });

  row.speedup = row.first_witness_ms > 0
                    ? row.materialized_ms / row.first_witness_ms
                    : 0;
  return row;
}

std::vector<GmlRow> print_gml_comparison() {
  std::printf(
      "GML baseline: first-witness (streamed) vs materialize + scan\n"
      "%-12s %8s %14s %14s %9s %9s %9s\n",
      "Program", "graphs", "material. ms", "1st-wit. ms", "speedup",
      "peak-buf", "deadlock");
  std::vector<GmlRow> rows;
  for (const EvalProgram& p : eval_programs()) {
    const GmlRow row = measure_gml(p);
    std::printf("%-12s %8zu %14.3f %14.3f %8.1fx %9zu %9s\n", row.name,
                row.graphs, row.materialized_ms, row.first_witness_ms,
                row.speedup, row.peak_buffered,
                row.deadlock ? "yes" : "no");
    rows.push_back(row);
  }
  std::printf("\n");
  return rows;
}

int write_table1_json(const std::vector<GmlRow>& rows) {
  std::FILE* json = std::fopen("bench_table1.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_table1.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"gml_first_witness_vs_materialized\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GmlRow& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"program\": \"%s\", \"graphs\": %zu, "
                 "\"materialized_ms\": %.3f, \"first_witness_ms\": %.3f, "
                 "\"speedup\": %.2f, \"peak_materialized\": %zu, "
                 "\"deadlock\": %s}",
                 i == 0 ? "" : ",", r.name, r.graphs, r.materialized_ms,
                 r.first_witness_ms, r.speedup, r.peak_buffered,
                 r.deadlock ? "true" : "false");
  }
  std::fprintf(json, "\n  ],\n");
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote bench_table1.json\n");
  return 0;
}

// --- timing section ---------------------------------------------------------

void BM_OurAnalysis(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free);
  }
}

void BM_GmlBaseline(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gml_baseline_check(compiled.inferred.program_gtype)
            .deadlock_reported);
  }
}

void BM_KnownJoinsTrace(benchmark::State& state, const EvalProgram program) {
  const CompiledProgram compiled = compile_file(program.file);
  const InterpResult run =
      interpret(compiled.program, interp_options_for(program));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_known_joins(run.trace).valid);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  obs::set_stats_enabled(true);
  const std::vector<GmlRow> gml_rows = print_gml_comparison();
  obs::set_stats_enabled(false);
  if (write_table1_json(gml_rows) != 0) return 1;
  for (const EvalProgram& p : eval_programs()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_OurAnalysis/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_OurAnalysis(s, p); });
    benchmark::RegisterBenchmark(
        (std::string("BM_GmlBaseline/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_GmlBaseline(s, p); });
    benchmark::RegisterBenchmark(
        (std::string("BM_KnownJoinsTrace/") + p.name).c_str(),
        [p](benchmark::State& s) { BM_KnownJoinsTrace(s, p); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
