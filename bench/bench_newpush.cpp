// E6 — ablation of "new pushing" (§5).
//
// GML hoists ν binders to function tops; without the new-pushing rewrite
// the kind system rejects every divide-and-conquer-shaped program (the
// base case never spawns the hoisted vertex). The table shows, per
// evaluation program, the verdict with and without the rewrite and
// whether the rewrite changed the outcome; timings show its cost is
// negligible relative to the check itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/new_push.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;

void print_ablation_table() {
  std::printf(
      "New-pushing ablation (accept = proved deadlock-free):\n"
      "%-12s %-6s | %-14s %-14s %s\n", "Program", "DL?", "without push",
      "with push", "rewrite matters?");
  for (const EvalProgram& p : eval_programs()) {
    const CompiledProgram compiled = compile_file(p.file);
    DetectOptions without;
    without.new_pushing = false;
    const bool raw =
        check_deadlock_freedom(compiled.inferred.program_gtype, without)
            .deadlock_free;
    const bool pushed =
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free;
    std::printf("%-12s %-6s | %-14s %-14s %s\n", p.name,
                p.has_deadlock ? "yes" : "no",
                raw ? "accept" : "reject", pushed ? "accept" : "reject",
                raw != pushed ? "YES (false positive removed)" : "no");
  }
  std::printf(
      "(expected: every deadlock-free program is rejected without the "
      "rewrite\n and accepted with it; deadlocking programs stay "
      "rejected)\n\n");
}

void BM_PushAlone(benchmark::State& state, std::string file) {
  const CompiledProgram compiled = compile_file(file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        push_new_bindings(compiled.inferred.program_gtype));
  }
}

void BM_CheckWithPush(benchmark::State& state, std::string file) {
  const CompiledProgram compiled = compile_file(file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free);
  }
}

void BM_CheckWithoutPush(benchmark::State& state, std::string file) {
  const CompiledProgram compiled = compile_file(file);
  DetectOptions options;
  options.new_pushing = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype, options)
            .deadlock_free);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_ablation_table();
  for (const gtdl::bench::EvalProgram& p : gtdl::bench::eval_programs()) {
    const std::string file = p.file;
    benchmark::RegisterBenchmark(
        (std::string("BM_PushAlone/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_PushAlone(s, file); });
    benchmark::RegisterBenchmark(
        (std::string("BM_CheckWithPush/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_CheckWithPush(s, file); });
    benchmark::RegisterBenchmark(
        (std::string("BM_CheckWithoutPush/") + p.name).c_str(),
        [file](benchmark::State& s) { BM_CheckWithoutPush(s, file); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
