// Trace-ingestion throughput — E14 (EXPERIMENTS.md).
//
// `fdlc --ingest` is meant to sit in the inner loop of a trace-driven
// workflow (run the suite, dump every execution, ingest the lot), so
// its merge cost is a budgeted quantity like any analysis. This bench
// prices the full reader path — shard parse, seq-sort, validation,
// bottom-up stitch, CSR lowering + deadlock scan — on synthetic
// multi-shard dump sets of two adversarial shapes:
//
//   wide    a two-level spawn tree (root spawns √N group threads, each
//           spawning/touching √N workers): per-record parse cost
//           dominates, stitching is broad and shallow;
//   chain   future k spawned by future k-1, touched on the way back:
//           maximally nested stitching, every spawn crosses shards
//           (first-appearance sharding scatters parent and child).
//
// Reported per shape/size: parse+merge wall time (min of 5), sustained
// records/sec, and the process peak-RSS delta across the merge — the
// resident high-water cost of holding one dump set's records + graph.
// Results go to bench_ingest.json (Release bench smoke uploads it).

#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/ingest/ingest.hpp"
#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/support/symbol.hpp"

namespace {

using namespace gtdl;
namespace fs = std::filesystem;

constexpr unsigned kShards = 8;
constexpr int kRepeats = 5;

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

// Writes a dump set under `base` and returns its shard paths. The
// `groups` × `per_group` spawn tree keeps every thread's action list
// modest — the GESeq chain a thread's body folds into is binary, so
// per-thread action count, not total records, bounds the rebuilt
// expression's depth.
std::vector<std::string> write_wide(const std::string& base,
                                    std::size_t groups,
                                    std::size_t per_group) {
  ingest::TraceDumpWriter::Options options;
  options.shards = kShards;
  ingest::TraceDumpWriter writer(base, options);
  const Symbol main_thread = Symbol::intern("main");
  std::vector<Symbol> group_names;
  group_names.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    group_names.push_back(Symbol::intern("g" + std::to_string(g)));
    writer.record_spawn(main_thread, group_names.back());
    std::vector<Symbol> workers;
    workers.reserve(per_group);
    for (std::size_t w = 0; w < per_group; ++w) {
      workers.push_back(
          Symbol::intern("g" + std::to_string(g) + "w" + std::to_string(w)));
      writer.record_spawn(group_names.back(), workers.back());
    }
    for (const Symbol& worker : workers) {
      writer.record_touch(group_names.back(), worker);
      writer.record_resolve(worker);
    }
    writer.record_resolve(group_names.back());
  }
  for (const Symbol& name : group_names) {
    writer.record_touch(main_thread, name);
  }
  std::string error;
  auto paths = writer.flush(&error);
  if (!error.empty()) throw std::runtime_error(error);
  return paths;
}

std::vector<std::string> write_chain(const std::string& base,
                                     std::size_t depth) {
  ingest::TraceDumpWriter::Options options;
  options.shards = kShards;
  ingest::TraceDumpWriter writer(base, options);
  std::vector<Symbol> names;
  names.reserve(depth + 1);
  names.push_back(Symbol::intern("main"));
  for (std::size_t i = 1; i <= depth; ++i) {
    names.push_back(Symbol::intern("c" + std::to_string(i)));
    writer.record_spawn(names[i - 1], names[i]);
  }
  for (std::size_t i = depth; i >= 1; --i) {
    writer.record_touch(names[i - 1], names[i]);
    writer.record_resolve(names[i]);
  }
  std::string error;
  auto paths = writer.flush(&error);
  if (!error.empty()) throw std::runtime_error(error);
  return paths;
}

struct IngestRow {
  const char* shape;
  std::size_t futures;
  std::size_t records;
  double merge_ms;          // min over kRepeats
  double records_per_sec;   // at the min
  long peak_rss_delta_kb;   // RSS high-water growth across the repeats
};

IngestRow measure(const char* shape, std::size_t futures,
                  const std::vector<std::string>& files) {
  IngestRow row{shape, futures, 0, 1e300, 0.0, 0};
  const long rss_before = peak_rss_kb();
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ingest::MergedTrace merged = ingest::merge_trace_dumps(files);
    const auto stop = std::chrono::steady_clock::now();
    if (!merged.ok) throw std::runtime_error(merged.diags.render());
    if (find_ground_deadlock(*merged.graph).any()) {
      throw std::runtime_error("synthetic dump must be deadlock-free");
    }
    row.records = merged.records;
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < row.merge_ms) row.merge_ms = ms;
  }
  row.records_per_sec =
      static_cast<double>(row.records) / (row.merge_ms / 1000.0);
  row.peak_rss_delta_kb = peak_rss_kb() - rss_before;
  return row;
}

void print_rows(const std::vector<IngestRow>& rows) {
  std::printf("E14: ingest merge throughput (%u shards, min of %d)\n\n",
              kShards, kRepeats);
  std::printf("%-8s %10s %10s %12s %14s %14s\n", "shape", "futures",
              "records", "merge ms", "records/sec", "peakRSS dKiB");
  for (const IngestRow& r : rows) {
    std::printf("%-8s %10zu %10zu %12.3f %14.0f %14ld\n", r.shape,
                r.futures, r.records, r.merge_ms, r.records_per_sec,
                r.peak_rss_delta_kb);
  }
  std::printf("\n");
}

int write_json(const std::vector<IngestRow>& rows) {
  std::FILE* json = std::fopen("bench_ingest.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_ingest.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"shards\": %u,\n  \"workloads\": [", kShards);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const IngestRow& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"shape\": \"%s\", \"futures\": %zu, "
                 "\"records\": %zu, \"merge_ms\": %.3f, "
                 "\"records_per_sec\": %.0f, \"peak_rss_delta_kb\": %ld}",
                 i == 0 ? "" : ",", r.shape, r.futures, r.records,
                 r.merge_ms, r.records_per_sec, r.peak_rss_delta_kb);
  }
  std::fprintf(json, "\n  ],\n");
  bench::write_json_env(json);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote bench_ingest.json\n");
  return 0;
}

// google-benchmark micro view of the same path, small fixed set.
std::vector<std::string>& micro_files() {
  static std::vector<std::string>* files = [] {
    const fs::path dir =
        fs::temp_directory_path() /
        ("gtdl_bench_ingest_micro_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return new std::vector<std::string>(
        write_wide((dir / "micro").string(), 16, 16));
  }();
  return *files;
}

void BM_MergeWide256(benchmark::State& state) {
  const std::vector<std::string>& files = micro_files();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ingest::merge_trace_dumps(files));
  }
}
BENCHMARK(BM_MergeWide256);

}  // namespace

int main(int argc, char** argv) {
  const fs::path dir = fs::temp_directory_path() /
                       ("gtdl_bench_ingest_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  std::vector<IngestRow> rows;
  try {
    for (const std::size_t side : {32UL, 100UL, 224UL}) {  // ~1k/10k/50k
      const std::size_t futures = side * side + side;
      const std::string base =
          (dir / ("wide" + std::to_string(futures))).string();
      rows.push_back(measure("wide", futures, write_wide(base, side, side)));
    }
    // Chain depth used to cap at 4k while the downstream scanners
    // recursed over the rebuilt GraphExpr; lowering, tracing, and
    // destruction are all explicit-worklist walks now, so depth is
    // bounded by memory, not the native stack.
    for (const std::size_t n : {500UL, 4'000UL, 50'000UL}) {
      const std::string base = (dir / ("chain" + std::to_string(n))).string();
      rows.push_back(measure("chain", n, write_chain(base, n)));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ingest: %s\n", e.what());
    std::error_code ec;
    fs::remove_all(dir, ec);
    return 1;
  }
  print_rows(rows);
  const int rc = write_json(rows);
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (rc != 0) return rc;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
