// E-parallel — per-thread-count speedup curves for the work-pooled
// analysis engine of src/gtdl/par/.
//
// Four workload families, each timed with Engine(t) for t in {1,2,4,8}:
//   * materializing Norm_8 on the §3 counterexample family (m = 1..3),
//   * the 16-branch alt of the m = 4 family member (memo-heavy; the
//     parallel memo turns 15 of the 16 branches into owner/waiter pairs),
//   * the GML finite-unrolling baseline on the m = 6 family member with
//     the engine threaded through its per-bound normalizations and the
//     chunked ground-deadlock scan,
//   * whole-corpus deadlock checking of the six Table-1 programs via
//     drive_corpus (file-level fan-out, shared interner).
//
// t = 1 is the exact sequential path (Engine(1) delegates to
// gtdl::normalize; drive_corpus with jobs = 1 loops inline), so every
// speedup is measured against the true pre-PR baseline, not against a
// pool with one worker. Results go to stdout and bench_parallel.json,
// including the host env block — speedup curves are meaningless without
// knowing how many hardware threads the host actually had, and on a
// single-core host every curve is expected to be flat (~1.0x).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/par/corpus.hpp"
#include "gtdl/par/engine.hpp"

namespace {

using namespace gtdl;

constexpr unsigned kDefaultDepth = 8;  // bench_intern's bench depth
const std::vector<unsigned> kThreadCounts{1, 2, 4, 8};

// Best-of-N wall time in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn, int reps = 3) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

struct Point {
  unsigned threads = 1;
  double ms = 0;
  double speedup = 1.0;     // vs the threads = 1 point of the same curve
  double efficiency = 1.0;  // speedup / threads — 1.0 is perfect scaling
};

struct Curve {
  std::string name;
  std::vector<Point> series;
};

// Times fn(threads) for each configured thread count; the t = 1 run goes
// first so interner-level caches (unroll, subst) are warm and identical
// for every subsequent configuration.
template <typename Fn>
Curve sweep(std::string name, Fn&& fn) {
  Curve curve;
  curve.name = std::move(name);
  std::printf("%-46s", curve.name.c_str());
  for (unsigned t : kThreadCounts) {
    Point p;
    p.threads = t;
    p.ms = time_ms([&] { fn(t); });
    p.speedup = curve.series.empty() || p.ms <= 0
                    ? 1.0
                    : curve.series.front().ms / p.ms;
    p.efficiency = p.speedup / static_cast<double>(t);
    std::printf(" %9.3f ms (%4.2fx/%3.0f%%)", p.ms, p.speedup,
                p.efficiency * 100.0);
    curve.series.push_back(p);
  }
  std::printf("\n");
  return curve;
}

}  // namespace

int main() {
  // Populate the process-wide registry so the JSON gains a "metrics"
  // block (engine fork decisions, pool steals, detect counters).
  obs::set_stats_enabled(true);
  const bench::BenchEnv env = bench::bench_env();
  std::printf("host %s, %u hardware threads, %s build\n", env.hostname.c_str(),
              env.hardware_threads, env.build_type.c_str());
  // Mirrored into the JSON env block below: anyone comparing recorded
  // curves must see this even if they never saw the stdout run.
  const char* env_warning =
      env.hardware_threads < 4
          ? "hardware_concurrency < 4: speedup/efficiency curves are "
            "oversubscribed at t>=hardware_threads and NOT representative; "
            "rerun on a machine with >= 4 cores"
          : nullptr;
  if (env_warning != nullptr) {
    std::printf("WARNING: %s\n", env_warning);
  }
  std::printf("%-46s", "workload");
  for (unsigned t : kThreadCounts) std::printf("      t=%-2u           ", t);
  std::printf("\n");

  std::vector<Curve> curves;
  const NormalizeLimits limits;

  for (unsigned m = 1; m <= 3; ++m) {
    const GTypePtr g = counterexample_gtype(m);
    curves.push_back(
        sweep("normalize sec.3 family m=" + std::to_string(m) + " n=" +
                  std::to_string(kDefaultDepth),
              [&](unsigned t) {
                Engine engine(t);
                (void)engine.normalize(g, kDefaultDepth, limits);
              }));
  }

  // Sixteen interned-identical branches: the parallel memo serves 15 of
  // them as waiter hits of the one owner computation, exactly mirroring
  // the sequential memo's 15 hits.
  GTypePtr alt_chain = counterexample_gtype(4);
  {
    const GTypePtr branch = alt_chain;
    for (int i = 0; i < 15; ++i) alt_chain = gt::alt(alt_chain, branch);
  }
  curves.push_back(sweep(
      "normalize 16-branch alt of sec.3 m=4 n=" + std::to_string(kDefaultDepth),
      [&](unsigned t) {
        Engine engine(t);
        (void)engine.normalize(alt_chain, kDefaultDepth, limits);
      }));

  const GTypePtr family_m6 = counterexample_gtype(6);
  curves.push_back(
      sweep("gml_baseline sec.3 family m=6 bound 8", [&](unsigned t) {
        Engine engine(t);
        GmlBaselineOptions options;
        options.unrolls_per_binding = 8;
        options.engine = &engine;
        (void)gml_baseline_check(family_m6, options);
      }));

  std::vector<std::string> corpus_files;
  for (const bench::EvalProgram& p : bench::eval_programs()) {
    corpus_files.push_back(bench::programs_dir() + "/" + p.file);
  }
  curves.push_back(
      sweep("corpus: 6 Table-1 programs (drive_corpus)", [&](unsigned t) {
        CorpusOptions options;
        options.jobs = t;
        (void)drive_corpus(corpus_files, options);
      }));

  std::FILE* json = std::fopen("bench_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_parallel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"curves\": [\n");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::fprintf(json, "    {\"name\": \"%s\", \"series\": [",
                 curves[i].name.c_str());
    for (std::size_t j = 0; j < curves[i].series.size(); ++j) {
      const Point& p = curves[i].series[j];
      std::fprintf(json,
                   "%s\n      {\"threads\": %u, \"ms\": %.3f, "
                   "\"speedup\": %.2f, \"efficiency\": %.2f}",
                   j == 0 ? "" : ",", p.threads, p.ms, p.speedup,
                   p.efficiency);
    }
    std::fprintf(json, "\n    ]}%s\n", i + 1 < curves.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  bench::write_json_env(json, env_warning);
  std::fprintf(json, ",\n");
  bench::write_json_metrics(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_parallel.json\n");
  return 0;
}
