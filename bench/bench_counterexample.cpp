// E3 — the §3 counterexample family: no fixed unrolling bound makes the
// GML baseline sound, and chasing the family gets exponentially more
// expensive, while the paper's kind system rejects every member in one
// cheap pass.
//
// For family member m the deadlock manifests only at the (m+1)-st
// recursive call, i.e. per-binding unroll bound m+2. The table sweeps m
// and shows (a) GML at its own setting (2 unrolls) missing every member,
// (b) the bound each member actually needs, (c) the number of graphs the
// baseline must check at that bound, growing with m, and (d) our verdict.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "gtdl/detect/counterexample.hpp"
#include "gtdl/detect/deadlock.hpp"
#include "gtdl/detect/gml_baseline.hpp"

namespace {

using namespace gtdl;

void print_family_table() {
  std::printf(
      "S3 counterexample family (deadlock manifests at call m+1):\n"
      "%-3s | %-14s | %-14s %-8s | %-14s %-8s | %s\n", "m",
      "GML @2 unrolls", "GML @m+1", "graphs", "GML @m+2", "graphs",
      "Ours");
  for (unsigned m = 1; m <= 6; ++m) {
    const GTypePtr g = counterexample_gtype(m);

    const GmlBaselineReport at2 = gml_baseline_check(g);
    GmlBaselineOptions shallow;
    shallow.unrolls_per_binding = m + 1;
    const GmlBaselineReport at_m1 = gml_baseline_check(g, shallow);
    GmlBaselineOptions deep;
    deep.unrolls_per_binding = m + 2;
    const GmlBaselineReport at_m2 = gml_baseline_check(g, deep);
    const DeadlockVerdict ours = check_deadlock_freedom(g);

    std::printf("%-3u | %-14s | %-14s %-8zu | %-14s %-8zu | %s\n", m,
                at2.deadlock_reported ? "finds DL" : "MISSES DL",
                at_m1.deadlock_reported ? "finds DL" : "misses DL",
                at_m1.graphs_checked,
                at_m2.deadlock_reported ? "finds DL" : "misses DL",
                at_m2.graphs_checked,
                ours.deadlock_free ? "ACCEPTS (wrong)" : "rejects (right)");
  }
  std::printf(
      "(paper: for any bound n there is a member the baseline misses; "
      "ours rejects all)\n\n");
}

void BM_OursOnFamily(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const GTypePtr g = counterexample_gtype(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_deadlock_freedom(g).deadlock_free);
  }
}

void BM_GmlAtNeededBound(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const GTypePtr g = counterexample_gtype(m);
  GmlBaselineOptions options;
  options.unrolls_per_binding = m + 2;  // the bound that catches member m
  for (auto _ : state) {
    benchmark::DoNotOptimize(gml_baseline_check(g, options).deadlock_reported);
  }
}

BENCHMARK(BM_OursOnFamily)->DenseRange(1, 6);
BENCHMARK(BM_GmlAtNeededBound)->DenseRange(1, 6);

}  // namespace

int main(int argc, char** argv) {
  print_family_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
