// Budget checkpoint overhead — the <2% bound docs/ROBUSTNESS.md promises.
//
// A Budget with no limits configured still pays its polling protocol:
// one counter add, one cancellation load, and a never-taken branch per
// checkpoint, at every instrumented site (normalize steps, stream
// emissions, scan batches, kind-check recursion). This bench measures
// that worst case — an UNLIMITED budget attached to the exact workload
// run back to back without one — on the two governed hot paths:
//
//   normalize    sequential Norm_n of the §2.3 divide-and-conquer type
//   baseline     streamed enumeration + CSR cycle scan of a 2^n-graph
//                deadlock-free alternation family (per-emission polls,
//                per-batch polls, arena memory charges)
//
// Timings are interleaved min-of-N (plain, budgeted, plain, ...) so slow
// drift hits both sides equally. The binary exits 1 if the baseline-scan
// overhead reaches 2% — CI runs it in the bench smoke, making checkpoint
// cost a regression-gated quantity. Results go to bench_budget.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gtdl/detect/gml_baseline.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/normalize.hpp"
#include "gtdl/gtype/parse.hpp"
#include "gtdl/support/budget.hpp"

namespace {

using namespace gtdl;

const GTypePtr& dnc_type() {
  static const GTypePtr g =
      parse_gtype_or_throw("rec g. new u. 1 | g / u ; g ; ~u");
  return g;
}

// Deadlock-free n-factor alternation family (spawn of u BEFORE the
// touch): |Norm_1| = 2^n and no graph deadlocks, so the baseline scan
// must enumerate and check every one — maximal polling per unit of
// useful work.
GTypePtr df_alternation_family(unsigned n) {
  std::vector<Symbol> binders;
  std::vector<GTypePtr> parts;
  const Symbol u = Symbol::intern("u");
  binders.push_back(u);
  parts.push_back(gt::spawn(gt::empty(), u));
  for (unsigned i = 1; i <= n; ++i) {
    const Symbol v = Symbol::intern("v" + std::to_string(i));
    binders.push_back(v);
    parts.push_back(gt::alt(gt::empty(), gt::spawn(gt::empty(), v)));
  }
  parts.push_back(gt::touch(u));
  return gt::nu_all(binders, gt::seq_all(std::move(parts)));
}

struct OverheadRow {
  const char* workload = "";
  double plain_ms = 0;
  double budgeted_ms = 0;
  double overhead_pct = 0;
  std::uint64_t checkpoints = 0;  // budget steps charged per budgeted run
};

// Interleaved min-of-N: alternating the two variants inside one loop
// exposes both to the same thermal/scheduler drift; min discards it.
template <typename Plain, typename Budgeted>
OverheadRow measure(const char* workload, int reps, Plain&& plain,
                    Budgeted&& budgeted, std::uint64_t checkpoints) {
  const auto time_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  OverheadRow row;
  row.workload = workload;
  row.checkpoints = checkpoints;
  for (int rep = 0; rep < reps; ++rep) {
    const double p = time_ms(plain);
    const double b = time_ms(budgeted);
    if (rep == 0 || p < row.plain_ms) row.plain_ms = p;
    if (rep == 0 || b < row.budgeted_ms) row.budgeted_ms = b;
  }
  row.overhead_pct =
      row.plain_ms > 0
          ? (row.budgeted_ms - row.plain_ms) / row.plain_ms * 100.0
          : 0.0;
  return row;
}

OverheadRow measure_normalize(unsigned depth) {
  std::uint64_t checkpoints = 0;
  const auto run = [&](Budget* budget) {
    // The cap bounds materialization (depth 7+ of the dnc family is
    // exponential); both variants truncate at the same point, so the
    // comparison stays apples-to-apples.
    NormalizeLimits limits;
    limits.max_graphs = 200'000;
    limits.budget = budget;
    benchmark::DoNotOptimize(normalize(dnc_type(), depth, limits).graphs);
  };
  {
    Budget probe;
    run(&probe);
    checkpoints = probe.steps();
  }
  return measure(
      "normalize", 7, [&] { run(nullptr); },
      [&] {
        Budget budget;  // unlimited: the polls all run, none ever trips
        run(&budget);
      },
      checkpoints);
}

OverheadRow measure_baseline(unsigned n) {
  const GTypePtr g = df_alternation_family(n);
  std::uint64_t checkpoints = 0;
  const auto run = [&](Budget* budget) {
    GmlBaselineOptions options;
    options.limits.max_graphs = 1u << 22;
    options.limits.budget = budget;
    benchmark::DoNotOptimize(gml_baseline_check(g, options));
  };
  {
    Budget probe;
    run(&probe);
    checkpoints = probe.steps();
  }
  return measure(
      "baseline_scan", 7, [&] { run(nullptr); },
      [&] {
        Budget budget;
        run(&budget);
      },
      checkpoints);
}

void print_rows(const std::vector<OverheadRow>& rows) {
  std::printf("%-16s %12s %12s %10s %14s\n", "workload", "plain ms",
              "budgeted ms", "overhead", "checkpoints");
  for (const OverheadRow& r : rows) {
    std::printf("%-16s %12.3f %12.3f %9.2f%% %14llu\n", r.workload,
                r.plain_ms, r.budgeted_ms, r.overhead_pct,
                static_cast<unsigned long long>(r.checkpoints));
  }
  std::printf("\n");
}

int write_json(const std::vector<OverheadRow>& rows, double gate_pct) {
  std::FILE* json = std::fopen("bench_budget.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_budget.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"gate_pct\": %.1f,\n  \"workloads\": [",
               gate_pct);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OverheadRow& r = rows[i];
    std::fprintf(json,
                 "%s\n    {\"workload\": \"%s\", \"plain_ms\": %.3f, "
                 "\"budgeted_ms\": %.3f, \"overhead_pct\": %.2f, "
                 "\"checkpoints\": %llu}",
                 i == 0 ? "" : ",", r.workload, r.plain_ms, r.budgeted_ms,
                 r.overhead_pct,
                 static_cast<unsigned long long>(r.checkpoints));
  }
  std::fprintf(json, "\n  ],\n");
  bench::write_json_env(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote bench_budget.json\n");
  return 0;
}

// Micro-timing of the poll itself, for the record: the per-call cost the
// macro overhead numbers are made of.
void BM_CheckpointUnlimited(benchmark::State& state) {
  Budget budget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.checkpoint());
  }
}

void BM_CheckpointWithDeadline(benchmark::State& state) {
  Budget::Limits limits;
  limits.deadline_ms = 3'600'000;  // far away: measures the stride path
  Budget budget(limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.checkpoint());
  }
}

BENCHMARK(BM_CheckpointUnlimited);
BENCHMARK(BM_CheckpointWithDeadline);

}  // namespace

int main(int argc, char** argv) {
  constexpr double kGatePct = 2.0;
  std::vector<OverheadRow> rows;
  rows.push_back(measure_normalize(7));
  rows.push_back(measure_baseline(14));
  print_rows(rows);
  if (write_json(rows, kGatePct) != 0) return 1;
  // Gate on the streamed scan — the per-emission-polled hot path the
  // docs bound. The normalize row is reported but not gated: its
  // absolute time is small enough that scheduler noise swamps ratios.
  for (const OverheadRow& r : rows) {
    if (std::string(r.workload) == "baseline_scan" &&
        r.overhead_pct >= kGatePct) {
      std::fprintf(stderr,
                   "FAIL: budget checkpoint overhead %.2f%% >= %.1f%% "
                   "on %s\n",
                   r.overhead_pct, kGatePct, r.workload);
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
