// Shared helpers for the benchmark/reproduction binaries.
//
// Every bench binary prints its paper-reproduction table to stdout first
// (workload, verdicts, series) and then runs google-benchmark timings, so
// `for b in build/bench/*; do $b; done` regenerates every experiment.

#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "gtdl/frontend/driver.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/obs/metrics.hpp"

namespace gtdl::bench {

// Machine/build provenance for benchmark JSON. Numbers without the
// hardware and build type they were measured on are not comparable across
// checkouts — in particular, parallel speedup curves are meaningless
// without knowing how many hardware threads the host actually had.
struct BenchEnv {
  std::string hostname = "unknown";
  unsigned hardware_threads = 0;
  std::string build_type =
#ifdef GTDL_BUILD_TYPE
      GTDL_BUILD_TYPE;
#else
      "unknown";
#endif
};

inline BenchEnv bench_env() {
  BenchEnv env;
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    env.hostname = host;
  }
#endif
  env.hardware_threads = std::thread::hardware_concurrency();
  return env;
}

// Writes the env block as a JSON object member (no trailing comma):
//   "env": {"hostname": ..., "hardware_threads": ..., "build_type": ...}
// A non-null `warning` is embedded in the block so anyone reading the
// JSON later (not just whoever watched stdout) sees why the numbers may
// be misleading on this host.
inline void write_json_env(std::FILE* json, const char* warning = nullptr) {
  const BenchEnv env = bench_env();
  std::fprintf(json,
               "  \"env\": {\"hostname\": \"%s\", \"hardware_threads\": %u, "
               "\"build_type\": \"%s\", \"scan_arena_trim_quota\": %zu",
               env.hostname.c_str(), env.hardware_threads,
               env.build_type.c_str(), scan_arena_trim_quota());
  if (warning != nullptr) {
    std::fprintf(json, ", \"warning\": \"%s\"", warning);
  }
  std::fprintf(json, "}");
}

// Writes the process-wide metrics registry as a JSON object member (no
// trailing comma):
//   "metrics": {"detect.checks": 12, ...}
// Counters only populate while stats collection is on, so benches call
// obs::set_stats_enabled(true) before the workload they want described.
// The block records the LAST workload state at write time — reset with
// MetricsRegistry::reset() between phases if that matters.
inline void write_json_metrics(std::FILE* json) {
  const std::string body =
      obs::MetricsRegistry::instance().render_json("  ");
  std::fprintf(json, "  \"metrics\": %s", body.c_str());
}

inline std::string programs_dir() {
#ifdef GTDL_PROGRAMS_DIR
  return GTDL_PROGRAMS_DIR;
#else
  return "examples/programs";
#endif
}

inline std::string read_program(const std::string& name) {
  const std::string path = programs_dir() + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The six §5 evaluation programs, in Table 1 order.
struct EvalProgram {
  const char* name;   // Table 1 row label
  const char* file;   // under examples/programs/
  bool has_deadlock;  // ground truth
};

inline const std::vector<EvalProgram>& eval_programs() {
  static const std::vector<EvalProgram> programs{
      {"Fibonacci", "fibonacci.fut", false},
      {"FibDL", "fib_dl.fut", true},
      {"Pipeline", "pipeline.fut", false},
      {"Counterex.", "counterex.fut", true},
      {"Webserver", "webserver.fut", false},
      {"WebserverDL", "webserver_dl.fut", true},
  };
  return programs;
}

// Generates a deadlock-free synthetic FutLang program with `stages`
// chained helper functions, each owning one future whose body calls the
// previous helper — a program whose graph type grows linearly with
// `stages` (used by the scalability sweep).
inline std::string synthetic_chain_program(unsigned stages) {
  std::string src;
  src += "fun h1() -> int {\n"
         "  let u = new_future[int]();\n"
         "  spawn u { return 1; }\n"
         "  return touch(u);\n"
         "}\n";
  for (unsigned k = 2; k <= stages; ++k) {
    const std::string prev = "h" + std::to_string(k - 1);
    src += "fun h" + std::to_string(k) + "() -> int {\n";
    src += "  let u = new_future[int]();\n";
    src += "  spawn u { return " + prev + "() + 1; }\n";
    src += "  return touch(u);\n";
    src += "}\n";
  }
  src += "fun main() {\n  print(int_to_string(h" +
         std::to_string(stages) + "()));\n}\n";
  return src;
}

inline CompiledProgram compile_file(const std::string& file,
                                    const InferOptions& options = {}) {
  return compile_futlang_or_throw(read_program(file), options);
}

inline const char* mark(bool correct) { return correct ? "yes" : "NO"; }

}  // namespace gtdl::bench
