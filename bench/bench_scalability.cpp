// E5 — scalability of the detector with program size.
//
// §5 notes the Webserver is "an order of magnitude larger" than the
// other examples yet checks in single-digit milliseconds, less than
// inference. The kind system is one syntax-directed pass, so its cost
// should scale ~linearly in the size of the graph type. This bench
// sweeps synthetic programs with F chained future-owning functions and
// reports inference and detection times.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "gtdl/detect/deadlock.hpp"

namespace {

using namespace gtdl;
using namespace gtdl::bench;
using Clock = std::chrono::steady_clock;

void print_scalability_table() {
  std::printf(
      "Synthetic chain programs: F functions, one future each.\n"
      "%-6s %10s %12s %12s %10s\n", "F", "src lines", "infer (ms)",
      "detect (ms)", "verdict");
  for (unsigned f : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::string source = synthetic_chain_program(f);
    const auto t0 = Clock::now();
    const CompiledProgram compiled = compile_futlang_or_throw(source);
    const auto t1 = Clock::now();
    const DeadlockVerdict verdict =
        check_deadlock_freedom(compiled.inferred.program_gtype);
    const auto t2 = Clock::now();
    const double infer_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double detect_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("%-6u %10zu %12.3f %12.3f %10s\n", f,
                static_cast<std::size_t>(
                    std::count(source.begin(), source.end(), '\n')),
                infer_ms, detect_ms,
                verdict.deadlock_free ? "ok" : "rejected");
  }
  std::printf("(expected shape: both ~linear in F; detect < infer)\n\n");
}

void BM_DetectChain(benchmark::State& state) {
  const unsigned f = static_cast<unsigned>(state.range(0));
  const CompiledProgram compiled =
      compile_futlang_or_throw(synthetic_chain_program(f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_deadlock_freedom(compiled.inferred.program_gtype)
            .deadlock_free);
  }
  state.SetComplexityN(f);
}

void BM_InferChain(benchmark::State& state) {
  const unsigned f = static_cast<unsigned>(state.range(0));
  const std::string source = synthetic_chain_program(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_futlang_or_throw(source));
  }
  state.SetComplexityN(f);
}

BENCHMARK(BM_DetectChain)->RangeMultiplier(2)->Range(2, 256)->Complexity();
BENCHMARK(BM_InferChain)->RangeMultiplier(2)->Range(2, 256)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_scalability_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
