// FutLang types.
//
// FutLang is the imperative source language of this reproduction — a
// stand-in for GML's OCaml subset, matching the paper's §2.1 model:
// first-class future handles with new_future / spawn / touch, plus enough
// ordinary types (ints, bools, strings, lists) to express the six
// evaluation programs.

#pragma once

#include <memory>
#include <string>
#include <variant>

namespace gtdl {

enum class PrimKind : unsigned char { kInt, kBool, kUnit, kString };

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct TPrim {
  PrimKind kind;
};
struct TList {
  TypePtr element;
};
struct TFuture {
  TypePtr element;
};
// A vector of future handles created as one unit by spawn_vec; the
// static counterpart of the VecSpawn graph-type family. The width is a
// property of the value (tracked during inference), not the type.
struct TFvec {
  TypePtr element;
};

struct Type {
  std::variant<TPrim, TList, TFuture, TFvec> node;
};

namespace ty {
[[nodiscard]] TypePtr intt();
[[nodiscard]] TypePtr boolt();
[[nodiscard]] TypePtr unit();
[[nodiscard]] TypePtr string();
[[nodiscard]] TypePtr list(TypePtr element);
[[nodiscard]] TypePtr future(TypePtr element);
[[nodiscard]] TypePtr fvec(TypePtr element);
}  // namespace ty

[[nodiscard]] bool type_equal(const Type& a, const Type& b);
[[nodiscard]] bool is_future(const Type& t);
[[nodiscard]] bool is_fvec(const Type& t);
[[nodiscard]] bool is_list(const Type& t);
[[nodiscard]] bool is_prim(const Type& t, PrimKind kind);
// Element type of a list or future; nullptr otherwise.
[[nodiscard]] TypePtr element_type(const Type& t);
[[nodiscard]] std::string to_string(const Type& t);

}  // namespace gtdl
