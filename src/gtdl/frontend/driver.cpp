#include "gtdl/frontend/driver.hpp"

#include <stdexcept>

#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl {

std::optional<CompiledProgram> compile_futlang(std::string_view source,
                                               DiagnosticEngine& diags,
                                               const InferOptions& options) {
  fault::maybe_inject("parse");
  auto program = parse_program(source, diags);
  if (!program) return std::nullopt;
  if (!typecheck_program(*program, diags)) return std::nullopt;
  auto inferred = infer_graph_types(*program, diags, options);
  if (!inferred) return std::nullopt;
  CompiledProgram out;
  out.program = std::move(*program);
  out.inferred = std::move(*inferred);
  return out;
}

CompiledProgram compile_futlang_or_throw(std::string_view source,
                                         const InferOptions& options) {
  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags, options);
  if (!compiled) {
    throw std::runtime_error("FutLang compilation failed:\n" + diags.render());
  }
  return std::move(*compiled);
}

}  // namespace gtdl
