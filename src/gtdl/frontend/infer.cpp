#include "gtdl/frontend/infer.hpp"

#include <algorithm>
#include <unordered_set>

#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

std::vector<Symbol> FunctionGraphInfo::spawn_vertex_params() const {
  std::vector<Symbol> out;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    if (usage[i].spawned) out.push_back(vertices[i]);
  }
  return out;
}

std::vector<Symbol> FunctionGraphInfo::touch_vertex_params() const {
  // A parameter both spawned and touched binds as a SPAWN parameter only:
  // the body's own spawn justifies its touches (DF:SEQ). Binding it in ūt
  // as well would put it in Ψ up front and unsoundly admit
  // touch-before-spawn bodies.
  std::vector<Symbol> out;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    if (usage[i].touched && !usage[i].spawned) out.push_back(vertices[i]);
  }
  return out;
}

bool FunctionGraphInfo::has_classified_params() const {
  return std::any_of(usage.begin(), usage.end(), [](const ParamUsage& u) {
    return u.spawned || u.touched;
  });
}

namespace {

// Abstract value of an expression during inference: not a future, a
// future with a known vertex, a touch family (fvec) with a known width,
// one indexed member of a family, or a future whose identity was lost.
struct AbstractVal {
  enum class Kind : unsigned char {
    kNotFuture,
    kVertex,
    kFamily,
    kMember,
    kOpaque,
  };
  Kind kind = Kind::kNotFuture;
  Symbol vertex;  // the vertex (kVertex) or family symbol (kFamily/kMember)
  std::uint32_t width = 0;
  std::uint32_t index = 0;

  static AbstractVal not_future() { return {}; }
  static AbstractVal of_vertex(Symbol v) {
    return {Kind::kVertex, v, 0, 0};
  }
  static AbstractVal of_family(Symbol f, std::uint32_t w) {
    return {Kind::kFamily, f, w, 0};
  }
  static AbstractVal of_member(Symbol f, std::uint32_t w, std::uint32_t i) {
    return {Kind::kMember, f, w, i};
  }
  static AbstractVal opaque() { return {Kind::kOpaque, Symbol{}, 0, 0}; }
};

class Inferencer {
 public:
  Inferencer(const Program& program, DiagnosticEngine& diags,
             const InferOptions& options)
      : program_(program), diags_(diags), options_(options) {}

  std::optional<InferredProgram> run() {
    InferredProgram result;
    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      const Function& fn = program_.functions[i];
      declared_before_.insert(fn.name);
      auto info = infer_function(fn);
      if (!info) return std::nullopt;
      result.functions.emplace(fn.name, std::move(*info));
      infos_ = &result.functions;
    }
    const auto main_it = result.functions.find(Symbol::intern("main"));
    if (main_it == result.functions.end()) {
      diags_.error("program has no 'main' function");
      return std::nullopt;
    }
    result.program_gtype = main_it->second.gtype;
    return result;
  }

 private:
  // --- structural restrictions -------------------------------------------

  // Enforces the tail-position discipline described in the header: a
  // return (or an if containing one) terminates its block.
  bool check_tail_discipline(const Block& block) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      const Stmt& stmt = *block[i];
      const bool last = i + 1 == block.size();
      if (std::holds_alternative<SReturn>(stmt.node) && !last) {
        diags_.error(stmt.loc,
                     "graph inference requires 'return' to be the last "
                     "statement of its block");
        return false;
      }
      if (const auto* sif = std::get_if<SIf>(&stmt.node)) {
        if (!check_tail_discipline(sif->then_block) ||
            !check_tail_discipline(sif->else_block)) {
          return false;
        }
        if (!last && (contains_return(sif->then_block) ||
                      contains_return(sif->else_block))) {
          diags_.error(stmt.loc,
                       "graph inference requires an 'if' whose branches "
                       "return to be the last statement of its block");
          return false;
        }
      }
      if (const auto* sw = std::get_if<SWhile>(&stmt.node)) {
        (void)sw;
        diags_.error(stmt.loc,
                     "graph inference does not support 'while'; use "
                     "recursion");
        return false;
      }
      // Spawn bodies live inside expressions; checked during the walk.
    }
    return true;
  }

  static bool contains_return(const Block& block) {
    for (const StmtPtr& stmt : block) {
      if (std::holds_alternative<SReturn>(stmt->node)) return true;
      if (const auto* sif = std::get_if<SIf>(&stmt->node)) {
        if (contains_return(sif->then_block) ||
            contains_return(sif->else_block)) {
          return true;
        }
      }
    }
    return false;
  }

  // --- per-function inference ---------------------------------------------

  std::optional<FunctionGraphInfo> infer_function(const Function& fn) {
    if (!check_tail_discipline(fn.body)) return std::nullopt;

    FunctionGraphInfo info;
    info.name = fn.name;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (is_future(*fn.params[i].type)) {
        info.future_params.push_back(i);
        info.vertices.push_back(Symbol::intern(
            fn.name.str() + "_" + fn.params[i].name.str()));
      }
    }
    info.usage.assign(info.future_params.size(), ParamUsage{});
    info.recursive = calls_self(fn.body, fn.name);

    // Mycroft iteration: re-infer with the previous signature until the
    // classification stabilizes, up to the GML cap.
    GTypePtr body_graph;
    bool converged = false;
    for (unsigned iter = 1; iter <= options_.max_signature_iterations;
         ++iter) {
      info.iterations = iter;
      WalkOutput out;
      if (!walk_function(fn, info, out)) return std::nullopt;
      body_graph = out.graph;
      if (out.usage == info.usage) {
        converged = true;
        break;
      }
      info.usage = std::move(out.usage);
    }
    if (!converged) {
      // Faithful GML behavior (paper footnote 3): the fixed point was not
      // reached within the iteration budget.
      diags_.error(fn.loc,
                   "graph type of '" + fn.name.str() +
                       "' did not reach a fixed point after " +
                       std::to_string(options_.max_signature_iterations) +
                       " inference iterations (GML raises this error; "
                       "increase max_signature_iterations to infer it)");
      return std::nullopt;
    }

    // Assemble: μγ. Π[spawn; touch]. ν locals. body
    GTypePtr g = body_graph;
    if (info.has_classified_params()) {
      g = gt::pi(info.spawn_vertex_params(), info.touch_vertex_params(),
                 std::move(g));
    }
    if (info.recursive) {
      g = gt::rec(fn.name, std::move(g));
    }
    info.gtype = std::move(g);
    return info;
  }

  static bool calls_self_expr(const Expr& expr, Symbol self) {
    bool found = false;
    std::visit(Overloaded{
                   [&](const ECall& node) {
                     if (node.callee == self) found = true;
                     for (const ExprPtr& a : node.args) {
                       found = found || calls_self_expr(*a, self);
                     }
                   },
                   [&](const ETouch& node) {
                     found = calls_self_expr(*node.handle, self);
                   },
                   [&](const ESpawn& node) {
                     found = calls_self_expr(*node.handle, self) ||
                             calls_self(node.body, self);
                   },
                   [&](const ESpawnVec& node) {
                     found = calls_self_expr(*node.width, self) ||
                             calls_self(node.body, self);
                   },
                   [&](const ETouchAll& node) {
                     found = calls_self_expr(*node.handle, self);
                   },
                   [&](const EIndex& node) {
                     found = calls_self_expr(*node.handle, self) ||
                             calls_self_expr(*node.index, self);
                   },
                   [&](const EPipeline& node) {
                     for (const Block& stage : node.stages) {
                       found = found || calls_self(stage, self);
                     }
                   },
                   [&](const EBinary& node) {
                     found = calls_self_expr(*node.lhs, self) ||
                             calls_self_expr(*node.rhs, self);
                   },
                   [&](const EUnary& node) {
                     found = calls_self_expr(*node.operand, self);
                   },
                   [](const auto&) {},
               },
               expr.node);
    return found;
  }

  static bool calls_self(const Block& block, Symbol self) {
    for (const StmtPtr& stmt : block) {
      bool found = false;
      std::visit(Overloaded{
                     [&](const SLet& node) {
                       found = calls_self_expr(*node.init, self);
                     },
                     [&](const SAssign& node) {
                       found = calls_self_expr(*node.value, self);
                     },
                     [&](const SExpr& node) {
                       found = calls_self_expr(*node.expr, self);
                     },
                     [&](const SReturn& node) {
                       found = node.value != nullptr &&
                               calls_self_expr(*node.value, self);
                     },
                     [&](const SIf& node) {
                       found = calls_self_expr(*node.cond, self) ||
                               calls_self(node.then_block, self) ||
                               calls_self(node.else_block, self);
                     },
                     [&](const SWhile& node) {
                       found = calls_self_expr(*node.cond, self) ||
                               calls_self(node.body, self);
                     },
                 },
                 stmt->node);
      if (found) return true;
    }
    return false;
  }

  // --- the walk -------------------------------------------------------------

  struct WalkOutput {
    GTypePtr graph;
    std::vector<ParamUsage> usage;
  };

  struct WalkState {
    const Function* fn = nullptr;
    const FunctionGraphInfo* info = nullptr;  // current (assumed) signature
    std::vector<ParamUsage> usage;            // usage being computed
    std::vector<Symbol> nu_list;              // hoisted local futures
    std::vector<std::unordered_map<Symbol, AbstractVal>> scopes;
    bool failed = false;
  };

  bool walk_function(const Function& fn, const FunctionGraphInfo& info,
                     WalkOutput& out) {
    WalkState state;
    state.fn = &fn;
    state.info = &info;
    state.usage.assign(info.future_params.size(), ParamUsage{});
    state.scopes.emplace_back();
    for (std::size_t k = 0; k < info.future_params.size(); ++k) {
      const Param& p = fn.params[info.future_params[k]];
      state.scopes.back().emplace(p.name,
                                  AbstractVal::of_vertex(info.vertices[k]));
    }
    for (const Param& p : fn.params) {
      if (!is_future(*p.type)) {
        state.scopes.back().emplace(p.name, AbstractVal::not_future());
      }
    }
    GTypePtr body = walk_block(fn.body, state);
    if (state.failed) return false;
    out.graph = gt::nu_all(state.nu_list, std::move(body));
    out.usage = std::move(state.usage);
    return true;
  }

  GTypePtr walk_block(const Block& block, WalkState& state) {
    state.scopes.emplace_back();
    std::vector<GTypePtr> pieces;
    for (const StmtPtr& stmt : block) {
      walk_stmt(*stmt, state, pieces);
      if (state.failed) break;
    }
    state.scopes.pop_back();
    return pieces.empty() ? gt::empty() : gt::seq_all(std::move(pieces));
  }

  void walk_stmt(const Stmt& stmt, WalkState& state,
                 std::vector<GTypePtr>& pieces) {
    std::visit(
        Overloaded{
            [&](const SLet& node) {
              const AbstractVal value =
                  walk_expr(*node.init, state, pieces);
              state.scopes.back()[node.name] = value;
            },
            [&](const SAssign& node) {
              const AbstractVal value =
                  walk_expr(*node.value, state, pieces);
              bind_existing(node.name, value, state, stmt.loc);
            },
            [&](const SExpr& node) {
              (void)walk_expr(*node.expr, state, pieces);
            },
            [&](const SReturn& node) {
              if (node.value != nullptr) {
                (void)walk_expr(*node.value, state, pieces);
              }
            },
            [&](const SIf& node) {
              (void)walk_expr(*node.cond, state, pieces);
              const GTypePtr then_graph = walk_block(node.then_block, state);
              const GTypePtr else_graph = walk_block(node.else_block, state);
              // Interning makes structurally equal graphs the same node;
              // identical branches need no disjunction (Norm(G∨G) =
              // Norm(G), and DF:OR's equal-spawns condition is trivial).
              pieces.push_back(then_graph.get() == else_graph.get()
                                   ? then_graph
                                   : gt::alt(then_graph, else_graph));
            },
            [&](const SWhile&) {
              // Rejected by check_tail_discipline already.
              fail(stmt.loc, "'while' reached inference unexpectedly",
                   state);
            },
        },
        stmt.node);
  }

  void bind_existing(Symbol name, const AbstractVal& value, WalkState& state,
                     SrcLoc loc) {
    for (auto it = state.scopes.rbegin(); it != state.scopes.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        // Re-binding a future variable to a different vertex loses the
        // static identity; subsequent spawns/touches of it will fail.
        if (found->second.kind == AbstractVal::Kind::kVertex &&
            value.kind == AbstractVal::Kind::kVertex &&
            found->second.vertex != value.vertex) {
          found->second = AbstractVal::opaque();
        } else {
          found->second = value;
        }
        return;
      }
    }
    fail(loc, "assignment to unknown variable '" + name.str() + "'", state);
  }

  AbstractVal lookup(Symbol name, WalkState& state) const {
    for (auto it = state.scopes.rbegin(); it != state.scopes.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return AbstractVal::not_future();
  }

  void fail(SrcLoc loc, std::string message, WalkState& state) {
    if (!state.failed) diags_.error(loc, std::move(message));
    state.failed = true;
  }

  // Marks a vertex as spawned/touched if it is one of the current
  // function's parameter vertices.
  void mark_param(Symbol vertex, bool spawned, WalkState& state) {
    for (std::size_t k = 0; k < state.info->vertices.size(); ++k) {
      if (state.info->vertices[k] == vertex) {
        if (spawned) {
          state.usage[k].spawned = true;
        } else {
          state.usage[k].touched = true;
        }
      }
    }
  }

  AbstractVal walk_expr(const Expr& expr, WalkState& state,
                        std::vector<GTypePtr>& pieces) {
    return std::visit(
        Overloaded{
            [&](const EIntLit&) { return AbstractVal::not_future(); },
            [&](const EBoolLit&) { return AbstractVal::not_future(); },
            [&](const EStringLit&) { return AbstractVal::not_future(); },
            [&](const EUnitLit&) { return AbstractVal::not_future(); },
            [&](const ENilLit&) { return AbstractVal::not_future(); },
            [&](const EVar& node) { return lookup(node.name, state); },
            [&](const ENewFuture&) {
              // GML hoists the ν binding to the top of the function body.
              const Symbol vertex =
                  Symbol::fresh(state.fn->name.str() + "_u");
              state.nu_list.push_back(vertex);
              return AbstractVal::of_vertex(vertex);
            },
            [&](const ETouch& node) {
              const AbstractVal handle =
                  walk_expr(*node.handle, state, pieces);
              if (handle.kind == AbstractVal::Kind::kMember) {
                pieces.push_back(gt::touch_idx(handle.vertex, handle.width,
                                               handle.index));
                return AbstractVal::not_future();
              }
              if (handle.kind == AbstractVal::Kind::kFamily) {
                fail(expr.loc,
                     "touch expects a single future; use touch_all for an "
                     "fvec",
                     state);
                return AbstractVal::not_future();
              }
              if (handle.kind != AbstractVal::Kind::kVertex) {
                fail(expr.loc,
                     "cannot statically identify the future being touched",
                     state);
                return AbstractVal::not_future();
              }
              mark_param(handle.vertex, /*spawned=*/false, state);
              pieces.push_back(gt::touch(handle.vertex));
              return AbstractVal::not_future();
            },
            [&](const ESpawn& node) {
              const AbstractVal handle =
                  walk_expr(*node.handle, state, pieces);
              if (handle.kind == AbstractVal::Kind::kMember ||
                  handle.kind == AbstractVal::Kind::kFamily) {
                fail(expr.loc,
                     "family members are spawned by spawn_vec and cannot be "
                     "spawned again",
                     state);
                return AbstractVal::not_future();
              }
              if (handle.kind != AbstractVal::Kind::kVertex) {
                fail(expr.loc,
                     "cannot statically identify the future being spawned",
                     state);
                return AbstractVal::not_future();
              }
              if (!check_tail_discipline(node.body)) {
                state.failed = true;
                return AbstractVal::not_future();
              }
              mark_param(handle.vertex, /*spawned=*/true, state);
              const GTypePtr body_graph = walk_block(node.body, state);
              pieces.push_back(gt::spawn(body_graph, handle.vertex));
              return AbstractVal::not_future();
            },
            [&](const ESpawnVec& node) {
              const auto* width_lit = std::get_if<EIntLit>(&node.width->node);
              if (width_lit == nullptr || width_lit->value < 0 ||
                  width_lit->value > 0xffffffff) {
                fail(expr.loc,
                     "spawn_vec width must be a non-negative integer "
                     "literal for graph inference",
                     state);
                return AbstractVal::not_future();
              }
              const auto width =
                  static_cast<std::uint32_t>(width_lit->value);
              if (!check_tail_discipline(node.body)) {
                state.failed = true;
                return AbstractVal::not_future();
              }
              // Like new_future: the family binding νfs hoists to the top
              // of the function body; the VecSpawn node is the use.
              const Symbol family =
                  Symbol::fresh(state.fn->name.str() + "_fs");
              state.nu_list.push_back(family);
              const GTypePtr body_graph = walk_block(node.body, state);
              pieces.push_back(gt::vecspawn(body_graph, family, width));
              return AbstractVal::of_family(family, width);
            },
            [&](const ETouchAll& node) {
              const AbstractVal handle =
                  walk_expr(*node.handle, state, pieces);
              if (handle.kind != AbstractVal::Kind::kFamily) {
                fail(expr.loc,
                     "cannot statically identify the family being "
                     "touch_all'd",
                     state);
                return AbstractVal::not_future();
              }
              pieces.push_back(gt::touch_all(handle.vertex, handle.width));
              return AbstractVal::not_future();
            },
            [&](const EIndex& node) {
              const AbstractVal handle =
                  walk_expr(*node.handle, state, pieces);
              const auto* index_lit = std::get_if<EIntLit>(&node.index->node);
              if (handle.kind != AbstractVal::Kind::kFamily) {
                fail(expr.loc,
                     "cannot statically identify the family being indexed",
                     state);
                return AbstractVal::opaque();
              }
              if (index_lit == nullptr) {
                fail(expr.loc,
                     "fvec indices must be integer literals for graph "
                     "inference",
                     state);
                return AbstractVal::opaque();
              }
              if (index_lit->value < 0 ||
                  index_lit->value >= static_cast<std::int64_t>(handle.width)) {
                fail(expr.loc,
                     "fvec index " + std::to_string(index_lit->value) +
                         " is out of bounds for a family of width " +
                         std::to_string(handle.width),
                     state);
                return AbstractVal::opaque();
              }
              return AbstractVal::of_member(
                  handle.vertex, handle.width,
                  static_cast<std::uint32_t>(index_lit->value));
            },
            [&](const EPipeline& node) {
              // Left-associated stage composition G₁ ▷ G₂ ▷ … — the
              // desugaring into ν-bound stage futures happens inside the
              // graph-type normalizers.
              GTypePtr chain;
              for (const Block& stage : node.stages) {
                if (!check_tail_discipline(stage)) {
                  state.failed = true;
                  return AbstractVal::not_future();
                }
                GTypePtr stage_graph = walk_block(stage, state);
                chain = chain == nullptr
                            ? std::move(stage_graph)
                            : gt::pipe(std::move(chain),
                                       std::move(stage_graph));
              }
              if (chain != nullptr) pieces.push_back(std::move(chain));
              return AbstractVal::not_future();
            },
            [&](const ECall& node) { return walk_call(expr, node, state, pieces); },
            [&](const EBinary& node) {
              (void)walk_expr(*node.lhs, state, pieces);
              (void)walk_expr(*node.rhs, state, pieces);
              return AbstractVal::not_future();
            },
            [&](const EUnary& node) {
              (void)walk_expr(*node.operand, state, pieces);
              return AbstractVal::not_future();
            },
        },
        expr.node);
  }

  AbstractVal walk_call(const Expr& expr, const ECall& node, WalkState& state,
                        std::vector<GTypePtr>& pieces) {
    // Argument expressions evaluate first, left to right.
    std::vector<AbstractVal> arg_vals;
    arg_vals.reserve(node.args.size());
    for (const ExprPtr& arg : node.args) {
      arg_vals.push_back(walk_expr(*arg, state, pieces));
    }
    if (is_builtin(node.callee)) return AbstractVal::not_future();

    const bool self = node.callee == state.fn->name;
    const FunctionGraphInfo* callee_info = nullptr;
    if (self) {
      callee_info = state.info;
    } else {
      if (declared_before_.count(node.callee) == 0 || infos_ == nullptr) {
        fail(expr.loc,
             "graph inference requires '" + node.callee.str() +
                 "' to be declared before this call (mutual recursion is "
                 "not supported)",
             state);
        return AbstractVal::not_future();
      }
      auto it = infos_->find(node.callee);
      if (it == infos_->end()) {
        fail(expr.loc, "no graph type for '" + node.callee.str() + "'",
             state);
        return AbstractVal::not_future();
      }
      callee_info = &it->second;
    }

    // Use the callee's classification (for self-calls: the current
    // iteration's assumption) to build the vertex argument vectors and to
    // propagate usage to our own parameters.
    std::vector<Symbol> spawn_args;
    std::vector<Symbol> touch_args;
    for (std::size_t k = 0; k < callee_info->future_params.size(); ++k) {
      const ParamUsage u =
          self ? state.info->usage[k] : callee_info->usage[k];
      if (!u.spawned && !u.touched) continue;
      const std::size_t arg_index = callee_info->future_params[k];
      const AbstractVal& val = arg_vals[arg_index];
      if (val.kind != AbstractVal::Kind::kVertex) {
        fail(node.args[arg_index]->loc,
             "cannot statically identify the future passed to '" +
                 node.callee.str() + "'",
             state);
        return AbstractVal::not_future();
      }
      // Mirror the Π binding rule: spawn classification wins.
      if (u.spawned) {
        spawn_args.push_back(val.vertex);
        mark_param(val.vertex, /*spawned=*/true, state);
      } else if (u.touched) {
        touch_args.push_back(val.vertex);
        mark_param(val.vertex, /*spawned=*/false, state);
      }
    }

    // Whether the callee's (assumed) signature is Π-parameterized.
    const bool classified =
        std::any_of(callee_info->usage.begin(), callee_info->usage.end(),
                    [](const ParamUsage& u) { return u.spawned || u.touched; });
    GTypePtr fn_node =
        self ? gt::var(state.fn->name) : callee_info->gtype;
    if (classified) {
      pieces.push_back(
          gt::app(std::move(fn_node), std::move(spawn_args),
                  std::move(touch_args)));
    } else {
      // No future parameters: the call's graph is the callee's graph
      // (bare γ for self-calls; normalization handles bare μ directly).
      pieces.push_back(std::move(fn_node));
    }
    return AbstractVal::not_future();
  }

  const Program& program_;
  DiagnosticEngine& diags_;
  const InferOptions& options_;
  std::unordered_set<Symbol> declared_before_;
  const std::unordered_map<Symbol, FunctionGraphInfo>* infos_ = nullptr;
};

}  // namespace

std::optional<InferredProgram> infer_graph_types(const Program& program,
                                                 DiagnosticEngine& diags,
                                                 const InferOptions& options) {
  Inferencer inferencer(program, diags, options);
  auto result = inferencer.run();
  if (diags.has_errors()) return std::nullopt;
  return result;
}

}  // namespace gtdl
