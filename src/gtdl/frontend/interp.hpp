// FutLang interpreter.
//
// Executes a type-checked program under one canonical deterministic
// schedule and records the execution's dependency graph (§2.2) as it
// goes: every spawn becomes a G /u node, every touch a ᵘ\ node. The
// recorded graph serves two purposes:
//
//   * ground truth for the evaluation — the execution deadlocks iff the
//     recorded graph has a cycle or touches a never-spawned vertex
//     (find_ground_deadlock), and
//   * the input to the dynamic policies — trace_of_graph(g) yields the
//     Fig. 6 trace that the Transitive Joins / Known Joins validators
//     judge (automating what the paper applied by hand).
//
// Scheduling model: future bodies run lazily. A spawn registers the body;
// a touch forces it (running it to completion on the toucher's stack). A
// touch of a future that is currently being forced further down the same
// stack is a cyclic wait — a deadlock. A touch of a handle that nobody
// has spawned forces all other pending futures first (they might perform
// the spawn) and reports a deadlock if the handle remains unspawned. At
// program end all still-pending futures are forced, so every spawned
// body's subgraph is recorded. This is one legal serialization of the
// parallel execution; a deadlock under it is a deadlock of the program.
//
// Nondeterminism: rand() reads from InterpOptions::rand_script first and
// falls back to a seeded LCG, so executions are reproducible and tests
// can steer branches (e.g. drive the §3 counterexample into its cycle).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gtdl/frontend/ast.hpp"
#include "gtdl/graph/graph.hpp"
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {

class Budget;  // support/budget.hpp

namespace ingest {
class TraceDumpWriter;  // ingest/trace_writer.hpp
}

struct InterpOptions {
  // Values returned by successive rand() calls; when exhausted, a
  // deterministic LCG seeded with `seed` takes over.
  std::vector<std::int64_t> rand_script;
  std::uint64_t seed = 1;
  // Execution step budget (guards against runaway recursion).
  std::size_t max_steps = 2'000'000;
  // FutLang call depth budget.
  std::size_t max_call_depth = 2'000;
  // Optional resource budget (support/budget.hpp, not owned) — the
  // --run watchdog. Polled once per execution step alongside max_steps;
  // a trip aborts with a runtime error and budget_exhausted set.
  Budget* budget = nullptr;
  // Optional dependency-trace sink (not owned) — the --trace-graph
  // switch. Every spawn/touch/block/resolve of the execution is recorded
  // in the docs/TRACE_FORMAT.md schema; the caller flushes the shards.
  // A deadlocked execution still leaves a complete (re-ingestable) dump.
  ingest::TraceDumpWriter* graph_dump = nullptr;
};

struct InterpResult {
  // True if execution ran to completion (including end-of-program forcing
  // of pending futures) without a deadlock or runtime error.
  bool completed = false;
  // Set when the execution deadlocked; explains how.
  std::optional<std::string> deadlock;
  // Set on a runtime error (head of empty list, step budget, ...).
  std::optional<std::string> error;
  // The recorded dependency graph of this execution.
  GraphExprPtr graph;
  // init(main); <graph trace> — for the TJ/KJ validators.
  Trace trace;
  // Everything print()ed.
  std::string output;
  std::size_t steps = 0;
  // The watchdog budget (InterpOptions::budget) tripped; `error` then
  // holds the watchdog message and the execution result is partial.
  bool budget_exhausted = false;

  // The ground verdict of the recorded graph (cycle / unspawned touch).
  [[nodiscard]] GroundDeadlock graph_deadlock() const;
};

// Precondition: program passed typecheck_program.
[[nodiscard]] InterpResult interpret(const Program& program,
                                     const InterpOptions& options = {});

}  // namespace gtdl
