#include "gtdl/frontend/parser.hpp"

#include <cctype>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace gtdl {

namespace {

enum class Tok : unsigned char {
  kIdent, kInt, kString,
  // keywords
  kFun, kLet, kReturn, kIf, kElse, kWhile, kSpawn, kTouch, kNewFuture,
  kSpawnVec, kTouchAll, kPipeline, kStage,
  kTrue, kFalse, kNil,
  kTyInt, kTyBool, kTyUnit, kTyString, kTyList, kTyFuture, kTyFvec,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kColon, kDot, kArrow, kAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEqEq, kNe, kLt, kLe, kGt, kGe, kAndAnd, kOrOr, kBang,
  kEnd, kError,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string_view text;
  SrcLoc loc;
  std::int64_t int_value = 0;
  std::string string_value;  // decoded string literal
};

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> table{
      {"fun", Tok::kFun},        {"let", Tok::kLet},
      {"return", Tok::kReturn},  {"if", Tok::kIf},
      {"else", Tok::kElse},      {"while", Tok::kWhile},
      {"spawn", Tok::kSpawn},    {"touch", Tok::kTouch},
      {"new_future", Tok::kNewFuture},
      {"spawn_vec", Tok::kSpawnVec},
      {"touch_all", Tok::kTouchAll},
      {"pipeline", Tok::kPipeline},
      {"stage", Tok::kStage},
      {"true", Tok::kTrue},      {"false", Tok::kFalse},
      {"nil", Tok::kNil},        {"int", Tok::kTyInt},
      {"bool", Tok::kTyBool},    {"unit", Tok::kTyUnit},
      {"string", Tok::kTyString},{"list", Tok::kTyList},
      {"future", Tok::kTyFuture},{"fvec", Tok::kTyFvec},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view text, DiagnosticEngine& diags)
      : text_(text), diags_(diags) {}

  Token next() {
    skip_trivia();
    const SrcLoc loc{line_, column_};
    if (pos_ >= text_.size()) return Token{Tok::kEnd, {}, loc, 0, {}};
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_int(loc);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_word(loc);
    }
    if (c == '"') return lex_string(loc);
    return lex_punct(loc);
  }

 private:
  Token lex_int(SrcLoc loc) {
    std::size_t end = pos_;
    while (end < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    Token tok{Tok::kInt, text_.substr(pos_, end - pos_), loc, 0, {}};
    tok.int_value = std::stoll(std::string(tok.text));
    advance(end - pos_);
    return tok;
  }

  Token lex_word(SrcLoc loc) {
    std::size_t end = pos_;
    while (end < text_.size()) {
      const char k = text_[end];
      if (std::isalnum(static_cast<unsigned char>(k)) || k == '_') {
        ++end;
      } else {
        break;
      }
    }
    const std::string_view word = text_.substr(pos_, end - pos_);
    advance(end - pos_);
    auto it = keywords().find(word);
    return Token{it == keywords().end() ? Tok::kIdent : it->second, word, loc,
                 0, {}};
  }

  Token lex_string(SrcLoc loc) {
    advance(1);  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        advance(1);
        const char esc = text_[pos_];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '\\':
            c = '\\';
            break;
          case '"':
            c = '"';
            break;
          default:
            diags_.error(SrcLoc{line_, column_},
                         std::string("unknown escape '\\") + esc + "'");
            c = esc;
            break;
        }
      }
      value += c;
      advance(1);
    }
    if (pos_ >= text_.size()) {
      diags_.error(loc, "unterminated string literal");
      return Token{Tok::kError, {}, loc, 0, {}};
    }
    advance(1);  // closing quote
    Token tok{Tok::kString, {}, loc, 0, std::move(value)};
    return tok;
  }

  Token lex_punct(SrcLoc loc) {
    const auto two = text_.substr(pos_, 2);
    struct PunctPair {
      std::string_view spelling;
      Tok kind;
    };
    static constexpr PunctPair kTwoChar[] = {
        {"->", Tok::kArrow}, {"==", Tok::kEqEq}, {"!=", Tok::kNe},
        {"<=", Tok::kLe},    {">=", Tok::kGe},   {"&&", Tok::kAndAnd},
        {"||", Tok::kOrOr},
    };
    for (const PunctPair& p : kTwoChar) {
      if (two == p.spelling) {
        Token tok{p.kind, two, loc, 0, {}};
        advance(2);
        return tok;
      }
    }
    Tok kind = Tok::kError;
    switch (text_[pos_]) {
      case '(': kind = Tok::kLParen; break;
      case ')': kind = Tok::kRParen; break;
      case '{': kind = Tok::kLBrace; break;
      case '}': kind = Tok::kRBrace; break;
      case '[': kind = Tok::kLBracket; break;
      case ']': kind = Tok::kRBracket; break;
      case ',': kind = Tok::kComma; break;
      case ';': kind = Tok::kSemi; break;
      case ':': kind = Tok::kColon; break;
      case '.': kind = Tok::kDot; break;
      case '=': kind = Tok::kAssign; break;
      case '+': kind = Tok::kPlus; break;
      case '-': kind = Tok::kMinus; break;
      case '*': kind = Tok::kStar; break;
      case '/': kind = Tok::kSlash; break;
      case '%': kind = Tok::kPercent; break;
      case '<': kind = Tok::kLt; break;
      case '>': kind = Tok::kGt; break;
      case '!': kind = Tok::kBang; break;
      default:
        diags_.error(loc, std::string("unexpected character '") +
                              text_[pos_] + "'");
        break;
    }
    Token tok{kind, text_.substr(pos_, 1), loc, 0, {}};
    advance(1);
    return tok;
  }

  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && pos_ < text_.size(); ++i, ++pos_) {
      if (text_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
    }
  }

  void skip_trivia() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance(1);
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance(1);
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, DiagnosticEngine& diags)
      : lexer_(text, diags), diags_(diags) {
    advance();
  }

  std::optional<Program> parse() {
    Program program;
    while (current_.kind != Tok::kEnd) {
      auto fn = parse_function();
      if (!fn) return std::nullopt;
      program.functions.push_back(std::move(*fn));
    }
    return program;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  bool at(Tok kind) const { return current_.kind == kind; }

  bool accept(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  bool expect(Tok kind, const char* what) {
    if (accept(kind)) return true;
    error(std::string("expected ") + what);
    return false;
  }

  void error(std::string message) {
    diags_.error(current_.loc,
                 message + " (found '" +
                     (at(Tok::kEnd) ? std::string("<end>")
                                    : std::string(current_.text)) +
                     "')");
  }

  std::optional<Symbol> parse_ident(const char* what) {
    if (!at(Tok::kIdent)) {
      error(std::string("expected ") + what);
      return std::nullopt;
    }
    const Symbol name = Symbol::intern(current_.text);
    advance();
    return name;
  }

  TypePtr parse_type() {
    switch (current_.kind) {
      case Tok::kTyInt:
        advance();
        return ty::intt();
      case Tok::kTyBool:
        advance();
        return ty::boolt();
      case Tok::kTyUnit:
        advance();
        return ty::unit();
      case Tok::kTyString:
        advance();
        return ty::string();
      case Tok::kTyList: {
        advance();
        if (!expect(Tok::kLBracket, "'[' after 'list'")) return nullptr;
        TypePtr element = parse_type();
        if (element == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        return ty::list(std::move(element));
      }
      case Tok::kTyFuture: {
        advance();
        if (!expect(Tok::kLBracket, "'[' after 'future'")) return nullptr;
        TypePtr element = parse_type();
        if (element == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        return ty::future(std::move(element));
      }
      case Tok::kTyFvec: {
        advance();
        if (!expect(Tok::kLBracket, "'[' after 'fvec'")) return nullptr;
        TypePtr element = parse_type();
        if (element == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        return ty::fvec(std::move(element));
      }
      default:
        error("expected a type");
        return nullptr;
    }
  }

  std::optional<Function> parse_function() {
    const SrcLoc loc = current_.loc;
    if (!expect(Tok::kFun, "'fun'")) return std::nullopt;
    auto name = parse_ident("function name");
    if (!name) return std::nullopt;
    if (!expect(Tok::kLParen, "'('")) return std::nullopt;
    std::vector<Param> params;
    if (!at(Tok::kRParen)) {
      for (;;) {
        const SrcLoc ploc = current_.loc;
        auto pname = parse_ident("parameter name");
        if (!pname) return std::nullopt;
        if (!expect(Tok::kColon, "':' after parameter name")) {
          return std::nullopt;
        }
        TypePtr ptype = parse_type();
        if (ptype == nullptr) return std::nullopt;
        params.push_back(Param{*pname, std::move(ptype), ploc});
        if (!accept(Tok::kComma)) break;
      }
    }
    if (!expect(Tok::kRParen, "')'")) return std::nullopt;
    TypePtr return_type = ty::unit();
    if (accept(Tok::kArrow)) {
      return_type = parse_type();
      if (return_type == nullptr) return std::nullopt;
    }
    auto body = parse_block();
    if (!body) return std::nullopt;
    return Function{*name, std::move(params), std::move(return_type),
                    std::move(*body), loc};
  }

  std::optional<Block> parse_block() {
    if (!expect(Tok::kLBrace, "'{'")) return std::nullopt;
    Block block;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEnd)) {
        error("unterminated block; expected '}'");
        return std::nullopt;
      }
      auto stmt = parse_statement();
      if (!stmt) return std::nullopt;
      block.push_back(std::move(*stmt));
    }
    advance();  // consume '}'
    return block;
  }

  std::optional<StmtPtr> parse_statement() {
    const SrcLoc loc = current_.loc;
    switch (current_.kind) {
      case Tok::kLet: {
        advance();
        auto name = parse_ident("variable name");
        if (!name) return std::nullopt;
        TypePtr declared;
        if (accept(Tok::kColon)) {
          declared = parse_type();
          if (declared == nullptr) return std::nullopt;
        }
        if (!expect(Tok::kAssign, "'='")) return std::nullopt;
        ExprPtr init = parse_expr();
        if (init == nullptr) return std::nullopt;
        // Block-terminated initializers read like declarations; the ';'
        // is optional after their '}' (matching 'spawn h { ... }').
        if (std::holds_alternative<ESpawnVec>(init->node) ||
            std::holds_alternative<EPipeline>(init->node)) {
          accept(Tok::kSemi);
        } else if (!expect(Tok::kSemi, "';'")) {
          return std::nullopt;
        }
        return make_stmt(SLet{*name, std::move(declared), std::move(init)},
                         loc);
      }
      case Tok::kReturn: {
        advance();
        ExprPtr value;
        if (!at(Tok::kSemi)) {
          value = parse_expr();
          if (value == nullptr) return std::nullopt;
        }
        if (!expect(Tok::kSemi, "';'")) return std::nullopt;
        return make_stmt(SReturn{std::move(value)}, loc);
      }
      case Tok::kIf:
        return parse_if();
      case Tok::kWhile: {
        advance();
        ExprPtr cond = parse_expr();
        if (cond == nullptr) return std::nullopt;
        auto body = parse_block();
        if (!body) return std::nullopt;
        return make_stmt(SWhile{std::move(cond), std::move(*body)}, loc);
      }
      case Tok::kSpawn: {
        advance();
        ExprPtr handle = parse_postfix();
        if (handle == nullptr) return std::nullopt;
        auto body = parse_block();
        if (!body) return std::nullopt;
        accept(Tok::kSemi);  // optional trailing ';'
        ExprPtr spawn = make_expr(ESpawn{std::move(handle), std::move(*body)},
                                  loc);
        return make_stmt(SExpr{std::move(spawn)}, loc);
      }
      case Tok::kPipeline: {
        ExprPtr pipe = parse_pipeline();
        if (pipe == nullptr) return std::nullopt;
        accept(Tok::kSemi);  // optional trailing ';'
        return make_stmt(SExpr{std::move(pipe)}, loc);
      }
      default: {
        // Assignment (IDENT '=' ...) or expression statement. The
        // distinction needs one token of lookahead after the identifier;
        // parse the expression and convert if it was a bare variable
        // followed by '='.
        ExprPtr expr = parse_expr();
        if (expr == nullptr) return std::nullopt;
        if (at(Tok::kAssign)) {
          const auto* var = std::get_if<EVar>(&expr->node);
          if (var == nullptr) {
            error("left-hand side of '=' must be a variable");
            return std::nullopt;
          }
          advance();
          ExprPtr value = parse_expr();
          if (value == nullptr) return std::nullopt;
          if (!expect(Tok::kSemi, "';'")) return std::nullopt;
          return make_stmt(SAssign{var->name, std::move(value)}, loc);
        }
        if (!expect(Tok::kSemi, "';' after expression")) return std::nullopt;
        return make_stmt(SExpr{std::move(expr)}, loc);
      }
    }
  }

  std::optional<StmtPtr> parse_if() {
    const SrcLoc loc = current_.loc;
    advance();  // 'if'
    ExprPtr cond = parse_expr();
    if (cond == nullptr) return std::nullopt;
    auto then_block = parse_block();
    if (!then_block) return std::nullopt;
    Block else_block;
    if (accept(Tok::kElse)) {
      if (at(Tok::kIf)) {
        auto nested = parse_if();
        if (!nested) return std::nullopt;
        else_block.push_back(std::move(*nested));
      } else {
        auto block = parse_block();
        if (!block) return std::nullopt;
        else_block = std::move(*block);
      }
    }
    return make_stmt(
        SIf{std::move(cond), std::move(*then_block), std::move(else_block)},
        loc);
  }

  // --- expressions ---

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (lhs != nullptr && at(Tok::kOrOr)) {
      const SrcLoc loc = current_.loc;
      advance();
      ExprPtr rhs = parse_and();
      if (rhs == nullptr) return nullptr;
      lhs = make_expr(EBinary{BinaryOp::kOr, std::move(lhs), std::move(rhs)},
                      loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (lhs != nullptr && at(Tok::kAndAnd)) {
      const SrcLoc loc = current_.loc;
      advance();
      ExprPtr rhs = parse_cmp();
      if (rhs == nullptr) return nullptr;
      lhs = make_expr(EBinary{BinaryOp::kAnd, std::move(lhs), std::move(rhs)},
                      loc);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    if (lhs == nullptr) return nullptr;
    BinaryOp op;
    switch (current_.kind) {
      case Tok::kEqEq: op = BinaryOp::kEq; break;
      case Tok::kNe: op = BinaryOp::kNe; break;
      case Tok::kLt: op = BinaryOp::kLt; break;
      case Tok::kLe: op = BinaryOp::kLe; break;
      case Tok::kGt: op = BinaryOp::kGt; break;
      case Tok::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;
    }
    const SrcLoc loc = current_.loc;
    advance();
    ExprPtr rhs = parse_add();
    if (rhs == nullptr) return nullptr;
    return make_expr(EBinary{op, std::move(lhs), std::move(rhs)}, loc);
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (lhs != nullptr && (at(Tok::kPlus) || at(Tok::kMinus))) {
      const BinaryOp op =
          at(Tok::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      const SrcLoc loc = current_.loc;
      advance();
      ExprPtr rhs = parse_mul();
      if (rhs == nullptr) return nullptr;
      lhs = make_expr(EBinary{op, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (lhs != nullptr &&
           (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent))) {
      BinaryOp op = BinaryOp::kMul;
      if (at(Tok::kSlash)) op = BinaryOp::kDiv;
      if (at(Tok::kPercent)) op = BinaryOp::kMod;
      const SrcLoc loc = current_.loc;
      advance();
      ExprPtr rhs = parse_unary();
      if (rhs == nullptr) return nullptr;
      lhs = make_expr(EBinary{op, std::move(lhs), std::move(rhs)}, loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const SrcLoc loc = current_.loc;
    if (accept(Tok::kMinus)) {
      ExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      return make_expr(EUnary{UnaryOp::kNeg, std::move(operand)}, loc);
    }
    if (accept(Tok::kBang)) {
      ExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      return make_expr(EUnary{UnaryOp::kNot, std::move(operand)}, loc);
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (expr != nullptr && (at(Tok::kDot) || at(Tok::kLBracket))) {
      const SrcLoc loc = current_.loc;
      if (accept(Tok::kLBracket)) {
        ExprPtr index = parse_expr();
        if (index == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        expr = make_expr(EIndex{std::move(expr), std::move(index)}, loc);
        continue;
      }
      advance();  // '.'
      if (accept(Tok::kTouch)) {
        if (!expect(Tok::kLParen, "'(' after '.touch'")) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        expr = make_expr(ETouch{std::move(expr)}, loc);
      } else if (accept(Tok::kSpawn)) {
        auto body = parse_block();
        if (!body) return nullptr;
        expr = make_expr(ESpawn{std::move(expr), std::move(*body)}, loc);
      } else {
        error("expected 'touch' or 'spawn' after '.'");
        return nullptr;
      }
    }
    return expr;
  }

  // pipeline { stage { ... } stage { ... } ... }
  ExprPtr parse_pipeline() {
    const SrcLoc loc = current_.loc;
    advance();  // 'pipeline'
    if (!expect(Tok::kLBrace, "'{' after 'pipeline'")) return nullptr;
    std::vector<Block> stages;
    while (!accept(Tok::kRBrace)) {
      if (!expect(Tok::kStage, "'stage' or '}'")) return nullptr;
      auto body = parse_block();
      if (!body) return nullptr;
      stages.push_back(std::move(*body));
    }
    if (stages.size() < 2) {
      diags_.error(loc, "a pipeline needs at least two stages");
      return nullptr;
    }
    return make_expr(EPipeline{std::move(stages)}, loc);
  }

  ExprPtr parse_primary() {
    const SrcLoc loc = current_.loc;
    switch (current_.kind) {
      case Tok::kInt: {
        const std::int64_t value = current_.int_value;
        advance();
        return make_expr(EIntLit{value}, loc);
      }
      case Tok::kString: {
        std::string value = current_.string_value;
        advance();
        return make_expr(EStringLit{std::move(value)}, loc);
      }
      case Tok::kTrue:
        advance();
        return make_expr(EBoolLit{true}, loc);
      case Tok::kFalse:
        advance();
        return make_expr(EBoolLit{false}, loc);
      case Tok::kNil:
        advance();
        return make_expr(ENilLit{}, loc);
      case Tok::kLParen: {
        advance();
        if (accept(Tok::kRParen)) return make_expr(EUnitLit{}, loc);
        ExprPtr inner = parse_expr();
        if (inner == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return inner;
      }
      case Tok::kNewFuture: {
        advance();
        if (!expect(Tok::kLBracket, "'[' after 'new_future'")) return nullptr;
        TypePtr element = parse_type();
        if (element == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        if (!expect(Tok::kLParen, "'('")) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return make_expr(ENewFuture{std::move(element)}, loc);
      }
      case Tok::kTouch: {
        advance();
        if (!expect(Tok::kLParen, "'(' after 'touch'")) return nullptr;
        ExprPtr handle = parse_expr();
        if (handle == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return make_expr(ETouch{std::move(handle)}, loc);
      }
      case Tok::kTouchAll: {
        advance();
        if (!expect(Tok::kLParen, "'(' after 'touch_all'")) return nullptr;
        ExprPtr handle = parse_expr();
        if (handle == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return make_expr(ETouchAll{std::move(handle)}, loc);
      }
      case Tok::kSpawnVec: {
        advance();
        if (!expect(Tok::kLBracket, "'[' after 'spawn_vec'")) return nullptr;
        TypePtr element = parse_type();
        if (element == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "']'")) return nullptr;
        ExprPtr width = parse_postfix();
        if (width == nullptr) return nullptr;
        auto body = parse_block();
        if (!body) return nullptr;
        return make_expr(
            ESpawnVec{std::move(element), std::move(width), std::move(*body)},
            loc);
      }
      case Tok::kPipeline:
        return parse_pipeline();
      case Tok::kIdent: {
        const Symbol name = Symbol::intern(current_.text);
        advance();
        if (accept(Tok::kLParen)) {
          std::vector<ExprPtr> args;
          if (!at(Tok::kRParen)) {
            for (;;) {
              ExprPtr arg = parse_expr();
              if (arg == nullptr) return nullptr;
              args.push_back(std::move(arg));
              if (!accept(Tok::kComma)) break;
            }
          }
          if (!expect(Tok::kRParen, "')'")) return nullptr;
          return make_expr(ECall{name, std::move(args)}, loc);
        }
        return make_expr(EVar{name}, loc);
      }
      default:
        error("expected an expression");
        return nullptr;
    }
  }

  template <typename Node>
  static ExprPtr make_expr(Node node, SrcLoc loc) {
    auto expr = std::make_unique<Expr>();
    expr->node = std::move(node);
    expr->loc = loc;
    return expr;
  }

  template <typename Node>
  static std::optional<StmtPtr> make_stmt(Node node, SrcLoc loc) {
    auto stmt = std::make_unique<Stmt>();
    stmt->node = std::move(node);
    stmt->loc = loc;
    return stmt;
  }

  Lexer lexer_;
  DiagnosticEngine& diags_;
  Token current_;
};

}  // namespace

std::string_view to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

std::optional<Program> parse_program(std::string_view source,
                                     DiagnosticEngine& diags) {
  Parser parser(source, diags);
  auto program = parser.parse();
  if (diags.has_errors()) return std::nullopt;
  return program;
}

Program parse_program_or_throw(std::string_view source) {
  DiagnosticEngine diags;
  auto program = parse_program(source, diags);
  if (!program) {
    throw std::runtime_error("FutLang parse error:\n" + diags.render());
  }
  return std::move(*program);
}

}  // namespace gtdl
