#include "gtdl/frontend/types.hpp"

#include "gtdl/support/overloaded.hpp"

namespace gtdl {
namespace ty {

namespace {
TypePtr make_prim(PrimKind kind) {
  return std::make_shared<const Type>(Type{TPrim{kind}});
}
}  // namespace

TypePtr intt() {
  static const TypePtr t = make_prim(PrimKind::kInt);
  return t;
}
TypePtr boolt() {
  static const TypePtr t = make_prim(PrimKind::kBool);
  return t;
}
TypePtr unit() {
  static const TypePtr t = make_prim(PrimKind::kUnit);
  return t;
}
TypePtr string() {
  static const TypePtr t = make_prim(PrimKind::kString);
  return t;
}
TypePtr list(TypePtr element) {
  return std::make_shared<const Type>(Type{TList{std::move(element)}});
}
TypePtr future(TypePtr element) {
  return std::make_shared<const Type>(Type{TFuture{std::move(element)}});
}
TypePtr fvec(TypePtr element) {
  return std::make_shared<const Type>(Type{TFvec{std::move(element)}});
}

}  // namespace ty

bool type_equal(const Type& a, const Type& b) {
  if (a.node.index() != b.node.index()) return false;
  return std::visit(
      Overloaded{
          [&](const TPrim& pa) {
            return pa.kind == std::get<TPrim>(b.node).kind;
          },
          [&](const TList& la) {
            return type_equal(*la.element, *std::get<TList>(b.node).element);
          },
          [&](const TFuture& fa) {
            return type_equal(*fa.element,
                              *std::get<TFuture>(b.node).element);
          },
          [&](const TFvec& fa) {
            return type_equal(*fa.element, *std::get<TFvec>(b.node).element);
          },
      },
      a.node);
}

bool is_future(const Type& t) {
  return std::holds_alternative<TFuture>(t.node);
}
bool is_fvec(const Type& t) { return std::holds_alternative<TFvec>(t.node); }
bool is_list(const Type& t) { return std::holds_alternative<TList>(t.node); }
bool is_prim(const Type& t, PrimKind kind) {
  const auto* p = std::get_if<TPrim>(&t.node);
  return p != nullptr && p->kind == kind;
}

TypePtr element_type(const Type& t) {
  if (const auto* l = std::get_if<TList>(&t.node)) return l->element;
  if (const auto* f = std::get_if<TFuture>(&t.node)) return f->element;
  if (const auto* v = std::get_if<TFvec>(&t.node)) return v->element;
  return nullptr;
}

std::string to_string(const Type& t) {
  return std::visit(
      Overloaded{
          [](const TPrim& p) -> std::string {
            switch (p.kind) {
              case PrimKind::kInt:
                return "int";
              case PrimKind::kBool:
                return "bool";
              case PrimKind::kUnit:
                return "unit";
              case PrimKind::kString:
                return "string";
            }
            return "?";
          },
          [](const TList& l) { return "list[" + to_string(*l.element) + "]"; },
          [](const TFuture& f) {
            return "future[" + to_string(*f.element) + "]";
          },
          [](const TFvec& f) { return "fvec[" + to_string(*f.element) + "]"; },
      },
      t.node);
}

}  // namespace gtdl
