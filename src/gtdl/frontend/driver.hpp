// Convenience pipeline: source text -> parsed AST -> type check -> graph
// type inference. Used by the CLI, the examples, the benches and the
// integration tests.

#pragma once

#include <optional>
#include <string_view>

#include "gtdl/frontend/ast.hpp"
#include "gtdl/frontend/infer.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

struct CompiledProgram {
  Program program;          // type-annotated AST
  InferredProgram inferred; // per-function graph types + program type
};

// Runs parse + typecheck + inference; nullopt (with diagnostics) on any
// failure.
[[nodiscard]] std::optional<CompiledProgram> compile_futlang(
    std::string_view source, DiagnosticEngine& diags,
    const InferOptions& options = {});

// Throwing variant for tests and examples.
[[nodiscard]] CompiledProgram compile_futlang_or_throw(
    std::string_view source, const InferOptions& options = {});

}  // namespace gtdl
