// FutLang lexer and parser.
//
// Grammar (EBNF; '#' starts a line comment):
//
//   program   := function*
//   function  := 'fun' IDENT '(' [param (',' param)*] ')' ['->' type] block
//   param     := IDENT ':' type
//   type      := 'int' | 'bool' | 'unit' | 'string'
//              | 'list' '[' type ']' | 'future' '[' type ']'
//   block     := '{' stmt* '}'
//   stmt      := 'let' IDENT [':' type] '=' expr ';'
//              | 'return' [expr] ';'
//              | 'if' expr block ['else' (block | if-stmt)]
//              | 'while' expr block
//              | 'spawn' postfix block [';']
//              | IDENT '=' expr ';'
//              | expr ';'
//   expr      := or
//   or        := and ('||' and)*
//   and       := cmp ('&&' cmp)*
//   cmp       := add [('==','!=','<','<=','>','>=') add]
//   add       := mul (('+'|'-') mul)*
//   mul       := unary (('*'|'/'|'%') unary)*
//   unary     := ('-'|'!') unary | postfix
//   postfix   := primary ('.' 'touch' '(' ')' | '.' 'spawn' block)*
//   primary   := INT | STRING | 'true' | 'false' | 'nil'
//              | '(' ')' | '(' expr ')'
//              | 'new_future' '[' type ']' '(' ')'
//              | 'touch' '(' expr ')'
//              | IDENT ['(' [expr (',' expr)*] ')']

#pragma once

#include <optional>
#include <string_view>

#include "gtdl/frontend/ast.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

// Parses a whole program; on error returns nullopt with diagnostics.
[[nodiscard]] std::optional<Program> parse_program(std::string_view source,
                                                   DiagnosticEngine& diags);

// Convenience for tests: parses or throws std::runtime_error.
[[nodiscard]] Program parse_program_or_throw(std::string_view source);

}  // namespace gtdl
