// FutLang type checker.
//
// Fills in Expr::type on every expression and validates:
//   * unique function names; `main` exists, takes no parameters, returns
//     unit
//   * no futures in return types, no future[future[..]] and no
//     list[future[..]] (graph inference tracks futures by identity, so
//     handles must flow through variables and arguments only)
//   * spawn/touch operate on future handles; spawn bodies return the
//     future's element type on every path
//   * the usual rules for operators, calls, conditionals, returns
//
// Builtins (T is any element type):
//   rand() -> int                     print(string) -> unit
//   int_to_string(int) -> string      concat(string, string) -> string
//   length(list[T]) -> int            head(list[T]) -> T
//   tail(list[T]) -> list[T]          cons(T, list[T]) -> list[T]
//   append(list[T], list[T]) -> list[T]
//   take(list[T], int) -> list[T]     drop(list[T], int) -> list[T]
//   range(int, int) -> list[int]

#pragma once

#include "gtdl/frontend/ast.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

// True if `name` names a FutLang builtin.
[[nodiscard]] bool is_builtin(Symbol name);

// Type-checks `program` in place. Returns false (with diagnostics) on any
// error.
[[nodiscard]] bool typecheck_program(Program& program,
                                     DiagnosticEngine& diags);

}  // namespace gtdl
