#include "gtdl/frontend/printer.hpp"

#include <string>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

std::string pad(unsigned indent) { return std::string(indent, ' '); }

std::string print_block(const Block& block, unsigned indent);

// Escapes exactly what lex_string un-escapes: \n \t \\ \".
std::string escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default: out += c; break;
    }
  }
  return out;
}

// The grammar slots that demand a postfix expression (an ESpawn handle,
// an EIndex base, an ESpawnVec width): anything else gets parenthesized,
// which parse_primary accepts.
bool is_postfix(const Expr& e) {
  return std::holds_alternative<EVar>(e.node) ||
         std::holds_alternative<EIntLit>(e.node) ||
         std::holds_alternative<ECall>(e.node) ||
         std::holds_alternative<EIndex>(e.node) ||
         std::holds_alternative<ETouch>(e.node);
}

std::string print_postfix(const Expr& e) {
  if (is_postfix(e)) return print_expr(e);
  return "(" + print_expr(e) + ")";
}

}  // namespace

std::string print_expr(const Expr& expr) {
  return std::visit(
      Overloaded{
          [](const EIntLit& e) { return std::to_string(e.value); },
          [](const EBoolLit& e) -> std::string {
            return e.value ? "true" : "false";
          },
          [](const EStringLit& e) {
            return "\"" + escape_string(e.value) + "\"";
          },
          [](const EUnitLit&) -> std::string { return "()"; },
          [](const ENilLit&) -> std::string { return "nil"; },
          [](const EVar& e) { return e.name.str(); },
          [](const ECall& e) {
            std::string out = e.callee.str() + "(";
            for (std::size_t i = 0; i < e.args.size(); ++i) {
              if (i > 0) out += ", ";
              out += print_expr(*e.args[i]);
            }
            return out + ")";
          },
          [](const ENewFuture& e) {
            return "new_future[" + to_string(*e.element) + "]()";
          },
          [](const ETouch& e) {
            return "touch(" + print_expr(*e.handle) + ")";
          },
          [](const ESpawn& e) {
            // Expression position: the postfix '.spawn' form. Statement
            // position is special-cased in print_stmt.
            return print_postfix(*e.handle) + ".spawn " +
                   print_block(e.body, 0);
          },
          [](const EBinary& e) {
            return "(" + print_expr(*e.lhs) + " " +
                   std::string(to_string(e.op)) + " " + print_expr(*e.rhs) +
                   ")";
          },
          [](const EUnary& e) {
            return "(" + std::string(e.op == UnaryOp::kNeg ? "-" : "!") +
                   print_expr(*e.operand) + ")";
          },
          [](const ESpawnVec& e) {
            return "spawn_vec[" + to_string(*e.element) + "] " +
                   print_postfix(*e.width) + " " + print_block(e.body, 0);
          },
          [](const ETouchAll& e) {
            return "touch_all(" + print_expr(*e.handle) + ")";
          },
          [](const EIndex& e) {
            return print_postfix(*e.handle) + "[" + print_expr(*e.index) +
                   "]";
          },
          [](const EPipeline& e) {
            std::string out = "pipeline { ";
            for (const Block& stage : e.stages) {
              out += "stage " + print_block(stage, 0) + " ";
            }
            return out + "}";
          },
      },
      expr.node);
}

std::string print_stmt(const Stmt& stmt, unsigned indent) {
  const std::string at = pad(indent);
  return std::visit(
      Overloaded{
          [&](const SLet& s) {
            std::string out = at + "let " + s.name.str();
            if (s.declared != nullptr) out += ": " + to_string(*s.declared);
            return out + " = " + print_expr(*s.init) + ";\n";
          },
          [&](const SAssign& s) {
            return at + s.name.str() + " = " + print_expr(*s.value) + ";\n";
          },
          [&](const SExpr& s) {
            // Statement-form spawn reads better than the postfix
            // expression form and matches what the generator emits.
            if (const auto* spawn = std::get_if<ESpawn>(&s.expr->node)) {
              return at + "spawn " + print_postfix(*spawn->handle) + " " +
                     print_block(spawn->body, indent) + "\n";
            }
            return at + print_expr(*s.expr) + ";\n";
          },
          [&](const SReturn& s) {
            if (s.value == nullptr) return at + "return;\n";
            return at + "return " + print_expr(*s.value) + ";\n";
          },
          [&](const SIf& s) {
            std::string out = at + "if " + print_expr(*s.cond) + " " +
                              print_block(s.then_block, indent);
            if (!s.else_block.empty()) {
              out += " else " + print_block(s.else_block, indent);
            }
            return out + "\n";
          },
          [&](const SWhile& s) {
            return at + "while " + print_expr(*s.cond) + " " +
                   print_block(s.body, indent) + "\n";
          },
      },
      stmt.node);
}

namespace {

std::string print_block(const Block& block, unsigned indent) {
  if (block.empty()) return "{ }";
  std::string out = "{\n";
  for (const StmtPtr& stmt : block) {
    out += print_stmt(*stmt, indent + 2);
  }
  return out + pad(indent) + "}";
}

}  // namespace

std::string print_function(const Function& function) {
  std::string out = "fun " + function.name.str() + "(";
  for (std::size_t i = 0; i < function.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += function.params[i].name.str() + ": " +
           to_string(*function.params[i].type);
  }
  out += ")";
  if (function.return_type != nullptr &&
      !is_prim(*function.return_type, PrimKind::kUnit)) {
    out += " -> " + to_string(*function.return_type);
  }
  return out + " " + print_block(function.body, 0) + "\n";
}

std::string print_program(const Program& program) {
  std::string out;
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    if (i > 0) out += "\n";
    out += print_function(program.functions[i]);
  }
  return out;
}

}  // namespace gtdl
