// Graph type inference for FutLang — the reimplementation of GML's role
// in the paper's pipeline (source program -> graph type).
//
// Inference follows the design the paper describes for GML:
//
//   * Every future handle is tracked by the vertex name it denotes. A
//     future-typed parameter p of function f denotes the Π-bound vertex
//     "f_p"; a local `let u = new_future[T]()` denotes a fresh vertex
//     that is ν-BOUND AT THE TOP OF THE FUNCTION BODY (GML hoists ν for
//     efficiency — the behavior that motivates §5's "new pushing").
//   * Statements compose with ⊕, conditionals become ∨, spawn h {B}
//     becomes G_B / u_h, touch(h) becomes ᵘ\, and a call becomes an
//     application G_callee[spawn-args; touch-args].
//   * A function's future parameters are classified as spawn- and/or
//     touch-parameters by how the body uses them — directly, or by
//     passing them into a classified position of a call. For recursive
//     functions this classification is a fixpoint computed by Mycroft
//     iteration; faithful to GML (paper footnote 3), the iteration count
//     is capped at TWO by default, so the §3 counterexamples with m >= 2
//     fail inference with a "did not reach a fixed point" error while
//     m = 1 infers fine. Raise `max_signature_iterations` to infer the
//     whole family (an extension the paper's authors shortcut).
//
// Restrictions (each reported with a clear diagnostic):
//   * functions may call only previously declared functions or themselves
//     (no mutual recursion);
//   * a `return` must be the last statement of its block, and an `if`
//     whose branches return must be the last statement of its block (so
//     the ⊕/∨ structure of the type matches the control flow exactly);
//   * `while` is not supported by inference (use recursion);
//   * every touched or spawned handle must be statically identifiable
//     (a single vertex — e.g. not two different handles merged by
//     reassignment under a conditional).

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "gtdl/frontend/ast.hpp"
#include "gtdl/gtype/gtype.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

struct InferOptions {
  // GML's cap: inference runs at most twice per recursive function; if
  // the signature has not stabilized, inference errors out.
  unsigned max_signature_iterations = 2;
};

// Per-future-parameter classification.
struct ParamUsage {
  bool spawned = false;
  bool touched = false;
  friend bool operator==(const ParamUsage&, const ParamUsage&) = default;
};

struct FunctionGraphInfo {
  Symbol name;
  // The function's full graph type: μγ.Πūf;ūt.(ν...body), Π...(ν...body),
  // or a plain graph for non-recursive functions without future params.
  GTypePtr gtype;
  bool recursive = false;
  // Indices into Function::params of future-typed parameters, in order.
  std::vector<std::size_t> future_params;
  // Classification aligned with future_params.
  std::vector<ParamUsage> usage;
  // Vertex names aligned with future_params.
  std::vector<Symbol> vertices;
  // How many Mycroft iterations the signature took to stabilize.
  unsigned iterations = 0;

  // Spawn-/touch-classified vertex vectors (Π binding order).
  [[nodiscard]] std::vector<Symbol> spawn_vertex_params() const;
  [[nodiscard]] std::vector<Symbol> touch_vertex_params() const;
  [[nodiscard]] bool has_classified_params() const;
};

struct InferredProgram {
  // main's graph type — the whole-program type the detectors analyze.
  GTypePtr program_gtype;
  std::unordered_map<Symbol, FunctionGraphInfo> functions;
};

// Precondition: `program` has passed typecheck_program. Returns nullopt
// with diagnostics on inference failure.
[[nodiscard]] std::optional<InferredProgram> infer_graph_types(
    const Program& program, DiagnosticEngine& diags,
    const InferOptions& options = {});

}  // namespace gtdl
