// FutLang pretty-printer: the inverse of parser.hpp, up to formatting.
//
// print_program emits surface syntax that parse_program accepts and that
// re-parses to a structurally identical AST (same statement/expression
// shapes; source locations and inferred types are not round-tripped).
// The fuzzing farm's shrinker depends on this: its reduction passes edit
// the AST and every candidate must be re-printable as a real program the
// whole pipeline (and a human reading a finding) can consume.
//
// Formatting discipline: two-space indentation, one statement per line,
// binary/unary expressions fully parenthesized (the grammar's primary
// rule accepts '(' expr ')', so precedence never has to be re-derived —
// a printed program is unambiguous by construction).

#pragma once

#include <string>

#include "gtdl/frontend/ast.hpp"

namespace gtdl {

[[nodiscard]] std::string print_program(const Program& program);
[[nodiscard]] std::string print_function(const Function& function);
[[nodiscard]] std::string print_stmt(const Stmt& stmt, unsigned indent = 0);
[[nodiscard]] std::string print_expr(const Expr& expr);

}  // namespace gtdl
