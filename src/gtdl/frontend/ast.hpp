// FutLang abstract syntax.
//
// Surface syntax (see parser.hpp for the grammar):
//
//   fun g(a: future[int], x: future[int]) {
//     let u = new_future[int]();
//     if rand() == 0 {
//       return;
//     } else {
//       touch(x);                 # or x.touch()
//       spawn a { return 42; }    # or a.spawn { ... }
//       g(u, u);
//       return;
//     }
//   }
//
// Expressions carry their source location for diagnostics; types are
// filled in by the type checker (Expr::type).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "gtdl/frontend/types.hpp"
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

enum class BinaryOp : unsigned char {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
enum class UnaryOp : unsigned char { kNeg, kNot };

[[nodiscard]] std::string_view to_string(BinaryOp op);

// --- Expressions ------------------------------------------------------------

struct EIntLit {
  std::int64_t value;
};
struct EBoolLit {
  bool value;
};
struct EStringLit {
  std::string value;
};
struct EUnitLit {};
// Polymorphic empty list; its type comes from the context (let annotation
// or parameter type).
struct ENilLit {};
struct EVar {
  Symbol name;
};
struct ECall {
  Symbol callee;
  std::vector<ExprPtr> args;
};
struct ENewFuture {
  TypePtr element;
};
// touch(h) / h.touch(): blocks until the future completes; evaluates to
// the future's value.
struct ETouch {
  ExprPtr handle;
};
// spawn h { ... } / h.spawn { ... }: installs the block as h's future
// thread. Unit-valued.
struct ESpawn {
  ExprPtr handle;
  Block body;
};
struct EBinary {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};
struct EUnary {
  UnaryOp op;
  ExprPtr operand;
};
// spawn_vec[T] n { ... }: creates AND spawns a vector of n futures, each
// running the block. Evaluates to fvec[T]; the graph type is a VecSpawn
// family, so n must be an integer literal for inference.
struct ESpawnVec {
  TypePtr element;
  ExprPtr width;
  Block body;
};
// touch_all(fs): touches every member in index order; evaluates to
// list[T] of the members' values (the TouchAll family touch).
struct ETouchAll {
  ExprPtr handle;
};
// fs[i]: the i-th member's handle, future[T]. Touching it is the indexed
// family touch; inference requires i to be an integer literal.
struct EIndex {
  ExprPtr handle;
  ExprPtr index;
};
// pipeline { stage { ... } stage { ... } ... }: each stage runs as a
// future that first waits for the previous stage (G₁ ▷ G₂ composition);
// the whole expression waits for the last stage. Unit-valued.
struct EPipeline {
  std::vector<Block> stages;
};

struct Expr {
  std::variant<EIntLit, EBoolLit, EStringLit, EUnitLit, ENilLit, EVar, ECall,
               ENewFuture, ETouch, ESpawn, EBinary, EUnary, ESpawnVec,
               ETouchAll, EIndex, EPipeline>
      node;
  SrcLoc loc;
  // Filled by the type checker.
  TypePtr type;
};

// --- Statements -------------------------------------------------------------

struct SLet {
  Symbol name;
  TypePtr declared;  // may be null (inferred from the initializer)
  ExprPtr init;
};
struct SAssign {
  Symbol name;
  ExprPtr value;
};
struct SExpr {
  ExprPtr expr;
};
struct SReturn {
  ExprPtr value;  // may be null (unit return)
};
struct SIf {
  ExprPtr cond;
  Block then_block;
  Block else_block;  // possibly empty
};
struct SWhile {
  ExprPtr cond;
  Block body;
};

struct Stmt {
  std::variant<SLet, SAssign, SExpr, SReturn, SIf, SWhile> node;
  SrcLoc loc;
};

// --- Declarations -----------------------------------------------------------

struct Param {
  Symbol name;
  TypePtr type;
  SrcLoc loc;
};

struct Function {
  Symbol name;
  std::vector<Param> params;
  TypePtr return_type;  // unit if omitted in source
  Block body;
  SrcLoc loc;
};

struct Program {
  std::vector<Function> functions;

  [[nodiscard]] const Function* find(Symbol name) const {
    for (const Function& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace gtdl
