#include "gtdl/frontend/interp.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <variant>

#include "gtdl/frontend/typecheck.hpp"
#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

GroundDeadlock InterpResult::graph_deadlock() const {
  if (graph == nullptr) return {};
  return find_ground_deadlock(*graph);
}

namespace {

struct FutureCell;

struct Value;
using ListPtr = std::shared_ptr<const std::vector<Value>>;
using FuturePtr = std::shared_ptr<FutureCell>;
// A spawn_vec family: the member handles in index order.
using FvecPtr = std::shared_ptr<const std::vector<FuturePtr>>;

struct Unit {};

struct Value {
  std::variant<Unit, std::int64_t, bool, std::string, ListPtr, FuturePtr,
               FvecPtr>
      v;

  static Value unit() { return {Unit{}}; }
  static Value of_int(std::int64_t x) { return {x}; }
  static Value of_bool(bool b) { return {b}; }
  static Value of_string(std::string s) { return {std::move(s)}; }
  static Value of_list(ListPtr l) { return {std::move(l)}; }
  static Value of_future(FuturePtr f) { return {std::move(f)}; }
  static Value of_fvec(FvecPtr f) { return {std::move(f)}; }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const ListPtr& as_list() const { return std::get<ListPtr>(v); }
  [[nodiscard]] const FuturePtr& as_future() const {
    return std::get<FuturePtr>(v);
  }
  [[nodiscard]] const FvecPtr& as_fvec() const { return std::get<FvecPtr>(v); }
};

// Mutable lexical scopes; spawn bodies capture the chain, so assignments
// inside a future body are visible to its creator and vice versa (the
// usual closure semantics).
struct EnvScope {
  std::unordered_map<Symbol, Value> vars;
  std::shared_ptr<EnvScope> parent;
};
using EnvPtr = std::shared_ptr<EnvScope>;

// Records one thread's sequence of graph-relevant events.
struct GraphBuilder {
  struct SpawnNode {
    Symbol vertex;
    std::shared_ptr<GraphBuilder> child;
  };
  struct TouchNode {
    Symbol vertex;
  };
  std::vector<std::variant<TouchNode, SpawnNode>> nodes;

  [[nodiscard]] GraphExprPtr freeze() const {
    std::vector<GraphExprPtr> pieces;
    pieces.reserve(nodes.size());
    for (const auto& node : nodes) {
      pieces.push_back(std::visit(
          Overloaded{
              [](const TouchNode& t) { return ge::touch(t.vertex); },
              [](const SpawnNode& s) {
                return ge::spawn(s.child->freeze(), s.vertex);
              },
          },
          node));
    }
    return pieces.empty() ? ge::singleton() : ge::seq_all(std::move(pieces));
  }
};

enum class FutureState : unsigned char {
  kUnspawned,
  kPending,
  kRunning,
  kDone,
};

struct FutureCell {
  Symbol vertex;
  FutureState state = FutureState::kUnspawned;
  const Block* body = nullptr;  // owned by the AST
  EnvPtr env;
  Value result = Value::unit();
  std::shared_ptr<GraphBuilder> graph = std::make_shared<GraphBuilder>();
  // Pipeline stages wait for the previous stage before running their
  // block (the ~p prefix of the ▷ desugaring); null for ordinary futures.
  FuturePtr pre_touch;
  SrcLoc pre_touch_loc;
};

struct DeadlockSignal {
  std::string reason;
};
struct RuntimeErrorSignal {
  std::string reason;
};

// Control-flow result of executing a block: either fell through or
// returned a value.
struct Flow {
  bool returned = false;
  Value value = Value::unit();
};

// The interpreter IS the dynamic futures scheduler for fdlc --run (the
// threaded FutureRuntime is a separate, library-level runtime), so its
// events publish under the "runtime" layer alongside it.
struct InterpMetrics {
  obs::Counter& executions;
  obs::Counter& futures_forced;
  obs::Counter& touches;
  obs::Counter& deadlocks;

  static InterpMetrics& get() {
    static InterpMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* unit,
                      const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "runtime", unit, help});
      };
      return new InterpMetrics{
          c("runtime.interp.executions", "runs",
            "programs executed by the canonical-schedule interpreter"),
          c("runtime.interp.futures_forced", "futures",
            "future bodies run to completion by the interpreter"),
          c("runtime.interp.touches", "touches",
            "touch operations executed by the interpreter"),
          c("runtime.interp.deadlocks", "events",
            "dynamic deadlocks signaled by the interpreter"),
      };
    }();
    return *m;
  }
};

class Interp {
 public:
  Interp(const Program& program, const InterpOptions& options)
      : program_(program), options_(options), rng_(options.seed) {
    thread_names_.push_back(Symbol::intern("main"));
  }

  InterpResult run() {
    InterpMetrics::get().executions.add();
    obs::Span span("runtime", "interp.execute");
    InterpResult result;
    auto main_builder = std::make_shared<GraphBuilder>();
    builders_.push_back(main_builder);
    const Function* main = program_.find(Symbol::intern("main"));
    try {
      if (main == nullptr) throw RuntimeErrorSignal{"no main function"};
      (void)call_function(*main, {});
      // End of program: run every still-pending future (in a real
      // parallel execution their threads would have run after spawn).
      force_all_pending();
      result.completed = true;
    } catch (const DeadlockSignal& dl) {
      InterpMetrics::get().deadlocks.add();
      result.deadlock = dl.reason;
    } catch (const RuntimeErrorSignal& err) {
      result.error = err.reason;
    }
    result.graph = main_builder->freeze();
    result.trace = trace_with_init(*result.graph, Symbol::intern("main"));
    result.output = std::move(output_);
    result.steps = steps_;
    result.budget_exhausted = budget_tripped_;
    return result;
  }

 private:
  // --- plumbing ---

  void step(SrcLoc loc) {
    if (++steps_ > options_.max_steps) {
      throw RuntimeErrorSignal{
          "execution step budget exhausted at line " +
          std::to_string(loc.line) +
          " (likely unbounded recursion; raise InterpOptions::max_steps)"};
    }
    // The --run watchdog: wall-clock/step budget shared with the caller.
    if (options_.budget != nullptr && options_.budget->checkpoint()) {
      budget_tripped_ = true;
      throw RuntimeErrorSignal{"execution aborted at line " +
                               std::to_string(loc.line) + ": " +
                               options_.budget->status().render()};
    }
  }

  GraphBuilder& builder() { return *builders_.back(); }

  // --- trace emission (--trace-graph; docs/TRACE_FORMAT.md) ---
  //
  // The record stream mirrors the GraphBuilder pushes one-to-one, so
  // ingesting the dump reconstructs exactly the graph freeze() returns.
  // `thread_names_` parallels `builders_`: the acting thread is the
  // future whose graph is currently being recorded.

  Symbol cur_thread() const { return thread_names_.back(); }

  void emit_spawn(Symbol vertex) {
    if (options_.graph_dump != nullptr) {
      options_.graph_dump->record_spawn(cur_thread(), vertex);
    }
  }

  void emit_touch(Symbol vertex, bool blocks) {
    if (options_.graph_dump != nullptr) {
      options_.graph_dump->record_touch(cur_thread(), vertex);
      // In the parallel semantics the toucher blocks whenever the value
      // is not already available; the canonical schedule runs the body
      // inline instead, but the waits-for fact is the same.
      if (blocks) options_.graph_dump->record_block(cur_thread(), vertex);
    }
  }

  void emit_resolve(Symbol vertex) {
    if (options_.graph_dump != nullptr) {
      options_.graph_dump->record_resolve(vertex);
    }
  }

  std::int64_t next_rand() {
    if (rand_index_ < options_.rand_script.size()) {
      return options_.rand_script[rand_index_++];
    }
    rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::int64_t>((rng_ >> 33) & 0x7fffffffull);
  }

  static Value lookup(const EnvPtr& env, Symbol name, SrcLoc loc) {
    for (EnvScope* scope = env.get(); scope != nullptr;
         scope = scope->parent.get()) {
      auto it = scope->vars.find(name);
      if (it != scope->vars.end()) return it->second;
    }
    throw RuntimeErrorSignal{"unbound variable '" + name.str() +
                             "' at line " + std::to_string(loc.line)};
  }

  static void assign(const EnvPtr& env, Symbol name, Value value,
                     SrcLoc loc) {
    for (EnvScope* scope = env.get(); scope != nullptr;
         scope = scope->parent.get()) {
      auto it = scope->vars.find(name);
      if (it != scope->vars.end()) {
        it->second = std::move(value);
        return;
      }
    }
    throw RuntimeErrorSignal{"assignment to unbound variable '" +
                             name.str() + "' at line " +
                             std::to_string(loc.line)};
  }

  // --- futures ---

  void force(const FuturePtr& cell) {
    InterpMetrics::get().futures_forced.add();
    obs::Span span("runtime", obs::trace_enabled()
                                  ? "force:" + cell->vertex.str()
                                  : std::string());
    cell->state = FutureState::kRunning;
    builders_.push_back(cell->graph);
    thread_names_.push_back(cell->vertex);
    ++call_depth_;
    if (call_depth_ > options_.max_call_depth) {
      throw RuntimeErrorSignal{"call depth budget exhausted while forcing "
                               "futures"};
    }
    // A pipeline stage blocks on its predecessor first; the touch records
    // into THIS cell's graph (the stage body is ~p ; G).
    if (cell->pre_touch != nullptr) {
      (void)touch(cell->pre_touch, cell->pre_touch_loc);
    }
    auto inner = std::make_shared<EnvScope>();
    inner->parent = cell->env;
    const Flow flow = exec_block(*cell->body, inner);
    cell->result = flow.value;
    cell->state = FutureState::kDone;
    emit_resolve(cell->vertex);
    --call_depth_;
    thread_names_.pop_back();
    builders_.pop_back();
  }

  void force_all_pending() {
    // Forcing can register more futures; iterate to quiescence.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < registered_.size(); ++i) {
        const FuturePtr cell = registered_[i];
        if (cell->state == FutureState::kPending) {
          force(cell);
          progress = true;
        }
      }
    }
  }

  Value touch(const FuturePtr& cell, SrcLoc loc) {
    InterpMetrics::get().touches.add();
    if (obs::trace_enabled()) {
      obs::emit_instant("runtime", "touch:" + cell->vertex.str());
    }
    builder().nodes.push_back(GraphBuilder::TouchNode{cell->vertex});
    emit_touch(cell->vertex, cell->state != FutureState::kDone);
    switch (cell->state) {
      case FutureState::kDone:
        return cell->result;
      case FutureState::kRunning:
        throw DeadlockSignal{
            "deadlock: cyclic wait on future '" + cell->vertex.str() +
            "' (line " + std::to_string(loc.line) +
            "): the future is already blocked further down this chain"};
      case FutureState::kPending:
        force(cell);
        return cell->result;
      case FutureState::kUnspawned: {
        // Another (pending) future thread might perform the spawn; give
        // every runnable thread a chance before declaring a deadlock.
        // (In the parallel semantics the touch simply blocks while others
        // run.)
        bool progress = true;
        while (cell->state == FutureState::kUnspawned && progress) {
          progress = false;
          for (std::size_t i = 0; i < registered_.size(); ++i) {
            const FuturePtr other = registered_[i];
            if (other->state == FutureState::kPending) {
              force(other);
              progress = true;
              if (cell->state != FutureState::kUnspawned) break;
            }
          }
        }
        if (cell->state == FutureState::kDone) return cell->result;
        if (cell->state == FutureState::kPending) {
          force(cell);
          return cell->result;
        }
        throw DeadlockSignal{
            "deadlock: touch of future '" + cell->vertex.str() + "' (line " +
            std::to_string(loc.line) +
            ") blocks forever: no thread ever spawns it"};
      }
    }
    throw RuntimeErrorSignal{"corrupt future state"};
  }

  // --- execution ---

  Value call_function(const Function& fn, std::vector<Value> args) {
    ++call_depth_;
    if (call_depth_ > options_.max_call_depth) {
      throw RuntimeErrorSignal{
          "call depth budget exhausted in '" + fn.name.str() +
          "' (likely unbounded recursion; raise "
          "InterpOptions::max_call_depth)"};
    }
    auto scope = std::make_shared<EnvScope>();
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      scope->vars.emplace(fn.params[i].name, std::move(args[i]));
    }
    const Flow flow = exec_block(fn.body, scope);
    --call_depth_;
    return flow.returned ? flow.value : Value::unit();
  }

  Flow exec_block(const Block& block, const EnvPtr& env) {
    auto scope = std::make_shared<EnvScope>();
    scope->parent = env;
    for (const StmtPtr& stmt : block) {
      Flow flow = exec_stmt(*stmt, scope);
      if (flow.returned) return flow;
    }
    return {};
  }

  Flow exec_stmt(const Stmt& stmt, const EnvPtr& env) {
    step(stmt.loc);
    return std::visit(
        Overloaded{
            [&](const SLet& node) {
              env->vars[node.name] = eval(*node.init, env);
              return Flow{};
            },
            [&](const SAssign& node) {
              assign(env, node.name, eval(*node.value, env), stmt.loc);
              return Flow{};
            },
            [&](const SExpr& node) {
              (void)eval(*node.expr, env);
              return Flow{};
            },
            [&](const SReturn& node) {
              Flow flow;
              flow.returned = true;
              if (node.value != nullptr) flow.value = eval(*node.value, env);
              return flow;
            },
            [&](const SIf& node) {
              const bool cond = eval(*node.cond, env).as_bool();
              return exec_block(cond ? node.then_block : node.else_block,
                                env);
            },
            [&](const SWhile& node) {
              while (eval(*node.cond, env).as_bool()) {
                step(stmt.loc);
                Flow flow = exec_block(node.body, env);
                if (flow.returned) return flow;
              }
              return Flow{};
            },
        },
        stmt.node);
  }

  Value eval(const Expr& expr, const EnvPtr& env) {
    step(expr.loc);
    return std::visit(
        Overloaded{
            [&](const EIntLit& node) { return Value::of_int(node.value); },
            [&](const EBoolLit& node) { return Value::of_bool(node.value); },
            [&](const EStringLit& node) {
              return Value::of_string(node.value);
            },
            [&](const EUnitLit&) { return Value::unit(); },
            [&](const ENilLit&) {
              return Value::of_list(
                  std::make_shared<const std::vector<Value>>());
            },
            [&](const EVar& node) { return lookup(env, node.name, expr.loc); },
            [&](const ECall& node) { return eval_call(expr, node, env); },
            [&](const ENewFuture&) {
              auto cell = std::make_shared<FutureCell>();
              cell->vertex = Symbol::fresh("f");
              return Value::of_future(std::move(cell));
            },
            [&](const ETouch& node) {
              const Value handle = eval(*node.handle, env);
              return touch(handle.as_future(), expr.loc);
            },
            [&](const ESpawn& node) {
              const Value handle = eval(*node.handle, env);
              const FuturePtr& cell = handle.as_future();
              if (cell->state != FutureState::kUnspawned) {
                throw RuntimeErrorSignal{
                    "future '" + cell->vertex.str() +
                    "' spawned twice (line " + std::to_string(expr.loc.line) +
                    ")"};
              }
              cell->state = FutureState::kPending;
              cell->body = &node.body;
              cell->env = env;
              registered_.push_back(cell);
              builder().nodes.push_back(
                  GraphBuilder::SpawnNode{cell->vertex, cell->graph});
              emit_spawn(cell->vertex);
              return Value::unit();
            },
            [&](const ESpawnVec& node) {
              const std::int64_t width = eval(*node.width, env).as_int();
              if (width < 0) {
                throw RuntimeErrorSignal{
                    "spawn_vec width is negative (line " +
                    std::to_string(expr.loc.line) + ")"};
              }
              const Symbol family = Symbol::fresh("fs");
              auto members = std::make_shared<std::vector<FuturePtr>>();
              members->reserve(static_cast<std::size_t>(width));
              for (std::int64_t i = 0; i < width; ++i) {
                auto cell = std::make_shared<FutureCell>();
                cell->vertex = Symbol::intern(family.str() + "@" +
                                              std::to_string(i));
                cell->state = FutureState::kPending;
                cell->body = &node.body;
                cell->env = env;
                registered_.push_back(cell);
                builder().nodes.push_back(
                    GraphBuilder::SpawnNode{cell->vertex, cell->graph});
                emit_spawn(cell->vertex);
                members->push_back(std::move(cell));
              }
              return Value::of_fvec(std::move(members));
            },
            [&](const ETouchAll& node) {
              const Value handle = eval(*node.handle, env);
              const FvecPtr& members = handle.as_fvec();
              std::vector<Value> values;
              values.reserve(members->size());
              for (const FuturePtr& cell : *members) {
                values.push_back(touch(cell, expr.loc));
              }
              return Value::of_list(std::make_shared<const std::vector<Value>>(
                  std::move(values)));
            },
            [&](const EIndex& node) {
              const Value handle = eval(*node.handle, env);
              const std::int64_t index = eval(*node.index, env).as_int();
              const FvecPtr& members = handle.as_fvec();
              if (index < 0 ||
                  index >= static_cast<std::int64_t>(members->size())) {
                throw RuntimeErrorSignal{
                    "fvec index " + std::to_string(index) +
                    " out of bounds for width " +
                    std::to_string(members->size()) + " (line " +
                    std::to_string(expr.loc.line) + ")"};
              }
              return Value::of_future((*members)[static_cast<std::size_t>(
                  index)]);
            },
            [&](const EPipeline& node) {
              // The ▷ desugaring, executed directly: spawn each stage with
              // a wait on its predecessor, then touch the final stage.
              FuturePtr prev;
              FuturePtr last;
              for (const Block& stage : node.stages) {
                auto cell = std::make_shared<FutureCell>();
                cell->vertex = Symbol::fresh("stg");
                cell->state = FutureState::kPending;
                cell->body = &stage;
                cell->env = env;
                cell->pre_touch = prev;
                cell->pre_touch_loc = expr.loc;
                registered_.push_back(cell);
                builder().nodes.push_back(
                    GraphBuilder::SpawnNode{cell->vertex, cell->graph});
                emit_spawn(cell->vertex);
                prev = cell;
                last = std::move(cell);
              }
              if (last != nullptr) (void)touch(last, expr.loc);
              return Value::unit();
            },
            [&](const EBinary& node) { return eval_binary(expr, node, env); },
            [&](const EUnary& node) {
              const Value operand = eval(*node.operand, env);
              if (node.op == UnaryOp::kNeg) {
                return Value::of_int(-operand.as_int());
              }
              return Value::of_bool(!operand.as_bool());
            },
        },
        expr.node);
  }

  Value eval_binary(const Expr& expr, const EBinary& node, const EnvPtr& env) {
    // && and || short-circuit.
    if (node.op == BinaryOp::kAnd) {
      return Value::of_bool(eval(*node.lhs, env).as_bool() &&
                            eval(*node.rhs, env).as_bool());
    }
    if (node.op == BinaryOp::kOr) {
      return Value::of_bool(eval(*node.lhs, env).as_bool() ||
                            eval(*node.rhs, env).as_bool());
    }
    const Value lhs = eval(*node.lhs, env);
    const Value rhs = eval(*node.rhs, env);
    switch (node.op) {
      case BinaryOp::kAdd:
        return Value::of_int(lhs.as_int() + rhs.as_int());
      case BinaryOp::kSub:
        return Value::of_int(lhs.as_int() - rhs.as_int());
      case BinaryOp::kMul:
        return Value::of_int(lhs.as_int() * rhs.as_int());
      case BinaryOp::kDiv:
        if (rhs.as_int() == 0) {
          throw RuntimeErrorSignal{"division by zero at line " +
                                   std::to_string(expr.loc.line)};
        }
        return Value::of_int(lhs.as_int() / rhs.as_int());
      case BinaryOp::kMod:
        if (rhs.as_int() == 0) {
          throw RuntimeErrorSignal{"modulo by zero at line " +
                                   std::to_string(expr.loc.line)};
        }
        return Value::of_int(lhs.as_int() % rhs.as_int());
      case BinaryOp::kEq:
        return Value::of_bool(values_equal(lhs, rhs));
      case BinaryOp::kNe:
        return Value::of_bool(!values_equal(lhs, rhs));
      case BinaryOp::kLt:
        return Value::of_bool(lhs.as_int() < rhs.as_int());
      case BinaryOp::kLe:
        return Value::of_bool(lhs.as_int() <= rhs.as_int());
      case BinaryOp::kGt:
        return Value::of_bool(lhs.as_int() > rhs.as_int());
      case BinaryOp::kGe:
        return Value::of_bool(lhs.as_int() >= rhs.as_int());
      default:
        throw RuntimeErrorSignal{"corrupt binary operator"};
    }
  }

  static bool values_equal(const Value& a, const Value& b) {
    if (a.v.index() != b.v.index()) return false;
    return std::visit(
        Overloaded{
            [](const Unit&) { return true; },
            [&](std::int64_t x) { return x == b.as_int(); },
            [&](bool x) { return x == b.as_bool(); },
            [&](const std::string& x) { return x == b.as_string(); },
            [](const ListPtr&) { return false; },
            [](const FuturePtr&) { return false; },
            [](const FvecPtr&) { return false; },
        },
        a.v);
  }

  Value eval_call(const Expr& expr, const ECall& node, const EnvPtr& env) {
    std::vector<Value> args;
    args.reserve(node.args.size());
    for (const ExprPtr& arg : node.args) args.push_back(eval(*arg, env));
    if (is_builtin(node.callee)) {
      return eval_builtin(expr, node.callee, std::move(args));
    }
    const Function* fn = program_.find(node.callee);
    if (fn == nullptr) {
      throw RuntimeErrorSignal{"call to unknown function '" +
                               node.callee.str() + "'"};
    }
    return call_function(*fn, std::move(args));
  }

  Value eval_builtin(const Expr& expr, Symbol name, std::vector<Value> args) {
    const std::string_view n = name.view();
    if (n == "rand") return Value::of_int(next_rand());
    if (n == "print") {
      output_ += args[0].as_string();
      output_ += '\n';
      return Value::unit();
    }
    if (n == "int_to_string") {
      return Value::of_string(std::to_string(args[0].as_int()));
    }
    if (n == "concat") {
      return Value::of_string(args[0].as_string() + args[1].as_string());
    }
    if (n == "length") {
      return Value::of_int(static_cast<std::int64_t>(args[0].as_list()->size()));
    }
    if (n == "head") {
      const ListPtr& list = args[0].as_list();
      if (list->empty()) {
        throw RuntimeErrorSignal{"head of empty list at line " +
                                 std::to_string(expr.loc.line)};
      }
      return list->front();
    }
    if (n == "tail") {
      const ListPtr& list = args[0].as_list();
      if (list->empty()) {
        throw RuntimeErrorSignal{"tail of empty list at line " +
                                 std::to_string(expr.loc.line)};
      }
      return Value::of_list(std::make_shared<const std::vector<Value>>(
          list->begin() + 1, list->end()));
    }
    if (n == "cons") {
      std::vector<Value> out;
      const ListPtr& list = args[1].as_list();
      out.reserve(list->size() + 1);
      out.push_back(args[0]);
      out.insert(out.end(), list->begin(), list->end());
      return Value::of_list(
          std::make_shared<const std::vector<Value>>(std::move(out)));
    }
    if (n == "append") {
      const ListPtr& a = args[0].as_list();
      const ListPtr& b = args[1].as_list();
      std::vector<Value> out;
      out.reserve(a->size() + b->size());
      out.insert(out.end(), a->begin(), a->end());
      out.insert(out.end(), b->begin(), b->end());
      return Value::of_list(
          std::make_shared<const std::vector<Value>>(std::move(out)));
    }
    if (n == "take" || n == "drop") {
      const ListPtr& list = args[0].as_list();
      const std::size_t k = static_cast<std::size_t>(
          std::max<std::int64_t>(0, args[1].as_int()));
      const std::size_t split = std::min(k, list->size());
      if (n == "take") {
        return Value::of_list(std::make_shared<const std::vector<Value>>(
            list->begin(), list->begin() + static_cast<std::ptrdiff_t>(split)));
      }
      return Value::of_list(std::make_shared<const std::vector<Value>>(
          list->begin() + static_cast<std::ptrdiff_t>(split), list->end()));
    }
    if (n == "range") {
      std::vector<Value> out;
      for (std::int64_t i = args[0].as_int(); i < args[1].as_int(); ++i) {
        out.push_back(Value::of_int(i));
      }
      return Value::of_list(
          std::make_shared<const std::vector<Value>>(std::move(out)));
    }
    throw RuntimeErrorSignal{"unknown builtin '" + name.str() + "'"};
  }

  const Program& program_;
  const InterpOptions& options_;
  std::uint64_t rng_;
  std::size_t rand_index_ = 0;
  std::size_t steps_ = 0;
  bool budget_tripped_ = false;
  std::size_t call_depth_ = 0;
  std::string output_;
  std::vector<std::shared_ptr<GraphBuilder>> builders_;
  std::vector<Symbol> thread_names_;  // parallels builders_
  std::vector<FuturePtr> registered_;
};

}  // namespace

InterpResult interpret(const Program& program, const InterpOptions& options) {
  Interp interp(program, options);
  return interp.run();
}

}  // namespace gtdl
