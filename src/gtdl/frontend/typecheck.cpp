#include "gtdl/frontend/typecheck.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

const std::unordered_set<std::string_view>& builtin_names() {
  static const std::unordered_set<std::string_view> names{
      "rand",   "print", "int_to_string", "concat", "length", "head",
      "tail",   "cons",  "append",        "take",   "drop",   "range",
  };
  return names;
}

class Checker {
 public:
  Checker(Program& program, DiagnosticEngine& diags)
      : program_(program), diags_(diags) {}

  bool run() {
    if (!collect_signatures()) return false;
    for (Function& fn : program_.functions) check_function(fn);
    check_main();
    return !diags_.has_errors();
  }

 private:
  struct Scope {
    std::unordered_map<Symbol, TypePtr> vars;
  };

  bool collect_signatures() {
    std::unordered_set<Symbol> seen;
    for (const Function& fn : program_.functions) {
      if (is_builtin(fn.name)) {
        diags_.error(fn.loc, "function '" + fn.name.str() +
                                 "' shadows a builtin");
      }
      if (!seen.insert(fn.name).second) {
        diags_.error(fn.loc,
                     "duplicate function name '" + fn.name.str() + "'");
      }
      if (is_future(*fn.return_type) || is_fvec(*fn.return_type)) {
        diags_.error(fn.loc, "function '" + fn.name.str() +
                                 "' returns a future; graph inference "
                                 "cannot track escaping handles");
      }
      std::unordered_set<Symbol> param_names;
      for (const Param& p : fn.params) {
        if (!param_names.insert(p.name).second) {
          diags_.error(p.loc, "duplicate parameter '" + p.name.str() + "'");
        }
        // Touch families stay function-local: Π binders carry scalar
        // vertices only, so an fvec crossing a call boundary would have
        // no graph-type binding form.
        if (is_fvec(*p.type)) {
          diags_.error(p.loc, "fvec parameters are not supported; pass "
                              "individual future handles instead");
        }
        check_type_wellformed(*p.type, p.loc);
      }
    }
    return !diags_.has_errors();
  }

  void check_type_wellformed(const Type& t, SrcLoc loc) {
    std::visit(Overloaded{
                   [](const TPrim&) {},
                   [&](const TList& l) {
                     if (is_future(*l.element) || is_fvec(*l.element)) {
                       diags_.error(loc,
                                    "list of futures is not supported "
                                    "(handles must stay in variables)");
                     }
                     check_type_wellformed(*l.element, loc);
                   },
                   [&](const TFuture& f) {
                     if (is_future(*f.element) || is_fvec(*f.element)) {
                       diags_.error(loc, "future of future is not supported");
                     }
                     if (is_list(*f.element) ||
                         !std::holds_alternative<TPrim>(f.element->node)) {
                       // futures of lists are fine; recurse for nesting
                     }
                     check_type_wellformed(*f.element, loc);
                   },
                   [&](const TFvec& f) {
                     // Family members hold first-order values only; handle
                     // types inside a family would let members escape the
                     // VecSpawn discipline.
                     if (!std::holds_alternative<TPrim>(f.element->node)) {
                       diags_.error(loc,
                                    "fvec elements must be primitive types");
                     }
                     check_type_wellformed(*f.element, loc);
                   },
               },
               t.node);
  }

  void check_main() {
    const Function* main = program_.find(Symbol::intern("main"));
    if (main == nullptr) {
      diags_.error("program has no 'main' function");
      return;
    }
    if (!main->params.empty()) {
      diags_.error(main->loc, "'main' must take no parameters");
    }
    if (!is_prim(*main->return_type, PrimKind::kUnit)) {
      diags_.error(main->loc, "'main' must return unit");
    }
  }

  void check_function(Function& fn) {
    scopes_.clear();
    scopes_.emplace_back();
    for (const Param& p : fn.params) {
      scopes_.back().vars.emplace(p.name, p.type);
    }
    return_types_.assign(1, fn.return_type);
    check_block(fn.body);
    if (!is_prim(*fn.return_type, PrimKind::kUnit) &&
        !block_returns(fn.body)) {
      diags_.error(fn.loc, "function '" + fn.name.str() +
                               "' must return a value on every path");
    }
    return_types_.clear();
  }

  // --- scope helpers ---

  TypePtr lookup(Symbol name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->vars.find(name);
      if (found != it->vars.end()) return found->second;
    }
    return nullptr;
  }

  void check_block(Block& block) {
    scopes_.emplace_back();
    for (StmtPtr& stmt : block) check_stmt(*stmt);
    scopes_.pop_back();
  }

  static bool block_returns(const Block& block) {
    for (const StmtPtr& stmt : block) {
      if (std::holds_alternative<SReturn>(stmt->node)) return true;
      if (const auto* sif = std::get_if<SIf>(&stmt->node)) {
        if (!sif->else_block.empty() && block_returns(sif->then_block) &&
            block_returns(sif->else_block)) {
          return true;
        }
      }
    }
    return false;
  }

  // --- statements ---

  void check_stmt(Stmt& stmt) {
    std::visit(
        Overloaded{
            [&](SLet& node) {
              TypePtr type = check_expr(*node.init, node.declared);
              if (node.declared != nullptr) {
                if (type != nullptr && !type_equal(*type, *node.declared)) {
                  diags_.error(stmt.loc,
                               "initializer type " + to_string(*type) +
                                   " does not match declared type " +
                                   to_string(*node.declared));
                }
                type = node.declared;
              }
              if (type == nullptr) return;
              check_type_wellformed(*type, stmt.loc);
              scopes_.back().vars[node.name] = type;
            },
            [&](SAssign& node) {
              const TypePtr var_type = lookup(node.name);
              if (var_type == nullptr) {
                diags_.error(stmt.loc, "assignment to undeclared variable '" +
                                           node.name.str() + "'");
                return;
              }
              const TypePtr value_type = check_expr(*node.value, var_type);
              if (value_type != nullptr &&
                  !type_equal(*value_type, *var_type)) {
                diags_.error(stmt.loc, "cannot assign " +
                                           to_string(*value_type) + " to '" +
                                           node.name.str() + "' of type " +
                                           to_string(*var_type));
              }
            },
            [&](SExpr& node) { check_expr(*node.expr, nullptr); },
            [&](SReturn& node) {
              const TypePtr expected = return_types_.back();
              if (node.value == nullptr) {
                if (!is_prim(*expected, PrimKind::kUnit)) {
                  diags_.error(stmt.loc, "expected a return value of type " +
                                             to_string(*expected));
                }
                return;
              }
              const TypePtr actual = check_expr(*node.value, expected);
              if (actual != nullptr && !type_equal(*actual, *expected)) {
                diags_.error(stmt.loc, "return type mismatch: expected " +
                                           to_string(*expected) + ", got " +
                                           to_string(*actual));
              }
            },
            [&](SIf& node) {
              expect_type(*node.cond, ty::boolt(), "if condition");
              check_block(node.then_block);
              check_block(node.else_block);
            },
            [&](SWhile& node) {
              expect_type(*node.cond, ty::boolt(), "while condition");
              check_block(node.body);
            },
        },
        stmt.node);
  }

  void expect_type(Expr& expr, const TypePtr& expected, const char* what) {
    const TypePtr actual = check_expr(expr, expected);
    if (actual != nullptr && !type_equal(*actual, *expected)) {
      diags_.error(expr.loc, std::string(what) + " must have type " +
                                 to_string(*expected) + ", got " +
                                 to_string(*actual));
    }
  }

  // --- expressions ---

  // Checks `expr` with an optional expected type (used to give `nil` a
  // type); returns the expression's type or nullptr after reporting.
  TypePtr check_expr(Expr& expr, const TypePtr& expected) {
    const TypePtr type = std::visit(
        Overloaded{
            [&](EIntLit&) { return ty::intt(); },
            [&](EBoolLit&) { return ty::boolt(); },
            [&](EStringLit&) { return ty::string(); },
            [&](EUnitLit&) { return ty::unit(); },
            [&](ENilLit&) -> TypePtr {
              if (expected == nullptr || !is_list(*expected)) {
                diags_.error(expr.loc,
                             "cannot infer the element type of 'nil' here; "
                             "add a type annotation");
                return nullptr;
              }
              return expected;
            },
            [&](EVar& node) -> TypePtr {
              const TypePtr t = lookup(node.name);
              if (t == nullptr) {
                diags_.error(expr.loc,
                             "unbound variable '" + node.name.str() + "'");
              }
              return t;
            },
            [&](ECall& node) { return check_call(expr, node); },
            [&](ENewFuture& node) -> TypePtr {
              const TypePtr t = ty::future(node.element);
              check_type_wellformed(*t, expr.loc);
              return t;
            },
            [&](ETouch& node) -> TypePtr {
              const TypePtr handle = check_expr(*node.handle, nullptr);
              if (handle == nullptr) return nullptr;
              if (!is_future(*handle)) {
                diags_.error(expr.loc, "touch expects a future handle, got " +
                                           to_string(*handle));
                return nullptr;
              }
              return element_type(*handle);
            },
            [&](ESpawn& node) -> TypePtr {
              const TypePtr handle = check_expr(*node.handle, nullptr);
              if (handle == nullptr) return nullptr;
              if (!is_future(*handle)) {
                diags_.error(expr.loc, "spawn expects a future handle, got " +
                                           to_string(*handle));
                return nullptr;
              }
              const TypePtr element = element_type(*handle);
              return_types_.push_back(element);
              check_block(node.body);
              if (!is_prim(*element, PrimKind::kUnit) &&
                  !block_returns(node.body)) {
                diags_.error(expr.loc,
                             "spawn body must return a value of type " +
                                 to_string(*element) + " on every path");
              }
              return_types_.pop_back();
              return ty::unit();
            },
            [&](ESpawnVec& node) -> TypePtr {
              const TypePtr t = ty::fvec(node.element);
              check_type_wellformed(*t, expr.loc);
              expect_type(*node.width, ty::intt(), "spawn_vec width");
              return_types_.push_back(node.element);
              check_block(node.body);
              if (!is_prim(*node.element, PrimKind::kUnit) &&
                  !block_returns(node.body)) {
                diags_.error(expr.loc,
                             "spawn_vec body must return a value of type " +
                                 to_string(*node.element) + " on every path");
              }
              return_types_.pop_back();
              return t;
            },
            [&](ETouchAll& node) -> TypePtr {
              const TypePtr handle = check_expr(*node.handle, nullptr);
              if (handle == nullptr) return nullptr;
              if (!is_fvec(*handle)) {
                diags_.error(expr.loc,
                             "touch_all expects an fvec handle, got " +
                                 to_string(*handle));
                return nullptr;
              }
              return ty::list(element_type(*handle));
            },
            [&](EIndex& node) -> TypePtr {
              const TypePtr handle = check_expr(*node.handle, nullptr);
              expect_type(*node.index, ty::intt(), "fvec index");
              if (handle == nullptr) return nullptr;
              if (!is_fvec(*handle)) {
                diags_.error(expr.loc, "indexing expects an fvec, got " +
                                           to_string(*handle));
                return nullptr;
              }
              return ty::future(element_type(*handle));
            },
            [&](EPipeline& node) -> TypePtr {
              for (Block& stage : node.stages) {
                return_types_.push_back(ty::unit());
                check_block(stage);
                return_types_.pop_back();
              }
              return ty::unit();
            },
            [&](EBinary& node) { return check_binary(expr, node); },
            [&](EUnary& node) -> TypePtr {
              const TypePtr operand = check_expr(*node.operand, nullptr);
              if (operand == nullptr) return nullptr;
              if (node.op == UnaryOp::kNeg) {
                if (!is_prim(*operand, PrimKind::kInt)) {
                  diags_.error(expr.loc, "unary '-' expects int");
                  return nullptr;
                }
                return ty::intt();
              }
              if (!is_prim(*operand, PrimKind::kBool)) {
                diags_.error(expr.loc, "'!' expects bool");
                return nullptr;
              }
              return ty::boolt();
            },
        },
        expr.node);
    expr.type = type;
    return type;
  }

  TypePtr check_binary(Expr& expr, EBinary& node) {
    switch (node.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        expect_type(*node.lhs, ty::intt(), "arithmetic operand");
        expect_type(*node.rhs, ty::intt(), "arithmetic operand");
        return ty::intt();
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe: {
        const TypePtr lhs = check_expr(*node.lhs, nullptr);
        const TypePtr rhs = check_expr(*node.rhs, lhs);
        if (lhs != nullptr && rhs != nullptr) {
          if (!type_equal(*lhs, *rhs)) {
            diags_.error(expr.loc, "cannot compare " + to_string(*lhs) +
                                       " with " + to_string(*rhs));
          } else if (is_future(*lhs) || is_list(*lhs)) {
            diags_.error(expr.loc, "equality is defined on int, bool, "
                                   "string and unit only");
          }
        }
        return ty::boolt();
      }
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        expect_type(*node.lhs, ty::intt(), "comparison operand");
        expect_type(*node.rhs, ty::intt(), "comparison operand");
        return ty::boolt();
      }
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        expect_type(*node.lhs, ty::boolt(), "logical operand");
        expect_type(*node.rhs, ty::boolt(), "logical operand");
        return ty::boolt();
      }
    }
    return nullptr;
  }

  TypePtr check_call(Expr& expr, ECall& node) {
    if (is_builtin(node.callee)) return check_builtin(expr, node);
    const Function* callee = program_.find(node.callee);
    if (callee == nullptr) {
      diags_.error(expr.loc,
                   "call to unknown function '" + node.callee.str() + "'");
      // Still check the arguments for secondary errors.
      for (ExprPtr& arg : node.args) check_expr(*arg, nullptr);
      return nullptr;
    }
    if (node.args.size() != callee->params.size()) {
      diags_.error(expr.loc, "'" + node.callee.str() + "' expects " +
                                 std::to_string(callee->params.size()) +
                                 " arguments, got " +
                                 std::to_string(node.args.size()));
      return callee->return_type;
    }
    for (std::size_t i = 0; i < node.args.size(); ++i) {
      const TypePtr expected = callee->params[i].type;
      const TypePtr actual = check_expr(*node.args[i], expected);
      if (actual != nullptr && !type_equal(*actual, *expected)) {
        diags_.error(node.args[i]->loc,
                     "argument " + std::to_string(i + 1) + " of '" +
                         node.callee.str() + "' expects " +
                         to_string(*expected) + ", got " +
                         to_string(*actual));
      }
    }
    return callee->return_type;
  }

  TypePtr check_builtin(Expr& expr, ECall& node) {
    const std::string name = node.callee.str();
    const auto arity_error = [&](std::size_t want) {
      diags_.error(expr.loc, "'" + name + "' expects " +
                                 std::to_string(want) + " argument(s), got " +
                                 std::to_string(node.args.size()));
    };
    const auto arg = [&](std::size_t i, const TypePtr& expected) {
      return check_expr(*node.args[i], expected);
    };
    const auto require = [&](std::size_t i, const TypePtr& t,
                             const char* what) {
      const TypePtr actual = arg(i, t);
      if (actual != nullptr && !type_equal(*actual, *t)) {
        diags_.error(node.args[i]->loc, "'" + name + "' expects " +
                                            std::string(what) + ", got " +
                                            to_string(*actual));
        return false;
      }
      return actual != nullptr;
    };
    const auto list_arg = [&](std::size_t i) -> TypePtr {
      const TypePtr t = arg(i, nullptr);
      if (t == nullptr) return nullptr;
      if (!is_list(*t)) {
        diags_.error(node.args[i]->loc, "'" + name + "' expects a list, got " +
                                            to_string(*t));
        return nullptr;
      }
      return t;
    };

    if (name == "rand") {
      if (!node.args.empty()) arity_error(0);
      return ty::intt();
    }
    if (name == "print") {
      if (node.args.size() != 1) {
        arity_error(1);
        return ty::unit();
      }
      require(0, ty::string(), "a string");
      return ty::unit();
    }
    if (name == "int_to_string") {
      if (node.args.size() != 1) {
        arity_error(1);
        return ty::string();
      }
      require(0, ty::intt(), "an int");
      return ty::string();
    }
    if (name == "concat") {
      if (node.args.size() != 2) {
        arity_error(2);
        return ty::string();
      }
      require(0, ty::string(), "a string");
      require(1, ty::string(), "a string");
      return ty::string();
    }
    if (name == "range") {
      if (node.args.size() != 2) {
        arity_error(2);
        return ty::list(ty::intt());
      }
      require(0, ty::intt(), "an int");
      require(1, ty::intt(), "an int");
      return ty::list(ty::intt());
    }
    if (name == "length") {
      if (node.args.size() != 1) {
        arity_error(1);
        return ty::intt();
      }
      list_arg(0);
      return ty::intt();
    }
    if (name == "head" || name == "tail") {
      if (node.args.size() != 1) {
        arity_error(1);
        return nullptr;
      }
      const TypePtr t = list_arg(0);
      if (t == nullptr) return nullptr;
      return name == "head" ? element_type(*t) : t;
    }
    if (name == "cons") {
      if (node.args.size() != 2) {
        arity_error(2);
        return nullptr;
      }
      const TypePtr element = arg(0, nullptr);
      if (element == nullptr) return nullptr;
      const TypePtr list_type = ty::list(element);
      const TypePtr actual = arg(1, list_type);
      if (actual != nullptr && !type_equal(*actual, *list_type)) {
        diags_.error(node.args[1]->loc, "'cons' expects " +
                                            to_string(*list_type) + ", got " +
                                            to_string(*actual));
      }
      return list_type;
    }
    if (name == "append") {
      if (node.args.size() != 2) {
        arity_error(2);
        return nullptr;
      }
      const TypePtr lhs = list_arg(0);
      if (lhs == nullptr) return nullptr;
      const TypePtr rhs = arg(1, lhs);
      if (rhs != nullptr && !type_equal(*rhs, *lhs)) {
        diags_.error(node.args[1]->loc, "'append' expects matching lists");
      }
      return lhs;
    }
    if (name == "take" || name == "drop") {
      if (node.args.size() != 2) {
        arity_error(2);
        return nullptr;
      }
      const TypePtr t = list_arg(0);
      require(1, ty::intt(), "an int");
      return t;
    }
    diags_.error(expr.loc, "unknown builtin '" + name + "'");
    return nullptr;
  }

  Program& program_;
  DiagnosticEngine& diags_;
  std::vector<Scope> scopes_;
  std::vector<TypePtr> return_types_;
};

}  // namespace

bool is_builtin(Symbol name) {
  return builtin_names().count(name.view()) != 0;
}

bool typecheck_program(Program& program, DiagnosticEngine& diags) {
  Checker checker(program, diags);
  return checker.run();
}

}  // namespace gtdl
