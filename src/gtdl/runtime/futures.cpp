#include "gtdl/runtime/futures.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "gtdl/ingest/trace_writer.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {

namespace {

// The future whose body the current thread is executing; null on the
// main (or any non-runtime) thread.
thread_local detail::FutureCore* g_current_core = nullptr;

const Symbol kMainName = Symbol::intern("main");

// The runtime keeps per-instance RuntimeStats under mu_; these are the
// process-wide equivalents for --stats (a run may create several
// runtimes, e.g. the interpreter plus the examples).
struct RuntimeMetrics {
  obs::Counter& spawns;
  obs::Counter& touches;
  obs::Counter& touch_blocks;
  obs::Counter& policy_checks;
  obs::Counter& policy_violations;
  obs::Counter& deadlocks;
  obs::Counter& poisoned;

  static RuntimeMetrics& get() {
    static RuntimeMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      auto c = [&reg](const char* name, const char* unit,
                      const char* help) -> obs::Counter& {
        return reg.counter(obs::MetricDesc{name, "runtime", unit, help});
      };
      return new RuntimeMetrics{
          c("runtime.spawns", "futures", "futures spawned"),
          c("runtime.touches", "touches", "touch operations"),
          c("runtime.touch_blocks", "touches",
            "touches that had to block on an unfinished future"),
          c("runtime.policy_checks", "checks",
            "TJ/KJ monitor consultations at spawn/touch"),
          c("runtime.policy_violations", "checks",
            "operations forbidden by the active TJ/KJ policy"),
          c("runtime.deadlocks_detected", "events",
            "waits-for cycles or global quiescence deadlocks found"),
          c("runtime.poisoned", "futures", "futures poisoned"),
      };
    }();
    return *m;
  }
};

}  // namespace

FutureRuntime::FutureRuntime(RuntimeOptions options)
    : options_(options) {
  switch (options_.policy) {
    case RuntimePolicy::kNone:
      break;
    case RuntimePolicy::kTransitiveJoins:
      monitor_ = std::make_unique<TransitiveJoinsMonitor>();
      break;
    case RuntimePolicy::kKnownJoins:
      monitor_ = std::make_unique<KnownJoinsMonitor>();
      break;
  }
  if (monitor_ != nullptr) {
    (void)monitor_->on_init(kMainName);
  }
  if (options_.record_trace) {
    trace_.push_back(Action::init(kMainName));
  }
  dump_ = options_.graph_dump;
  if (dump_ == nullptr) {
    // Environment switch: any embedder of this runtime becomes a trace
    // producer for `fdlc --ingest` without touching its code.
    if (const char* base = std::getenv("GTDL_GRAPH_DUMP");
        base != nullptr && *base != '\0') {
      owned_dump_ = std::make_unique<ingest::TraceDumpWriter>(base);
      dump_ = owned_dump_.get();
    }
  }
}

FutureRuntime::~FutureRuntime() { shutdown(); }

detail::CorePtr FutureRuntime::make_core(std::string_view base) {
  auto core = std::make_shared<detail::FutureCore>();
  core->name = Symbol::fresh(base);
  std::lock_guard<std::mutex> lock(mu_);
  cores_.push_back(core);
  ++stats_.futures_created;
  return core;
}

Symbol FutureRuntime::current_thread_name() const {
  return g_current_core != nullptr ? g_current_core->name : kMainName;
}

void FutureRuntime::record(Action action) {
  if (options_.record_trace) trace_.push_back(action);
}

Trace FutureRuntime::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

RuntimeStats FutureRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FutureRuntime::poison(const detail::CorePtr& core, std::string reason) {
  if (core->state == detail::FutureState::kDone ||
      core->state == detail::FutureState::kPoisoned) {
    return;
  }
  core->state = detail::FutureState::kPoisoned;
  core->poison_reason = std::move(reason);
  ++stats_.futures_poisoned;
  RuntimeMetrics::get().poisoned.add();
  cv_.notify_all();
}

bool FutureRuntime::detect_cycle(const detail::CorePtr& from) {
  // Each blocked future waits on exactly one target, so the waits-for
  // structure reachable from `from` is a chain; a deadlock shows up as a
  // revisit.
  std::vector<detail::CorePtr> path{from};
  std::unordered_set<const detail::FutureCore*> visited{from.get()};
  detail::CorePtr node = from->waiting_on;
  while (node != nullptr) {
    if (visited.count(node.get()) != 0) {
      // Cycle: everything on the path can never be satisfied.
      ++stats_.deadlocks_detected;
      RuntimeMetrics::get().deadlocks.add();
      obs::emit_instant("runtime", "deadlock:waits-for-cycle");
      std::string cycle_desc =
          join(path, " -> ",
               [](const detail::CorePtr& c) { return c->name.str(); }) +
          " -> " + node->name.str();
      for (const detail::CorePtr& member : path) {
        poison(member, "deadlock: waits-for cycle " + cycle_desc);
      }
      poison(node, "deadlock: waits-for cycle " + cycle_desc);
      return true;
    }
    if (node->state != detail::FutureState::kRunning || !node->blocked) {
      // The chain ends at a future whose thread can still make progress
      // (or that is merely unspawned — quiescence handles that case).
      return false;
    }
    visited.insert(node.get());
    path.push_back(node);
    node = node->waiting_on;
  }
  return false;
}

void FutureRuntime::check_quiescence() {
  if (live_unblocked_ != 0) return;
  // Every thread is blocked — but a waiter whose target already completed
  // (or was poisoned) is about to wake up, so this is only a deadlock if
  // NO blocked wait can be satisfied.
  const auto wakeable = [](const detail::CorePtr& target) {
    return target != nullptr &&
           (target->state == detail::FutureState::kDone ||
            target->state == detail::FutureState::kPoisoned);
  };
  for (const detail::CorePtr& core : cores_) {
    if (core->blocked && wakeable(core->waiting_on)) return;
  }
  if (wakeable(main_waiting_on_)) return;
  // Nobody can run and nobody will wake: every blocked wait is
  // unsatisfiable.
  bool any = false;
  for (const detail::CorePtr& core : cores_) {
    if (core->blocked && core->waiting_on != nullptr) {
      any = true;
      poison(core->waiting_on,
             "deadlock: no runnable thread can ever complete future '" +
                 core->waiting_on->name.str() + "'");
    }
  }
  if (main_waiting_on_ != nullptr) {
    any = true;
    poison(main_waiting_on_,
           "deadlock: no runnable thread can ever complete future '" +
               main_waiting_on_->name.str() + "'");
  }
  if (any) {
    ++stats_.deadlocks_detected;
    RuntimeMetrics::get().deadlocks.add();
    obs::emit_instant("runtime", "deadlock:quiescence");
  }
}

void FutureRuntime::spawn_erased(const detail::CorePtr& core,
                                 std::function<std::any()> body) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shut_down_ && g_current_core == nullptr) {
    throw std::logic_error("spawn() on a FutureRuntime after shutdown()");
  }
  const Symbol cur = current_thread_name();
  if (monitor_ != nullptr) {
    RuntimeMetrics::get().policy_checks.add();
    const PolicyStep step = monitor_->on_fork(cur, core->name);
    if (!step.ok()) {
      ++stats_.policy_violations;
      RuntimeMetrics::get().policy_violations.add();
      throw PolicyViolationError(monitor_->policy_name() +
                                 " forbids this spawn: " + step.reason);
    }
  }
  if (core->state != detail::FutureState::kUnspawned) {
    throw std::logic_error("future '" + core->name.str() +
                           "' spawned twice");
  }
  core->state = detail::FutureState::kRunning;
  core->has_thread = true;
  ++stats_.futures_spawned;
  ++live_unblocked_;  // counted before the thread starts
  RuntimeMetrics::get().spawns.add();
  if (obs::trace_enabled()) {
    obs::emit_instant("runtime", "spawn:" + core->name.str());
  }
  record(Action::fork(cur, core->name));
  if (dump_ != nullptr) dump_->record_spawn(cur, core->name);
  threads_.emplace_back([this, core, fn = std::move(body)]() mutable {
    run_body(core, std::move(fn));
  });
}

void FutureRuntime::run_body(detail::CorePtr core,
                             std::function<std::any()> body) {
  g_current_core = core.get();
  std::any result;
  bool ok = false;
  std::string failure;
  try {
    result = body();
    ok = true;
  } catch (const DeadlockError& e) {
    failure = e.what();
  } catch (const PolicyViolationError& e) {
    failure = e.what();
  } catch (const std::exception& e) {
    failure = std::string("future body threw: ") + e.what();
  } catch (...) {
    failure = "future body threw a non-standard exception";
  }
  g_current_core = nullptr;

  std::lock_guard<std::mutex> lock(mu_);
  if (core->state == detail::FutureState::kRunning) {
    if (ok) {
      core->state = detail::FutureState::kDone;
      core->result = std::move(result);
      ++stats_.futures_completed;
      if (dump_ != nullptr) dump_->record_resolve(core->name);
    } else {
      poison(core, std::move(failure));
    }
  }
  core->finished_thread = true;
  --live_unblocked_;
  check_quiescence();
  cv_.notify_all();
}

std::any FutureRuntime::touch_erased(const detail::CorePtr& core) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shut_down_ && g_current_core == nullptr) {
    throw std::logic_error("touch() on a FutureRuntime after shutdown()");
  }
  const Symbol cur = current_thread_name();
  if (monitor_ != nullptr) {
    RuntimeMetrics::get().policy_checks.add();
    const PolicyStep step = monitor_->on_join(cur, core->name);
    if (!step.ok()) {
      ++stats_.policy_violations;
      RuntimeMetrics::get().policy_violations.add();
      throw PolicyViolationError(monitor_->policy_name() +
                                 " forbids this touch: " + step.reason);
    }
  }
  RuntimeMetrics::get().touches.add();
  record(Action::join(cur, core->name));
  if (dump_ != nullptr) dump_->record_touch(cur, core->name);

  detail::FutureCore* self = g_current_core;
  for (;;) {
    if (core->state == detail::FutureState::kDone) {
      return core->result;
    }
    if (core->state == detail::FutureState::kPoisoned) {
      throw DeadlockError(core->poison_reason);
    }
    // About to block: register the waits-for edge and let the detectors
    // look at the world.
    RuntimeMetrics::get().touch_blocks.add();
    if (dump_ != nullptr) dump_->record_block(cur, core->name);
    obs::Span block_span("runtime", obs::trace_enabled()
                                        ? "touch_wait:" + core->name.str()
                                        : std::string());
    if (self != nullptr) {
      self->blocked = true;
      self->waiting_on = core;
    } else {
      main_waiting_on_ = core;
    }
    --live_unblocked_;
    bool poisoned = false;
    if (self != nullptr) {
      // A new cycle must pass through the newly blocked thread.
      poisoned = detect_cycle(self->shared_from_this());
    }
    if (!poisoned) check_quiescence();
    cv_.wait(lock, [&] {
      return core->state == detail::FutureState::kDone ||
             core->state == detail::FutureState::kPoisoned;
    });
    if (self != nullptr) {
      self->blocked = false;
      self->waiting_on = nullptr;
    } else {
      main_waiting_on_ = nullptr;
    }
    ++live_unblocked_;
  }
}

void FutureRuntime::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shut_down_) {
      shut_down_ = true;
      main_exited_ = true;
      --live_unblocked_;  // main no longer counts as a producer
      check_quiescence();
    }
    cv_.wait(lock, [&] {
      return std::all_of(cores_.begin(), cores_.end(),
                         [](const detail::CorePtr& c) {
                           return !c->has_thread || c->finished_thread;
                         });
    });
    to_join.swap(threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  // The env-armed writer is ours to flush; a caller-provided sink is
  // flushed by the caller (it may still be aggregating other runtimes).
  if (owned_dump_ != nullptr) {
    std::string error;
    (void)owned_dump_->flush(&error);
    if (!error.empty()) {
      std::fprintf(stderr, "GTDL_GRAPH_DUMP: %s\n", error.c_str());
    }
    owned_dump_.reset();
    dump_ = nullptr;
  }
}

std::string family_member_name(std::string_view base, std::size_t index) {
  return std::string(base) + "@" + std::to_string(index);
}

}  // namespace gtdl
