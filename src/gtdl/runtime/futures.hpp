// A real, threaded futures runtime implementing the paper's §2.1 model:
//
//   FutureRuntime rt;
//   auto h = rt.new_future<int>();       // handle, not yet running
//   h.spawn([] { return 42; });          // install the future thread
//   int v = h.touch();                   // block until it completes
//
// Each spawned future body runs on its own OS thread (the paper's model
// is one logical thread per future; examples keep fan-out modest).
//
// The runtime never hangs on a deadlock. Before a touch blocks it
// registers a waits-for edge in a central registry which detects
//   (a) cycles of blocked futures, and
//   (b) quiescence — every live thread blocked, so nobody can ever spawn
//       or complete the awaited futures,
// and then POISONS the affected futures: every waiter wakes up with a
// DeadlockError instead of blocking forever. Destroying the runtime (or
// calling shutdown()) likewise poisons anything unsatisfiable and joins
// all threads, so RAII cleanup always terminates.
//
// Optionally, an online deadlock-AVOIDANCE policy can be enforced on top
// (the paper's dynamic comparators): Transitive Joins (Voss et al.,
// PPoPP'19) or Known Joins (Cogumbreiro et al., OOPSLA'17). Under a
// policy, a fork or touch that the policy forbids throws
// PolicyViolationError *before* any blocking happens — this is how those
// systems avoid deadlocks at runtime, at the price of rejecting some
// deadlock-free programs (Table 1's Fibonacci, for KJ).

#pragma once

#include <any>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "gtdl/support/symbol.hpp"
#include "gtdl/tj/join_policy.hpp"
#include "gtdl/tj/trace.hpp"

namespace gtdl {

namespace ingest {
class TraceDumpWriter;  // ingest/trace_writer.hpp
}

// Thrown from touch() when the awaited future is (or becomes) part of a
// detected deadlock, or can never be spawned.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown from spawn()/touch() when the configured avoidance policy
// forbids the operation.
class PolicyViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RuntimePolicy : unsigned char {
  kNone,             // detection only (waits-for registry)
  kTransitiveJoins,  // online TJ enforcement
  kKnownJoins,       // online KJ enforcement
};

struct RuntimeOptions {
  RuntimePolicy policy = RuntimePolicy::kNone;
  // Record fork/join events so the execution's trace can be inspected
  // after the fact (used by tests and the policy-overhead bench).
  bool record_trace = false;
  // Optional dependency-trace sink (docs/TRACE_FORMAT.md; not owned —
  // the caller flushes). When null, the GTDL_GRAPH_DUMP environment
  // variable ("BASE") makes the runtime own a writer and flush
  // BASE.<k>.json during shutdown(), so ANY embedder becomes a trace
  // producer for `fdlc --ingest` without code changes.
  ingest::TraceDumpWriter* graph_dump = nullptr;
};

struct RuntimeStats {
  std::size_t futures_created = 0;
  std::size_t futures_spawned = 0;
  std::size_t futures_completed = 0;
  std::size_t futures_poisoned = 0;
  std::size_t deadlocks_detected = 0;
  std::size_t policy_violations = 0;
};

namespace detail {

enum class FutureState : unsigned char {
  kUnspawned,
  kRunning,   // body installed (possibly not yet scheduled) or executing
  kDone,
  kPoisoned,
};

struct FutureCore : std::enable_shared_from_this<FutureCore> {
  Symbol name;
  FutureState state = FutureState::kUnspawned;
  std::any result;
  std::string poison_reason;
  // Valid while this future's thread is blocked in touch():
  bool blocked = false;
  std::shared_ptr<FutureCore> waiting_on;
  bool has_thread = false;       // spawn() created an OS thread
  bool finished_thread = false;  // body returned or threw
};

using CorePtr = std::shared_ptr<FutureCore>;

}  // namespace detail

class FutureRuntime;

template <typename T>
class FutureHandle {
 public:
  FutureHandle() = default;

  // Installs `body` as this future's thread. Throws std::logic_error on
  // double spawn, PolicyViolationError if the policy forbids the fork.
  void spawn(std::function<T()> body);

  // Blocks until the future completes and returns its value. Throws
  // DeadlockError if the wait is (or becomes) unsatisfiable,
  // PolicyViolationError if the policy forbids the join.
  T touch();

  [[nodiscard]] bool valid() const noexcept { return runtime_ != nullptr; }
  [[nodiscard]] Symbol name() const { return core_->name; }

 private:
  friend class FutureRuntime;
  FutureHandle(FutureRuntime* runtime, detail::CorePtr core)
      : runtime_(runtime), core_(std::move(core)) {}

  FutureRuntime* runtime_ = nullptr;
  detail::CorePtr core_;
};

class FutureRuntime {
 public:
  explicit FutureRuntime(RuntimeOptions options = {});
  ~FutureRuntime();

  FutureRuntime(const FutureRuntime&) = delete;
  FutureRuntime& operator=(const FutureRuntime&) = delete;

  // Creates a fresh, unspawned future handle. `base` seeds the future's
  // (unique) name, which shows up in traces and error messages.
  template <typename T>
  FutureHandle<T> new_future(std::string_view base = "f") {
    return FutureHandle<T>(this, make_core(base));
  }

  // Waits for all spawned futures, poisoning any that can never be
  // satisfied. Idempotent; also runs from the destructor.
  void shutdown();

  [[nodiscard]] RuntimeStats stats() const;

  // The recorded trace (empty unless options.record_trace).
  [[nodiscard]] Trace trace() const;

  // --- type-erased core API (used by FutureHandle) ---
  void spawn_erased(const detail::CorePtr& core,
                    std::function<std::any()> body);
  std::any touch_erased(const detail::CorePtr& core);

 private:
  detail::CorePtr make_core(std::string_view base);

  // All of the below require mu_ to be held.
  void run_body(detail::CorePtr core, std::function<std::any()> body);
  void poison(const detail::CorePtr& core, std::string reason);
  // Detects a waits-for cycle starting at `from` (which just blocked on
  // `target`); poisons the cycle if found. Returns true if poisoned.
  bool detect_cycle(const detail::CorePtr& from);
  // If every live thread is blocked, nothing can make progress: poison
  // every blocked wait's target.
  void check_quiescence();
  void record(Action action);
  [[nodiscard]] Symbol current_thread_name() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  RuntimeOptions options_;
  std::unique_ptr<JoinPolicyMonitor> monitor_;  // null if policy == kNone
  // The active trace sink: options_.graph_dump, or owned_dump_ when the
  // GTDL_GRAPH_DUMP environment switch armed one. Null = no tracing.
  ingest::TraceDumpWriter* dump_ = nullptr;
  std::unique_ptr<ingest::TraceDumpWriter> owned_dump_;
  std::vector<std::thread> threads_;
  std::vector<detail::CorePtr> cores_;
  Trace trace_;
  RuntimeStats stats_;
  detail::CorePtr main_waiting_on_;  // set while main blocks in touch()
  // Threads executing user code right now (not blocked, not finished),
  // counting main whenever it is not blocked in touch().
  std::size_t live_unblocked_ = 1;  // main
  bool main_exited_ = false;
  bool shut_down_ = false;
};

// --- template member definitions -------------------------------------------

template <typename T>
void FutureHandle<T>::spawn(std::function<T()> body) {
  static_assert(!std::is_void_v<T>,
                "use a unit-like type instead of void futures");
  runtime_->spawn_erased(
      core_, [fn = std::move(body)]() -> std::any { return std::any(fn()); });
}

template <typename T>
T FutureHandle<T>::touch() {
  return std::any_cast<T>(runtime_->touch_erased(core_));
}

// --- vector-spawn helpers ---------------------------------------------------
//
// The runtime counterparts of the VecSpawn / TouchAll graph-type
// constructors: a family of `width` handles named base@0..base@width-1,
// spawned with one body (parameterized by the member index) and touched
// in index order.

// The member-handle naming shared with the static layers (family@i).
[[nodiscard]] std::string family_member_name(std::string_view base,
                                             std::size_t index);

template <typename T>
[[nodiscard]] std::vector<FutureHandle<T>> new_future_vec(
    FutureRuntime& runtime, std::size_t width, std::string_view base = "fs") {
  std::vector<FutureHandle<T>> handles;
  handles.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    handles.push_back(runtime.new_future<T>(family_member_name(base, i)));
  }
  return handles;
}

// Spawns every member with `body(index)`. Throws like FutureHandle::spawn.
template <typename T, typename Body>
void spawn_vec(std::vector<FutureHandle<T>>& handles, Body body) {
  for (std::size_t i = 0; i < handles.size(); ++i) {
    handles[i].spawn([body, i]() -> T { return body(i); });
  }
}

// Touches every member in index order and returns their values. Throws
// DeadlockError/PolicyViolationError like FutureHandle::touch.
template <typename T>
[[nodiscard]] std::vector<T> touch_all(std::vector<FutureHandle<T>>& handles) {
  std::vector<T> values;
  values.reserve(handles.size());
  for (FutureHandle<T>& h : handles) {
    values.push_back(h.touch());
  }
  return values;
}

}  // namespace gtdl
