#include "gtdl/graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

void Graph::note_endpoint(Symbol v) {
  auto [it, inserted] = adjacency_.try_emplace(v);
  (void)it;
  if (inserted) seen_order_.push_back(v);
}

bool Graph::add_vertex(Symbol v) {
  note_endpoint(v);
  const unsigned count = ++declared_count_[v];
  if (count == 1) {
    vertices_.push_back(v);
    return true;
  }
  return false;
}

void Graph::add_edge(Symbol from, Symbol to) {
  note_endpoint(from);
  note_endpoint(to);
  edges_.push_back(Edge{from, to});
  adjacency_[from].push_back(to);
}

std::vector<Symbol> Graph::undeclared_vertices() const {
  std::vector<Symbol> out;
  for (Symbol v : seen_order_) {
    if (declared_count_.find(v) == declared_count_.end()) out.push_back(v);
  }
  return out;
}

std::vector<Symbol> Graph::duplicate_vertices() const {
  std::vector<Symbol> out;
  for (Symbol v : vertices_) {
    auto it = declared_count_.find(v);
    if (it != declared_count_.end() && it->second > 1) out.push_back(v);
  }
  return out;
}

namespace {

enum class Mark : unsigned char { kUnvisited, kOnStack, kDone };

}  // namespace

std::optional<std::vector<Symbol>> Graph::find_cycle() const {
  // Iterative DFS with an explicit stack; detects a back edge and
  // reconstructs the cycle from the DFS path.
  std::unordered_map<Symbol, Mark> marks;
  marks.reserve(seen_order_.size());
  for (Symbol v : seen_order_) marks.emplace(v, Mark::kUnvisited);

  struct Frame {
    Symbol vertex;
    std::size_t next_edge = 0;
  };

  for (Symbol root : seen_order_) {
    if (marks.at(root) != Mark::kUnvisited) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root});
    marks.at(root) = Mark::kOnStack;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& succs = adjacency_.at(frame.vertex);
      if (frame.next_edge < succs.size()) {
        const Symbol next = succs[frame.next_edge++];
        Mark& mark = marks.at(next);
        if (mark == Mark::kUnvisited) {
          mark = Mark::kOnStack;
          stack.push_back(Frame{next});
        } else if (mark == Mark::kOnStack) {
          // Found a cycle: the suffix of the DFS path starting at `next`.
          std::vector<Symbol> cycle;
          auto it = std::find_if(
              stack.begin(), stack.end(),
              [&](const Frame& f) { return f.vertex == next; });
          for (; it != stack.end(); ++it) cycle.push_back(it->vertex);
          return cycle;
        }
      } else {
        marks.at(frame.vertex) = Mark::kDone;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool Graph::has_cycle() const { return find_cycle().has_value(); }

bool Graph::reachable(Symbol from, Symbol to) const {
  if (adjacency_.find(from) == adjacency_.end()) return false;
  if (from == to) return true;
  std::unordered_set<Symbol> visited{from};
  std::vector<Symbol> worklist{from};
  while (!worklist.empty()) {
    const Symbol v = worklist.back();
    worklist.pop_back();
    for (Symbol next : adjacency_.at(v)) {
      if (next == to) return true;
      if (visited.insert(next).second) worklist.push_back(next);
    }
  }
  return false;
}

std::optional<std::vector<Symbol>> Graph::topological_order() const {
  std::unordered_map<Symbol, std::size_t> indegree;
  for (Symbol v : seen_order_) indegree.emplace(v, 0);
  for (const Edge& e : edges_) ++indegree.at(e.to);

  std::vector<Symbol> ready;
  for (Symbol v : seen_order_) {
    if (indegree.at(v) == 0) ready.push_back(v);
  }
  std::vector<Symbol> order;
  order.reserve(seen_order_.size());
  while (!ready.empty()) {
    const Symbol v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (Symbol next : adjacency_.at(v)) {
      if (--indegree.at(next) == 0) ready.push_back(next);
    }
  }
  if (order.size() != seen_order_.size()) return std::nullopt;
  return order;
}

std::string Graph::to_dot(const std::string& name) const {
  std::string out = "digraph " + name + " {\n";
  for (Symbol v : seen_order_) {
    out += "  \"";
    out += v.view();
    out += '"';
    if (v == start_) {
      out += " [shape=diamond,label=\"" + v.str() + " (start)\"]";
    } else if (v == end_) {
      out += " [shape=doublecircle,label=\"" + v.str() + " (end)\"]";
    }
    const bool undeclared =
        declared_count_.find(v) == declared_count_.end();
    if (undeclared) out += " [style=dashed,color=red]";
    out += ";\n";
  }
  for (const Edge& e : edges_) {
    out += "  \"";
    out += e.from.view();
    out += "\" -> \"";
    out += e.to.view();
    out += "\";\n";
  }
  out += "}\n";
  return out;
}

namespace {

struct Endpoints {
  Symbol start;
  Symbol end;
};

Endpoints lower_into(const GraphExpr& expr, Graph& graph) {
  return std::visit(
      Overloaded{
          [&](const GESingleton&) {
            const Symbol v = Symbol::fresh("v");
            graph.add_vertex(v);
            return Endpoints{v, v};
          },
          [&](const GESeq& node) {
            const Endpoints lhs = lower_into(*node.lhs, graph);
            const Endpoints rhs = lower_into(*node.rhs, graph);
            graph.add_edge(lhs.end, rhs.start);
            return Endpoints{lhs.start, rhs.end};
          },
          [&](const GESpawn& node) {
            // (V,E,s,t) /u = (V ∪ {u,u'}, E ∪ {(u',s), (t,u)}, u', u')
            const Symbol main_vertex = Symbol::fresh("v");
            graph.add_vertex(main_vertex);
            const Endpoints body = lower_into(*node.body, graph);
            graph.add_vertex(node.vertex);
            graph.add_edge(main_vertex, body.start);
            graph.add_edge(body.end, node.vertex);
            return Endpoints{main_vertex, main_vertex};
          },
          [&](const GETouch& node) {
            // ᵘ\ = ({u'}, {(u,u')}, u', u'); u may be declared elsewhere.
            const Symbol main_vertex = Symbol::fresh("v");
            graph.add_vertex(main_vertex);
            graph.add_edge(node.vertex, main_vertex);
            return Endpoints{main_vertex, main_vertex};
          },
      },
      expr.node);
}

}  // namespace

Graph lower_to_graph(const GraphExpr& expr) {
  Graph graph;
  const Endpoints main_thread = lower_into(expr, graph);
  graph.set_start(main_thread.start);
  graph.set_end(main_thread.end);
  return graph;
}

GroundDeadlock find_ground_deadlock(const GraphExpr& expr) {
  GroundDeadlock verdict;
  const OrderedSet<Symbol> unspawned = unspawned_touch_targets(expr);
  if (!unspawned.empty()) {
    verdict.unspawned_touch = true;
    verdict.witness.assign(unspawned.begin(), unspawned.end());
    return verdict;
  }
  const Graph graph = lower_to_graph(expr);
  if (auto cycle = graph.find_cycle()) {
    verdict.cycle = true;
    verdict.witness = std::move(*cycle);
  }
  return verdict;
}

}  // namespace gtdl
