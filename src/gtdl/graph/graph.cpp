#include "gtdl/graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <unordered_set>

#include "gtdl/graph/csr.hpp"

namespace gtdl {

void Graph::note_endpoint(Symbol v) {
  auto [it, inserted] = adjacency_.try_emplace(v);
  (void)it;
  if (inserted) seen_order_.push_back(v);
}

bool Graph::add_vertex(Symbol v) {
  note_endpoint(v);
  const unsigned count = ++declared_count_[v];
  if (count == 1) {
    vertices_.push_back(v);
    return true;
  }
  return false;
}

void Graph::add_edge(Symbol from, Symbol to) {
  // One lookup for `from`: create-or-find the adjacency slot and keep the
  // element reference (stable across the rehash note_endpoint(to) may
  // trigger — only iterators are invalidated).
  const auto [it, inserted] = adjacency_.try_emplace(from);
  if (inserted) seen_order_.push_back(from);
  std::vector<Symbol>& successors = it->second;
  note_endpoint(to);
  edges_.push_back(Edge{from, to});
  successors.push_back(to);
}

std::vector<Symbol> Graph::undeclared_vertices() const {
  std::vector<Symbol> out;
  for (Symbol v : seen_order_) {
    if (declared_count_.find(v) == declared_count_.end()) out.push_back(v);
  }
  return out;
}

std::vector<Symbol> Graph::duplicate_vertices() const {
  std::vector<Symbol> out;
  for (Symbol v : vertices_) {
    auto it = declared_count_.find(v);
    if (it != declared_count_.end() && it->second > 1) out.push_back(v);
  }
  return out;
}

namespace {

enum class Mark : unsigned char { kUnvisited, kOnStack, kDone };

}  // namespace

std::optional<std::vector<Symbol>> Graph::find_cycle() const {
  // Iterative DFS with an explicit stack; detects a back edge and
  // reconstructs the cycle from the DFS path.
  std::unordered_map<Symbol, Mark> marks;
  marks.reserve(seen_order_.size());
  for (Symbol v : seen_order_) marks.emplace(v, Mark::kUnvisited);

  struct Frame {
    Symbol vertex;
    std::size_t next_edge = 0;
  };

  for (Symbol root : seen_order_) {
    if (marks.at(root) != Mark::kUnvisited) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root});
    marks.at(root) = Mark::kOnStack;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& succs = adjacency_.at(frame.vertex);
      if (frame.next_edge < succs.size()) {
        const Symbol next = succs[frame.next_edge++];
        Mark& mark = marks.at(next);
        if (mark == Mark::kUnvisited) {
          mark = Mark::kOnStack;
          stack.push_back(Frame{next});
        } else if (mark == Mark::kOnStack) {
          // Found a cycle: the suffix of the DFS path starting at `next`.
          std::vector<Symbol> cycle;
          auto it = std::find_if(
              stack.begin(), stack.end(),
              [&](const Frame& f) { return f.vertex == next; });
          for (; it != stack.end(); ++it) cycle.push_back(it->vertex);
          return cycle;
        }
      } else {
        marks.at(frame.vertex) = Mark::kDone;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool Graph::has_cycle() const { return find_cycle().has_value(); }

bool Graph::reachable(Symbol from, Symbol to) const {
  if (adjacency_.find(from) == adjacency_.end()) return false;
  if (from == to) return true;
  std::unordered_set<Symbol> visited{from};
  std::vector<Symbol> worklist{from};
  while (!worklist.empty()) {
    const Symbol v = worklist.back();
    worklist.pop_back();
    for (Symbol next : adjacency_.at(v)) {
      if (next == to) return true;
      if (visited.insert(next).second) worklist.push_back(next);
    }
  }
  return false;
}

std::optional<std::vector<Symbol>> Graph::topological_order() const {
  std::unordered_map<Symbol, std::size_t> indegree;
  for (Symbol v : seen_order_) indegree.emplace(v, 0);
  for (const Edge& e : edges_) ++indegree.at(e.to);

  std::vector<Symbol> ready;
  for (Symbol v : seen_order_) {
    if (indegree.at(v) == 0) ready.push_back(v);
  }
  std::vector<Symbol> order;
  order.reserve(seen_order_.size());
  while (!ready.empty()) {
    const Symbol v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (Symbol next : adjacency_.at(v)) {
      if (--indegree.at(next) == 0) ready.push_back(next);
    }
  }
  if (order.size() != seen_order_.size()) return std::nullopt;
  return order;
}

namespace {

// DOT quoted-string escaping: a bare `"` would terminate the id and a
// bare `\` would start an escape sequence, mangling the rendering for
// vertex names containing either.
std::string dot_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string Graph::to_dot(const std::string& name) const {
  std::string out = "digraph " + name + " {\n";
  for (Symbol v : seen_order_) {
    const std::string escaped = dot_escape(v.view());
    out += "  \"";
    out += escaped;
    out += '"';
    if (v == start_) {
      out += " [shape=diamond,label=\"" + escaped + " (start)\"]";
    } else if (v == end_) {
      out += " [shape=doublecircle,label=\"" + escaped + " (end)\"]";
    }
    const bool undeclared =
        declared_count_.find(v) == declared_count_.end();
    if (undeclared) out += " [style=dashed,color=red]";
    out += ";\n";
  }
  for (const Edge& e : edges_) {
    out += "  \"";
    out += dot_escape(e.from.view());
    out += "\" -> \"";
    out += dot_escape(e.to.view());
    out += "\";\n";
  }
  out += "}\n";
  return out;
}

Graph lower_to_graph(const GraphExpr& expr) {
  GraphArena arena;
  const CsrGraph csr = lower_to_csr(expr, arena);
  const std::uint32_t n = csr.vertex_count();

  // Symbolization replay. CSR ids are assigned at the same traversal
  // points the Symbol lowering declared or first saw each vertex, so
  // walking ids in order reproduces the old first-seen order and mints
  // the same sequence of fresh interior names.
  std::vector<Symbol> names(n);
  Graph graph;
  for (VertexId v = 0; v < n; ++v) {
    Symbol s = csr.symbol_of(v);
    if (!s.valid()) s = Symbol::fresh("v");
    names[v] = s;
    if (csr.is_designated(v) && csr.declared_count(v) == 0) {
      // Touched but never spawned: seen here, never declared.
      graph.note_endpoint(s);
      continue;
    }
    const std::uint32_t declared =
        csr.is_designated(v) ? csr.declared_count(v) : 1;
    for (std::uint32_t i = 0; i < declared; ++i) graph.add_vertex(s);
  }
  for (const auto& [from, to] : csr.edge_list()) {
    graph.add_edge(names[from], names[to]);
  }
  graph.set_start(names[csr.start()]);
  graph.set_end(names[csr.end()]);
  return graph;
}

GroundDeadlock find_ground_deadlock(const GraphExpr& expr, GraphArena& arena) {
  GroundDeadlock verdict;
  const CsrGraph graph = lower_to_csr(expr, arena);
  const std::vector<Symbol>& unspawned = graph.unspawned_touches();
  if (!unspawned.empty()) {
    verdict.unspawned_touch = true;
    verdict.witness = unspawned;
    return verdict;
  }
  if (auto cycle = graph.find_cycle()) {
    verdict.cycle = true;
    verdict.witness.reserve(cycle->size());
    for (const VertexId v : *cycle) {
      // Witness symbols are minted only now that a deadlock is being
      // reported; the scan itself never names interior vertices.
      const Symbol s = graph.symbol_of(v);
      verdict.witness.push_back(s.valid() ? s : Symbol::fresh("v"));
    }
  }
  return verdict;
}

namespace {
// Backing store for the single-argument overload below. Namespace-scope
// (rather than function-local) so release_scan_arena can reach it: when a
// budget cancellation abandons a scan, each worker drops its arena's
// high-water capacity instead of keeping it alive for the thread's
// lifetime.
thread_local GraphArena t_scan_arena;
}  // namespace

GroundDeadlock find_ground_deadlock(const GraphExpr& expr) {
  return find_ground_deadlock(expr, t_scan_arena);
}

std::size_t scan_arena_bytes() noexcept { return t_scan_arena.approx_bytes(); }

void release_scan_arena() noexcept { t_scan_arena.shrink(); }

void trim_scan_arena(std::size_t max_bytes) noexcept {
  if (t_scan_arena.approx_bytes() > max_bytes) t_scan_arena.shrink();
}

namespace {
std::atomic<std::size_t> g_arena_trim_quota{8u << 20};
}  // namespace

std::size_t scan_arena_trim_quota() noexcept {
  return g_arena_trim_quota.load(std::memory_order_relaxed);
}

void set_scan_arena_trim_quota(std::size_t bytes) noexcept {
  g_arena_trim_quota.store(bytes, std::memory_order_relaxed);
}

}  // namespace gtdl
