#include "gtdl/graph/csr.hpp"

#include <algorithm>

#include "gtdl/obs/metrics.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl {

namespace {

struct GraphMetrics {
  obs::Counter& lowered;
  obs::Counter& vertices;
  obs::Counter& arena_reuse_hits;

  static GraphMetrics& get() {
    static GraphMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new GraphMetrics{
          reg.counter(obs::MetricDesc{"graph.lowered", "graph", "graphs",
                                      "ground graphs lowered to CSR form"}),
          reg.counter(obs::MetricDesc{"graph.vertices", "graph", "vertices",
                                      "vertices across all CSR lowerings"}),
          reg.counter(obs::MetricDesc{
              "arena.reuse.hits", "graph", "lowerings",
              "CSR lowerings served by an already-warm arena"}),
      };
    }();
    return *m;
  }
};

struct Ends {
  VertexId start;
  VertexId end;
};

}  // namespace

// One pass over the expression: ids in traversal order (matching the
// note-order of the Symbol lowering, so cycle reports pick the same
// vertices), edges appended flat. No interning, no hashing beyond the
// designated-name map.
class CsrLowering {
 public:
  explicit CsrLowering(GraphArena& arena) : a_(arena) {}

  Ends walk(const GraphExpr& expr) {
    // Explicit post-order frames instead of recursion: ingested dumps
    // reach ⊕-chain depths far past any safe native-stack budget. `stage`
    // counts completed children; vertex ids are still assigned in exactly
    // the old recursive traversal order, so cycle reports pick the same
    // vertices.
    struct Frame {
      const GraphExpr* expr;
      int stage = 0;
      Ends lhs{0, 0};      // completed-lhs result (GESeq)
      VertexId main = 0;   // pre-body main vertex (GESpawn)
    };
    Ends result{0, 0};  // result of the most recently completed frame
    std::vector<Frame> stack;
    stack.push_back(Frame{&expr});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (std::holds_alternative<GESingleton>(f.expr->node)) {
        const VertexId v = interior();
        result = Ends{v, v};
        stack.pop_back();
      } else if (const auto* seq = std::get_if<GESeq>(&f.expr->node)) {
        if (f.stage == 0) {
          f.stage = 1;
          stack.push_back(Frame{seq->lhs.get()});
        } else if (f.stage == 1) {
          f.lhs = result;
          f.stage = 2;
          stack.push_back(Frame{seq->rhs.get()});
        } else {
          a_.edges_.emplace_back(f.lhs.end, result.start);
          result = Ends{f.lhs.start, result.end};
          stack.pop_back();
        }
      } else if (const auto* sp = std::get_if<GESpawn>(&f.expr->node)) {
        if (f.stage == 0) {
          // (V,E,s,t) /u = (V ∪ {u,u'}, E ∪ {(u',s), (t,u)}, u', u')
          f.main = interior();
          f.stage = 1;
          stack.push_back(Frame{sp->body.get()});
        } else {
          const VertexId designated = named(sp->vertex);
          ++a_.declared_count_[designated];
          a_.edges_.emplace_back(f.main, result.start);
          a_.edges_.emplace_back(result.end, designated);
          result = Ends{f.main, f.main};
          stack.pop_back();
        }
      } else {
        // ᵘ\ = ({u'}, {(u,u')}, u', u'); u may never be spawned.
        const auto& node = std::get<GETouch>(f.expr->node);
        const VertexId main_vertex = interior();
        const VertexId target = named(node.vertex);
        if (a_.touched_[target] == 0) {
          a_.touched_[target] = 1;
          a_.touch_order_.push_back(target);
        }
        a_.edges_.emplace_back(target, main_vertex);
        result = Ends{main_vertex, main_vertex};
        stack.pop_back();
      }
    }
    return result;
  }

 private:
  VertexId interior() {
    const VertexId v = static_cast<VertexId>(a_.names_.size());
    a_.names_.emplace_back();
    a_.declared_count_.push_back(0);
    a_.touched_.push_back(0);
    return v;
  }

  VertexId named(Symbol s) {
    const auto [it, inserted] =
        a_.by_name_.try_emplace(s, static_cast<VertexId>(a_.names_.size()));
    if (inserted) {
      a_.names_.push_back(s);
      a_.declared_count_.push_back(0);
      a_.touched_.push_back(0);
    }
    return it->second;
  }

  GraphArena& a_;
};

void GraphArena::reset() {
  edges_.clear();
  names_.clear();
  declared_count_.clear();
  touched_.clear();
  by_name_.clear();
  touch_order_.clear();
  unspawned_.clear();
}

std::size_t GraphArena::approx_bytes() const noexcept {
  auto vec = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  // by_name_ is charged per current element (bucket memory is not
  // portably observable); it is tiny next to the flat vectors anyway.
  return vec(edges_) + vec(names_) + vec(declared_count_) + vec(touched_) +
         vec(touch_order_) + vec(unspawned_) + vec(row_) + vec(cursor_) +
         vec(col_) + vec(visited_bits_) + vec(onstack_bits_) + vec(stack_) +
         vec(worklist_) + vec(indegree_) +
         by_name_.size() * (sizeof(Symbol) + sizeof(VertexId) + sizeof(void*));
}

void GraphArena::shrink() {
  auto drop = [](auto& v) {
    v.clear();
    v.shrink_to_fit();
  };
  drop(edges_);
  drop(names_);
  drop(declared_count_);
  drop(touched_);
  drop(touch_order_);
  drop(unspawned_);
  drop(row_);
  drop(cursor_);
  drop(col_);
  drop(visited_bits_);
  drop(onstack_bits_);
  drop(stack_);
  drop(worklist_);
  drop(indegree_);
  by_name_ = {};
}

CsrGraph lower_to_csr(const GraphExpr& expr, GraphArena& arena) {
  fault::maybe_inject("alloc");
  // A warm arena (its CSR rows still have capacity from a previous
  // lowering) means this lowering runs allocation-free; the counter is
  // how the thread-affine reuse policy is observed end to end.
  if (arena.row_.capacity() != 0) {
    GraphMetrics::get().arena_reuse_hits.add();
  }
  arena.reset();
  CsrLowering lowering(arena);
  const Ends main_thread = lowering.walk(expr);

  // Situation (1), derived from the walk's own records: touched but never
  // spawned, in first-touch order (what unspawned_touch_targets reports).
  for (const VertexId v : arena.touch_order_) {
    if (arena.declared_count_[v] == 0) {
      arena.unspawned_.push_back(arena.names_[v]);
    }
  }

  // CSR rows by counting sort; per-source successor order is edge
  // insertion order, matching the adjacency-list build.
  const std::size_t n = arena.names_.size();
  arena.row_.assign(n + 1, 0);
  for (const auto& e : arena.edges_) ++arena.row_[e.first + 1];
  for (std::size_t i = 0; i < n; ++i) arena.row_[i + 1] += arena.row_[i];
  arena.cursor_.assign(arena.row_.begin(), arena.row_.end() - 1);
  arena.col_.resize(arena.edges_.size());
  for (const auto& e : arena.edges_) {
    arena.col_[arena.cursor_[e.first]++] = e.second;
  }

  GraphMetrics& gm = GraphMetrics::get();
  gm.lowered.add();
  gm.vertices.add(n);

  CsrGraph g;
  g.arena_ = &arena;
  g.start_ = main_thread.start;
  g.end_ = main_thread.end;
  return g;
}

std::uint32_t CsrGraph::vertex_count() const noexcept {
  return static_cast<std::uint32_t>(arena_->names_.size());
}

std::uint32_t CsrGraph::edge_count() const noexcept {
  return static_cast<std::uint32_t>(arena_->edges_.size());
}

Symbol CsrGraph::symbol_of(VertexId v) const { return arena_->names_[v]; }

bool CsrGraph::is_designated(VertexId v) const {
  return arena_->names_[v].valid();
}

std::uint32_t CsrGraph::declared_count(VertexId v) const {
  return arena_->declared_count_[v];
}

VertexId CsrGraph::find_vertex(Symbol s) const {
  const auto it = arena_->by_name_.find(s);
  return it != arena_->by_name_.end() ? it->second : kNoVertex;
}

const std::vector<std::pair<VertexId, VertexId>>& CsrGraph::edge_list()
    const noexcept {
  return arena_->edges_;
}

std::pair<const VertexId*, const VertexId*> CsrGraph::successors(
    VertexId v) const {
  const VertexId* base = arena_->col_.data();
  return {base + arena_->row_[v], base + arena_->row_[v + 1]};
}

const std::vector<Symbol>& CsrGraph::unspawned_touches() const noexcept {
  return arena_->unspawned_;
}

namespace {

// Word-packed mark helpers. Colors live across the visited/onstack pair
// (see the field comment in csr.hpp); clearing for a new graph is an
// n/64-word fill and every color transition is one masked OR/AND-NOT —
// no per-vertex byte writes, no branches on the mark value itself.
inline bool bit_test(const std::vector<std::uint64_t>& bits,
                     VertexId v) noexcept {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}

inline void bit_set(std::vector<std::uint64_t>& bits, VertexId v) noexcept {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

inline void bit_clear(std::vector<std::uint64_t>& bits, VertexId v) noexcept {
  bits[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
}

inline std::size_t mark_words(std::uint32_t n) noexcept {
  return (static_cast<std::size_t>(n) + 63) / 64;
}

}  // namespace

std::optional<std::vector<VertexId>> CsrGraph::find_cycle() const {
  GraphArena& a = *arena_;
  const std::uint32_t n = vertex_count();
  a.visited_bits_.assign(mark_words(n), 0);
  a.onstack_bits_.assign(mark_words(n), 0);
  for (VertexId root = 0; root < n; ++root) {
    if (bit_test(a.visited_bits_, root)) continue;
    a.stack_.clear();
    a.stack_.push_back({root, a.row_[root]});
    bit_set(a.visited_bits_, root);
    bit_set(a.onstack_bits_, root);
    while (!a.stack_.empty()) {
      GraphArena::Frame& frame = a.stack_.back();
      if (frame.next_edge < a.row_[frame.vertex + 1]) {
        const VertexId next = a.col_[frame.next_edge++];
        if (!bit_test(a.visited_bits_, next)) {
          bit_set(a.visited_bits_, next);
          bit_set(a.onstack_bits_, next);
          a.stack_.push_back({next, a.row_[next]});
        } else if (bit_test(a.onstack_bits_, next)) {
          // Back edge: the cycle is the DFS-path suffix from `next`.
          std::vector<VertexId> cycle;
          auto it = std::find_if(
              a.stack_.begin(), a.stack_.end(),
              [&](const GraphArena::Frame& f) { return f.vertex == next; });
          for (; it != a.stack_.end(); ++it) cycle.push_back(it->vertex);
          return cycle;
        }
      } else {
        bit_clear(a.onstack_bits_, frame.vertex);
        a.stack_.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool CsrGraph::has_cycle() const { return find_cycle().has_value(); }

bool CsrGraph::reachable(VertexId from, VertexId to) const {
  const std::uint32_t n = vertex_count();
  if (from >= n) return false;
  if (from == to) return true;
  GraphArena& a = *arena_;
  a.visited_bits_.assign(mark_words(n), 0);
  a.worklist_.clear();
  bit_set(a.visited_bits_, from);
  a.worklist_.push_back(from);
  while (!a.worklist_.empty()) {
    const VertexId v = a.worklist_.back();
    a.worklist_.pop_back();
    for (std::uint32_t i = a.row_[v]; i < a.row_[v + 1]; ++i) {
      const VertexId next = a.col_[i];
      if (next == to) return true;
      if (!bit_test(a.visited_bits_, next)) {
        bit_set(a.visited_bits_, next);
        a.worklist_.push_back(next);
      }
    }
  }
  return false;
}

std::optional<std::vector<VertexId>> CsrGraph::topological_order() const {
  GraphArena& a = *arena_;
  const std::uint32_t n = vertex_count();
  a.indegree_.assign(n, 0);
  for (const auto& e : a.edges_) ++a.indegree_[e.second];
  a.worklist_.clear();
  for (VertexId v = 0; v < n; ++v) {
    if (a.indegree_[v] == 0) a.worklist_.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(n);
  while (!a.worklist_.empty()) {
    const VertexId v = a.worklist_.back();
    a.worklist_.pop_back();
    order.push_back(v);
    for (std::uint32_t i = a.row_[v]; i < a.row_[v + 1]; ++i) {
      if (--a.indegree_[a.col_[i]] == 0) a.worklist_.push_back(a.col_[i]);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

}  // namespace gtdl
