// Ground graph expressions.
//
// Section 2.2 of the paper builds dependency graphs from four combinators:
//
//   •            a single fresh vertex (one sequential computation)
//   g1 ⊕ g2      sequential composition of the two main threads
//   g /u         spawn a future thread with body g and designated end
//                vertex u; the main thread is a single fresh vertex
//   ᵘ\           touch the future whose designated end vertex is u
//
// A GraphExpr is the *structural* form of such a graph: it remembers how
// the graph was built. The structural form is what normalization of graph
// types produces, and it is the induction structure over which traces are
// generated (Fig. 6). It can be lowered to a raw Graph (graph.hpp) for
// cycle detection.
//
// GraphExprs are immutable and shared; use the builder functions at the
// bottom of this header.

#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gtdl/support/ordered_set.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

struct GraphExpr;
using GraphExprPtr = std::shared_ptr<const GraphExpr>;

// • — one anonymous sequential computation.
struct GESingleton {};

// g1 ⊕ g2 — run g1's main thread, then g2's.
struct GESeq {
  GraphExprPtr lhs;
  GraphExprPtr rhs;
};

// g /u — spawn a future thread computing `body`; the thread's final,
// designated vertex is `vertex`, which is the name other threads use to
// touch this future.
struct GESpawn {
  GraphExprPtr body;
  Symbol vertex;
};

// ᵘ\ — block until the future with designated vertex `vertex` completes.
struct GETouch {
  Symbol vertex;
};

struct GraphExpr {
  using Node = std::variant<GESingleton, GESeq, GESpawn, GETouch>;

  Node node;

  explicit GraphExpr(Node n) : node(std::move(n)) {}
  GraphExpr(const GraphExpr&) = delete;
  GraphExpr& operator=(const GraphExpr&) = delete;
  // Iterative teardown: a ⊕-chain of a million nodes must not unwind a
  // million destructor frames (ingested dumps routinely exceed any fixed
  // recursion budget).
  ~GraphExpr();
};

namespace ge {

[[nodiscard]] GraphExprPtr singleton();
[[nodiscard]] GraphExprPtr seq(GraphExprPtr lhs, GraphExprPtr rhs);
// Left-to-right sequential composition of `parts` (empty => •).
[[nodiscard]] GraphExprPtr seq_all(std::vector<GraphExprPtr> parts);
[[nodiscard]] GraphExprPtr spawn(GraphExprPtr body, Symbol vertex);
[[nodiscard]] GraphExprPtr touch(Symbol vertex);

}  // namespace ge

// All designated vertices used by spawns in `g`, in spawn order
// (duplicates preserved; a well-formed graph has none).
[[nodiscard]] std::vector<Symbol> spawned_vertices(const GraphExpr& g);

// All vertices targeted by touches in `g`, in touch order.
[[nodiscard]] std::vector<Symbol> touched_vertices(const GraphExpr& g);

// Touch targets with no corresponding spawn anywhere in `g`. A nonempty
// result is the paper's deadlock situation (1): a touch that blocks
// forever because the future is never spawned.
[[nodiscard]] OrderedSet<Symbol> unspawned_touch_targets(const GraphExpr& g);

// Number of combinator nodes (for statistics and bench reporting).
[[nodiscard]] std::size_t node_count(const GraphExpr& g);

// Renders the expression with the ASCII syntax used throughout the
// project: "1" for •, ";" for ⊕, "g / u" for spawn, "~u" for touch.
[[nodiscard]] std::string to_string(const GraphExpr& g);

}  // namespace gtdl
