// Arena-backed CSR form of one lowered ground graph.
//
// The Symbol-keyed Graph class (graph.hpp) is convenient for hand-built
// graphs and DOT rendering, but on the detector hot path — where the GML
// baseline lowers MILLIONS of normalized ground graphs just to ask "any
// cycle? any unspawned touch?" — it pays a Symbol::fresh interning per
// interior vertex plus hash-map adjacency. This header is the streaming
// counterpart: lowering assigns dense uint32_t vertex ids directly in ONE
// pass over the GraphExpr (interior vertices are never named at all;
// designated vertices keep their Symbol only as a per-id annotation), the
// adjacency is built as compressed sparse rows by counting sort, and the
// traversals run over flat arrays with byte-vector marks.
//
// All storage lives in a caller-provided GraphArena that is reused across
// lowerings, so a scan loop settles into zero allocation once the
// high-water capacity is reached. A CsrGraph is a VIEW into its arena:
// valid until the arena is handed to the next lower_to_csr call.
//
// Deliberately no Symbol::fresh anywhere in this layer — witness symbols
// for interior vertices are minted only when a report is actually
// rendered (graph.cpp).

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

using VertexId = std::uint32_t;
inline constexpr VertexId kNoVertex = 0xffffffffu;

class CsrGraph;

// Reusable backing store for CSR lowerings and their traversals. Not
// thread-safe; use one arena per thread (find_ground_deadlock keeps a
// thread_local one for exactly that reason).
class GraphArena {
 public:
  GraphArena() = default;
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  // Bytes retained by the arena's backing vectors (capacities, not
  // sizes — reset() keeps capacity by design). This is what the memory
  // budget charges: the scan loop's true steady-state footprint.
  [[nodiscard]] std::size_t approx_bytes() const noexcept;

  // Releases all backing storage (capacity drops to ~0). Used when a
  // budget cancellation abandons a scan: thread-local arenas must not
  // keep their high-water memory alive past the analysis.
  void shrink();

 private:
  friend class CsrGraph;
  friend class CsrLowering;  // the walk in csr.cpp
  friend CsrGraph lower_to_csr(const GraphExpr& expr, GraphArena& arena);

  void reset();

  // Filled by the lowering walk.
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Symbol> names_;  // per vertex; default Symbol for interior
  std::vector<std::uint32_t> declared_count_;  // spawns per vertex
  std::vector<std::uint8_t> touched_;          // 0/1 per vertex
  std::unordered_map<Symbol, VertexId> by_name_;
  std::vector<VertexId> touch_order_;  // designated ids, first-touch order
  std::vector<Symbol> unspawned_;      // derived after the walk
  // CSR adjacency.
  std::vector<std::uint32_t> row_;  // n+1 offsets into col_
  std::vector<std::uint32_t> cursor_;
  std::vector<VertexId> col_;
  // Traversal scratch: word-packed visit marks. A vertex's color is two
  // bits across the pair — (visited=0) unvisited, (1, onstack=1) on the
  // DFS stack, (1, 0) done — so clearing for a new graph touches n/8
  // bytes instead of n and finishing a vertex is a single AND-NOT.
  std::vector<std::uint64_t> visited_bits_;
  std::vector<std::uint64_t> onstack_bits_;
  struct Frame {
    VertexId vertex;
    std::uint32_t next_edge;
  };
  std::vector<Frame> stack_;
  std::vector<VertexId> worklist_;
  std::vector<std::uint32_t> indegree_;
};

class CsrGraph {
 public:
  [[nodiscard]] std::uint32_t vertex_count() const noexcept;
  [[nodiscard]] std::uint32_t edge_count() const noexcept;
  [[nodiscard]] VertexId start() const noexcept { return start_; }
  [[nodiscard]] VertexId end() const noexcept { return end_; }

  // Designated vertices carry their Symbol; interior vertices return the
  // default (empty) Symbol.
  [[nodiscard]] Symbol symbol_of(VertexId v) const;
  [[nodiscard]] bool is_designated(VertexId v) const;
  // Times `v` appeared as a spawn's designated vertex (0 for touched-only
  // and interior vertices; >1 flags a duplicate spawn).
  [[nodiscard]] std::uint32_t declared_count(VertexId v) const;
  // Id of the designated vertex named `s`, or kNoVertex.
  [[nodiscard]] VertexId find_vertex(Symbol s) const;

  // Edges in lowering order (the order Graph::edges() would hold).
  [[nodiscard]] const std::vector<std::pair<VertexId, VertexId>>& edge_list()
      const noexcept;
  [[nodiscard]] std::pair<const VertexId*, const VertexId*> successors(
      VertexId v) const;

  // Touched designated vertices that are never spawned, in first-touch
  // order — the paper's deadlock situation (1), precomputed during the
  // lowering walk (no second pass over the expression).
  [[nodiscard]] const std::vector<Symbol>& unspawned_touches() const noexcept;

  // A cycle as ids v0 -> v1 -> ... -> v0 (closing edge implicit), or
  // nullopt. Deterministic: DFS roots in id (= lowering) order, edges in
  // insertion order — the same cycle Graph::find_cycle reports.
  [[nodiscard]] std::optional<std::vector<VertexId>> find_cycle() const;
  [[nodiscard]] bool has_cycle() const;

  [[nodiscard]] bool reachable(VertexId from, VertexId to) const;

  // Topological order over all vertices, or nullopt if cyclic.
  [[nodiscard]] std::optional<std::vector<VertexId>> topological_order() const;

 private:
  friend CsrGraph lower_to_csr(const GraphExpr& expr, GraphArena& arena);

  GraphArena* arena_ = nullptr;
  VertexId start_ = kNoVertex;
  VertexId end_ = kNoVertex;
};

// Lowers a ground graph expression per Fig. 2 (same shape as
// lower_to_graph) in a single pass: vertex ids are assigned in traversal
// order, edges are recorded flat, and the CSR rows are built by counting
// sort. The returned view aliases `arena` and is invalidated by the next
// lowering into the same arena.
[[nodiscard]] CsrGraph lower_to_csr(const GraphExpr& expr, GraphArena& arena);

}  // namespace gtdl
