// Raw dependency graphs (V, E, s, t) and the lowering from GraphExpr.
//
// Fig. 2 of the paper defines graphs as quadruples of vertices, directed
// edges, a start vertex and an end vertex. An edge (u, u') means u must
// happen before u'. A cycle therefore means a set of computations each
// waiting for another — a deadlock (paper §2.2).
//
// Touch edges may reference a designated vertex that is spawned elsewhere
// in the program — or never. The Graph class consequently tolerates edges
// whose source vertex was never declared and reports them via
// `undeclared_vertices()`; such a dangling touch is the paper's deadlock
// situation (1): a touch that blocks forever.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

struct Edge {
  Symbol from;
  Symbol to;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  // Declares a vertex. Returns false if it was already declared (a
  // duplicate designated vertex — the ill-formedness graph types'
  // well-formedness kinding exists to prevent).
  bool add_vertex(Symbol v);

  // Adds a directed edge; endpoints need not be declared yet.
  void add_edge(Symbol from, Symbol to);

  void set_start(Symbol s) { start_ = s; }
  void set_end(Symbol t) { end_ = t; }
  [[nodiscard]] Symbol start() const noexcept { return start_; }
  [[nodiscard]] Symbol end() const noexcept { return end_; }

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] const std::vector<Symbol>& vertices() const noexcept {
    return vertices_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] bool has_vertex(Symbol v) const {
    return adjacency_.find(v) != adjacency_.end();
  }

  // Vertices that appear as edge endpoints but were never declared.
  // Deterministic order (first appearance).
  [[nodiscard]] std::vector<Symbol> undeclared_vertices() const;

  // Vertices declared more than once.
  [[nodiscard]] std::vector<Symbol> duplicate_vertices() const;

  [[nodiscard]] bool has_cycle() const;

  // A cycle as a vertex sequence v0 -> v1 -> ... -> v0 (the closing edge
  // back to v0 is implicit), or nullopt if the graph is acyclic.
  [[nodiscard]] std::optional<std::vector<Symbol>> find_cycle() const;

  // True if `to` is reachable from `from` along directed edges.
  [[nodiscard]] bool reachable(Symbol from, Symbol to) const;

  // Topological order over all vertices (declared and undeclared), or
  // nullopt if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<Symbol>> topological_order() const;

  // Graphviz rendering; spawn-designated structure is not distinguished
  // (the raw quadruple does not retain it).
  [[nodiscard]] std::string to_dot(const std::string& name = "g") const;

 private:
  // The lowering replay needs note_endpoint to place touched-but-never-
  // spawned vertices at their first-seen position without declaring them.
  friend Graph lower_to_graph(const GraphExpr& expr);

  // Ensures v has an adjacency slot without declaring it.
  void note_endpoint(Symbol v);

  std::vector<Symbol> vertices_;  // declared vertices in declaration order
  std::vector<Edge> edges_;
  // Every vertex ever seen (declared or endpoint-only) has a slot here.
  std::unordered_map<Symbol, std::vector<Symbol>> adjacency_;
  std::unordered_map<Symbol, unsigned> declared_count_;
  std::vector<Symbol> seen_order_;  // all seen vertices, first-seen order
  Symbol start_;
  Symbol end_;
};

// Lowers a ground graph expression to a raw graph per Fig. 2:
//   •        => fresh vertex v; s = t = v
//   g1 ⊕ g2  => edge t1 -> s2; s = s1, t = t2
//   g /u     => fresh main vertex u'; edges (u', s_g) and (t_g, u);
//               u is declared as the future's designated end vertex
//   ᵘ\       => fresh main vertex u'; edge (u, u'); u may be undeclared
// Implemented as a symbolization of the numeric CSR lowering (csr.hpp):
// interior vertices get Symbol::fresh names only HERE, at rendering time
// — the detector hot path uses lower_to_csr and never names them. Meant
// for cold paths (DOT output, MHP queries on named vertices, tests);
// repeated lowerings never collide.
[[nodiscard]] Graph lower_to_graph(const GraphExpr& expr);

// Convenience verdict used by the GML-style baseline detector and by the
// interpreter's ground truth: a ground graph "has a deadlock" if it has a
// cycle or a touch of a never-spawned vertex.
struct GroundDeadlock {
  bool cycle = false;
  bool unspawned_touch = false;
  std::vector<Symbol> witness;  // cycle vertices or unspawned touch targets

  [[nodiscard]] bool any() const noexcept { return cycle || unspawned_touch; }
};

// Scans via the arena-backed CSR lowering (csr.hpp): one pass assigns
// numeric vertex ids — no Symbol interning — and the verdict's witness
// symbols are rendered only when a deadlock is actually found. The
// single-argument form keeps a thread_local arena, so concurrent scans
// from pool workers are safe and allocation-free at steady state; pass an
// explicit arena to control reuse.
class GraphArena;  // csr.hpp
[[nodiscard]] GroundDeadlock find_ground_deadlock(const GraphExpr& expr);
[[nodiscard]] GroundDeadlock find_ground_deadlock(const GraphExpr& expr,
                                                  GraphArena& arena);

// Bytes retained by THIS thread's scan arena (the one the single-argument
// find_ground_deadlock overload uses) — what the memory budget charges
// per worker at batch boundaries.
[[nodiscard]] std::size_t scan_arena_bytes() noexcept;

// Releases this thread's scan arena. Called by cancelled scan workers so
// a budget-aborted analysis does not pin its high-water memory.
void release_scan_arena() noexcept;

// Releases this thread's scan arena only if it retains more than
// `max_bytes`. Called between corpus files (and after parallel scan
// chunks) so long-lived worker threads keep their steady-state arenas
// warm — thread-affine reuse — while a pathological file's high-water
// allocation is returned promptly instead of pinned for the whole run.
void trim_scan_arena(std::size_t max_bytes) noexcept;

// Process-wide per-thread trim quota: the retained-byte ceiling every
// consumer that trims arenas between work items uses (corpus file
// boundaries, streamed scan batches, the daemon's cache eviction) — one
// policy, one knob. Defaults to 8 MiB; the daemon derives it from its
// cache quota so arena retention and cache eviction share a budget.
[[nodiscard]] std::size_t scan_arena_trim_quota() noexcept;
void set_scan_arena_trim_quota(std::size_t bytes) noexcept;

}  // namespace gtdl
