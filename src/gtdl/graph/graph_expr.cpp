#include "gtdl/graph/graph_expr.hpp"

#include "gtdl/support/overloaded.hpp"

namespace gtdl {
namespace ge {

GraphExprPtr singleton() {
  // All singletons are interchangeable; share one instance.
  static const GraphExprPtr kSingleton =
      std::make_shared<const GraphExpr>(GraphExpr{GESingleton{}});
  return kSingleton;
}

GraphExprPtr seq(GraphExprPtr lhs, GraphExprPtr rhs) {
  return std::make_shared<const GraphExpr>(
      GraphExpr{GESeq{std::move(lhs), std::move(rhs)}});
}

GraphExprPtr seq_all(std::vector<GraphExprPtr> parts) {
  if (parts.empty()) return singleton();
  GraphExprPtr acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = seq(std::move(acc), std::move(parts[i]));
  }
  return acc;
}

GraphExprPtr spawn(GraphExprPtr body, Symbol vertex) {
  return std::make_shared<const GraphExpr>(
      GraphExpr{GESpawn{std::move(body), vertex}});
}

GraphExprPtr touch(Symbol vertex) {
  return std::make_shared<const GraphExpr>(GraphExpr{GETouch{vertex}});
}

}  // namespace ge

namespace {

template <typename OnSpawn, typename OnTouch>
void visit_events(const GraphExpr& g, const OnSpawn& on_spawn,
                  const OnTouch& on_touch) {
  std::visit(Overloaded{
                 [](const GESingleton&) {},
                 [&](const GESeq& node) {
                   visit_events(*node.lhs, on_spawn, on_touch);
                   visit_events(*node.rhs, on_spawn, on_touch);
                 },
                 [&](const GESpawn& node) {
                   on_spawn(node.vertex);
                   visit_events(*node.body, on_spawn, on_touch);
                 },
                 [&](const GETouch& node) { on_touch(node.vertex); },
             },
             g.node);
}

}  // namespace

std::vector<Symbol> spawned_vertices(const GraphExpr& g) {
  std::vector<Symbol> out;
  visit_events(
      g, [&](Symbol u) { out.push_back(u); }, [](Symbol) {});
  return out;
}

std::vector<Symbol> touched_vertices(const GraphExpr& g) {
  std::vector<Symbol> out;
  visit_events(
      g, [](Symbol) {}, [&](Symbol u) { out.push_back(u); });
  return out;
}

OrderedSet<Symbol> unspawned_touch_targets(const GraphExpr& g) {
  OrderedSet<Symbol> spawned;
  OrderedSet<Symbol> touched;
  visit_events(
      g, [&](Symbol u) { spawned.insert(u); },
      [&](Symbol u) { touched.insert(u); });
  return touched.set_difference(spawned);
}

std::size_t node_count(const GraphExpr& g) {
  return std::visit(
      Overloaded{
          [](const GESingleton&) -> std::size_t { return 1; },
          [](const GESeq& node) {
            return 1 + node_count(*node.lhs) + node_count(*node.rhs);
          },
          [](const GESpawn& node) { return 1 + node_count(*node.body); },
          [](const GETouch&) -> std::size_t { return 1; },
      },
      g.node);
}

namespace {

void append_string(const GraphExpr& g, std::string& out, bool parenthesize) {
  std::visit(Overloaded{
                 [&](const GESingleton&) { out += '1'; },
                 [&](const GESeq& node) {
                   if (parenthesize) out += '(';
                   // ⊕ is associative for printing purposes; flatten.
                   append_string(*node.lhs, out, false);
                   out += " ; ";
                   append_string(*node.rhs, out, false);
                   if (parenthesize) out += ')';
                 },
                 [&](const GESpawn& node) {
                   append_string(*node.body, out, true);
                   out += " / ";
                   out += node.vertex.view();
                 },
                 [&](const GETouch& node) {
                   out += '~';
                   out += node.vertex.view();
                 },
             },
             g.node);
}

}  // namespace

std::string to_string(const GraphExpr& g) {
  std::string out;
  append_string(g, out, false);
  return out;
}

}  // namespace gtdl
