#include "gtdl/graph/graph_expr.hpp"

#include <utility>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

// Every walk in this file is an explicit-worklist traversal, not
// recursion: normalized ⊕-chains and ingested runtime dumps reach depths
// (hundreds of thousands of nodes) where recursive walks overflow the
// stack long before they exhaust memory.

GraphExpr::~GraphExpr() {
  // Move children whose refcount is about to hit zero onto a worklist so
  // the chain tears down in a loop instead of nested ~shared_ptr frames.
  // Nodes harvested here run their own destructor with null children and
  // contribute nothing back, so `pending` never allocates for them.
  std::vector<GraphExprPtr> pending;
  const auto harvest = [&pending](GraphExpr& g) {
    if (auto* s = std::get_if<GESeq>(&g.node)) {
      if (s->lhs != nullptr) pending.push_back(std::move(s->lhs));
      if (s->rhs != nullptr) pending.push_back(std::move(s->rhs));
    } else if (auto* sp = std::get_if<GESpawn>(&g.node)) {
      if (sp->body != nullptr) pending.push_back(std::move(sp->body));
    }
  };
  harvest(*this);
  while (!pending.empty()) {
    GraphExprPtr next = std::move(pending.back());
    pending.pop_back();
    if (next.use_count() == 1) {
      harvest(const_cast<GraphExpr&>(*next));
    }
  }
}

namespace ge {

GraphExprPtr singleton() {
  // All singletons are interchangeable; share one instance.
  static const GraphExprPtr kSingleton =
      std::make_shared<const GraphExpr>(GraphExpr::Node{GESingleton{}});
  return kSingleton;
}

GraphExprPtr seq(GraphExprPtr lhs, GraphExprPtr rhs) {
  return std::make_shared<const GraphExpr>(
      GraphExpr::Node{GESeq{std::move(lhs), std::move(rhs)}});
}

GraphExprPtr seq_all(std::vector<GraphExprPtr> parts) {
  if (parts.empty()) return singleton();
  GraphExprPtr acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = seq(std::move(acc), std::move(parts[i]));
  }
  return acc;
}

GraphExprPtr spawn(GraphExprPtr body, Symbol vertex) {
  return std::make_shared<const GraphExpr>(
      GraphExpr::Node{GESpawn{std::move(body), vertex}});
}

GraphExprPtr touch(Symbol vertex) {
  return std::make_shared<const GraphExpr>(GraphExpr::Node{GETouch{vertex}});
}

}  // namespace ge

namespace {

// Pre-order event walk (spawn events before their body's, lhs before rhs)
// over an explicit stack.
template <typename OnSpawn, typename OnTouch>
void visit_events(const GraphExpr& g, const OnSpawn& on_spawn,
                  const OnTouch& on_touch) {
  std::vector<const GraphExpr*> stack = {&g};
  while (!stack.empty()) {
    const GraphExpr* cur = stack.back();
    stack.pop_back();
    std::visit(Overloaded{
                   [](const GESingleton&) {},
                   [&](const GESeq& node) {
                     stack.push_back(node.rhs.get());
                     stack.push_back(node.lhs.get());
                   },
                   [&](const GESpawn& node) {
                     on_spawn(node.vertex);
                     stack.push_back(node.body.get());
                   },
                   [&](const GETouch& node) { on_touch(node.vertex); },
               },
               cur->node);
  }
}

}  // namespace

std::vector<Symbol> spawned_vertices(const GraphExpr& g) {
  std::vector<Symbol> out;
  visit_events(
      g, [&](Symbol u) { out.push_back(u); }, [](Symbol) {});
  return out;
}

std::vector<Symbol> touched_vertices(const GraphExpr& g) {
  std::vector<Symbol> out;
  visit_events(
      g, [](Symbol) {}, [&](Symbol u) { out.push_back(u); });
  return out;
}

OrderedSet<Symbol> unspawned_touch_targets(const GraphExpr& g) {
  OrderedSet<Symbol> spawned;
  OrderedSet<Symbol> touched;
  visit_events(
      g, [&](Symbol u) { spawned.insert(u); },
      [&](Symbol u) { touched.insert(u); });
  return touched.set_difference(spawned);
}

std::size_t node_count(const GraphExpr& g) {
  std::size_t count = 0;
  std::vector<const GraphExpr*> stack = {&g};
  while (!stack.empty()) {
    const GraphExpr* cur = stack.back();
    stack.pop_back();
    ++count;
    std::visit(Overloaded{
                   [](const GESingleton&) {},
                   [&](const GESeq& node) {
                     stack.push_back(node.rhs.get());
                     stack.push_back(node.lhs.get());
                   },
                   [&](const GESpawn& node) { stack.push_back(node.body.get()); },
                   [](const GETouch&) {},
               },
               cur->node);
  }
  return count;
}

namespace {

// One render item: either a node still to visit (with its parenthesize
// flag) or a literal suffix to emit once the subtree before it is done.
struct RenderItem {
  const GraphExpr* node = nullptr;  // null => emit `text`
  bool parenthesize = false;
  std::string text;
};

}  // namespace

std::string to_string(const GraphExpr& g) {
  std::string out;
  std::vector<RenderItem> stack;
  stack.push_back(RenderItem{&g, false, {}});
  while (!stack.empty()) {
    RenderItem item = std::move(stack.back());
    stack.pop_back();
    if (item.node == nullptr) {
      out += item.text;
      continue;
    }
    std::visit(
        Overloaded{
            [&](const GESingleton&) { out += '1'; },
            [&](const GESeq& node) {
              if (item.parenthesize) out += '(';
              // ⊕ is associative for printing purposes; flatten.
              if (item.parenthesize) {
                stack.push_back(RenderItem{nullptr, false, ")"});
              }
              stack.push_back(RenderItem{node.rhs.get(), false, {}});
              stack.push_back(RenderItem{nullptr, false, " ; "});
              stack.push_back(RenderItem{node.lhs.get(), false, {}});
            },
            [&](const GESpawn& node) {
              std::string suffix = " / ";
              suffix += node.vertex.view();
              stack.push_back(RenderItem{nullptr, false, std::move(suffix)});
              stack.push_back(RenderItem{node.body.get(), true, {}});
            },
            [&](const GETouch& node) {
              out += '~';
              out += node.vertex.view();
            },
        },
        item.node->node);
  }
  return out;
}

}  // namespace gtdl
