// The differential oracle at the heart of the fuzzing farm.
//
// We hold both ends of the paper's soundness claim: the static verdict
// (check_deadlock_freedom over the inferred graph type) and ground truth
// (the FutLang interpreter, whose recorded dependency graph defines
// "this execution deadlocked"). classify_program runs one program
// through both ends under per-program resource budgets and names the
// relationship:
//
//   sound_free      static DeadlockFree, no bounded execution deadlocks
//   true_positive   static MayDeadlock and some execution deadlocks
//   imprecise       static MayDeadlock but no bounded execution
//                   deadlocks — expected conservatism, logged and rated
//   UNSOUND         static DeadlockFree yet an execution deadlocks —
//                   the release blocker the farm exists to catch
//   unknown         the static analysis gave up (budget tripped)
//   compile_error   the program does not compile (for generated
//                   programs: a generator bug)
//   crash           an exception escaped the pipeline but was contained
//                   (includes injected faults and oracle incoherence)
//
// Anything the classifier cannot contain — a segfault, an OOM kill, a
// hard hang — is the farm layer's job: workers are processes, and the
// farm records those as worker_crash / worker_hang findings (farm.hpp).
//
// Determinism: with a fixed (seed, options) pair the classification is a
// pure function — interpreter schedules are seeded from `seed`, fault
// injection is re-armed per program (resetting its arrival counter), and
// the static analysis is deterministic. This is what makes findings
// replayable from their seed alone.

#pragma once

#include <cstdint>
#include <string>

namespace gtdl::fuzz {

enum class Outcome : unsigned char {
  kSoundFree = 0,
  kTruePositive,
  kImprecise,
  kUnsound,
  kUnknown,
  kCompileError,
  kCrash,
  // Farm-level classes — never returned by classify_program, but part of
  // the one findings taxonomy (triaged by worker exit status).
  kWorkerCrash,
  kWorkerHang,
};
inline constexpr unsigned kOutcomeCount = 9;

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

// True for the classes the farm records as findings (and shrinks):
// unsound, compile_error, crash, worker_crash, worker_hang. Imprecision
// and unknowns are counted and rated, and a bounded sample is kept, but
// they are expected outcomes of a sound conservative analysis, not bugs.
[[nodiscard]] bool is_finding(Outcome outcome) noexcept;

struct OracleOptions {
  // Interpreter executions per program; every one must stay
  // deadlock-free for a DeadlockFree verdict to count as confirmed.
  unsigned run_seeds = 3;
  // Per-program budgets, applied separately to the static analysis and
  // to each execution (0 = unlimited). The defaults keep a pathological
  // program from stalling a farm worker for more than ~2 s.
  std::uint64_t timeout_ms = 2000;
  std::uint64_t budget_steps = 0;
  std::uint64_t budget_mb = 0;
  // Interpreter step quota per execution (the interpreter's own guard).
  std::size_t max_interp_steps = 2'000'000;
  // When non-empty, the deterministic fault harness (support/fault.hpp)
  // is re-armed with this point:rate:seed spec before the program is
  // classified and disarmed after, so the k-th fault arrival within one
  // program is reproducible regardless of how many programs ran before.
  std::string fault_spec;
};

struct OracleResult {
  Outcome outcome = Outcome::kCrash;
  // One line of triage: the deadlock reason, the budget reason, the
  // first diagnostic, or the escaped exception's what().
  std::string detail;
  // The static analysis' three-way verdict as text ("deadlock-free",
  // "may-deadlock", "unknown"); empty when compilation failed.
  std::string static_verdict;
  // How many of the run_seeds executions deadlocked.
  unsigned deadlocked_runs = 0;
};

// Classifies one FutLang source. `seed` drives the interpreter schedules
// (and is typically the generator seed, making generation + oracle one
// deterministic pipeline). Never throws: escaped exceptions become
// Outcome::kCrash.
[[nodiscard]] OracleResult classify_program(const std::string& source,
                                            std::uint64_t seed,
                                            const OracleOptions& options = {});

}  // namespace gtdl::fuzz
