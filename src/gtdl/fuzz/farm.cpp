#include "gtdl/fuzz/farm.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "gtdl/fuzz/random_program.hpp"
#include "gtdl/fuzz/shrink.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"

namespace gtdl::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string line) {
  line += '\n';
  return write_all(fd, line.data(), line.size());
}

std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

bool collections_for(std::uint64_t seed) { return (seed & 1) != 0; }

// ---------------------------------------------------------------------------
// Worker side. One process per shard; the pipe carries a line protocol:
//   S <seed>                        announced, about to classify
//   R <seed> <outcome> <runs> <d>   classified (d = one-line detail)
//   D <count>                       clean finish
// A worker that dies between S and its R leaves the parent exactly one
// attributable seed.

[[noreturn]] void worker_main(int fd, unsigned w, std::uint64_t start_index,
                              std::uint64_t quota, const FarmOptions& options,
                              Clock::time_point deadline) {
  std::uint64_t done = 0;
  for (std::uint64_t i = start_index;; ++i) {
    if (options.max_programs > 0) {
      if (i >= quota) break;
    } else if (Clock::now() >= deadline) {
      break;
    }
    const std::uint64_t seed =
        options.seed_base + w + i * static_cast<std::uint64_t>(options.jobs);
    if (!write_line(fd, "S " + std::to_string(seed))) _exit(0);
    if (options.kill_seed != 0 && seed == options.kill_seed) std::abort();
    const std::string source =
        RandomProgram(seed, collections_for(seed)).generate();
    const OracleResult r = classify_program(source, seed, options.oracle);
    std::string line = "R " + std::to_string(seed) + ' ' +
                       std::to_string(static_cast<unsigned>(r.outcome)) + ' ' +
                       std::to_string(r.deadlocked_runs) + ' ' +
                       one_line(r.detail);
    if (!write_line(fd, line)) _exit(0);
    ++done;
  }
  write_line(fd, "D " + std::to_string(done));
  _exit(0);
}

// ---------------------------------------------------------------------------
// Parent side.

struct WorkerState {
  pid_t pid = -1;
  int fd = -1;
  std::string buf;
  bool alive = false;
  bool done_line = false;  // clean "D" received
  bool inflight = false;
  std::uint64_t inflight_seed = 0;
  std::uint64_t next_index = 0;  // resume point for a respawn
  std::uint64_t quota = 0;
  Clock::time_point last_activity;
};

std::uint64_t index_of(std::uint64_t seed, unsigned w,
                       const FarmOptions& options) {
  return (seed - options.seed_base - w) /
         static_cast<std::uint64_t>(options.jobs);
}

bool spawn_worker(WorkerState& ws, unsigned w, std::uint64_t start_index,
                  const FarmOptions& options, Clock::time_point deadline,
                  std::string& error) {
  int fds[2];
  if (::pipe(fds) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    worker_main(fds[1], w, start_index, ws.quota, options, deadline);
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ws.pid = pid;
  ws.fd = fds[0];
  ws.buf.clear();
  ws.alive = true;
  ws.done_line = false;
  ws.inflight = false;
  ws.next_index = start_index;
  ws.last_activity = Clock::now();
  return true;
}

struct RawFinding {
  std::uint64_t seed;
  Outcome outcome;
  std::string detail;
};

struct ParentState {
  FarmReport* report = nullptr;
  std::map<std::uint64_t, RawFinding> findings;  // dedup'd, seed-ordered

  void record(std::uint64_t seed, Outcome outcome, std::string detail) {
    report->counts[static_cast<unsigned>(outcome)] += 1;
    if (is_finding(outcome)) {
      findings.emplace(seed, RawFinding{seed, outcome, std::move(detail)});
    }
  }
};

// Parses one protocol line from worker w; unparseable lines are ignored
// (a crashing worker can tear a line mid-write).
void handle_line(const std::string& line, WorkerState& ws, unsigned w,
                 const FarmOptions& options, ParentState& state) {
  if (line.size() < 2 || line[1] != ' ') return;
  const char* p = line.c_str() + 2;
  char* end = nullptr;
  switch (line[0]) {
    case 'S': {
      const std::uint64_t seed = std::strtoull(p, &end, 10);
      ws.inflight = true;
      ws.inflight_seed = seed;
      ws.next_index = index_of(seed, w, options) + 1;
      ws.last_activity = Clock::now();
      break;
    }
    case 'R': {
      const std::uint64_t seed = std::strtoull(p, &end, 10);
      const unsigned long outcome_raw = std::strtoul(end, &end, 10);
      std::strtoul(end, &end, 10);  // deadlocked runs (folded into detail)
      if (outcome_raw >= kOutcomeCount) return;
      std::string detail;
      if (end != nullptr && *end == ' ') detail = end + 1;
      state.report->programs += 1;
      state.record(seed, static_cast<Outcome>(outcome_raw),
                   std::move(detail));
      if (ws.inflight && ws.inflight_seed == seed) ws.inflight = false;
      ws.last_activity = Clock::now();
      break;
    }
    case 'D':
      ws.done_line = true;
      ws.last_activity = Clock::now();
      break;
    default:
      break;
  }
}

void drain_buffer(WorkerState& ws, unsigned w, const FarmOptions& options,
                  ParentState& state) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = ws.buf.find('\n', start);
    if (nl == std::string::npos) break;
    handle_line(ws.buf.substr(start, nl - start), ws, w, options, state);
    start = nl + 1;
  }
  ws.buf.erase(0, start);
}

// ---------------------------------------------------------------------------
// Candidate evaluation in a fork: for crash-grade findings every shrink
// candidate is classified in its own child so a candidate that really
// does segfault or wedge is contained exactly like farm workers are.

Outcome classify_in_fork(const std::string& source, std::uint64_t seed,
                         const OracleOptions& oracle,
                         std::uint64_t timeout_ms) {
  const pid_t pid = ::fork();
  if (pid < 0) return Outcome::kWorkerCrash;
  if (pid == 0) {
    const OracleResult r = classify_program(source, seed, oracle);
    _exit(10 + static_cast<int>(r.outcome));
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) return Outcome::kWorkerCrash;
    if (Clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return Outcome::kWorkerHang;
    }
    ::usleep(2000);
  }
  if (WIFSIGNALED(status)) return Outcome::kWorkerCrash;
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status) - 10;
    if (code >= 0 && code < static_cast<int>(kOutcomeCount)) {
      return static_cast<Outcome>(code);
    }
  }
  return Outcome::kWorkerCrash;
}

bool crash_grade(Outcome o) {
  return o == Outcome::kWorkerCrash || o == Outcome::kWorkerHang;
}

void shrink_findings(FarmReport& report, const FarmOptions& options) {
  static obs::Counter& shrink_counter = obs::MetricsRegistry::instance().counter(
      {"fuzz.farm.shrink_candidates", "fuzz", "programs",
       "shrink candidates evaluated across all findings"});
  const std::uint64_t fork_timeout_ms =
      options.oracle.timeout_ms == 0
          ? options.hang_timeout_ms + 10'000
          : options.oracle.timeout_ms * (options.oracle.run_seeds + 2) + 2'000;
  std::size_t shrunk = 0;
  for (Finding& f : report.findings) {
    if (shrunk >= options.max_shrink_findings) break;
    ++shrunk;
    ShrinkOptions shrink_options;
    shrink_options.max_candidates = options.shrink_max_candidates;
    ShrinkEvaluator triggers;
    if (crash_grade(f.outcome)) {
      const Outcome want = f.outcome;
      const std::uint64_t seed = f.seed;
      const OracleOptions oracle = options.oracle;
      triggers = [=](const std::string& candidate) {
        return classify_in_fork(candidate, seed, oracle, fork_timeout_ms) ==
               want;
      };
    } else {
      const Outcome want = f.outcome;
      const std::uint64_t seed = f.seed;
      const OracleOptions oracle = options.oracle;
      triggers = [=](const std::string& candidate) {
        return classify_program(candidate, seed, oracle).outcome == want;
      };
    }
    const ShrinkResult r = shrink_program(f.program, triggers, shrink_options);
    shrink_counter.force_add(r.candidates_tried);
    f.shrink_reproduced = r.reproduced;
    f.one_minimal = r.one_minimal;
    if (r.reproduced) f.shrunk = r.program;
  }
}

// ---------------------------------------------------------------------------
// Findings directory + bench JSON.

std::string finding_stem(const Finding& f) {
  return std::string(to_string(f.outcome)) + "-seed" +
         std::to_string(f.seed);
}

std::string finding_header(const Finding& f) {
  std::string h;
  h += std::string("# fuzz finding: ") + to_string(f.outcome) + "\n";
  h += "# seed: " + std::to_string(f.seed) +
       " collections: " + (f.collections ? "1" : "0") +
       " rng: " + kRngStreamVersion + "\n";
  if (!f.detail.empty()) h += "# detail: " + one_line(f.detail) + "\n";
  if (!f.shrunk.empty()) {
    h += std::string("# shrunk: 1-minimal=") + (f.one_minimal ? "yes" : "no") +
         " original-bytes=" + std::to_string(f.program.size()) + "\n";
  } else if (!f.shrink_reproduced) {
    h += "# shrunk: no (finding did not reproduce in the shrinker)\n";
  }
  return h;
}

void write_findings_dir(const FarmReport& report, const FarmOptions& options,
                        std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.findings_dir, ec);
  if (ec) {
    error = "findings dir: " + ec.message();
    return;
  }
  for (const Finding& f : report.findings) {
    const std::string stem =
        (fs::path(options.findings_dir) / finding_stem(f)).string();
    const std::string& repro = f.shrunk.empty() ? f.program : f.shrunk;
    std::ofstream out(stem + ".fut");
    out << finding_header(f) << repro;
    if (!out) {
      error = "findings dir: write failed for " + stem + ".fut";
      return;
    }
    if (!f.shrunk.empty()) {
      std::ofstream orig(stem + ".orig.fut");
      orig << "# original program for " << finding_stem(f) << "\n"
           << f.program;
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

double FarmReport::precision() const {
  const std::uint64_t tp = count(Outcome::kTruePositive);
  const std::uint64_t rejects = tp + count(Outcome::kImprecise);
  return rejects == 0 ? 1.0 : static_cast<double>(tp) / rejects;
}

double FarmReport::unknown_rate() const {
  return programs == 0
             ? 0.0
             : static_cast<double>(count(Outcome::kUnknown)) / programs;
}

int FarmReport::exit_code() const {
  if (!error.empty() || restart_storm) return 2;
  if (count(Outcome::kUnsound) > 0) return 1;
  for (const Finding& f : findings) {
    if (f.outcome == Outcome::kUnsound) return 1;
  }
  if (!findings.empty()) return 4;
  return 0;
}

OracleResult replay_seed(std::uint64_t seed, const OracleOptions& options,
                         std::string* program_out) {
  const std::string source =
      RandomProgram(seed, collections_for(seed)).generate();
  if (program_out != nullptr) *program_out = source;
  return classify_program(source, seed, options);
}

FarmReport run_farm(const FarmOptions& options) {
  obs::Span span("fuzz", "farm");
  static obs::Counter& programs_counter =
      obs::MetricsRegistry::instance().counter(
          {"fuzz.farm.programs", "fuzz", "programs",
           "programs classified by farm workers"});
  static obs::Counter& findings_counter =
      obs::MetricsRegistry::instance().counter(
          {"fuzz.farm.findings", "fuzz", "findings",
           "findings recorded (all classes)"});
  static obs::Counter& restarts_counter =
      obs::MetricsRegistry::instance().counter(
          {"fuzz.farm.worker_restarts", "fuzz", "restarts",
           "workers respawned after a crash or hang"});

  FarmReport report;
  if (options.jobs == 0) {
    report.error = "jobs must be >= 1";
    return report;
  }
  if ((options.duration_s > 0) == (options.max_programs > 0)) {
    report.error = "exactly one of duration_s / max_programs must be set";
    return report;
  }
  // Workers write to pipes; a dying parent must show up as a clean write
  // failure in the worker, not a SIGPIPE kill (see docs/ROBUSTNESS.md).
  ::signal(SIGPIPE, SIG_IGN);

  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      options.duration_s > 0
          ? t0 + std::chrono::microseconds(
                     static_cast<std::int64_t>(options.duration_s * 1e6))
          : Clock::time_point::max();

  ParentState state;
  state.report = &report;

  std::vector<WorkerState> workers(options.jobs);
  for (unsigned w = 0; w < options.jobs; ++w) {
    if (options.max_programs > 0) {
      workers[w].quota =
          options.max_programs / options.jobs +
          (w < options.max_programs % options.jobs ? 1 : 0);
    }
    if (!spawn_worker(workers[w], w, 0, options, deadline, report.error)) {
      // Kill whatever did start; a half-farm would skew every rate.
      for (WorkerState& ws : workers) {
        if (ws.alive) {
          ::kill(ws.pid, SIGKILL);
          ::waitpid(ws.pid, nullptr, 0);
          ::close(ws.fd);
          ws.alive = false;
        }
      }
      return report;
    }
  }

  const std::uint64_t hang_threshold_ms =
      options.hang_timeout_ms == 0
          ? 0
          : options.hang_timeout_ms +
                options.oracle.timeout_ms * (options.oracle.run_seeds + 2);

  const auto reap = [&](unsigned w, bool hung) {
    WorkerState& ws = workers[w];
    int status = 0;
    if (hung) {
      ::kill(ws.pid, SIGKILL);
    }
    ::waitpid(ws.pid, &status, 0);
    ::close(ws.fd);
    ws.alive = false;
    const bool clean = !hung && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0 && ws.done_line;
    if (clean) return;
    const Outcome outcome =
        hung ? Outcome::kWorkerHang : Outcome::kWorkerCrash;
    std::string detail;
    if (hung) {
      detail = "no report within " + std::to_string(hang_threshold_ms) +
               " ms; killed";
    } else if (WIFSIGNALED(status)) {
      detail = std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    } else {
      detail = "exited with status " +
               std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
    if (ws.inflight) {
      state.record(ws.inflight_seed, outcome, detail);
    } else {
      // Death between programs: nothing attributable, still a crash.
      state.record(options.seed_base + w, outcome,
                   detail + " (no seed in flight)");
    }
    // Respawn past the poisoned seed if there is still work to do.
    const bool work_left =
        options.max_programs > 0
            ? ws.next_index < ws.quota
            : Clock::now() < deadline;
    if (!work_left) return;
    if (report.worker_restarts >= options.max_restarts) {
      report.restart_storm = true;
      return;
    }
    ++report.worker_restarts;
    restarts_counter.force_add(1);
    if (!spawn_worker(ws, w, ws.next_index, options, deadline,
                      report.error)) {
      report.restart_storm = true;
    }
  };

  Clock::time_point last_progress = t0;
  while (!report.restart_storm) {
    std::vector<pollfd> fds;
    std::vector<unsigned> owner;
    for (unsigned w = 0; w < options.jobs; ++w) {
      if (!workers[w].alive) continue;
      fds.push_back(pollfd{workers[w].fd, POLLIN, 0});
      owner.push_back(w);
    }
    if (fds.empty()) break;
    ::poll(fds.data(), fds.size(), 200);
    for (std::size_t k = 0; k < fds.size(); ++k) {
      const unsigned w = owner[k];
      WorkerState& ws = workers[w];
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::read(ws.fd, chunk, sizeof chunk);
        if (n > 0) {
          ws.buf.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
        } else if (errno == EINTR) {
          continue;
        }
        break;
      }
      drain_buffer(ws, w, options, state);
      if (eof) reap(w, /*hung=*/false);
    }
    if (hang_threshold_ms != 0) {
      const Clock::time_point now = Clock::now();
      for (unsigned w = 0; w < options.jobs; ++w) {
        WorkerState& ws = workers[w];
        if (!ws.alive || !ws.inflight) continue;
        const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - ws.last_activity)
                              .count();
        if (idle > static_cast<std::int64_t>(hang_threshold_ms)) {
          reap(w, /*hung=*/true);
        }
      }
    }
    if (options.progress && seconds_since(last_progress) >= 2.0) {
      last_progress = Clock::now();
      const double elapsed = seconds_since(t0);
      std::fprintf(stderr,
                   "fdlf: %llu programs, %zu findings, %u restarts "
                   "(%.0f prog/s)\n",
                   static_cast<unsigned long long>(report.programs),
                   state.findings.size(), report.worker_restarts,
                   elapsed > 0 ? report.programs / elapsed : 0.0);
    }
  }
  if (report.restart_storm) {
    for (WorkerState& ws : workers) {
      if (!ws.alive) continue;
      ::kill(ws.pid, SIGKILL);
      ::waitpid(ws.pid, nullptr, 0);
      ::close(ws.fd);
      ws.alive = false;
    }
  }
  report.elapsed_s = seconds_since(t0);
  programs_counter.force_add(report.programs);
  findings_counter.force_add(state.findings.size());

  // Materialize findings: regenerate each program from its seed (the
  // whole point of the deterministic generator) and shrink.
  for (auto& [seed, raw] : state.findings) {
    Finding f;
    f.seed = seed;
    f.collections = collections_for(seed);
    f.outcome = raw.outcome;
    f.detail = std::move(raw.detail);
    f.program = RandomProgram(seed, f.collections).generate();
    report.findings.push_back(std::move(f));
  }
  if (options.shrink) shrink_findings(report, options);

  if (!options.findings_dir.empty() && !report.findings.empty()) {
    write_findings_dir(report, options, report.error);
  }
  if (!options.bench_json.empty()) {
    std::ofstream out(options.bench_json);
    out << render_bench_json(report, options);
    if (!out) report.error = "bench json: write failed";
  }
  return report;
}

std::string render_bench_json(const FarmReport& report,
                              const FarmOptions& options) {
  const double rate =
      report.elapsed_s > 0 ? report.programs / report.elapsed_s : 0.0;
  std::uint64_t shrunk = 0;
  for (const Finding& f : report.findings) {
    if (!f.shrunk.empty()) ++shrunk;
  }
  std::string j = "{\n";
  j += "  \"bench\": \"fuzz_farm\",\n";
  j += std::string("  \"rng_stream\": \"") + kRngStreamVersion + "\",\n";
  j += "  \"jobs\": " + std::to_string(options.jobs) + ",\n";
  j += "  \"seed_base\": " + std::to_string(options.seed_base) + ",\n";
  j += std::string("  \"mode\": \"") +
       (options.max_programs > 0 ? "count" : "duration") + "\",\n";
  j += "  \"duration_s\": " + fmt_double(options.duration_s) + ",\n";
  j += "  \"max_programs\": " + std::to_string(options.max_programs) + ",\n";
  j += "  \"programs\": " + std::to_string(report.programs) + ",\n";
  j += "  \"elapsed_s\": " + fmt_double(report.elapsed_s) + ",\n";
  j += "  \"programs_per_sec\": " + fmt_double(rate) + ",\n";
  j += "  \"precision\": " + fmt_double(report.precision()) + ",\n";
  j += "  \"unknown_rate\": " + fmt_double(report.unknown_rate()) + ",\n";
  j += "  \"counts\": {";
  for (unsigned i = 0; i < kOutcomeCount; ++i) {
    j += std::string(i == 0 ? "" : ", ") + "\"" +
         to_string(static_cast<Outcome>(i)) +
         "\": " + std::to_string(report.counts[i]);
  }
  j += "},\n";
  j += "  \"findings\": " + std::to_string(report.findings.size()) + ",\n";
  j += "  \"shrunk\": " + std::to_string(shrunk) + ",\n";
  j += "  \"worker_restarts\": " + std::to_string(report.worker_restarts) +
       ",\n";
  j += std::string("  \"restart_storm\": ") +
       (report.restart_storm ? "true" : "false") + ",\n";
  j += "  \"error\": \"" + json_escape(report.error) + "\",\n";
  j += "  \"exit_code\": " + std::to_string(report.exit_code()) + "\n";
  j += "}\n";
  return j;
}

}  // namespace gtdl::fuzz
