// Witness shrinking: delta-debugging a fuzzing-farm finding down to a
// minimal reproducer.
//
// The shrinker never guesses what a transformation means for the
// property under test — it proposes candidate programs and keeps a
// candidate iff the caller's evaluator says the finding still triggers
// (same outcome class; the farm closes the evaluator over the original
// classification and, for crash-grade findings, evaluates in a fork so a
// reproducing candidate cannot take the shrinker down).
//
// Reduction passes (AST-aware; the candidate source is produced by the
// frontend pretty-printer, so every candidate is a real program):
//
//   drop_function    remove a whole definition
//   drop_stmt        remove one statement anywhere (any block depth)
//   unwrap           replace an if/while statement by its body
//   hollow_spawn     replace a spawn / spawn_vec body with `return 0;`
//   shrink_width     lower a spawn_vec width literal (1, n/2, n-1)
//   drop_stage       remove one stage of a >=3-stage pipeline
//   simplify_init    replace a let initializer with the literal 0
//   strip_expr       replace a binary/unary expression by one operand
//
// Greedy fixpoint: passes are tried in the order above, first improving
// candidate wins, and the search restarts; when one full sweep yields no
// accepted candidate the result is 1-minimal under the pass list — no
// single pass application can shrink it further (ShrinkResult::
// one_minimal). The whole procedure is deterministic: pass order, site
// order and variant order are fixed, so a fixed (source, evaluator)
// always shrinks to the same program.
//
// Sources the frontend cannot parse (e.g. a compile_error finding that
// is a parse error) fall back to line-granular reduction: drop each
// line, then each contiguous half, to the same greedy fixpoint.

#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace gtdl::fuzz {

// Returns true iff `source` still triggers the finding being shrunk.
// Must be deterministic; must not throw (contain crashes yourself — the
// farm's fork-based evaluator exists for exactly that).
using ShrinkEvaluator = std::function<bool(const std::string& source)>;

struct ShrinkOptions {
  // Hard cap on evaluator invocations; hitting it ends the search with
  // one_minimal = false (the reproducer is still valid, just maybe not
  // minimal).
  std::size_t max_candidates = 4000;
};

struct ShrinkResult {
  // The smallest still-triggering program found (== the input source
  // when nothing could be removed, or when the input never reproduced).
  std::string program;
  // False when the ORIGINAL source did not trigger under the evaluator —
  // the finding is flaky or environment-dependent; `program` is then the
  // input, untouched.
  bool reproduced = false;
  // A full sweep of every pass found no further single-step reduction.
  bool one_minimal = false;
  std::size_t candidates_tried = 0;
  std::size_t reductions_applied = 0;
};

[[nodiscard]] ShrinkResult shrink_program(const std::string& source,
                                          const ShrinkEvaluator& triggers,
                                          const ShrinkOptions& options = {});

}  // namespace gtdl::fuzz
