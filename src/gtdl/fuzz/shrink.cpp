#include "gtdl/fuzz/shrink.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "gtdl/frontend/ast.hpp"
#include "gtdl/frontend/parser.hpp"
#include "gtdl/frontend/printer.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/diagnostics.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Deterministic site enumeration. Every pass walks the program in the
// same fixed pre-order; count() tallies its applicable sites and
// apply(k) re-walks and mutates the k-th one in place. Candidates are
// built by re-parsing the current best source (programs are tiny), so no
// AST clone machinery is needed.

// Depth-first over every statement list: function bodies, if/while arms,
// spawn / spawn_vec bodies, pipeline stages — parents before children,
// source order.
template <typename Fn>
void visit_blocks_expr(Expr& expr, const Fn& fn);

template <typename Fn>
void visit_blocks(Block& block, const Fn& fn) {
  fn(block);
  for (StmtPtr& stmt : block) {
    std::visit(Overloaded{
                   [&](SLet& s) { visit_blocks_expr(*s.init, fn); },
                   [&](SAssign& s) { visit_blocks_expr(*s.value, fn); },
                   [&](SExpr& s) { visit_blocks_expr(*s.expr, fn); },
                   [&](SReturn& s) {
                     if (s.value != nullptr) visit_blocks_expr(*s.value, fn);
                   },
                   [&](SIf& s) {
                     visit_blocks_expr(*s.cond, fn);
                     visit_blocks(s.then_block, fn);
                     visit_blocks(s.else_block, fn);
                   },
                   [&](SWhile& s) {
                     visit_blocks_expr(*s.cond, fn);
                     visit_blocks(s.body, fn);
                   },
               },
               stmt->node);
  }
}

template <typename Fn>
void visit_blocks_expr(Expr& expr, const Fn& fn) {
  std::visit(Overloaded{
                 [&](ECall& e) {
                   for (ExprPtr& arg : e.args) visit_blocks_expr(*arg, fn);
                 },
                 [&](ETouch& e) { visit_blocks_expr(*e.handle, fn); },
                 [&](ESpawn& e) {
                   visit_blocks_expr(*e.handle, fn);
                   visit_blocks(e.body, fn);
                 },
                 [&](EBinary& e) {
                   visit_blocks_expr(*e.lhs, fn);
                   visit_blocks_expr(*e.rhs, fn);
                 },
                 [&](EUnary& e) { visit_blocks_expr(*e.operand, fn); },
                 [&](ESpawnVec& e) {
                   visit_blocks_expr(*e.width, fn);
                   visit_blocks(e.body, fn);
                 },
                 [&](ETouchAll& e) { visit_blocks_expr(*e.handle, fn); },
                 [&](EIndex& e) {
                   visit_blocks_expr(*e.handle, fn);
                   visit_blocks_expr(*e.index, fn);
                 },
                 [&](EPipeline& e) {
                   for (Block& stage : e.stages) visit_blocks(stage, fn);
                 },
                 [](auto&) {},
             },
             expr.node);
}

// Every owning expression slot, same order (so a slot can be replaced
// wholesale, e.g. a binary by one of its operands).
template <typename Fn>
void visit_slots(ExprPtr& slot, const Fn& fn);

template <typename Fn>
void visit_slots_block(Block& block, const Fn& fn) {
  for (StmtPtr& stmt : block) {
    std::visit(Overloaded{
                   [&](SLet& s) { visit_slots(s.init, fn); },
                   [&](SAssign& s) { visit_slots(s.value, fn); },
                   [&](SExpr& s) { visit_slots(s.expr, fn); },
                   [&](SReturn& s) {
                     if (s.value != nullptr) visit_slots(s.value, fn);
                   },
                   [&](SIf& s) {
                     visit_slots(s.cond, fn);
                     visit_slots_block(s.then_block, fn);
                     visit_slots_block(s.else_block, fn);
                   },
                   [&](SWhile& s) {
                     visit_slots(s.cond, fn);
                     visit_slots_block(s.body, fn);
                   },
               },
               stmt->node);
  }
}

template <typename Fn>
void visit_slots(ExprPtr& slot, const Fn& fn) {
  fn(slot);
  std::visit(Overloaded{
                 [&](ECall& e) {
                   for (ExprPtr& arg : e.args) visit_slots(arg, fn);
                 },
                 [&](ETouch& e) { visit_slots(e.handle, fn); },
                 [&](ESpawn& e) {
                   visit_slots(e.handle, fn);
                   visit_slots_block(e.body, fn);
                 },
                 [&](EBinary& e) {
                   visit_slots(e.lhs, fn);
                   visit_slots(e.rhs, fn);
                 },
                 [&](EUnary& e) { visit_slots(e.operand, fn); },
                 [&](ESpawnVec& e) {
                   visit_slots(e.width, fn);
                   visit_slots_block(e.body, fn);
                 },
                 [&](ETouchAll& e) { visit_slots(e.handle, fn); },
                 [&](EIndex& e) {
                   visit_slots(e.handle, fn);
                   visit_slots(e.index, fn);
                 },
                 [&](EPipeline& e) {
                   for (Block& stage : e.stages) visit_slots_block(stage, fn);
                 },
                 [](auto&) {},
             },
             slot->node);
}

ExprPtr int_literal(std::int64_t value) {
  auto expr = std::make_unique<Expr>();
  expr->node = EIntLit{value};
  return expr;
}

StmtPtr return_zero() {
  auto stmt = std::make_unique<Stmt>();
  stmt->node = SReturn{int_literal(0)};
  return stmt;
}

bool is_return_zero(const Block& block) {
  if (block.size() != 1) return false;
  const auto* ret = std::get_if<SReturn>(&block[0]->node);
  if (ret == nullptr || ret->value == nullptr) return false;
  const auto* lit = std::get_if<EIntLit>(&ret->value->node);
  return lit != nullptr && lit->value == 0;
}

struct Pass {
  const char* name;
  std::function<std::size_t(Program&)> count;
  // Mutates site k in place; returns false when k is out of range.
  std::function<bool(Program&, std::size_t)> apply;
};

// Finds the k-th site accepted by `matches` among the program's blocks
// and runs `mutate` on (block, index-within-block).
bool nth_stmt_site(Program& p, std::size_t k,
                   const std::function<bool(const StmtPtr&)>& matches,
                   const std::function<void(Block&, std::size_t)>& mutate) {
  bool done = false;
  for (Function& f : p.functions) {
    visit_blocks(f.body, [&](Block& b) {
      if (done) return;
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (!matches(b[i])) continue;
        if (k > 0) {
          --k;
          continue;
        }
        mutate(b, i);
        done = true;
        return;
      }
    });
    if (done) return true;
  }
  return false;
}

std::size_t count_stmt_sites(
    Program& p, const std::function<bool(const StmtPtr&)>& matches) {
  std::size_t n = 0;
  for (Function& f : p.functions) {
    visit_blocks(f.body, [&](Block& b) {
      for (const StmtPtr& s : b) {
        if (matches(s)) ++n;
      }
    });
  }
  return n;
}

// spawn_vec width-shrink variants for a literal width n, strongest
// first. Deterministic and strictly decreasing.
std::vector<std::int64_t> width_variants(std::int64_t n) {
  std::vector<std::int64_t> out;
  if (n > 1) out.push_back(1);
  if (n / 2 > 1) out.push_back(n / 2);
  if (n - 1 > 1 && n - 1 != n / 2) out.push_back(n - 1);
  return out;
}

std::vector<Pass> build_passes() {
  std::vector<Pass> passes;

  passes.push_back(Pass{
      "drop_function",
      [](Program& p) { return p.functions.size(); },
      [](Program& p, std::size_t k) {
        if (k >= p.functions.size()) return false;
        p.functions.erase(p.functions.begin() +
                          static_cast<std::ptrdiff_t>(k));
        return true;
      },
  });

  const auto any_stmt = [](const StmtPtr&) { return true; };
  passes.push_back(Pass{
      "drop_stmt",
      [any_stmt](Program& p) { return count_stmt_sites(p, any_stmt); },
      [any_stmt](Program& p, std::size_t k) {
        return nth_stmt_site(p, k, any_stmt, [](Block& b, std::size_t i) {
          b.erase(b.begin() + static_cast<std::ptrdiff_t>(i));
        });
      },
  });

  const auto unwrappable = [](const StmtPtr& s) {
    return std::holds_alternative<SIf>(s->node) ||
           std::holds_alternative<SWhile>(s->node);
  };
  passes.push_back(Pass{
      "unwrap",
      [unwrappable](Program& p) { return count_stmt_sites(p, unwrappable); },
      [unwrappable](Program& p, std::size_t k) {
        return nth_stmt_site(p, k, unwrappable, [](Block& b, std::size_t i) {
          Block inner;
          if (auto* iff = std::get_if<SIf>(&b[i]->node)) {
            inner = std::move(iff->then_block);
          } else {
            inner = std::move(std::get<SWhile>(b[i]->node).body);
          }
          b.erase(b.begin() + static_cast<std::ptrdiff_t>(i));
          b.insert(b.begin() + static_cast<std::ptrdiff_t>(i),
                   std::make_move_iterator(inner.begin()),
                   std::make_move_iterator(inner.end()));
        });
      },
  });

  // Spawn / spawn_vec bodies that are not already `return 0;`.
  const auto hollow_body = [](Expr& e) -> Block* {
    if (auto* spawn = std::get_if<ESpawn>(&e.node)) {
      if (!is_return_zero(spawn->body)) return &spawn->body;
    } else if (auto* vec = std::get_if<ESpawnVec>(&e.node)) {
      if (!is_return_zero(vec->body)) return &vec->body;
    }
    return nullptr;
  };
  passes.push_back(Pass{
      "hollow_spawn",
      [hollow_body](Program& p) {
        std::size_t n = 0;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (hollow_body(*slot) != nullptr) ++n;
          });
        }
        return n;
      },
      [hollow_body](Program& p, std::size_t k) {
        bool done = false;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (done) return;
            Block* body = hollow_body(*slot);
            if (body == nullptr) return;
            if (k > 0) {
              --k;
              return;
            }
            body->clear();
            body->push_back(return_zero());
            done = true;
          });
          if (done) return true;
        }
        return false;
      },
  });

  const auto vec_width = [](Expr& e) -> EIntLit* {
    auto* vec = std::get_if<ESpawnVec>(&e.node);
    if (vec == nullptr) return nullptr;
    return std::get_if<EIntLit>(&vec->width->node);
  };
  passes.push_back(Pass{
      "shrink_width",
      [vec_width](Program& p) {
        std::size_t n = 0;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (EIntLit* w = vec_width(*slot)) {
              n += width_variants(w->value).size();
            }
          });
        }
        return n;
      },
      [vec_width](Program& p, std::size_t k) {
        bool done = false;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (done) return;
            EIntLit* w = vec_width(*slot);
            if (w == nullptr) return;
            const std::vector<std::int64_t> variants =
                width_variants(w->value);
            if (k >= variants.size()) {
              k -= variants.size();
              return;
            }
            w->value = variants[k];
            done = true;
          });
          if (done) return true;
        }
        return false;
      },
  });

  const auto pipeline_stages = [](Expr& e) -> std::vector<Block>* {
    auto* pipe = std::get_if<EPipeline>(&e.node);
    // Two-stage pipelines cannot lose a stage (the grammar requires two);
    // they fall to drop_stmt instead.
    if (pipe == nullptr || pipe->stages.size() < 3) return nullptr;
    return &pipe->stages;
  };
  passes.push_back(Pass{
      "drop_stage",
      [pipeline_stages](Program& p) {
        std::size_t n = 0;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (auto* stages = pipeline_stages(*slot)) n += stages->size();
          });
        }
        return n;
      },
      [pipeline_stages](Program& p, std::size_t k) {
        bool done = false;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (done) return;
            auto* stages = pipeline_stages(*slot);
            if (stages == nullptr) return;
            if (k >= stages->size()) {
              k -= stages->size();
              return;
            }
            stages->erase(stages->begin() + static_cast<std::ptrdiff_t>(k));
            done = true;
          });
          if (done) return true;
        }
        return false;
      },
  });

  const auto simplifiable_let = [](const StmtPtr& s) {
    const auto* let = std::get_if<SLet>(&s->node);
    return let != nullptr &&
           !std::holds_alternative<EIntLit>(let->init->node);
  };
  passes.push_back(Pass{
      "simplify_init",
      [simplifiable_let](Program& p) {
        return count_stmt_sites(p, simplifiable_let);
      },
      [simplifiable_let](Program& p, std::size_t k) {
        return nth_stmt_site(p, k, simplifiable_let,
                             [](Block& b, std::size_t i) {
                               std::get<SLet>(b[i]->node).init =
                                   int_literal(0);
                             });
      },
  });

  // Binary -> lhs, binary -> rhs, unary -> operand.
  const auto strip_variants = [](Expr& e) -> std::size_t {
    if (std::holds_alternative<EBinary>(e.node)) return 2;
    if (std::holds_alternative<EUnary>(e.node)) return 1;
    return 0;
  };
  passes.push_back(Pass{
      "strip_expr",
      [strip_variants](Program& p) {
        std::size_t n = 0;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            n += strip_variants(*slot);
          });
        }
        return n;
      },
      [strip_variants](Program& p, std::size_t k) {
        bool done = false;
        for (Function& f : p.functions) {
          visit_slots_block(f.body, [&](ExprPtr& slot) {
            if (done) return;
            const std::size_t variants = strip_variants(*slot);
            if (variants == 0) return;
            if (k >= variants) {
              k -= variants;
              return;
            }
            ExprPtr replacement;
            if (auto* bin = std::get_if<EBinary>(&slot->node)) {
              replacement = std::move(k == 0 ? bin->lhs : bin->rhs);
            } else {
              replacement = std::move(std::get<EUnary>(slot->node).operand);
            }
            slot = std::move(replacement);
            done = true;
          });
          if (done) return true;
        }
        return false;
      },
  });

  return passes;
}

std::optional<Program> parse_quiet(const std::string& source) {
  DiagnosticEngine diags;
  return parse_program(source, diags);
}

// Greedy first-improvement fixpoint over the AST pass list. Returns the
// final source; sets one_minimal when a full sweep found nothing.
void shrink_ast(const std::string& start, const ShrinkEvaluator& triggers,
                const ShrinkOptions& options, ShrinkResult& result) {
  const std::vector<Pass> passes = build_passes();
  std::string current = start;
  for (;;) {
    bool improved = false;
    for (const Pass& pass : passes) {
      std::optional<Program> base = parse_quiet(current);
      if (!base.has_value()) {
        // Cannot happen for printer output; bail conservatively.
        result.program = current;
        return;
      }
      const std::size_t sites = pass.count(*base);
      for (std::size_t k = 0; k < sites && !improved; ++k) {
        std::optional<Program> candidate_ast = parse_quiet(current);
        if (!candidate_ast.has_value()) break;
        if (!pass.apply(*candidate_ast, k)) break;
        const std::string candidate = print_program(*candidate_ast);
        if (candidate == current) continue;
        if (result.candidates_tried >= options.max_candidates) {
          result.program = current;
          return;  // budget: reproducer valid, minimality unproven
        }
        ++result.candidates_tried;
        if (triggers(candidate)) {
          current = candidate;
          ++result.reductions_applied;
          improved = true;
        }
      }
      if (improved) break;  // restart the sweep from the first pass
    }
    if (!improved) {
      result.one_minimal = true;
      result.program = current;
      return;
    }
  }
}

// Fallback for sources the parser rejects: greedy single-line drops.
void shrink_lines(const std::string& start, const ShrinkEvaluator& triggers,
                  const ShrinkOptions& options, ShrinkResult& result) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= start.size()) {
    const std::size_t nl = start.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < start.size()) lines.push_back(start.substr(pos));
      break;
    }
    lines.push_back(start.substr(pos, nl - pos));
    pos = nl + 1;
  }
  const auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  };
  for (;;) {
    bool improved = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::vector<std::string> candidate_lines = lines;
      candidate_lines.erase(candidate_lines.begin() +
                            static_cast<std::ptrdiff_t>(i));
      const std::string candidate = join(candidate_lines);
      if (result.candidates_tried >= options.max_candidates) {
        result.program = join(lines);
        return;
      }
      ++result.candidates_tried;
      if (triggers(candidate)) {
        lines = std::move(candidate_lines);
        ++result.reductions_applied;
        improved = true;
        break;
      }
    }
    if (!improved) {
      result.one_minimal = true;
      result.program = join(lines);
      return;
    }
  }
}

}  // namespace

ShrinkResult shrink_program(const std::string& source,
                            const ShrinkEvaluator& triggers,
                            const ShrinkOptions& options) {
  obs::Span span("fuzz", "shrink");
  ShrinkResult result;
  result.program = source;

  ++result.candidates_tried;
  if (!triggers(source)) {
    return result;  // reproduced = false: flaky or environment-dependent
  }
  result.reproduced = true;

  std::optional<Program> parsed = parse_quiet(source);
  if (!parsed.has_value()) {
    shrink_lines(source, triggers, options, result);
    return result;
  }

  // Normalize through the printer first so AST candidates diff against a
  // stable rendering. If normalization itself loses the finding (it
  // should not — printing preserves structure), shrink the raw text.
  const std::string normalized = print_program(*parsed);
  if (normalized != source) {
    ++result.candidates_tried;
    if (!triggers(normalized)) {
      shrink_lines(source, triggers, options, result);
      return result;
    }
    ++result.reductions_applied;
  }
  shrink_ast(normalized, triggers, options, result);
  return result;
}

}  // namespace gtdl::fuzz
