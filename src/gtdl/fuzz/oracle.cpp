#include "gtdl/fuzz/oracle.hpp"

#include <optional>

#include "gtdl/detect/deadlock.hpp"
#include "gtdl/frontend/driver.hpp"
#include "gtdl/frontend/interp.hpp"
#include "gtdl/fuzz/random_program.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/fault.hpp"

namespace gtdl::fuzz {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kSoundFree: return "sound_free";
    case Outcome::kTruePositive: return "true_positive";
    case Outcome::kImprecise: return "imprecise";
    case Outcome::kUnsound: return "unsound";
    case Outcome::kUnknown: return "unknown";
    case Outcome::kCompileError: return "compile_error";
    case Outcome::kCrash: return "crash";
    case Outcome::kWorkerCrash: return "worker_crash";
    case Outcome::kWorkerHang: return "worker_hang";
  }
  return "?";
}

bool is_finding(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kUnsound:
    case Outcome::kCompileError:
    case Outcome::kCrash:
    case Outcome::kWorkerCrash:
    case Outcome::kWorkerHang:
      return true;
    default:
      return false;
  }
}

namespace {

Budget::Limits budget_limits(const OracleOptions& options) {
  Budget::Limits limits;
  limits.deadline_ms = options.timeout_ms;
  limits.max_steps = options.budget_steps;
  limits.max_bytes = options.budget_mb * 1024 * 1024;
  return limits;
}

std::string first_line(std::string text) {
  const std::size_t nl = text.find('\n');
  if (nl != std::string::npos) text.resize(nl);
  return text;
}

// Interpreter future names ("f$17") are drawn from a process-global
// counter, so the number depends on how many programs this process
// classified before. Scrub it so a detail line is a deterministic
// function of (program, seed) — the line number it quotes carries the
// location. Static-analysis vertex names (main_u$1) are per-program and
// stay.
std::string scrub_future_ids(std::string text) {
  std::size_t pos = 0;
  while ((pos = text.find("f$", pos)) != std::string::npos) {
    const std::size_t start = pos + 2;
    std::size_t end = start;
    while (end < text.size() && text[end] >= '0' && text[end] <= '9') {
      ++end;
    }
    if (end > start) text.replace(start, end - start, "N");
    pos = start + 1;
  }
  return text;
}

std::string triage_line(const std::string& text) {
  return scrub_future_ids(first_line(text));
}

// The classification proper; may throw (wrapped by classify_program).
OracleResult classify_impl(const std::string& source, std::uint64_t seed,
                           const OracleOptions& options) {
  OracleResult result;

  DiagnosticEngine diags;
  auto compiled = compile_futlang(source, diags);
  if (!compiled.has_value()) {
    result.outcome = Outcome::kCompileError;
    result.detail = first_line(diags.render());
    return result;
  }

  DetectOptions detect;
  Budget analysis_budget(budget_limits(options));
  detect.budget = &analysis_budget;
  const DeadlockVerdict verdict =
      check_deadlock_freedom(compiled->inferred.program_gtype, detect);
  result.static_verdict = verdict.verdict == Verdict::kDeadlockFree
                              ? "deadlock-free"
                              : (verdict.verdict == Verdict::kMayDeadlock
                                     ? "may-deadlock"
                                     : "unknown");
  if (verdict.verdict == Verdict::kUnknown) {
    result.outcome = Outcome::kUnknown;
    result.detail = verdict.budget.render();
    return result;
  }

  // Ground truth: several bounded executions under distinct schedules.
  std::string deadlock_reason;
  bool interp_gave_up = false;
  std::string give_up_reason;
  for (unsigned run = 1; run <= options.run_seeds; ++run) {
    InterpOptions interp_options;
    std::uint64_t mix = seed ^ (0x517cc1b727220a95ull * run);
    interp_options.seed = splitmix64_next(mix);
    interp_options.max_steps = options.max_interp_steps;
    std::optional<Budget> watchdog;
    if (options.timeout_ms != 0 || options.budget_steps != 0 ||
        options.budget_mb != 0) {
      watchdog.emplace(budget_limits(options));
      interp_options.budget = &*watchdog;
    }
    const InterpResult run_result =
        interpret(compiled->program, interp_options);
    if (run_result.deadlock.has_value()) {
      ++result.deadlocked_runs;
      if (deadlock_reason.empty()) {
        deadlock_reason = triage_line(*run_result.deadlock);
      }
      // Ground-truth coherence: the interpreter's deadlock signal and
      // the recorded graph's verdict must agree — a split oracle is a
      // bug in the oracle itself, surfaced as a finding, never trusted.
      if (!run_result.graph_deadlock().any()) {
        result.outcome = Outcome::kCrash;
        result.detail = "oracle incoherence: interpreter deadlocked but "
                        "recorded graph is clean";
        return result;
      }
    } else if (run_result.error.has_value()) {
      // Budget/step exhaustion (or a generator-invariant violation —
      // surfaced below as a crash-grade finding, not silently skipped).
      if (run_result.budget_exhausted ||
          run_result.error->find("step budget") != std::string::npos) {
        interp_gave_up = true;
        if (give_up_reason.empty()) {
          give_up_reason = triage_line(*run_result.error);
        }
      } else {
        result.outcome = Outcome::kCrash;
        result.detail =
            "interpreter error: " + triage_line(*run_result.error);
        return result;
      }
    }
  }

  if (verdict.verdict == Verdict::kDeadlockFree) {
    if (result.deadlocked_runs > 0) {
      result.outcome = Outcome::kUnsound;
      result.detail = deadlock_reason;
    } else if (interp_gave_up) {
      // Freedom was claimed but ground truth never finished: no
      // execution contradicted the claim, so this is an unknown, not a
      // confirmation.
      result.outcome = Outcome::kUnknown;
      result.detail = "execution gave up: " + give_up_reason;
    } else {
      result.outcome = Outcome::kSoundFree;
    }
    return result;
  }
  if (result.deadlocked_runs > 0) {
    result.outcome = Outcome::kTruePositive;
    result.detail = deadlock_reason;
  } else if (interp_gave_up) {
    result.outcome = Outcome::kUnknown;
    result.detail = "execution gave up: " + give_up_reason;
  } else {
    result.outcome = Outcome::kImprecise;
    result.detail = first_line(verdict.diags.render());
  }
  return result;
}

}  // namespace

OracleResult classify_program(const std::string& source, std::uint64_t seed,
                              const OracleOptions& options) {
  obs::Span span("fuzz", "classify");
  // Per-program fault arming: configure() resets the arrival counter, so
  // the k-th arrival within THIS program decides injection — the same
  // program always faults (or not) identically, independent of farm
  // position. Disarm before returning so the caller's process state is
  // untouched (the shrinker parses candidates in the same process).
  struct FaultScope {
    bool armed = false;
    ~FaultScope() {
      if (armed) fault::clear();
    }
  } fault_scope;
  if (!options.fault_spec.empty()) {
    std::string error;
    if (!fault::configure(options.fault_spec, &error)) {
      OracleResult bad;
      bad.outcome = Outcome::kCrash;
      bad.detail = "bad fault spec: " + error;
      return bad;
    }
    fault_scope.armed = true;
  }
  try {
    return classify_impl(source, seed, options);
  } catch (const fault::FaultInjected& fault) {
    OracleResult result;
    result.outcome = Outcome::kCrash;
    result.detail = std::string("injected fault at point '") + fault.point +
                    "'";
    return result;
  } catch (const std::exception& e) {
    OracleResult result;
    result.outcome = Outcome::kCrash;
    result.detail = std::string("exception: ") + e.what();
    return result;
  } catch (...) {
    OracleResult result;
    result.outcome = Outcome::kCrash;
    result.detail = "unknown exception";
    return result;
  }
}

}  // namespace gtdl::fuzz
