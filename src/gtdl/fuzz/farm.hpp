// The differential fuzzing farm: sharded worker PROCESSES generating
// seeded random FutLang programs and running each through the
// static-vs-interpreter oracle (oracle.hpp), with crash and hang
// containment at the process boundary.
//
// Containment model. Workers are fork()ed children; each announces a
// seed on its pipe ("S <seed>") before touching it and reports the
// classification ("R <seed> ...") after. A worker that segfaults, OOMs,
// aborts, or wedges therefore dies (or is killed) with exactly one
// announced-but-unreported seed — the parent records that seed as a
// worker_crash / worker_hang finding and respawns the worker at the next
// index. A respawn storm (more than max_restarts respawns) aborts the
// run with exit code 2: at that point the harness itself is broken and
// findings would be noise.
//
// Seed discipline. Worker w classifies seeds seed_base + w + i*jobs
// (interleaved), so the seed set of a count-mode run is independent of
// jobs, and any finding is replayable from its seed alone: program
// generation is platform-deterministic (random_program.hpp, splitmix64),
// collections are enabled iff the seed is odd, and the oracle derives
// its schedules from the same seed. The parent never ships program text
// across the pipe — it regenerates it from the seed.
//
// Findings are shrunk (shrink.hpp) to minimal reproducers; crash-grade
// findings are evaluated in a fork per candidate so a reproducing
// candidate cannot take the farm down. Shrunk reproducers and their
// originals are written to findings_dir; bench_json gets the run's
// precision / unknown / throughput summary (docs/EXPERIMENTS.md E16).
//
// Exit codes (FarmReport::exit_code):
//   0  clean: no findings
//   1  at least one UNSOUND finding — release blocker
//   2  the farm itself failed (restart storm, bad configuration)
//   4  crash-grade or generator findings, but nothing unsound

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gtdl/fuzz/oracle.hpp"

namespace gtdl::fuzz {

struct FarmOptions {
  unsigned jobs = 2;
  std::uint64_t seed_base = 1;
  // Exactly one stop condition: wall-clock (duration_s > 0) or program
  // count (max_programs > 0). Count mode is fully deterministic in the
  // seed SET (quotas are split across workers); duration mode is not.
  double duration_s = 0;
  std::uint64_t max_programs = 0;

  OracleOptions oracle;

  // Where shrunk reproducers + originals are written (empty: nowhere).
  std::string findings_dir;
  // Where the machine-readable run summary is written (empty: nowhere).
  std::string bench_json;

  bool shrink = true;
  std::size_t shrink_max_candidates = 2000;
  // Shrink at most this many findings (dedup'd by seed, worst first) —
  // a pathological run should not spend forever minimizing.
  std::size_t max_shrink_findings = 16;

  // Worker-respawn storm cap: the run aborts (exit 2) once more than
  // this many respawns have happened.
  unsigned max_restarts = 8;
  // A worker with an announced seed and no report for this long (plus
  // the oracle's own timeout) is declared hung and killed. 0 disables.
  std::uint64_t hang_timeout_ms = 10'000;

  // Test hook: the worker that reaches this seed abort()s right after
  // announcing it — exercises the crash-containment path end to end
  // (0 = off).
  std::uint64_t kill_seed = 0;

  // Stream progress lines to stderr roughly every 2 s.
  bool progress = false;
};

struct Finding {
  std::uint64_t seed = 0;
  bool collections = false;
  Outcome outcome = Outcome::kCrash;
  std::string detail;
  // Regenerated from the seed by the parent.
  std::string program;
  // Shrinking results (shrunk empty when shrinking was off/skipped).
  std::string shrunk;
  bool shrink_reproduced = false;
  bool one_minimal = false;
};

struct FarmReport {
  std::uint64_t programs = 0;
  double elapsed_s = 0;
  std::uint64_t counts[kOutcomeCount] = {};
  std::vector<Finding> findings;
  unsigned worker_restarts = 0;
  bool restart_storm = false;
  // Configuration / setup failure (also forces exit 2).
  std::string error;

  [[nodiscard]] std::uint64_t count(Outcome o) const {
    return counts[static_cast<unsigned>(o)];
  }
  // true_positive / (true_positive + imprecise); 1.0 when no rejects.
  [[nodiscard]] double precision() const;
  [[nodiscard]] double unknown_rate() const;
  [[nodiscard]] int exit_code() const;
};

// Runs the farm to completion (blocking). Never throws; configuration
// and setup failures come back via FarmReport::error.
[[nodiscard]] FarmReport run_farm(const FarmOptions& options);

// Re-runs one seed exactly as a worker would have (generate + classify,
// in-process) — the replay path behind `fdlf --replay SEED`.
[[nodiscard]] OracleResult replay_seed(std::uint64_t seed,
                                       const OracleOptions& options,
                                       std::string* program_out = nullptr);

// Renders the bench_fuzz.json document (schema: docs/EXPERIMENTS.md E16).
[[nodiscard]] std::string render_bench_json(const FarmReport& report,
                                            const FarmOptions& options);

}  // namespace gtdl::fuzz
