// Random-but-always-well-typed FutLang program generator, shared by the
// differential fuzzing farm (fuzz/farm.hpp, the fdlf binary), the
// end-to-end soundness fuzz (tests/test_e2e_fuzz.cpp), the streaming
// enumeration differential suite (tests/test_streaming.cpp), and the
// collection-constructor differential suite (tests/test_adt.cpp).
//
// The generator emits straight-line main() bodies over a pool of future
// handles with new/spawn/touch in arbitrary (often unsafe) orders, plus
// spawn bodies that may touch earlier handles — including touch-before-
// spawn, double-touch, never-spawned, conditional regions, and nested
// spawn bodies.
//
// With `collections` enabled it additionally emits the ISSUE-6 forms —
// spawn_vec families (whose one body may touch scalar handles),
// touch_all joins, indexed member touches fs[i], and staged pipelines —
// wired into the same shuffled-hazard scheme, so touch-before-spawn and
// never-spawned bugs arise through family members and stages too. The
// flag is off by default and drawing it does not perturb the RNG stream,
// so existing seeds keep generating byte-identical programs.
//
// RNG-stream compatibility (kRngStreamVersion):
//   v1  (PRs 4–9) drew from std::mt19937_64 through
//       std::uniform_int_distribution and std::shuffle — both of which
//       the C++ standard leaves implementation-defined, so one seed
//       produced DIFFERENT programs under libstdc++ vs libc++.
//   v2  (current, "splitmix64-v2") draws every decision from an inline
//       splitmix64 sequence (Steele et al., the exact reference
//       constants) with modulo reduction, and shuffles with an inline
//       Fisher–Yates over those draws. A seed now reproduces the same
//       program byte-for-byte on every toolchain and platform — the
//       property the fuzzing farm's seed-replay and crash attribution
//       depend on. v1 seeds do NOT map to the same v2 programs; corpus
//       findings record the stream version so stale seeds are detected
//       rather than silently replayed against the wrong program.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gtdl::fuzz {

// Recorded in farm findings metadata; bump when the draw sequence or the
// program grammar changes so old (seed -> program) claims are detectable.
inline constexpr const char* kRngStreamVersion = "splitmix64-v2";

// The reference splitmix64 step: deterministic on every platform, good
// enough mixing for program-shape decisions (the same generator the
// fault-injection harness uses for its per-arrival decisions).
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed, bool collections = false)
      : state_(seed), collections_(collections) {}

  std::string generate() {
    const unsigned handles = 2 + pick(3);  // 2..4 handles
    std::string body;
    for (unsigned h = 0; h < handles; ++h) {
      body += "  let h" + std::to_string(h) + " = new_future[int]();\n";
    }
    // A shuffled multiset of operations over the handles.
    std::vector<std::string> ops;
    for (unsigned h = 0; h < handles; ++h) {
      // Most handles get spawned (sometimes twice-attempted programs are
      // invalid at runtime, so exactly once here); some never.
      if (pick(10) != 0) ops.push_back(spawn_stmt(h, handles));
      const unsigned touches = pick(3);  // 0..2 touches
      for (unsigned t = 0; t < touches; ++t) {
        ops.push_back("  let v" + fresh() + " = touch(h" +
                      std::to_string(h) + ");\n");
      }
    }
    if (collections_) {
      // Families must be bound before their joins can reference them, so
      // the spawn_vec statements join the header while touch_all /
      // indexed touches enter the shuffled pool. Hazards still flow
      // through the families: a member body may touch a scalar handle
      // whose spawn lands after the join (or never happens at all).
      const unsigned families = 1 + pick(2);  // 1..2 families
      for (unsigned f = 0; f < families; ++f) {
        const unsigned width = 2 + pick(3);  // 2..4 members
        body += "  let fs" + std::to_string(f) + " = spawn_vec[int] " +
                std::to_string(width) + " { " + member_body(handles) +
                " }\n";
        const unsigned joins = pick(3);  // 0..2 whole-family joins
        for (unsigned j = 0; j < joins; ++j) {
          ops.push_back("  let v" + fresh() + " = length(touch_all(fs" +
                        std::to_string(f) + "));\n");
        }
        const unsigned indexed = pick(3);  // 0..2 member joins
        for (unsigned j = 0; j < indexed; ++j) {
          ops.push_back("  let v" + fresh() + " = touch(fs" +
                        std::to_string(f) + "[" +
                        std::to_string(pick(width)) + "]);\n");
        }
      }
      if (pick(2) != 0) ops.push_back(pipeline_stmt(handles));
    }
    shuffle(ops);
    for (std::string& op : ops) body += op;
    return "fun main() {\n" + body + "}\n";
  }

 private:
  // Modulo reduction is biased for bounds that do not divide 2^64, but
  // every bound here is tiny (<= 100), so the bias is < 2^-57 per draw —
  // irrelevant for program-shape sampling, and exactly reproducible.
  unsigned pick(unsigned bound) {
    return static_cast<unsigned>(splitmix64_next(state_) % bound);
  }

  // Inline Fisher–Yates: std::shuffle's draw pattern is implementation-
  // defined, this one is pinned.
  void shuffle(std::vector<std::string>& ops) {
    for (std::size_t i = ops.size(); i > 1; --i) {
      const unsigned j = pick(static_cast<unsigned>(i));
      std::swap(ops[i - 1], ops[j]);
    }
  }

  std::string fresh() { return std::to_string(counter_++); }

  std::string spawn_stmt(unsigned h, unsigned handles) {
    std::string body;
    switch (pick(3)) {
      case 0:
        body = "return " + std::to_string(pick(100)) + ";";
        break;
      case 1: {
        // Touch some other handle from inside the future body.
        const unsigned other = pick(handles);
        if (other == h) {
          body = "return 1;";
        } else {
          body = "return touch(h" + std::to_string(other) + ") + 1;";
        }
        break;
      }
      default: {
        // A conditional body.
        body = "if rand() % 2 == 0 { return 0; } else { return " +
               std::to_string(pick(50)) + "; }";
        break;
      }
    }
    return "  spawn h" + std::to_string(h) + " { " + body + " }\n";
  }

  // The one body shared by every member of a spawn_vec family.
  std::string member_body(unsigned handles) {
    if (pick(2) == 0) {
      return "return " + std::to_string(pick(100)) + ";";
    }
    return "return touch(h" + std::to_string(pick(handles)) + ") + 1;";
  }

  // A 2..3-stage pipeline; stages may pull scalar handles in.
  std::string pipeline_stmt(unsigned handles) {
    const unsigned stages = 2 + pick(2);
    std::string stmt = "  pipeline {\n";
    for (unsigned s = 0; s < stages; ++s) {
      if (pick(2) == 0) {
        stmt += "    stage { let v" + fresh() + " = touch(h" +
                std::to_string(pick(handles)) + "); }\n";
      } else {
        stmt += "    stage { let v" + fresh() + " = " +
                std::to_string(pick(50)) + "; }\n";
      }
    }
    return stmt + "  }\n";
  }

  std::uint64_t state_;
  bool collections_ = false;
  unsigned counter_ = 0;
};

}  // namespace gtdl::fuzz
