#include "gtdl/gtype/kind.hpp"

namespace gtdl {

std::string to_string(const GraphKind& kind) {
  if (!kind.is_pi) return "*";
  return "pi[" + std::to_string(kind.spawn_arity) + ";" +
         std::to_string(kind.touch_arity) + "].*";
}

}  // namespace gtdl
