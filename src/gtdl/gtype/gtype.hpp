// Graph types (paper §2.3; originally Muller, POPL'22).
//
// A graph type G compactly represents the (possibly infinite) set of
// dependency graphs that might result from running a program:
//
//   G ::= •                 one sequential computation
//       | G1 ⊕ G2           sequential composition
//       | G /u              spawn a future thread with designated vertex u
//       | ᵘ\                touch the future with designated vertex u
//       | G1 ∨ G2           either G1 or G2 (runtime choice)
//       | μγ.G              recursive graph type, γ bound in G
//       | γ                 recursive occurrence
//       | νu.G              fresh vertex name u, instantiated uniquely at
//                           every encounter during normalization
//       | Πūf;ūt.G          parameterized by spawnable (ūf) and touchable
//                           (ūt) vertex vectors
//       | G[ūf';ūt']        instantiation of a parameterized graph type
//       | VecSpawn(n, G)/ū  spawn a sized family ū of n futures, each
//                           with body G (futures-in-collections; Rinaldi
//                           et al., arXiv 2311.06984)
//       | TouchAll(ū)       touch every member of the family ū in order
//       | ū[i]              touch the i-th member of the family ū
//       | G1 ▷ G2           pipeline stage composition
//
// The textual (ASCII) syntax used by the printer and parser is:
//
//   1    G1 ; G2    G / u    ~u    G1 | G2    rec g. G    g
//   new u. G    pi[u1,u2; u3]. G    G[u1,u2; u3]
//   vec[u;n]. G    touchall[u;n]    touchidx[u;n;i]    G1 |> G2
//
// Nodes are immutable and shared (structural sharing keeps whole-program
// types produced by inference small even when callee types are inlined at
// every call site). Build values with the functions in namespace `gt`.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gtdl/support/ordered_set.hpp"
#include "gtdl/support/symbol.hpp"

namespace gtdl {

struct GType;
using GTypePtr = std::shared_ptr<const GType>;

// • — the single-vertex graph.
struct GTEmpty {};

// G1 ⊕ G2 — sequential composition.
struct GTSeq {
  GTypePtr lhs;
  GTypePtr rhs;
};

// G1 ∨ G2 — disjunction of alternatives.
struct GTOr {
  GTypePtr lhs;
  GTypePtr rhs;
};

// G /u — spawn of a future thread whose body has graph type G and whose
// designated end vertex is u.
struct GTSpawn {
  GTypePtr body;
  Symbol vertex;
};

// ᵘ\ — touch of the future with designated end vertex u.
struct GTTouch {
  Symbol vertex;
};

// μγ.G — recursive graph type.
struct GTRec {
  Symbol var;
  GTypePtr body;
};

// γ — occurrence of a μ-bound graph variable.
struct GTVar {
  Symbol var;
};

// νu.G — binds a vertex name that normalization instantiates freshly.
struct GTNew {
  Symbol vertex;
  GTypePtr body;
};

// Πūf;ūt.G — parameterized graph type. `spawn_params` may be used in G to
// spawn futures; `touch_params` may be used to touch them.
struct GTPi {
  std::vector<Symbol> spawn_params;
  std::vector<Symbol> touch_params;
  GTypePtr body;
};

// G[ūf';ūt'] — instantiation of a Π (or μΠ) graph type.
struct GTApp {
  GTypePtr fn;
  std::vector<Symbol> spawn_args;
  std::vector<Symbol> touch_args;
};

// --- Collection constructors (Rinaldi et al., "Pipelines and Beyond":
// graph types for futures stored in data structures). A *touch family*
// `family` stands for a sized vector of future handles; normalization
// unrolls it into `width` member vertices spelled `family@0 … family@w-1`
// (the '@' separator cannot appear in source identifiers or in
// Symbol::fresh output, so members never collide with scalar vertices).
// The family symbol itself scopes, substitutes, and ν-binds exactly like
// a scalar vertex; the members exist only in ground graphs.

// VecSpawn(n, G) — spawn a family of `width` futures, each body G. In the
// ground graphs this is (G /u@0) ⊕ … ⊕ (G /u@w-1).
struct GTVecSpawn {
  GTypePtr body;
  Symbol family;
  std::uint32_t width = 0;
};

// TouchAll(ū) — touch every member of the family in index order:
// ~u@0 ⊕ … ⊕ ~u@w-1.
struct GTTouchAll {
  Symbol family;
  std::uint32_t width = 0;
};

// ū[i] — touch one member of the family: ~u@i. Requires i < width.
struct GTTouchIdx {
  Symbol family;
  std::uint32_t width = 0;
  std::uint32_t index = 0;
};

// G1 ▷ G2 — pipeline stage composition: the producer stage G1 runs as a
// spawned future, the consumer stage G2 runs as a second spawned future
// that first touches the producer's completion vertex, and the composed
// graph ends by touching the consumer. Kinding and normalization use the
// desugaring (binder names derived deterministically from the node)
//   νp. νq. (G1 /p) ⊕ ((~p ⊕ G2) /q) ⊕ ~q
struct GTPipe {
  GTypePtr lhs;
  GTypePtr rhs;
};

struct GTypeFacts;  // cached structural facts; see intern.hpp

struct GType {
  std::variant<GTEmpty, GTSeq, GTOr, GTSpawn, GTTouch, GTRec, GTVar, GTNew,
               GTPi, GTApp, GTVecSpawn, GTTouchAll, GTTouchIdx, GTPipe>
      node;
  // Filled by the GTypeInterner (never null for gt::-built values); owned
  // by the interner for the process lifetime.
  const GTypeFacts* facts = nullptr;
};

namespace gt {

[[nodiscard]] GTypePtr empty();
[[nodiscard]] GTypePtr seq(GTypePtr lhs, GTypePtr rhs);
// Left-associated ⊕ over `parts`; • when empty.
[[nodiscard]] GTypePtr seq_all(std::vector<GTypePtr> parts);
[[nodiscard]] GTypePtr alt(GTypePtr lhs, GTypePtr rhs);  // ∨
[[nodiscard]] GTypePtr spawn(GTypePtr body, Symbol vertex);
[[nodiscard]] GTypePtr touch(Symbol vertex);
[[nodiscard]] GTypePtr rec(Symbol var, GTypePtr body);
[[nodiscard]] GTypePtr var(Symbol var);
[[nodiscard]] GTypePtr nu(Symbol vertex, GTypePtr body);
// Nested νu1.νu2...G, innermost last.
[[nodiscard]] GTypePtr nu_all(const std::vector<Symbol>& vertices,
                              GTypePtr body);
[[nodiscard]] GTypePtr pi(std::vector<Symbol> spawn_params,
                          std::vector<Symbol> touch_params, GTypePtr body);
[[nodiscard]] GTypePtr app(GTypePtr fn, std::vector<Symbol> spawn_args,
                           std::vector<Symbol> touch_args);
[[nodiscard]] GTypePtr vecspawn(GTypePtr body, Symbol family,
                                std::uint32_t width);
[[nodiscard]] GTypePtr touch_all(Symbol family, std::uint32_t width);
[[nodiscard]] GTypePtr touch_idx(Symbol family, std::uint32_t width,
                                 std::uint32_t index);
[[nodiscard]] GTypePtr pipe(GTypePtr lhs, GTypePtr rhs);

}  // namespace gt

// The member vertex `family@index` of a touch family; see GTVecSpawn.
[[nodiscard]] Symbol family_member(Symbol family, std::uint32_t index);

// --- Collection-constructor expansions --------------------------------------
// The analyses share ONE definition of what the collection constructors
// mean in terms of the scalar core, so the normalizer, the kind checkers
// and the detectors cannot drift apart.

// (G /ū@0) ⊕ … ⊕ (G /ū@w-1); • when the family is empty.
[[nodiscard]] GTypePtr vecspawn_unroll(const GTVecSpawn& node);

// ~ū@0 ⊕ … ⊕ ~ū@w-1; • when the family is empty.
[[nodiscard]] GTypePtr touch_all_unroll(const GTTouchAll& node);

// Desugars `pipe` (which must hold a GTPipe) to
//   νp. νq. (G1 /p) ⊕ ((~p ⊕ G2) /q) ⊕ ~q
// with binder names derived deterministically from the pipe node's
// interner id, so the same node always desugars to the same (interned)
// term and nested pipes never shadow each other.
[[nodiscard]] GTypePtr pipe_desugar(const GTypePtr& pipe);

// --- Structural queries -----------------------------------------------------

// Vertex names free in `g` (not bound by an enclosing ν or Π).
[[nodiscard]] OrderedSet<Symbol> free_vertices(const GType& g);

// Graph variables free in `g` (not bound by an enclosing μ).
[[nodiscard]] OrderedSet<Symbol> free_gvars(const GType& g);

// Counts of selected constructors; used to pick normalization depths and
// for bench statistics.
struct GTypeStats {
  std::size_t nodes = 0;
  std::size_t mu_bindings = 0;
  std::size_t applications = 0;
  std::size_t nu_bindings = 0;
  std::size_t pi_bindings = 0;
  std::size_t spawns = 0;
  std::size_t touches = 0;
  std::size_t vecspawn_bindings = 0;  // VecSpawn nodes
  std::size_t family_touches = 0;     // TouchAll + TouchIdx nodes
  std::size_t pipes = 0;              // Pipe nodes
};
[[nodiscard]] GTypeStats stats(const GType& g);

// Exact structural equality, including bound names.
[[nodiscard]] bool structurally_equal(const GType& a, const GType& b);

// Equality up to consistent renaming of bound vertex and graph variables.
[[nodiscard]] bool alpha_equal(const GType& a, const GType& b);

// Renders with the ASCII syntax documented above. Parenthesizes only where
// required by precedence ( | < ; < postfix / and [..] ).
[[nodiscard]] std::string to_string(const GType& g);
[[nodiscard]] std::string to_string(const GTypePtr& g);

}  // namespace gtdl
