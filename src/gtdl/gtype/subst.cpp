#include "gtdl/gtype/subst.hpp"

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/support/flat_memo.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

Symbol apply_subst(const VertexSubst& subst, Symbol u) {
  auto it = subst.find(u);
  return it == subst.end() ? u : it->second;
}

std::vector<Symbol> apply_all(const VertexSubst& subst,
                              const std::vector<Symbol>& names) {
  std::vector<Symbol> out;
  out.reserve(names.size());
  for (Symbol u : names) out.push_back(apply_subst(subst, u));
  return out;
}

// True if any value in `subst` equals `u` — i.e. binding `u` here would
// capture a substituted-in name.
bool in_range(const VertexSubst& subst, Symbol u) {
  for (const auto& [from, to] : subst) {
    (void)from;
    if (to == u) return true;
  }
  return false;
}

// Stateful vertex substitution over the interned DAG.
//
// Two interner-enabled shortcuts:
//   * identity fast path — if the substitution's domain does not intersect
//     the node's cached free-vertex set, the node IS the result;
//   * memo table keyed on (node id, epoch). The epoch changes whenever a
//     binder modifies the working map (shadowing or capture renames) and is
//     restored with it, so equal epochs guarantee equal map contents and
//     shared subterms are rewritten once instead of once per path.
struct VertexSubstituter {
  VertexSubst subst;
  SymbolBitset domain;  // dense-index bitset of subst's keys
  std::uint64_t epoch = 0;
  std::uint64_t epoch_counter = 0;
  // node id -> (epoch at store time, result)
  LeasedMemo<std::uint64_t, std::pair<std::uint64_t, GTypePtr>> memo;
  bool use_memo = false;

  GTypePtr walk(const GTypePtr& g) {
    if (subst.empty()) return g;
    const GTypeFacts* facts = g->facts;
    auto& interner = GTypeInterner::instance();
    if (use_memo && facts != nullptr) {
      if (!domain.intersects(facts->free_vertices)) {
        interner.note_subst_identity_hit();
        return g;
      }
      const auto* hit = memo.find(facts->id);
      if (hit != nullptr && hit->first == epoch) {
        interner.note_subst_memo(true);
        return hit->second;
      }
      interner.note_subst_memo(false);
    }
    GTypePtr result = std::visit(
        Overloaded{
            [&](const GTEmpty&) { return g; },
            [&](const GTSeq& node) {
              return gt::seq(walk(node.lhs), walk(node.rhs));
            },
            [&](const GTOr& node) {
              return gt::alt(walk(node.lhs), walk(node.rhs));
            },
            [&](const GTSpawn& node) {
              return gt::spawn(walk(node.body),
                               apply_subst(subst, node.vertex));
            },
            [&](const GTTouch& node) {
              return gt::touch(apply_subst(subst, node.vertex));
            },
            [&](const GTRec& node) {
              return gt::rec(node.var, walk(node.body));
            },
            [&](const GTVar&) { return g; },
            [&](const GTNew& node) {
              return under_binder({node.vertex}, node.body,
                                  [](std::vector<Symbol> bound,
                                     GTypePtr body) {
                                    return gt::nu(bound.front(),
                                                  std::move(body));
                                  });
            },
            [&](const GTPi& node) {
              const std::size_t n_spawn = node.spawn_params.size();
              std::vector<Symbol> bound = node.spawn_params;
              bound.insert(bound.end(), node.touch_params.begin(),
                           node.touch_params.end());
              return under_binder(
                  std::move(bound), node.body,
                  [n_spawn](std::vector<Symbol> names, GTypePtr body) {
                    std::vector<Symbol> spawn(
                        names.begin(),
                        names.begin() + static_cast<std::ptrdiff_t>(n_spawn));
                    std::vector<Symbol> touch(
                        names.begin() + static_cast<std::ptrdiff_t>(n_spawn),
                        names.end());
                    return gt::pi(std::move(spawn), std::move(touch),
                                  std::move(body));
                  });
            },
            [&](const GTApp& node) {
              return gt::app(walk(node.fn), apply_all(subst, node.spawn_args),
                             apply_all(subst, node.touch_args));
            },
            [&](const GTVecSpawn& node) {
              // The family symbol substitutes like a scalar spawn vertex;
              // member names are derived only at unroll time, so renaming
              // the family renames every member with it.
              return gt::vecspawn(walk(node.body),
                                  apply_subst(subst, node.family),
                                  node.width);
            },
            [&](const GTTouchAll& node) {
              return gt::touch_all(apply_subst(subst, node.family),
                                   node.width);
            },
            [&](const GTTouchIdx& node) {
              return gt::touch_idx(apply_subst(subst, node.family),
                                   node.width, node.index);
            },
            [&](const GTPipe& node) {
              return gt::pipe(walk(node.lhs), walk(node.rhs));
            },
        },
        g->node);
    if (use_memo && facts != nullptr) {
      memo.put(facts->id, {epoch, result});
    }
    return result;
  }

  // Handles a vertex binder (ν or the Π parameter lists): removes shadowed
  // entries, renames the binder if it would capture, recurses, and restores
  // the substitution (including the memo epoch). `rebind` rebuilds the node
  // with new names and body.
  template <typename Rebind>
  GTypePtr under_binder(std::vector<Symbol> bound, const GTypePtr& body,
                        const Rebind& rebind) {
    // Save entries shadowed by the binder and remove them.
    std::vector<std::pair<Symbol, Symbol>> saved;
    for (Symbol u : bound) {
      auto it = subst.find(u);
      if (it != subst.end()) {
        saved.emplace_back(it->first, it->second);
        subst.erase(it);
      }
    }
    // Alpha-rename binders that would capture a substituted-in name.
    std::vector<std::pair<Symbol, Symbol>> renames;
    for (Symbol& u : bound) {
      if (in_range(subst, u)) {
        const Symbol fresh = Symbol::fresh(u.view());
        renames.emplace_back(u, fresh);
        u = fresh;
      }
    }
    for (const auto& [from, to] : renames) subst.emplace(from, to);

    const std::uint64_t saved_epoch = epoch;
    const bool changed = !saved.empty() || !renames.empty();
    if (changed && use_memo) {
      auto& interner = GTypeInterner::instance();
      for (const auto& [from, to] : saved) {
        (void)to;
        domain.clear(interner.index_of(from));
      }
      for (const auto& [from, to] : renames) {
        (void)to;
        domain.set(interner.index_of(from));
      }
      epoch = ++epoch_counter;
    }

    GTypePtr new_body = walk(body);

    for (const auto& [from, to] : renames) {
      (void)to;
      subst.erase(from);
    }
    for (const auto& [from, to] : saved) subst.emplace(from, to);
    if (changed && use_memo) {
      auto& interner = GTypeInterner::instance();
      for (const auto& [from, to] : renames) {
        (void)to;
        domain.clear(interner.index_of(from));
      }
      for (const auto& [from, to] : saved) {
        (void)to;
        domain.set(interner.index_of(from));
      }
      epoch = saved_epoch;
    }
    return rebind(std::move(bound), std::move(new_body));
  }
};

}  // namespace

GTypePtr substitute_vertices(const GTypePtr& g, const VertexSubst& subst) {
  VertexSubstituter s;
  s.subst = subst;
  auto& interner = GTypeInterner::instance();
  s.use_memo = interner.memoization_enabled();
  if (s.use_memo) {
    for (const auto& [from, to] : subst) {
      (void)to;
      s.domain.set(interner.index_of(from));
    }
  }
  return s.walk(g);
}

namespace {

// Stateful graph-variable substitution G[replacement/var].
//
// The context (var, replacement) is constant for the whole call, so the
// memo is keyed on the node id alone. The identity fast path uses the
// cached free-gvar bitset: a subterm that does not mention `var` free IS
// its own result — this alone collapses μ-unrolling of wide bodies from
// O(paths) to O(distinct nodes).
struct GVarSubstituter {
  Symbol var;
  GTypePtr replacement;
  // Vertex names free in `replacement`; vertex binders over an occurrence
  // of `var` must avoid these.
  OrderedSet<Symbol> replacement_free_vertices;
  std::size_t var_index = GTypeInterner::npos;  // dense index of `var`
  bool use_memo = false;
  LeasedMemo<std::uint64_t, GTypePtr> memo;

  GTypePtr walk(const GTypePtr& g) {
    const GTypeFacts* facts = g->facts;
    auto& interner = GTypeInterner::instance();
    if (use_memo && facts != nullptr) {
      if (var_index == GTypeInterner::npos ||
          !facts->free_gvars.test(var_index)) {
        interner.note_subst_identity_hit();
        return g;
      }
      if (const GTypePtr* hit = memo.find(facts->id)) {
        interner.note_subst_memo(true);
        return *hit;
      }
      interner.note_subst_memo(false);
    }
    GTypePtr result = std::visit(
        Overloaded{
            [&](const GTEmpty&) { return g; },
            [&](const GTSeq& node) {
              return gt::seq(walk(node.lhs), walk(node.rhs));
            },
            [&](const GTOr& node) {
              return gt::alt(walk(node.lhs), walk(node.rhs));
            },
            [&](const GTSpawn& node) {
              return gt::spawn(walk(node.body), node.vertex);
            },
            [&](const GTTouch&) { return g; },
            [&](const GTRec& node) {
              if (node.var == var) return g;  // shadowed
              // μ binds graph variables only; graph variables free in the
              // replacement must not be captured.
              if (replacement_mentions_gvar(node.var)) {
                const Symbol fresh = Symbol::fresh(node.var.view());
                const GTypePtr renamed_body =
                    substitute_gvar(node.body, node.var, gt::var(fresh));
                return gt::rec(fresh, walk(renamed_body));
              }
              return gt::rec(node.var, walk(node.body));
            },
            [&](const GTVar& node) {
              return node.var == var ? replacement : g;
            },
            [&](const GTNew& node) {
              return under_binder({node.vertex}, node.body,
                                  [](std::vector<Symbol> bound,
                                     GTypePtr body) {
                                    return gt::nu(bound.front(),
                                                  std::move(body));
                                  });
            },
            [&](const GTPi& node) {
              const std::size_t n_spawn = node.spawn_params.size();
              std::vector<Symbol> bound = node.spawn_params;
              bound.insert(bound.end(), node.touch_params.begin(),
                           node.touch_params.end());
              return under_binder(
                  std::move(bound), node.body,
                  [n_spawn](std::vector<Symbol> names, GTypePtr body) {
                    std::vector<Symbol> spawn(
                        names.begin(),
                        names.begin() + static_cast<std::ptrdiff_t>(n_spawn));
                    std::vector<Symbol> touch(
                        names.begin() + static_cast<std::ptrdiff_t>(n_spawn),
                        names.end());
                    return gt::pi(std::move(spawn), std::move(touch),
                                  std::move(body));
                  });
            },
            [&](const GTApp& node) {
              return gt::app(walk(node.fn), node.spawn_args, node.touch_args);
            },
            [&](const GTVecSpawn& node) {
              return gt::vecspawn(walk(node.body), node.family, node.width);
            },
            [&](const GTTouchAll&) { return g; },
            [&](const GTTouchIdx&) { return g; },
            [&](const GTPipe& node) {
              return gt::pipe(walk(node.lhs), walk(node.rhs));
            },
        },
        g->node);
    if (use_memo && facts != nullptr) {
      memo.put(facts->id, result);
    }
    return result;
  }

  [[nodiscard]] bool replacement_mentions_gvar(Symbol gv) const {
    if (replacement->facts != nullptr) {
      const std::size_t idx = GTypeInterner::instance().find_index(gv);
      return idx != GTypeInterner::npos &&
             replacement->facts->free_gvars.test(idx);
    }
    return free_gvars(*replacement).contains(gv);
  }

  // Renames the bound vertices `bound` inside `body` if they appear free in
  // the replacement, then substitutes the graph variable in the body.
  template <typename Rebind>
  GTypePtr under_binder(std::vector<Symbol> bound, const GTypePtr& body,
                        const Rebind& rebind) {
    // Only rename when the binder body actually mentions the graph variable
    // (otherwise substitution below is the identity and capture is moot).
    VertexSubst renames;
    for (Symbol& u : bound) {
      if (replacement_free_vertices.contains(u)) {
        const Symbol fresh = Symbol::fresh(u.view());
        renames.emplace(u, fresh);
        u = fresh;
      }
    }
    GTypePtr new_body =
        renames.empty() ? body : substitute_vertices(body, renames);
    return rebind(std::move(bound), walk(new_body));
  }
};

}  // namespace

GTypePtr substitute_gvar(const GTypePtr& g, Symbol var,
                         const GTypePtr& replacement) {
  GVarSubstituter s;
  s.var = var;
  s.replacement = replacement;
  s.replacement_free_vertices = free_vertices(*replacement);
  auto& interner = GTypeInterner::instance();
  s.use_memo = interner.memoization_enabled();
  if (s.use_memo) s.var_index = interner.find_index(var);
  return s.walk(g);
}

GTypePtr unroll_rec(const GTypePtr& g) {
  const auto* rec = std::get_if<GTRec>(&g->node);
  if (rec == nullptr) {
    throw std::invalid_argument("unroll_rec: not a recursive graph type");
  }
  return substitute_gvar(rec->body, rec->var, g);
}

}  // namespace gtdl
