#include "gtdl/gtype/subst.hpp"

#include <stdexcept>

#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

Symbol apply_subst(const VertexSubst& subst, Symbol u) {
  auto it = subst.find(u);
  return it == subst.end() ? u : it->second;
}

std::vector<Symbol> apply_all(const VertexSubst& subst,
                              const std::vector<Symbol>& names) {
  std::vector<Symbol> out;
  out.reserve(names.size());
  for (Symbol u : names) out.push_back(apply_subst(subst, u));
  return out;
}

// True if any value in `subst` equals `u` — i.e. binding `u` here would
// capture a substituted-in name.
bool in_range(const VertexSubst& subst, Symbol u) {
  for (const auto& [from, to] : subst) {
    (void)from;
    if (to == u) return true;
  }
  return false;
}

GTypePtr subst_vertices(const GTypePtr& g, VertexSubst& subst);

// Handles a vertex binder (ν or the Π parameter lists): removes shadowed
// entries, renames the binder if it would capture, recurses, and restores
// the substitution. `rebind` rebuilds the node with new names and body.
template <typename Rebind>
GTypePtr subst_under_vertex_binder(std::vector<Symbol> bound,
                                   const GTypePtr& body, VertexSubst& subst,
                                   const Rebind& rebind) {
  // Save entries shadowed by the binder and remove them.
  std::vector<std::pair<Symbol, Symbol>> saved;
  for (Symbol u : bound) {
    auto it = subst.find(u);
    if (it != subst.end()) {
      saved.emplace_back(it->first, it->second);
      subst.erase(it);
    }
  }
  // Alpha-rename binders that would capture a substituted-in name.
  std::vector<std::pair<Symbol, Symbol>> renames;
  for (Symbol& u : bound) {
    if (in_range(subst, u)) {
      const Symbol fresh = Symbol::fresh(u.view());
      renames.emplace_back(u, fresh);
      u = fresh;
    }
  }
  for (const auto& [from, to] : renames) subst.emplace(from, to);

  GTypePtr new_body = subst_vertices(body, subst);

  for (const auto& [from, to] : renames) {
    (void)to;
    subst.erase(from);
  }
  for (const auto& [from, to] : saved) subst.emplace(from, to);
  return rebind(std::move(bound), std::move(new_body));
}

GTypePtr subst_vertices(const GTypePtr& g, VertexSubst& subst) {
  if (subst.empty()) return g;
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return g; },
          [&](const GTSeq& node) {
            return gt::seq(subst_vertices(node.lhs, subst),
                           subst_vertices(node.rhs, subst));
          },
          [&](const GTOr& node) {
            return gt::alt(subst_vertices(node.lhs, subst),
                           subst_vertices(node.rhs, subst));
          },
          [&](const GTSpawn& node) {
            return gt::spawn(subst_vertices(node.body, subst),
                             apply_subst(subst, node.vertex));
          },
          [&](const GTTouch& node) {
            return gt::touch(apply_subst(subst, node.vertex));
          },
          [&](const GTRec& node) {
            return gt::rec(node.var, subst_vertices(node.body, subst));
          },
          [&](const GTVar&) { return g; },
          [&](const GTNew& node) {
            return subst_under_vertex_binder(
                {node.vertex}, node.body, subst,
                [](std::vector<Symbol> bound, GTypePtr body) {
                  return gt::nu(bound.front(), std::move(body));
                });
          },
          [&](const GTPi& node) {
            const std::size_t n_spawn = node.spawn_params.size();
            std::vector<Symbol> bound = node.spawn_params;
            bound.insert(bound.end(), node.touch_params.begin(),
                         node.touch_params.end());
            return subst_under_vertex_binder(
                std::move(bound), node.body, subst,
                [n_spawn](std::vector<Symbol> names, GTypePtr body) {
                  std::vector<Symbol> spawn(
                      names.begin(),
                      names.begin() + static_cast<std::ptrdiff_t>(n_spawn));
                  std::vector<Symbol> touch(
                      names.begin() + static_cast<std::ptrdiff_t>(n_spawn),
                      names.end());
                  return gt::pi(std::move(spawn), std::move(touch),
                                std::move(body));
                });
          },
          [&](const GTApp& node) {
            return gt::app(subst_vertices(node.fn, subst),
                           apply_all(subst, node.spawn_args),
                           apply_all(subst, node.touch_args));
          },
      },
      g->node);
}

}  // namespace

GTypePtr substitute_vertices(const GTypePtr& g, const VertexSubst& subst) {
  VertexSubst working = subst;
  return subst_vertices(g, working);
}

namespace {

struct GVarSubst {
  Symbol var;
  GTypePtr replacement;
  // Vertex names free in `replacement`; vertex binders over an occurrence
  // of `var` must avoid these.
  OrderedSet<Symbol> replacement_free_vertices;
};

GTypePtr subst_gvar(const GTypePtr& g, const GVarSubst& ctx);

// Renames the bound vertices `bound` inside `body` if they appear free in
// the replacement, then substitutes the graph variable in the body.
template <typename Rebind>
GTypePtr gvar_under_vertex_binder(std::vector<Symbol> bound,
                                  const GTypePtr& body, const GVarSubst& ctx,
                                  const Rebind& rebind) {
  // Only rename when the binder body actually mentions the graph variable
  // (otherwise substitution below is the identity and capture is moot).
  VertexSubst renames;
  for (Symbol& u : bound) {
    if (ctx.replacement_free_vertices.contains(u)) {
      const Symbol fresh = Symbol::fresh(u.view());
      renames.emplace(u, fresh);
      u = fresh;
    }
  }
  GTypePtr new_body =
      renames.empty() ? body : substitute_vertices(body, renames);
  return rebind(std::move(bound), subst_gvar(new_body, ctx));
}

GTypePtr subst_gvar(const GTypePtr& g, const GVarSubst& ctx) {
  return std::visit(
      Overloaded{
          [&](const GTEmpty&) { return g; },
          [&](const GTSeq& node) {
            return gt::seq(subst_gvar(node.lhs, ctx),
                           subst_gvar(node.rhs, ctx));
          },
          [&](const GTOr& node) {
            return gt::alt(subst_gvar(node.lhs, ctx),
                           subst_gvar(node.rhs, ctx));
          },
          [&](const GTSpawn& node) {
            return gt::spawn(subst_gvar(node.body, ctx), node.vertex);
          },
          [&](const GTTouch&) { return g; },
          [&](const GTRec& node) {
            if (node.var == ctx.var) return g;  // shadowed
            // μ binds graph variables only; graph variables free in the
            // replacement must not be captured.
            if (free_gvars(*ctx.replacement).contains(node.var)) {
              const Symbol fresh = Symbol::fresh(node.var.view());
              const GTypePtr renamed_body =
                  substitute_gvar(node.body, node.var, gt::var(fresh));
              return gt::rec(fresh, subst_gvar(renamed_body, ctx));
            }
            return gt::rec(node.var, subst_gvar(node.body, ctx));
          },
          [&](const GTVar& node) {
            return node.var == ctx.var ? ctx.replacement : g;
          },
          [&](const GTNew& node) {
            return gvar_under_vertex_binder(
                {node.vertex}, node.body, ctx,
                [](std::vector<Symbol> bound, GTypePtr body) {
                  return gt::nu(bound.front(), std::move(body));
                });
          },
          [&](const GTPi& node) {
            const std::size_t n_spawn = node.spawn_params.size();
            std::vector<Symbol> bound = node.spawn_params;
            bound.insert(bound.end(), node.touch_params.begin(),
                         node.touch_params.end());
            return gvar_under_vertex_binder(
                std::move(bound), node.body, ctx,
                [n_spawn](std::vector<Symbol> names, GTypePtr body) {
                  std::vector<Symbol> spawn(
                      names.begin(),
                      names.begin() + static_cast<std::ptrdiff_t>(n_spawn));
                  std::vector<Symbol> touch(
                      names.begin() + static_cast<std::ptrdiff_t>(n_spawn),
                      names.end());
                  return gt::pi(std::move(spawn), std::move(touch),
                                std::move(body));
                });
          },
          [&](const GTApp& node) {
            return gt::app(subst_gvar(node.fn, ctx), node.spawn_args,
                           node.touch_args);
          },
      },
      g->node);
}

}  // namespace

GTypePtr substitute_gvar(const GTypePtr& g, Symbol var,
                         const GTypePtr& replacement) {
  GVarSubst ctx{var, replacement, free_vertices(*replacement)};
  return subst_gvar(g, ctx);
}

GTypePtr unroll_rec(const GTypePtr& g) {
  const auto* rec = std::get_if<GTRec>(&g->node);
  if (rec == nullptr) {
    throw std::invalid_argument("unroll_rec: not a recursive graph type");
  }
  return substitute_gvar(rec->body, rec->var, g);
}

}  // namespace gtdl
