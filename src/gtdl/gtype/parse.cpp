#include "gtdl/gtype/parse.hpp"

#include <cctype>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtdl/support/fault.hpp"

namespace gtdl {

namespace {

enum class TokKind : unsigned char {
  kEmptyGraph,  // 1
  kNumber,      // any other digit run (widths/indices)
  kIdent,
  kSemi,       // ;
  kPipe,       // |
  kPipeArrow,  // |>
  kSlash,      // /
  kTilde,      // ~
  kDot,        // .
  kComma,      // ,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kKwRec,
  kKwNew,
  kKwPi,
  kKwVec,
  kKwTouchAll,
  kKwTouchIdx,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string_view text;
  SrcLoc loc;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_trivia();
    const SrcLoc loc{line_, column_};
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, {}, loc};
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[end]))) {
        ++end;
      }
      const std::size_t len = end - pos_;
      // A lone '1' is the empty-graph atom; any other digit run is a
      // width/index literal (the width 1 inside 'vec[u;1]' arrives as
      // kEmptyGraph and the number parser accepts both).
      if (len == 1 && c == '1') return make(TokKind::kEmptyGraph, 1, loc);
      return make(TokKind::kNumber, len, loc);
    }
    switch (c) {
      case ';':
        return make(TokKind::kSemi, 1, loc);
      case '|':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          return make(TokKind::kPipeArrow, 2, loc);
        }
        return make(TokKind::kPipe, 1, loc);
      case '/':
        return make(TokKind::kSlash, 1, loc);
      case '~':
        return make(TokKind::kTilde, 1, loc);
      case '.':
        return make(TokKind::kDot, 1, loc);
      case ',':
        return make(TokKind::kComma, 1, loc);
      case '[':
        return make(TokKind::kLBracket, 1, loc);
      case ']':
        return make(TokKind::kRBracket, 1, loc);
      case '(':
        return make(TokKind::kLParen, 1, loc);
      case ')':
        return make(TokKind::kRParen, 1, loc);
      default:
        break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size()) {
        const char k = text_[end];
        if (std::isalnum(static_cast<unsigned char>(k)) || k == '_' ||
            k == '$' || k == '\'' || k == '@') {
          ++end;
        } else {
          break;
        }
      }
      const std::string_view word = text_.substr(pos_, end - pos_);
      TokKind kind = TokKind::kIdent;
      if (word == "rec") kind = TokKind::kKwRec;
      if (word == "new") kind = TokKind::kKwNew;
      if (word == "pi") kind = TokKind::kKwPi;
      if (word == "vec") kind = TokKind::kKwVec;
      if (word == "touchall") kind = TokKind::kKwTouchAll;
      if (word == "touchidx") kind = TokKind::kKwTouchIdx;
      return make(kind, word.size(), loc);
    }
    // Unknown character: surface it as a one-char "identifier" so the
    // parser reports a coherent error with location.
    return make(TokKind::kIdent, 1, loc);
  }

 private:
  Token make(TokKind kind, std::size_t len, SrcLoc loc) {
    Token tok{kind, text_.substr(pos_, len), loc};
    advance(len);
    return tok;
  }

  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && pos_ < text_.size(); ++i, ++pos_) {
      if (text_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
    }
  }

  void skip_trivia() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance(1);
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance(1);
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, DiagnosticEngine& diags)
      : lexer_(text), diags_(diags) {
    advance();
  }

  GTypePtr parse_top() {
    GTypePtr g = parse_pipe();
    if (g != nullptr && current_.kind != TokKind::kEnd) {
      error("unexpected trailing input");
      return nullptr;
    }
    return g;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  bool accept(TokKind kind) {
    if (current_.kind != kind) return false;
    advance();
    return true;
  }

  bool expect(TokKind kind, const char* what) {
    if (accept(kind)) return true;
    error(std::string("expected ") + what);
    return false;
  }

  void error(std::string message) {
    if (!failed_) {
      diags_.error(current_.loc,
                   message + " (found '" +
                       (current_.kind == TokKind::kEnd
                            ? std::string("<end>")
                            : std::string(current_.text)) +
                       "')");
    }
    failed_ = true;
  }

  std::optional<Symbol> parse_ident(const char* what) {
    if (current_.kind != TokKind::kIdent) {
      error(std::string("expected ") + what);
      return std::nullopt;
    }
    const Symbol s = Symbol::intern(current_.text);
    advance();
    return s;
  }

  // A family width / member index. The lexer turns a lone '1' into the
  // empty-graph atom, so both token kinds are numbers here.
  std::optional<std::uint32_t> parse_number(const char* what) {
    if (current_.kind == TokKind::kEmptyGraph) {
      advance();
      return 1u;
    }
    if (current_.kind != TokKind::kNumber) {
      error(std::string("expected ") + what);
      return std::nullopt;
    }
    std::uint64_t value = 0;
    for (const char c : current_.text) {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xffffffffull) {
        error(std::string(what) + " is too large");
        return std::nullopt;
      }
    }
    advance();
    return static_cast<std::uint32_t>(value);
  }

  // idents ';' idents inside brackets; empty lists allowed.
  bool parse_vertex_lists(std::vector<Symbol>& spawn,
                          std::vector<Symbol>& touch) {
    if (!expect(TokKind::kLBracket, "'['")) return false;
    if (!parse_ident_list(spawn, TokKind::kSemi)) return false;
    if (!expect(TokKind::kSemi, "';' between vertex lists")) return false;
    if (!parse_ident_list(touch, TokKind::kRBracket)) return false;
    return expect(TokKind::kRBracket, "']'");
  }

  bool parse_ident_list(std::vector<Symbol>& out, TokKind terminator) {
    if (current_.kind == terminator) return true;  // empty list
    for (;;) {
      auto id = parse_ident("vertex name");
      if (!id) return false;
      out.push_back(*id);
      if (!accept(TokKind::kComma)) return true;
    }
  }

  // Lowest precedence: '|>'. Every recursive-descent cycle passes through
  // here (binder bodies and parenthesized atoms), so this is the single
  // place to bound nesting depth: chains of '|>'/';'/'|'/postfix are
  // parsed iteratively and remain depth-1, only nested binders/parens
  // count.
  GTypePtr parse_pipe() {
    if (depth_ >= kMaxNestingDepth) {
      error("graph type nested too deeply (limit " +
            std::to_string(kMaxNestingDepth) + " levels)");
      return nullptr;
    }
    ++depth_;
    GTypePtr result = parse_pipe_body();
    --depth_;
    return result;
  }

  GTypePtr parse_pipe_body() {
    GTypePtr lhs = parse_or();
    if (lhs == nullptr) return nullptr;
    while (accept(TokKind::kPipeArrow)) {
      GTypePtr rhs = parse_or();
      if (rhs == nullptr) return nullptr;
      lhs = gt::pipe(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  GTypePtr parse_or() {
    GTypePtr lhs = parse_seq();
    if (lhs == nullptr) return nullptr;
    while (accept(TokKind::kPipe)) {
      GTypePtr rhs = parse_seq();
      if (rhs == nullptr) return nullptr;
      lhs = gt::alt(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  GTypePtr parse_seq() {
    GTypePtr lhs = parse_postfix();
    if (lhs == nullptr) return nullptr;
    while (accept(TokKind::kSemi)) {
      GTypePtr rhs = parse_postfix();
      if (rhs == nullptr) return nullptr;
      lhs = gt::seq(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  GTypePtr parse_postfix() {
    GTypePtr g = parse_atom();
    if (g == nullptr) return nullptr;
    for (;;) {
      if (accept(TokKind::kSlash)) {
        auto u = parse_ident("vertex name after '/'");
        if (!u) return nullptr;
        g = gt::spawn(std::move(g), *u);
      } else if (current_.kind == TokKind::kLBracket) {
        std::vector<Symbol> spawn_args;
        std::vector<Symbol> touch_args;
        if (!parse_vertex_lists(spawn_args, touch_args)) return nullptr;
        g = gt::app(std::move(g), std::move(spawn_args),
                    std::move(touch_args));
      } else {
        return g;
      }
    }
  }

  GTypePtr parse_atom() {
    switch (current_.kind) {
      case TokKind::kEmptyGraph:
        advance();
        return gt::empty();
      case TokKind::kTilde: {
        advance();
        auto u = parse_ident("vertex name after '~'");
        if (!u) return nullptr;
        return gt::touch(*u);
      }
      case TokKind::kKwRec: {
        advance();
        auto v = parse_ident("graph variable after 'rec'");
        if (!v) return nullptr;
        if (!expect(TokKind::kDot, "'.' after binder")) return nullptr;
        GTypePtr body = parse_pipe();
        if (body == nullptr) return nullptr;
        return gt::rec(*v, std::move(body));
      }
      case TokKind::kKwNew: {
        advance();
        auto v = parse_ident("vertex name after 'new'");
        if (!v) return nullptr;
        if (!expect(TokKind::kDot, "'.' after binder")) return nullptr;
        GTypePtr body = parse_pipe();
        if (body == nullptr) return nullptr;
        return gt::nu(*v, std::move(body));
      }
      case TokKind::kKwPi: {
        advance();
        std::vector<Symbol> spawn_params;
        std::vector<Symbol> touch_params;
        if (!parse_vertex_lists(spawn_params, touch_params)) return nullptr;
        if (!expect(TokKind::kDot, "'.' after binder")) return nullptr;
        GTypePtr body = parse_pipe();
        if (body == nullptr) return nullptr;
        return gt::pi(std::move(spawn_params), std::move(touch_params),
                      std::move(body));
      }
      case TokKind::kKwVec: {
        // vec[u; n]. G
        advance();
        if (!expect(TokKind::kLBracket, "'[' after 'vec'")) return nullptr;
        auto family = parse_ident("family name after 'vec['");
        if (!family) return nullptr;
        if (!expect(TokKind::kSemi, "';' before the family width")) {
          return nullptr;
        }
        auto width = parse_number("family width");
        if (!width) return nullptr;
        if (!expect(TokKind::kRBracket, "']'")) return nullptr;
        if (!expect(TokKind::kDot, "'.' after binder")) return nullptr;
        GTypePtr body = parse_pipe();
        if (body == nullptr) return nullptr;
        return gt::vecspawn(std::move(body), *family, *width);
      }
      case TokKind::kKwTouchAll: {
        // touchall[u; n]
        advance();
        if (!expect(TokKind::kLBracket, "'[' after 'touchall'")) {
          return nullptr;
        }
        auto family = parse_ident("family name after 'touchall['");
        if (!family) return nullptr;
        if (!expect(TokKind::kSemi, "';' before the family width")) {
          return nullptr;
        }
        auto width = parse_number("family width");
        if (!width) return nullptr;
        if (!expect(TokKind::kRBracket, "']'")) return nullptr;
        return gt::touch_all(*family, *width);
      }
      case TokKind::kKwTouchIdx: {
        // touchidx[u; n; i]
        advance();
        if (!expect(TokKind::kLBracket, "'[' after 'touchidx'")) {
          return nullptr;
        }
        auto family = parse_ident("family name after 'touchidx['");
        if (!family) return nullptr;
        if (!expect(TokKind::kSemi, "';' before the family width")) {
          return nullptr;
        }
        auto width = parse_number("family width");
        if (!width) return nullptr;
        if (!expect(TokKind::kSemi, "';' before the member index")) {
          return nullptr;
        }
        auto index = parse_number("member index");
        if (!index) return nullptr;
        if (!expect(TokKind::kRBracket, "']'")) return nullptr;
        return gt::touch_idx(*family, *width, *index);
      }
      case TokKind::kIdent: {
        const Symbol v = Symbol::intern(current_.text);
        advance();
        return gt::var(v);
      }
      case TokKind::kLParen: {
        advance();
        GTypePtr g = parse_pipe();
        if (g == nullptr) return nullptr;
        if (!expect(TokKind::kRParen, "')'")) return nullptr;
        return g;
      }
      default:
        error("expected a graph type");
        return nullptr;
    }
  }

  // Generous for real types (inference emits nesting proportional to
  // program structure) while keeping the recursion well inside typical
  // 8 MiB stacks even with sanitizer-inflated frames.
  static constexpr std::size_t kMaxNestingDepth = 2'000;

  Lexer lexer_;
  DiagnosticEngine& diags_;
  Token current_;
  bool failed_ = false;
  std::size_t depth_ = 0;
};

}  // namespace

GTypePtr parse_gtype(std::string_view text, DiagnosticEngine& diags) {
  fault::maybe_inject("parse");
  Parser parser(text, diags);
  GTypePtr result = parser.parse_top();
  return diags.has_errors() ? nullptr : result;
}

GTypePtr parse_gtype_or_throw(std::string_view text) {
  DiagnosticEngine diags;
  GTypePtr result = parse_gtype(text, diags);
  if (result == nullptr) {
    throw std::runtime_error("graph type parse error:\n" + diags.render());
  }
  return result;
}

}  // namespace gtdl
