#include "gtdl/gtype/gtype.hpp"

#include <unordered_map>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/support/overloaded.hpp"
#include "gtdl/support/string_util.hpp"

namespace gtdl {
namespace gt {

// All constructors canonicalize through the process-wide interner:
// structurally identical calls return the same node (see intern.hpp).

GTypePtr empty() { return GTypeInterner::instance().empty(); }

GTypePtr seq(GTypePtr lhs, GTypePtr rhs) {
  return GTypeInterner::instance().seq(std::move(lhs), std::move(rhs));
}

GTypePtr seq_all(std::vector<GTypePtr> parts) {
  if (parts.empty()) return empty();
  GTypePtr acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = seq(std::move(acc), std::move(parts[i]));
  }
  return acc;
}

GTypePtr alt(GTypePtr lhs, GTypePtr rhs) {
  return GTypeInterner::instance().alt(std::move(lhs), std::move(rhs));
}

GTypePtr spawn(GTypePtr body, Symbol vertex) {
  return GTypeInterner::instance().spawn(std::move(body), vertex);
}

GTypePtr touch(Symbol vertex) {
  return GTypeInterner::instance().touch(vertex);
}

GTypePtr rec(Symbol var, GTypePtr body) {
  return GTypeInterner::instance().rec(var, std::move(body));
}

GTypePtr var(Symbol v) { return GTypeInterner::instance().var(v); }

GTypePtr nu(Symbol vertex, GTypePtr body) {
  return GTypeInterner::instance().nu(vertex, std::move(body));
}

GTypePtr nu_all(const std::vector<Symbol>& vertices, GTypePtr body) {
  GTypePtr acc = std::move(body);
  for (auto it = vertices.rbegin(); it != vertices.rend(); ++it) {
    acc = nu(*it, std::move(acc));
  }
  return acc;
}

GTypePtr pi(std::vector<Symbol> spawn_params, std::vector<Symbol> touch_params,
            GTypePtr body) {
  return GTypeInterner::instance().pi(std::move(spawn_params),
                                      std::move(touch_params),
                                      std::move(body));
}

GTypePtr app(GTypePtr fn, std::vector<Symbol> spawn_args,
             std::vector<Symbol> touch_args) {
  return GTypeInterner::instance().app(std::move(fn), std::move(spawn_args),
                                       std::move(touch_args));
}

GTypePtr vecspawn(GTypePtr body, Symbol family, std::uint32_t width) {
  return GTypeInterner::instance().vecspawn(std::move(body), family, width);
}

GTypePtr touch_all(Symbol family, std::uint32_t width) {
  return GTypeInterner::instance().touch_all(family, width);
}

GTypePtr touch_idx(Symbol family, std::uint32_t width, std::uint32_t index) {
  return GTypeInterner::instance().touch_idx(family, width, index);
}

GTypePtr pipe(GTypePtr lhs, GTypePtr rhs) {
  return GTypeInterner::instance().pipe(std::move(lhs), std::move(rhs));
}

}  // namespace gt

Symbol family_member(Symbol family, std::uint32_t index) {
  return Symbol::intern(family.str() + "@" + std::to_string(index));
}

GTypePtr vecspawn_unroll(const GTVecSpawn& node) {
  std::vector<GTypePtr> parts;
  parts.reserve(node.width);
  for (std::uint32_t i = 0; i < node.width; ++i) {
    parts.push_back(gt::spawn(node.body, family_member(node.family, i)));
  }
  return gt::seq_all(std::move(parts));
}

GTypePtr touch_all_unroll(const GTTouchAll& node) {
  std::vector<GTypePtr> parts;
  parts.reserve(node.width);
  for (std::uint32_t i = 0; i < node.width; ++i) {
    parts.push_back(gt::touch(family_member(node.family, i)));
  }
  return gt::seq_all(std::move(parts));
}

GTypePtr pipe_desugar(const GTypePtr& pipe) {
  const auto& node = std::get<GTPipe>(pipe->node);
  // Binder names carry the pipe node's id: hash-consing guarantees the
  // id is stable across re-desugarings (determinism for memo tables and
  // for --jobs N reproducibility), and distinct nested pipes get
  // distinct names (the WF checker rejects ν-shadowing).
  const std::uint64_t id = pipe->facts != nullptr ? pipe->facts->id : 0;
  const Symbol p = Symbol::intern("pst$" + std::to_string(id));
  const Symbol q = Symbol::intern("out$" + std::to_string(id));
  return gt::nu(
      p, gt::nu(q, gt::seq(gt::seq(gt::spawn(node.lhs, p),
                                   gt::spawn(gt::seq(gt::touch(p), node.rhs),
                                             q)),
                           gt::touch(q))));
}

// ---------------------------------------------------------------------------
// Free variables

namespace {

void collect_free_vertices(const GType& g, OrderedSet<Symbol>& bound,
                           OrderedSet<Symbol>& out) {
  std::visit(
      Overloaded{
          [](const GTEmpty&) {},
          [&](const GTSeq& node) {
            collect_free_vertices(*node.lhs, bound, out);
            collect_free_vertices(*node.rhs, bound, out);
          },
          [&](const GTOr& node) {
            collect_free_vertices(*node.lhs, bound, out);
            collect_free_vertices(*node.rhs, bound, out);
          },
          [&](const GTSpawn& node) {
            if (!bound.contains(node.vertex)) out.insert(node.vertex);
            collect_free_vertices(*node.body, bound, out);
          },
          [&](const GTTouch& node) {
            if (!bound.contains(node.vertex)) out.insert(node.vertex);
          },
          [&](const GTRec& node) {
            collect_free_vertices(*node.body, bound, out);
          },
          [](const GTVar&) {},
          [&](const GTNew& node) {
            const bool inserted = bound.insert(node.vertex);
            collect_free_vertices(*node.body, bound, out);
            if (inserted) bound.erase(node.vertex);
          },
          [&](const GTPi& node) {
            std::vector<Symbol> newly_bound;
            for (Symbol u : node.spawn_params) {
              if (bound.insert(u)) newly_bound.push_back(u);
            }
            for (Symbol u : node.touch_params) {
              if (bound.insert(u)) newly_bound.push_back(u);
            }
            collect_free_vertices(*node.body, bound, out);
            for (Symbol u : newly_bound) bound.erase(u);
          },
          [&](const GTApp& node) {
            collect_free_vertices(*node.fn, bound, out);
            for (Symbol u : node.spawn_args) {
              if (!bound.contains(u)) out.insert(u);
            }
            for (Symbol u : node.touch_args) {
              if (!bound.contains(u)) out.insert(u);
            }
          },
          [&](const GTVecSpawn& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
            collect_free_vertices(*node.body, bound, out);
          },
          [&](const GTTouchAll& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
          },
          [&](const GTTouchIdx& node) {
            if (!bound.contains(node.family)) out.insert(node.family);
          },
          [&](const GTPipe& node) {
            collect_free_vertices(*node.lhs, bound, out);
            collect_free_vertices(*node.rhs, bound, out);
          },
      },
      g.node);
}

void collect_free_gvars(const GType& g, OrderedSet<Symbol>& bound,
                        OrderedSet<Symbol>& out) {
  std::visit(
      Overloaded{
          [](const GTEmpty&) {},
          [&](const GTSeq& node) {
            collect_free_gvars(*node.lhs, bound, out);
            collect_free_gvars(*node.rhs, bound, out);
          },
          [&](const GTOr& node) {
            collect_free_gvars(*node.lhs, bound, out);
            collect_free_gvars(*node.rhs, bound, out);
          },
          [&](const GTSpawn& node) {
            collect_free_gvars(*node.body, bound, out);
          },
          [](const GTTouch&) {},
          [&](const GTRec& node) {
            const bool inserted = bound.insert(node.var);
            collect_free_gvars(*node.body, bound, out);
            if (inserted) bound.erase(node.var);
          },
          [&](const GTVar& node) {
            if (!bound.contains(node.var)) out.insert(node.var);
          },
          [&](const GTNew& node) {
            collect_free_gvars(*node.body, bound, out);
          },
          [&](const GTPi& node) {
            collect_free_gvars(*node.body, bound, out);
          },
          [&](const GTApp& node) {
            collect_free_gvars(*node.fn, bound, out);
          },
          [&](const GTVecSpawn& node) {
            collect_free_gvars(*node.body, bound, out);
          },
          [](const GTTouchAll&) {},
          [](const GTTouchIdx&) {},
          [&](const GTPipe& node) {
            collect_free_gvars(*node.lhs, bound, out);
            collect_free_gvars(*node.rhs, bound, out);
          },
      },
      g.node);
}

}  // namespace

OrderedSet<Symbol> free_vertices(const GType& g) {
  // Interned nodes carry the answer; the walk remains as the fallback for
  // hand-assembled nodes (and as the reference implementation in tests).
  if (g.facts != nullptr) return bitset_symbols(g.facts->free_vertices);
  OrderedSet<Symbol> bound;
  OrderedSet<Symbol> out;
  collect_free_vertices(g, bound, out);
  return out;
}

OrderedSet<Symbol> free_gvars(const GType& g) {
  if (g.facts != nullptr) return bitset_symbols(g.facts->free_gvars);
  OrderedSet<Symbol> bound;
  OrderedSet<Symbol> out;
  collect_free_gvars(g, bound, out);
  return out;
}

// ---------------------------------------------------------------------------
// Stats

namespace {

void accumulate(const GType& g, GTypeStats& s) {
  ++s.nodes;
  std::visit(Overloaded{
                 [](const GTEmpty&) {},
                 [&](const GTSeq& node) {
                   accumulate(*node.lhs, s);
                   accumulate(*node.rhs, s);
                 },
                 [&](const GTOr& node) {
                   accumulate(*node.lhs, s);
                   accumulate(*node.rhs, s);
                 },
                 [&](const GTSpawn& node) {
                   ++s.spawns;
                   accumulate(*node.body, s);
                 },
                 [&](const GTTouch&) { ++s.touches; },
                 [&](const GTRec& node) {
                   ++s.mu_bindings;
                   accumulate(*node.body, s);
                 },
                 [](const GTVar&) {},
                 [&](const GTNew& node) {
                   ++s.nu_bindings;
                   accumulate(*node.body, s);
                 },
                 [&](const GTPi& node) {
                   ++s.pi_bindings;
                   accumulate(*node.body, s);
                 },
                 [&](const GTApp& node) {
                   ++s.applications;
                   accumulate(*node.fn, s);
                 },
                 [&](const GTVecSpawn& node) {
                   ++s.vecspawn_bindings;
                   s.spawns += node.width;
                   accumulate(*node.body, s);
                 },
                 [&](const GTTouchAll& node) {
                   ++s.family_touches;
                   s.touches += node.width;
                 },
                 [&](const GTTouchIdx&) {
                   ++s.family_touches;
                   ++s.touches;
                 },
                 [&](const GTPipe& node) {
                   ++s.pipes;
                   accumulate(*node.lhs, s);
                   accumulate(*node.rhs, s);
                 },
             },
             g.node);
}

}  // namespace

GTypeStats stats(const GType& g) {
  if (g.facts != nullptr) return g.facts->stats;
  GTypeStats s;
  accumulate(g, s);
  return s;
}

// ---------------------------------------------------------------------------
// Equality

namespace {

// Environment for alpha-comparison: maps bound names on each side to a
// shared de-Bruijn-style level.
struct AlphaEnv {
  std::unordered_map<Symbol, unsigned> left;
  std::unordered_map<Symbol, unsigned> right;
  unsigned next_level = 0;

  // Compares name occurrences: both bound to the same level, or both free
  // and identical.
  [[nodiscard]] bool names_match(Symbol a, Symbol b) const {
    auto la = left.find(a);
    auto rb = right.find(b);
    if (la != left.end() || rb != right.end()) {
      return la != left.end() && rb != right.end() && la->second == rb->second;
    }
    return a == b;
  }
};

// Scoped binding of one name pair; restores prior bindings on destruction.
class AlphaBinding {
 public:
  AlphaBinding(AlphaEnv& env, Symbol a, Symbol b) : env_(env), a_(a), b_(b) {
    const unsigned level = env_.next_level++;
    save(env_.left, a_, prev_left_, had_left_);
    save(env_.right, b_, prev_right_, had_right_);
    env_.left[a_] = level;
    env_.right[b_] = level;
  }
  ~AlphaBinding() {
    restore(env_.left, a_, prev_left_, had_left_);
    restore(env_.right, b_, prev_right_, had_right_);
  }
  AlphaBinding(const AlphaBinding&) = delete;
  AlphaBinding& operator=(const AlphaBinding&) = delete;

 private:
  static void save(const std::unordered_map<Symbol, unsigned>& map, Symbol key,
                   unsigned& prev, bool& had) {
    auto it = map.find(key);
    had = it != map.end();
    if (had) prev = it->second;
  }
  static void restore(std::unordered_map<Symbol, unsigned>& map, Symbol key,
                      unsigned prev, bool had) {
    if (had) {
      map[key] = prev;
    } else {
      map.erase(key);
    }
  }

  AlphaEnv& env_;
  Symbol a_;
  Symbol b_;
  unsigned prev_left_ = 0;
  unsigned prev_right_ = 0;
  bool had_left_ = false;
  bool had_right_ = false;
};

bool alpha_eq(const GType& a, const GType& b, AlphaEnv& env) {
  if (a.node.index() != b.node.index()) return false;
  return std::visit(
      Overloaded{
          [](const GTEmpty&) { return true; },
          [&](const GTSeq& na) {
            const auto& nb = std::get<GTSeq>(b.node);
            return alpha_eq(*na.lhs, *nb.lhs, env) &&
                   alpha_eq(*na.rhs, *nb.rhs, env);
          },
          [&](const GTOr& na) {
            const auto& nb = std::get<GTOr>(b.node);
            return alpha_eq(*na.lhs, *nb.lhs, env) &&
                   alpha_eq(*na.rhs, *nb.rhs, env);
          },
          [&](const GTSpawn& na) {
            const auto& nb = std::get<GTSpawn>(b.node);
            return env.names_match(na.vertex, nb.vertex) &&
                   alpha_eq(*na.body, *nb.body, env);
          },
          [&](const GTTouch& na) {
            const auto& nb = std::get<GTTouch>(b.node);
            return env.names_match(na.vertex, nb.vertex);
          },
          [&](const GTRec& na) {
            const auto& nb = std::get<GTRec>(b.node);
            AlphaBinding bind(env, na.var, nb.var);
            return alpha_eq(*na.body, *nb.body, env);
          },
          [&](const GTVar& na) {
            const auto& nb = std::get<GTVar>(b.node);
            return env.names_match(na.var, nb.var);
          },
          [&](const GTNew& na) {
            const auto& nb = std::get<GTNew>(b.node);
            AlphaBinding bind(env, na.vertex, nb.vertex);
            return alpha_eq(*na.body, *nb.body, env);
          },
          [&](const GTPi& na) {
            const auto& nb = std::get<GTPi>(b.node);
            if (na.spawn_params.size() != nb.spawn_params.size() ||
                na.touch_params.size() != nb.touch_params.size()) {
              return false;
            }
            // Bind parameter pairs pairwise, innermost scope last.
            std::vector<std::unique_ptr<AlphaBinding>> bindings;
            bindings.reserve(na.spawn_params.size() + na.touch_params.size());
            for (std::size_t i = 0; i < na.spawn_params.size(); ++i) {
              bindings.push_back(std::make_unique<AlphaBinding>(
                  env, na.spawn_params[i], nb.spawn_params[i]));
            }
            for (std::size_t i = 0; i < na.touch_params.size(); ++i) {
              bindings.push_back(std::make_unique<AlphaBinding>(
                  env, na.touch_params[i], nb.touch_params[i]));
            }
            return alpha_eq(*na.body, *nb.body, env);
          },
          [&](const GTApp& na) {
            const auto& nb = std::get<GTApp>(b.node);
            if (na.spawn_args.size() != nb.spawn_args.size() ||
                na.touch_args.size() != nb.touch_args.size()) {
              return false;
            }
            if (!alpha_eq(*na.fn, *nb.fn, env)) return false;
            for (std::size_t i = 0; i < na.spawn_args.size(); ++i) {
              if (!env.names_match(na.spawn_args[i], nb.spawn_args[i])) {
                return false;
              }
            }
            for (std::size_t i = 0; i < na.touch_args.size(); ++i) {
              if (!env.names_match(na.touch_args[i], nb.touch_args[i])) {
                return false;
              }
            }
            return true;
          },
          [&](const GTVecSpawn& na) {
            const auto& nb = std::get<GTVecSpawn>(b.node);
            return na.width == nb.width &&
                   env.names_match(na.family, nb.family) &&
                   alpha_eq(*na.body, *nb.body, env);
          },
          [&](const GTTouchAll& na) {
            const auto& nb = std::get<GTTouchAll>(b.node);
            return na.width == nb.width &&
                   env.names_match(na.family, nb.family);
          },
          [&](const GTTouchIdx& na) {
            const auto& nb = std::get<GTTouchIdx>(b.node);
            return na.width == nb.width && na.index == nb.index &&
                   env.names_match(na.family, nb.family);
          },
          [&](const GTPipe& na) {
            const auto& nb = std::get<GTPipe>(b.node);
            return alpha_eq(*na.lhs, *nb.lhs, env) &&
                   alpha_eq(*na.rhs, *nb.rhs, env);
          },
      },
      a.node);
}

}  // namespace

bool alpha_equal(const GType& a, const GType& b) {
  // Fast paths on interned values: identical nodes are alpha-equal; terms
  // with different free-name sets or different de-Bruijn-canonical hashes
  // cannot be. Only then pay for the environment-threading walk.
  if (a.facts != nullptr && b.facts != nullptr) {
    GTypeInterner& interner = GTypeInterner::instance();
    if (a.facts->id == b.facts->id) {
      interner.note_alpha(0);
      return true;
    }
    if (interner.memoization_enabled()) {
      if (a.node.index() != b.node.index() ||
          !(a.facts->free_vertices == b.facts->free_vertices) ||
          !(a.facts->free_gvars == b.facts->free_gvars) ||
          a.facts->stats.nodes != b.facts->stats.nodes) {
        interner.note_alpha(1);
        return false;
      }
      const std::uint64_t ha = interner.alpha_hash(a);
      const std::uint64_t hb = interner.alpha_hash(b);
      if (ha != 0 && hb != 0 && ha != hb) {
        interner.note_alpha(1);
        return false;
      }
    }
    interner.note_alpha(2);
  }
  AlphaEnv env;
  return alpha_eq(a, b, env);
}

bool structurally_equal(const GType& a, const GType& b) {
  if (&a == &b) return true;
  // Interned values are canonical: equal structure ⇔ same node ⇔ same id.
  if (a.facts != nullptr && b.facts != nullptr) {
    return a.facts->id == b.facts->id;
  }
  if (a.node.index() != b.node.index()) return false;
  return std::visit(
      Overloaded{
          [](const GTEmpty&) { return true; },
          [&](const GTSeq& na) {
            const auto& nb = std::get<GTSeq>(b.node);
            return structurally_equal(*na.lhs, *nb.lhs) &&
                   structurally_equal(*na.rhs, *nb.rhs);
          },
          [&](const GTOr& na) {
            const auto& nb = std::get<GTOr>(b.node);
            return structurally_equal(*na.lhs, *nb.lhs) &&
                   structurally_equal(*na.rhs, *nb.rhs);
          },
          [&](const GTSpawn& na) {
            const auto& nb = std::get<GTSpawn>(b.node);
            return na.vertex == nb.vertex &&
                   structurally_equal(*na.body, *nb.body);
          },
          [&](const GTTouch& na) {
            return na.vertex == std::get<GTTouch>(b.node).vertex;
          },
          [&](const GTRec& na) {
            const auto& nb = std::get<GTRec>(b.node);
            return na.var == nb.var && structurally_equal(*na.body, *nb.body);
          },
          [&](const GTVar& na) {
            return na.var == std::get<GTVar>(b.node).var;
          },
          [&](const GTNew& na) {
            const auto& nb = std::get<GTNew>(b.node);
            return na.vertex == nb.vertex &&
                   structurally_equal(*na.body, *nb.body);
          },
          [&](const GTPi& na) {
            const auto& nb = std::get<GTPi>(b.node);
            return na.spawn_params == nb.spawn_params &&
                   na.touch_params == nb.touch_params &&
                   structurally_equal(*na.body, *nb.body);
          },
          [&](const GTApp& na) {
            const auto& nb = std::get<GTApp>(b.node);
            return na.spawn_args == nb.spawn_args &&
                   na.touch_args == nb.touch_args &&
                   structurally_equal(*na.fn, *nb.fn);
          },
          [&](const GTVecSpawn& na) {
            const auto& nb = std::get<GTVecSpawn>(b.node);
            return na.family == nb.family && na.width == nb.width &&
                   structurally_equal(*na.body, *nb.body);
          },
          [&](const GTTouchAll& na) {
            const auto& nb = std::get<GTTouchAll>(b.node);
            return na.family == nb.family && na.width == nb.width;
          },
          [&](const GTTouchIdx& na) {
            const auto& nb = std::get<GTTouchIdx>(b.node);
            return na.family == nb.family && na.width == nb.width &&
                   na.index == nb.index;
          },
          [&](const GTPipe& na) {
            const auto& nb = std::get<GTPipe>(b.node);
            return structurally_equal(*na.lhs, *nb.lhs) &&
                   structurally_equal(*na.rhs, *nb.rhs);
          },
      },
      a.node);
}

// ---------------------------------------------------------------------------
// Printing

namespace {

// Precedence levels: |> = 0, | = 1, ; = 2, postfix (/ and [..]) = 3,
// atom = 4.
// `tail` marks positions where the expression extends to the end of the
// enclosing context: a binder (rec/new/pi) swallows everything to its
// right, so in a NON-tail position it needs parentheses even at the
// loosest precedence (e.g. the left operand of '|').
void print(const GType& g, std::string& out, int min_prec, bool tail);

void print_vertex_list(const std::vector<Symbol>& spawn,
                       const std::vector<Symbol>& touch, std::string& out) {
  out += '[';
  out += join(spawn, ", ", [](Symbol s) { return s.str(); });
  out += "; ";
  out += join(touch, ", ", [](Symbol s) { return s.str(); });
  out += ']';
}

void print(const GType& g, std::string& out, int min_prec, bool tail) {
  const auto print_binder = [&](auto header, const GTypePtr& body) {
    const bool parens = min_prec > 0 || !tail;
    if (parens) out += '(';
    header();
    print(*body, out, 0, true);
    if (parens) out += ')';
  };
  std::visit(
      Overloaded{
          [&](const GTEmpty&) { out += '1'; },
          [&](const GTSeq& node) {
            const bool parens = min_prec > 2;
            if (parens) out += '(';
            print(*node.lhs, out, 2, false);
            out += " ; ";
            print(*node.rhs, out, 3, tail && !parens);
            if (parens) out += ')';
          },
          [&](const GTOr& node) {
            const bool parens = min_prec > 1;
            if (parens) out += '(';
            print(*node.lhs, out, 1, false);
            out += " | ";
            print(*node.rhs, out, 2, tail && !parens);
            if (parens) out += ')';
          },
          [&](const GTSpawn& node) {
            const bool parens = min_prec > 3;
            if (parens) out += '(';
            print(*node.body, out, 4, false);
            out += " / ";
            out += node.vertex.view();
            if (parens) out += ')';
          },
          [&](const GTTouch& node) {
            out += '~';
            out += node.vertex.view();
          },
          [&](const GTRec& node) {
            print_binder(
                [&] {
                  out += "rec ";
                  out += node.var.view();
                  out += ". ";
                },
                node.body);
          },
          [&](const GTVar& node) { out += node.var.view(); },
          [&](const GTNew& node) {
            print_binder(
                [&] {
                  out += "new ";
                  out += node.vertex.view();
                  out += ". ";
                },
                node.body);
          },
          [&](const GTPi& node) {
            print_binder(
                [&] {
                  out += "pi";
                  print_vertex_list(node.spawn_params, node.touch_params,
                                    out);
                  out += ". ";
                },
                node.body);
          },
          [&](const GTApp& node) {
            const bool parens = min_prec > 3;
            if (parens) out += '(';
            print(*node.fn, out, 4, false);
            print_vertex_list(node.spawn_args, node.touch_args, out);
            if (parens) out += ')';
          },
          [&](const GTVecSpawn& node) {
            print_binder(
                [&] {
                  out += "vec[";
                  out += node.family.view();
                  out += "; ";
                  out += std::to_string(node.width);
                  out += "]. ";
                },
                node.body);
          },
          [&](const GTTouchAll& node) {
            out += "touchall[";
            out += node.family.view();
            out += "; ";
            out += std::to_string(node.width);
            out += ']';
          },
          [&](const GTTouchIdx& node) {
            out += "touchidx[";
            out += node.family.view();
            out += "; ";
            out += std::to_string(node.width);
            out += "; ";
            out += std::to_string(node.index);
            out += ']';
          },
          [&](const GTPipe& node) {
            const bool parens = min_prec > 0;
            if (parens) out += '(';
            print(*node.lhs, out, 0, false);
            out += " |> ";
            print(*node.rhs, out, 1, tail && !parens);
            if (parens) out += ')';
          },
      },
      g.node);
}

}  // namespace

std::string to_string(const GType& g) {
  std::string out;
  print(g, out, 0, /*tail=*/true);
  return out;
}

std::string to_string(const GTypePtr& g) {
  return g ? to_string(*g) : std::string("<null>");
}

}  // namespace gtdl
