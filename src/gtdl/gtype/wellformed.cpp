#include "gtdl/gtype/wellformed.hpp"

#include <optional>
#include <unordered_map>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/flat_memo.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

class WfChecker {
 public:
  WfChecker(DiagnosticEngine& diags, Budget* budget)
      : diags_(diags), budget_(budget) {}

  [[nodiscard]] bool tripped() const noexcept { return tripped_; }

  struct Outcome {
    GraphKind kind;
    OrderedSet<Symbol> consumed;
  };

  // `avail` is the affine spawn context (threaded); `scope_` the set of
  // vertex names visible for touching. Returns nullopt after reporting on
  // failure.
  std::optional<Outcome> check(const GTypePtr& g, OrderedSet<Symbol> avail) {
    // Budget poll, once per kinding step. No diagnostic: the caller maps
    // tripped() to budget_exhausted (an Unknown, not a rejection).
    if (budget_ != nullptr && budget_->checkpoint()) {
      tripped_ = true;
      return std::nullopt;
    }
    // Closed-subterm memo. A subterm with no free vertices and no free
    // graph variables is checked independently of avail/scope_/gvars_ and
    // consumes nothing — UNLESS one of its binders collides with a name
    // already in scope (the shadowing rejection below is context-
    // sensitive), hence the bound_vertices guard. Hash-consing makes every
    // repeated occurrence the same node, so the id key collapses them all.
    const GTypeFacts* facts = g->facts;
    const bool closed = facts != nullptr &&
                        GTypeInterner::instance().memoization_enabled() &&
                        facts->free_vertices.empty() &&
                        facts->free_gvars.empty() &&
                        !facts->bound_vertices.intersects(scope_bits_);
    if (closed) {
      if (const GraphKind* hit = closed_memo_.find(facts->id)) {
        return Outcome{*hit, {}};
      }
    }
    // Chains of ';'/'|' parse iteratively, so syntactically valid input
    // can nest arbitrarily deep trees; report instead of overflowing.
    if (depth_ >= kMaxCheckDepth) {
      fail("graph type nested too deeply to check (limit " +
           std::to_string(kMaxCheckDepth) + " levels)");
      return std::nullopt;
    }
    ++depth_;
    auto result = check_uncached(g, std::move(avail));
    --depth_;
    // Only successes are reusable (failures must re-report diagnostics).
    if (closed && result) closed_memo_.put(facts->id, result->kind);
    return result;
  }

  std::optional<Outcome> check_uncached(const GTypePtr& g,
                                        OrderedSet<Symbol> avail) {
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) {
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTSeq& node) -> std::optional<Outcome> {
              auto lhs = check_star(node.lhs, avail, "left of ';'");
              if (!lhs) return std::nullopt;
              auto rhs = check_star(node.rhs,
                                    avail.set_difference(lhs->consumed),
                                    "right of ';'");
              if (!rhs) return std::nullopt;
              return Outcome{GraphKind::star(),
                             lhs->consumed.set_union(rhs->consumed)};
            },
            [&](const GTOr& node) -> std::optional<Outcome> {
              auto lhs = check_star(node.lhs, avail, "left of '|'");
              if (!lhs) return std::nullopt;
              auto rhs = check_star(node.rhs, avail, "right of '|'");
              if (!rhs) return std::nullopt;
              // Affine: branches may consume different subsets.
              return Outcome{GraphKind::star(),
                             lhs->consumed.set_union(rhs->consumed)};
            },
            [&](const GTSpawn& node) -> std::optional<Outcome> {
              if (!avail.contains(node.vertex)) {
                fail("vertex '" + node.vertex.str() +
                     "' is not available for spawning (unbound or already "
                     "spawned)");
                return std::nullopt;
              }
              avail.erase(node.vertex);
              auto body = check_star(node.body, std::move(avail),
                                     "future body of '/'");
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.insert(node.vertex);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTTouch& node) -> std::optional<Outcome> {
              if (!scope_.contains(node.vertex)) {
                fail("touched vertex '" + node.vertex.str() +
                     "' is not in scope");
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTRec& node) -> std::optional<Outcome> {
              // μγ.Πūf;ūt.G (a bare body is treated as Π[;].G). Affine
              // resources must not be captured by a recursive binding, so
              // the body sees only its own parameters.
              return check_rec(node);
            },
            [&](const GTVar& node) -> std::optional<Outcome> {
              auto it = gvars_.find(node.var);
              if (it == gvars_.end()) {
                fail("unbound graph variable '" + node.var.str() + "'");
                return std::nullopt;
              }
              return Outcome{it->second, {}};
            },
            [&](const GTNew& node) -> std::optional<Outcome> {
              ScopedVertex bind(*this, node.vertex);
              if (!bind.ok()) return std::nullopt;
              avail.insert(node.vertex);
              auto body =
                  check_star(node.body, std::move(avail), "body of 'new'");
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.erase(node.vertex);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTPi& node) -> std::optional<Outcome> {
              return check_pi(node, std::move(avail));
            },
            [&](const GTApp& node) -> std::optional<Outcome> {
              auto fn = check(node.fn, avail);
              if (!fn) return std::nullopt;
              if (!fn->kind.is_pi) {
                fail("applied graph type has kind * (expected a pi kind)");
                return std::nullopt;
              }
              if (fn->kind.spawn_arity != node.spawn_args.size() ||
                  fn->kind.touch_arity != node.touch_args.size()) {
                fail("application arity mismatch: type expects [" +
                     std::to_string(fn->kind.spawn_arity) + ";" +
                     std::to_string(fn->kind.touch_arity) + "], got [" +
                     std::to_string(node.spawn_args.size()) + ";" +
                     std::to_string(node.touch_args.size()) + "]");
                return std::nullopt;
              }
              OrderedSet<Symbol> remaining =
                  avail.set_difference(fn->consumed);
              OrderedSet<Symbol> consumed = fn->consumed;
              for (Symbol u : node.spawn_args) {
                if (!remaining.contains(u)) {
                  fail("spawn argument '" + u.str() +
                       "' is not available (unbound or already spawned)");
                  return std::nullopt;
                }
                remaining.erase(u);
                consumed.insert(u);
              }
              for (Symbol u : node.touch_args) {
                if (!scope_.contains(u)) {
                  fail("touch argument '" + u.str() + "' is not in scope");
                  return std::nullopt;
                }
              }
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTVecSpawn& node) -> std::optional<Outcome> {
              // Family-as-unit: the whole sized family is ONE affine
              // spawn resource; the members ū@i come into existence only
              // when normalization unrolls them, so kinding never sees
              // them individually.
              if (!avail.contains(node.family)) {
                fail("family '" + node.family.str() +
                     "' is not available for spawning (unbound or already "
                     "spawned)");
                return std::nullopt;
              }
              avail.erase(node.family);
              auto body = check_star(node.body, std::move(avail),
                                     "member body of 'vec'");
              if (!body) return std::nullopt;
              OrderedSet<Symbol> consumed = body->consumed;
              consumed.insert(node.family);
              return Outcome{GraphKind::star(), std::move(consumed)};
            },
            [&](const GTTouchAll& node) -> std::optional<Outcome> {
              if (!scope_.contains(node.family)) {
                fail("touched family '" + node.family.str() +
                     "' is not in scope");
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTTouchIdx& node) -> std::optional<Outcome> {
              if (!scope_.contains(node.family)) {
                fail("touched family '" + node.family.str() +
                     "' is not in scope");
                return std::nullopt;
              }
              if (node.index >= node.width) {
                fail("family index " + std::to_string(node.index) +
                     " is out of bounds for '" + node.family.str() +
                     "' of width " + std::to_string(node.width));
                return std::nullopt;
              }
              return std::optional<Outcome>(Outcome{GraphKind::star(), {}});
            },
            [&](const GTPipe&) -> std::optional<Outcome> {
              // Kind the desugared form: the stage vertices are ordinary
              // ν-bound names, so the scalar rules carry the whole proof.
              return check(pipe_desugar(g), std::move(avail));
            },
        },
        g->node);
  }

 private:
  // Binds a vertex name in scope_ for the current lexical extent; rejects
  // shadowing (graph types produced by inference never shadow, and the
  // freshness side conditions of the paper assume distinct names).
  class ScopedVertex {
   public:
    ScopedVertex(WfChecker& checker, Symbol vertex)
        : checker_(checker), vertex_(vertex) {
      if (checker_.scope_.contains(vertex)) {
        checker_.fail("vertex binder '" + vertex.str() +
                      "' shadows an existing vertex of the same name");
        ok_ = false;
        return;
      }
      checker_.scope_.insert(vertex);
      checker_.scope_bits_.set(GTypeInterner::instance().index_of(vertex));
    }
    ~ScopedVertex() {
      if (ok_) {
        checker_.scope_.erase(vertex_);
        checker_.scope_bits_.clear(
            GTypeInterner::instance().index_of(vertex_));
      }
    }
    ScopedVertex(const ScopedVertex&) = delete;
    ScopedVertex& operator=(const ScopedVertex&) = delete;
    [[nodiscard]] bool ok() const noexcept { return ok_; }

   private:
    WfChecker& checker_;
    Symbol vertex_;
    bool ok_ = true;
  };

  std::optional<Outcome> check_star(const GTypePtr& g, OrderedSet<Symbol> avail,
                                    const char* where) {
    auto result = check(g, std::move(avail));
    if (!result) return std::nullopt;
    if (result->kind.is_pi) {
      // A Π-kinded type cannot be used directly as a graph. One exception
      // keeps inference output natural: a zero-arity Π is implicitly
      // applied to no arguments.
      if (result->kind.spawn_arity == 0 && result->kind.touch_arity == 0) {
        result->kind = GraphKind::star();
        return result;
      }
      fail(std::string("expected an ordinary graph type ") + where +
           ", found kind " + to_string(result->kind));
      return std::nullopt;
    }
    return result;
  }

  std::optional<Outcome> check_rec(const GTRec& node) {
    const GTPi* pi = std::get_if<GTPi>(&node.body->node);
    // Bare recursive types are treated as μγ.Π[;].body.
    std::vector<Symbol> spawn_params;
    std::vector<Symbol> touch_params;
    GTypePtr body = node.body;
    if (pi != nullptr) {
      spawn_params = pi->spawn_params;
      touch_params = pi->touch_params;
      body = pi->body;
    }
    const GraphKind kind =
        GraphKind::pi(spawn_params.size(), touch_params.size());

    std::vector<std::unique_ptr<ScopedVertex>> bindings;
    OrderedSet<Symbol> inner_avail;
    if (!bind_params(spawn_params, touch_params, bindings, inner_avail)) {
      return std::nullopt;
    }
    auto saved = gvars_.find(node.var);
    const bool had = saved != gvars_.end();
    const GraphKind saved_kind = had ? saved->second : GraphKind{};
    gvars_[node.var] = kind;
    auto result = check_star(body, std::move(inner_avail), "body of 'rec'");
    if (had) {
      gvars_[node.var] = saved_kind;
    } else {
      gvars_.erase(node.var);
    }
    if (!result) return std::nullopt;
    // Affine: parameters need not be consumed. Nothing escapes.
    return Outcome{kind, {}};
  }

  std::optional<Outcome> check_pi(const GTPi& node, OrderedSet<Symbol> avail) {
    std::vector<std::unique_ptr<ScopedVertex>> bindings;
    OrderedSet<Symbol> inner_avail = std::move(avail);
    if (!bind_params(node.spawn_params, node.touch_params, bindings,
                     inner_avail)) {
      return std::nullopt;
    }
    auto result = check_star(node.body, std::move(inner_avail),
                             "body of 'pi'");
    if (!result) return std::nullopt;
    OrderedSet<Symbol> consumed = result->consumed;
    for (Symbol u : node.spawn_params) consumed.erase(u);
    return Outcome{GraphKind::pi(node.spawn_params.size(),
                                 node.touch_params.size()),
                   std::move(consumed)};
  }

  bool bind_params(const std::vector<Symbol>& spawn_params,
                   const std::vector<Symbol>& touch_params,
                   std::vector<std::unique_ptr<ScopedVertex>>& bindings,
                   OrderedSet<Symbol>& avail) {
    for (Symbol u : spawn_params) {
      bindings.push_back(std::make_unique<ScopedVertex>(*this, u));
      if (!bindings.back()->ok()) return false;
      avail.insert(u);
    }
    for (Symbol u : touch_params) {
      // A vertex may be both a spawn and a touch parameter (the spawn
      // binding already put it in scope).
      if (scope_.contains(u)) continue;
      bindings.push_back(std::make_unique<ScopedVertex>(*this, u));
      if (!bindings.back()->ok()) return false;
    }
    return true;
  }

  void fail(std::string message) { diags_.error(std::move(message)); }

  DiagnosticEngine& diags_;
  Budget* budget_ = nullptr;
  bool tripped_ = false;
  OrderedSet<Symbol> scope_;
  // Matches the parser/normalizer depth budgets: trips well before an
  // 8 MiB stack does, even with sanitizer-inflated frames.
  static constexpr std::size_t kMaxCheckDepth = 2'000;
  std::size_t depth_ = 0;
  SymbolBitset scope_bits_;  // scope_ mirrored over the interner index
  std::unordered_map<Symbol, GraphKind> gvars_;
  LeasedMemo<std::uint64_t, GraphKind> closed_memo_;
};

}  // namespace

WellformedResult check_wellformed(const GTypePtr& g, Budget* budget) {
  obs::Span span("gtype", "check_wellformed");
  WellformedResult result;
  if (g == nullptr) {
    result.diags.error("null graph type");
    return result;
  }
  WfChecker checker(result.diags, budget);
  auto outcome = checker.check(g, OrderedSet<Symbol>{});
  result.budget_exhausted = checker.tripped();
  if (!outcome || result.diags.has_errors()) {
    result.ok = false;
    return result;
  }
  result.ok = true;
  result.kind = outcome->kind;
  return result;
}

}  // namespace gtdl
