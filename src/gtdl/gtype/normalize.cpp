#include "gtdl/gtype/normalize.hpp"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "gtdl/gtype/subst.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// Canonical spelling of a ground graph with interior names erased, used
// for alpha-deduplication: designated vertices are numbered in traversal
// order, so two graphs differing only in fresh-name choices render the
// same.
void canonical_spelling(const GraphExpr& g,
                        std::unordered_map<Symbol, unsigned>& numbering,
                        std::string& out) {
  std::visit(Overloaded{
                 [&](const GESingleton&) { out += '1'; },
                 [&](const GESeq& node) {
                   out += '(';
                   canonical_spelling(*node.lhs, numbering, out);
                   out += ';';
                   canonical_spelling(*node.rhs, numbering, out);
                   out += ')';
                 },
                 [&](const GESpawn& node) {
                   out += '(';
                   canonical_spelling(*node.body, numbering, out);
                   out += '/';
                   const auto [it, inserted] = numbering.try_emplace(
                       node.vertex,
                       static_cast<unsigned>(numbering.size()));
                   (void)inserted;
                   out += std::to_string(it->second);
                   out += ')';
                 },
                 [&](const GETouch& node) {
                   out += '~';
                   const auto [it, inserted] = numbering.try_emplace(
                       node.vertex,
                       static_cast<unsigned>(numbering.size()));
                   (void)inserted;
                   out += std::to_string(it->second);
                 },
             },
             g.node);
}

// Numbering caveat: vertices free in the original graph type (Π-style
// open normalization) are also numbered by first occurrence; since both
// graphs being compared draw those from the same type, the numbering is
// still canonical for our use (dedup within one normalize call).
std::string canonical_key(const GraphExpr& g) {
  std::unordered_map<Symbol, unsigned> numbering;
  std::string out;
  canonical_spelling(g, numbering, out);
  return out;
}

class Normalizer {
 public:
  explicit Normalizer(const NormalizeLimits& limits) : limits_(limits) {}

  std::vector<GraphExprPtr> norm(const GTypePtr& g, unsigned n) {
    std::vector<GraphExprPtr> out = norm_node(g, n);
    // Deduplicate alpha-equivalent graphs EAGERLY, at every node: the μ
    // rule's "unroll or not" union and the ν rule's fresh renaming
    // otherwise materialize exponentially many copies of the same graph
    // (set semantics collapses them; a vector must do so explicitly).
    if (limits_.dedup_alpha && out.size() > 1) dedup_in_place(out);
    return out;
  }

  std::vector<GraphExprPtr> norm_node(const GTypePtr& g, unsigned n) {
    if (truncated_ || n == 0) return {};
    if (++steps_ > limits_.max_steps) {
      truncated_ = true;
      return {};
    }
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) {
              return std::vector<GraphExprPtr>{ge::singleton()};
            },
            [&](const GTSeq& node) {
              const std::vector<GraphExprPtr> lhs = norm(node.lhs, n);
              if (lhs.empty()) return std::vector<GraphExprPtr>{};
              const std::vector<GraphExprPtr> rhs = norm(node.rhs, n);
              std::vector<GraphExprPtr> out;
              out.reserve(lhs.size() * rhs.size());
              for (const GraphExprPtr& a : lhs) {
                for (const GraphExprPtr& b : rhs) {
                  if (out.size() >= limits_.max_graphs) {
                    truncated_ = true;
                    return out;
                  }
                  out.push_back(ge::seq(a, b));
                }
              }
              return out;
            },
            [&](const GTOr& node) {
              std::vector<GraphExprPtr> out = norm(node.lhs, n);
              std::vector<GraphExprPtr> rhs = norm(node.rhs, n);
              for (GraphExprPtr& g2 : rhs) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_ = true;
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTSpawn& node) {
              std::vector<GraphExprPtr> bodies = norm(node.body, n);
              std::vector<GraphExprPtr> out;
              out.reserve(bodies.size());
              for (GraphExprPtr& body : bodies) {
                out.push_back(ge::spawn(std::move(body), node.vertex));
              }
              return out;
            },
            [&](const GTTouch& node) {
              return std::vector<GraphExprPtr>{ge::touch(node.vertex)};
            },
            [&](const GTRec&) {
              // Norm_n(μγ.G) = Norm_{n-1}(G[μγ.G/γ]) ∪ Norm_{n-1}(μγ.G)
              std::vector<GraphExprPtr> out = norm(cached_unroll(g), n - 1);
              std::vector<GraphExprPtr> keep = norm(g, n - 1);
              for (GraphExprPtr& g2 : keep) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_ = true;
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTVar&) {
              // Free graph variable: no normalization rule applies.
              return std::vector<GraphExprPtr>{};
            },
            [&](const GTNew& node) {
              // Norm_n(νu.G) = Norm_n(G[u'/u]), u' fresh.
              const Symbol fresh = Symbol::fresh(node.vertex.view());
              const GTypePtr body = substitute_vertices(
                  node.body, VertexSubst{{node.vertex, fresh}});
              return norm(body, n);
            },
            [&](const GTPi&) {
              // A bare Π has kind Πūf;ūt.*, not *; it has no graphs until
              // instantiated.
              return std::vector<GraphExprPtr>{};
            },
            [&](const GTApp& node) {
              // Unroll the applied type to a Π binder, decrementing n per
              // unrolling; ∅ if the fuel runs out or no Π emerges.
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return std::vector<GraphExprPtr>{};
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                // Ill-kinded application; the WF judgment rejects these
                // before normalization in normal operation.
                return std::vector<GraphExprPtr>{};
              }
              VertexSubst subst;
              for (std::size_t i = 0; i < pi.spawn_params.size(); ++i) {
                subst.emplace(pi.spawn_params[i], node.spawn_args[i]);
              }
              for (std::size_t i = 0; i < pi.touch_params.size(); ++i) {
                // A name may be both a spawn and a touch parameter only in
                // ill-formed types; emplace keeps the first binding.
                subst.emplace(pi.touch_params[i], node.touch_args[i]);
              }
              return norm(substitute_vertices(pi.body, subst), fuel);
            },
        },
        g->node);
  }

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  // Keyed on the shared_ptr (not the raw pointer) so the cache RETAINS
  // every key: normalization substitutes freely and temporaries would
  // otherwise be freed and their addresses recycled, aliasing entries.
  const GTypePtr& cached_unroll(const GTypePtr& g) {
    auto [it, inserted] = unroll_cache_.try_emplace(g);
    if (inserted) it->second = unroll_rec(g);
    return it->second;
  }

  static void dedup_in_place(std::vector<GraphExprPtr>& graphs) {
    std::unordered_set<std::string> seen;
    seen.reserve(graphs.size());
    std::vector<GraphExprPtr> unique;
    unique.reserve(graphs.size());
    for (GraphExprPtr& graph : graphs) {
      if (seen.insert(canonical_key(*graph)).second) {
        unique.push_back(std::move(graph));
      }
    }
    graphs = std::move(unique);
  }

  struct PtrHash {
    std::size_t operator()(const GTypePtr& g) const noexcept {
      return std::hash<const GType*>{}(g.get());
    }
  };
  struct PtrEq {
    bool operator()(const GTypePtr& a, const GTypePtr& b) const noexcept {
      return a.get() == b.get();
    }
  };

  const NormalizeLimits& limits_;
  std::size_t steps_ = 0;
  bool truncated_ = false;
  std::unordered_map<GTypePtr, GTypePtr, PtrHash, PtrEq> unroll_cache_;
};

}  // namespace

NormalizeResult normalize(const GTypePtr& g, unsigned depth,
                          const NormalizeLimits& limits) {
  Normalizer normalizer(limits);
  NormalizeResult result;
  // norm() deduplicates at every node when limits.dedup_alpha is set.
  result.graphs = normalizer.norm(g, depth);
  result.truncated = normalizer.truncated();
  result.steps = normalizer.steps();
  return result;
}

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return (kSat - a < b) ? kSat : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSat / b) return kSat;
  return a * b;
}

struct PtrDepthHash {
  std::size_t operator()(const std::pair<const GType*, unsigned>& k) const {
    return std::hash<const GType*>{}(k.first) ^
           (std::hash<unsigned>{}(k.second) * 0x9e3779b97f4a7c15ull);
  }
};

class Counter {
 public:
  std::uint64_t count(const GTypePtr& g, unsigned n) {
    if (n == 0) return 0;
    const std::pair<const GType*, unsigned> key{g.get(), n};
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    const std::uint64_t result = std::visit(
        Overloaded{
            [&](const GTEmpty&) -> std::uint64_t { return 1; },
            [&](const GTSeq& node) {
              return sat_mul(count(node.lhs, n), count(node.rhs, n));
            },
            [&](const GTOr& node) {
              return sat_add(count(node.lhs, n), count(node.rhs, n));
            },
            [&](const GTSpawn& node) { return count(node.body, n); },
            [&](const GTTouch&) -> std::uint64_t { return 1; },
            [&](const GTRec&) {
              return sat_add(count(cached_unroll(g), n - 1), count(g, n - 1));
            },
            [&](const GTVar&) -> std::uint64_t { return 0; },
            [&](const GTNew& node) {
              // Fresh renaming does not change the count.
              return count(node.body, n);
            },
            [&](const GTPi&) -> std::uint64_t { return 0; },
            [&](const GTApp& node) -> std::uint64_t {
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return 0;
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                return 0;
              }
              // Argument renaming does not change the count.
              return count(pi.body, fuel);
            },
        },
        g->node);
    memo_.emplace(key, result);
    return result;
  }

 private:
  struct PtrHash {
    std::size_t operator()(const GTypePtr& g) const noexcept {
      return std::hash<const GType*>{}(g.get());
    }
  };
  struct PtrEq {
    bool operator()(const GTypePtr& a, const GTypePtr& b) const noexcept {
      return a.get() == b.get();
    }
  };

  const GTypePtr& cached_unroll(const GTypePtr& g) {
    auto [it, inserted] = unroll_cache_.try_emplace(g);
    if (inserted) it->second = unroll_rec(g);
    return it->second;
  }

  std::unordered_map<std::pair<const GType*, unsigned>, std::uint64_t,
                     PtrDepthHash>
      memo_;
  std::unordered_map<GTypePtr, GTypePtr, PtrHash, PtrEq> unroll_cache_;
};

}  // namespace

std::uint64_t count_normalizations(const GTypePtr& g, unsigned depth) {
  Counter counter;
  return counter.count(g, depth);
}

}  // namespace gtdl
