#include "gtdl/gtype/normalize.hpp"

#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/gtype/subst.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/obs/trace.hpp"
#include "gtdl/support/budget.hpp"
#include "gtdl/support/fault.hpp"
#include "gtdl/support/flat_memo.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// Canonical spelling of a ground graph with interior names erased, used
// for alpha-deduplication: designated vertices are numbered in traversal
// order, so two graphs differing only in fresh-name choices render the
// same.
void canonical_spelling(const GraphExpr& g,
                        std::unordered_map<Symbol, unsigned>& numbering,
                        std::string& out) {
  // Iterative over an explicit item stack (deep ⊕-chains overflow a
  // recursive walk); vertices are still numbered in emission order — a
  // spawn's vertex after its body — so the spelling stays byte-identical
  // to the recursive form.
  struct Item {
    const GraphExpr* node = nullptr;
    const char* text = nullptr;  // literal to append when node is null
    Symbol number{};             // valid() => append its canonical number
  };
  const auto emit_number = [&](Symbol v) {
    const auto [it, inserted] =
        numbering.try_emplace(v, static_cast<unsigned>(numbering.size()));
    (void)inserted;
    out += std::to_string(it->second);
  };
  std::vector<Item> stack;
  stack.push_back(Item{&g, nullptr, Symbol{}});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (item.text != nullptr) {
      out += item.text;
      continue;
    }
    if (item.node == nullptr) {
      emit_number(item.number);
      continue;
    }
    std::visit(Overloaded{
                   [&](const GESingleton&) { out += '1'; },
                   [&](const GESeq& node) {
                     out += '(';
                     stack.push_back(Item{nullptr, ")", Symbol{}});
                     stack.push_back(Item{node.rhs.get(), nullptr, Symbol{}});
                     stack.push_back(Item{nullptr, ";", Symbol{}});
                     stack.push_back(Item{node.lhs.get(), nullptr, Symbol{}});
                   },
                   [&](const GESpawn& node) {
                     out += '(';
                     stack.push_back(Item{nullptr, ")", Symbol{}});
                     stack.push_back(Item{nullptr, nullptr, node.vertex});
                     stack.push_back(Item{nullptr, "/", Symbol{}});
                     stack.push_back(Item{node.body.get(), nullptr, Symbol{}});
                   },
                   [&](const GETouch& node) {
                     out += '~';
                     emit_number(node.vertex);
                   },
               },
               item.node->node);
  }
}

// Rewrites cached result graphs for reuse at a second occurrence of the
// same (node, fuel): every vertex that is NOT free in the originating
// graph type is a ν-instantiation and gets a brand-new fresh name, so the
// reused copy cannot collide with the stored one (e.g. when both end up
// seq-composed into a single graph). One mapping covers the whole result
// vector — graphs in a result set deliberately share instantiations (the
// ⊕ rule pairs one lhs graph with many rhs graphs) and the copy preserves
// that sharing via a per-node memo.
class FreshNameRefresher {
 public:
  explicit FreshNameRefresher(const GTypeFacts& facts) : facts_(facts) {}

  std::vector<GraphExprPtr> refresh(const std::vector<GraphExprPtr>& graphs) {
    std::vector<GraphExprPtr> out;
    out.reserve(graphs.size());
    for (const GraphExprPtr& g : graphs) out.push_back(copy(g));
    return out;
  }

 private:
  GraphExprPtr copy(const GraphExprPtr& g) {
    auto [it, inserted] = copied_.try_emplace(g.get());
    if (!inserted) return it->second;
    GraphExprPtr result = std::visit(
        Overloaded{
            [&](const GESingleton&) { return g; },
            [&](const GESeq& node) {
              GraphExprPtr lhs = copy(node.lhs);
              GraphExprPtr rhs = copy(node.rhs);
              if (lhs.get() == node.lhs.get() && rhs.get() == node.rhs.get()) {
                return g;
              }
              return ge::seq(std::move(lhs), std::move(rhs));
            },
            [&](const GESpawn& node) {
              GraphExprPtr body = copy(node.body);
              const Symbol vertex = mapped(node.vertex);
              if (body.get() == node.body.get() && vertex == node.vertex) {
                return g;
              }
              return ge::spawn(std::move(body), vertex);
            },
            [&](const GETouch& node) {
              const Symbol vertex = mapped(node.vertex);
              return vertex == node.vertex ? g : ge::touch(vertex);
            },
        },
        g->node);
    copied_[g.get()] = result;
    return result;
  }

  Symbol mapped(Symbol v) {
    auto it = rename_.find(v);
    if (it != rename_.end()) return it->second;
    Symbol out = v;
    const std::string_view name = v.view();
    const std::size_t at = name.find('@');
    if (at != std::string_view::npos) {
      // Family member ū@i (never recorded in the facts bitsets — only
      // the family symbol is): fresh iff its FAMILY is fresh, renamed
      // consistently with it so all members of one family instantiation
      // stay together.
      const Symbol base = Symbol::intern(std::string(name.substr(0, at)));
      const Symbol mapped_base = mapped(base);
      if (mapped_base != base) {
        out = Symbol::intern(std::string(mapped_base.view()) +
                             std::string(name.substr(at)));
      }
    } else {
      const std::size_t idx = GTypeInterner::instance().find_index(v);
      const bool is_free =
          idx != GTypeInterner::npos && facts_.free_vertices.test(idx);
      if (!is_free) out = Symbol::fresh(v.view());
    }
    rename_.emplace(v, out);
    return out;
  }

  const GTypeFacts& facts_;
  std::unordered_map<Symbol, Symbol> rename_;
  std::unordered_map<const GraphExpr*, GraphExprPtr> copied_;
};

}  // namespace

// Numbering caveat: vertices free in the original graph type (Π-style
// open normalization) are also numbered by first occurrence; since both
// graphs being compared draw those from the same type, the numbering is
// still canonical for our use (dedup within one normalize call).
std::string graph_alpha_key(const GraphExpr& g) {
  std::unordered_map<Symbol, unsigned> numbering;
  std::string out;
  canonical_spelling(g, numbering, out);
  return out;
}

void dedup_alpha_graphs(std::vector<GraphExprPtr>& graphs) {
  std::unordered_set<std::string> seen;
  seen.reserve(graphs.size());
  std::vector<GraphExprPtr> unique;
  unique.reserve(graphs.size());
  for (GraphExprPtr& graph : graphs) {
    if (seen.insert(graph_alpha_key(*graph)).second) {
      unique.push_back(std::move(graph));
    }
  }
  graphs = std::move(unique);
}

std::vector<GraphExprPtr> refresh_instantiations(
    const GTypeFacts& facts, const std::vector<GraphExprPtr>& graphs) {
  return FreshNameRefresher(facts).refresh(graphs);
}

namespace {

struct FamilyMetrics {
  obs::Counter& unrolled;
  obs::Histogram& width;

  static FamilyMetrics& get() {
    static FamilyMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new FamilyMetrics{
          reg.counter(obs::MetricDesc{
              "gtype.vecspawn.unrolled", "gtype", "families",
              "VecSpawn families unrolled into member spawns"}),
          reg.histogram(obs::MetricDesc{
              "gtype.family.width", "gtype", "members",
              "declared width of unrolled touch families"}),
      };
    }();
    return *m;
  }
};

// Memo key shared by both normalizers: (node id, fuel, family index).
// Scalar rules use kNoFamily; the VecSpawn rule memoizes each member's
// spawn-wrapped graphs under the member's own index, so a re-encounter
// of the same sized family replays per member (with ν-instantiations
// refreshed) instead of re-deriving the whole product.
struct MemoKey {
  std::uint64_t id = 0;
  unsigned fuel = 0;
  std::uint32_t family = kNoFamilyIndex;

  static constexpr std::uint32_t kNoFamilyIndex = 0xffffffffu;

  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(k.id);
    h ^= std::hash<unsigned>{}(k.fuel) * 0x9e3779b97f4a7c15ull;
    h ^= std::hash<std::uint32_t>{}(k.family) * 0xc2b2ae3d27d4eb4full;
    return h;
  }
};

// True for the node kinds whose normalization is memoized under the
// plain (id, fuel) key — shared by both normalizers and by the prefetch
// issued for the not-yet-visited branch of a ⊕.
bool scalar_memoizable(const GType& g) {
  return std::holds_alternative<GTRec>(g.node) ||
         std::holds_alternative<GTApp>(g.node) ||
         std::holds_alternative<GTNew>(g.node);
}

class Normalizer {
 public:
  explicit Normalizer(const NormalizeLimits& limits)
      : limits_(limits),
        use_memo_(limits.enable_memo &&
                  GTypeInterner::instance().memoization_enabled()) {}

  // A truncated run may hold partially-built graph vectors; destroy them
  // eagerly instead of letting them linger in the leased table's stale
  // slots until natural reclamation.
  ~Normalizer() {
    if (truncated_) memo_.purge_on_release();
  }

  std::vector<GraphExprPtr> norm(const GTypePtr& g, unsigned n,
                                 std::size_t depth) {
    std::vector<GraphExprPtr> out = norm_node(g, n, depth);
    // Deduplicate alpha-equivalent graphs EAGERLY, at every node: the μ
    // rule's "unroll or not" union and the ν rule's fresh renaming
    // otherwise materialize exponentially many copies of the same graph
    // (set semantics collapses them; a vector must do so explicitly).
    if (limits_.dedup_alpha && out.size() > 1) dedup_alpha_graphs(out);
    return out;
  }

  std::vector<GraphExprPtr> norm_node(const GTypePtr& g, unsigned n,
                                      std::size_t depth) {
    if (truncated_ || n == 0) return {};
    if (depth > limits_.max_depth) {
      truncated_ = true;
      depth_limited_ = true;
      return {};
    }
    if (++steps_ > limits_.max_steps) {
      truncated_ = true;
      return {};
    }
    if (limits_.budget != nullptr && limits_.budget->checkpoint()) {
      truncated_ = true;
      return {};
    }
    // Memoize the expensive constructors — μ (whose rule recomputes the
    // same (rec, fuel) pair once per occurrence of the recursion variable),
    // applications, and ν bodies. Hash-consing makes structurally equal
    // subterms the SAME node, so the (id, fuel) key collapses all of them.
    const GTypeFacts* facts = g->facts;
    const bool memoizable =
        use_memo_ && facts != nullptr && scalar_memoizable(*g);
    MemoKey key{};
    if (memoizable) {
      key = {facts->id, n};
      if (const std::vector<GraphExprPtr>* hit = memo_.find(key)) {
        GTypeInterner::instance().note_norm_memo(true);
        return refresh_instantiations(*facts, *hit);
      }
      GTypeInterner::instance().note_norm_memo(false);
    }
    std::vector<GraphExprPtr> result = std::visit(
        Overloaded{
            [&](const GTEmpty&) {
              return std::vector<GraphExprPtr>{ge::singleton()};
            },
            [&](const GTSeq& node) {
              // The rhs memo line will be wanted right after the lhs
              // returns; start pulling it in now.
              prefetch_memo(node.rhs, n);
              const std::vector<GraphExprPtr> lhs =
                  norm(node.lhs, n, depth + 1);
              if (lhs.empty()) return std::vector<GraphExprPtr>{};
              const std::vector<GraphExprPtr> rhs =
                  norm(node.rhs, n, depth + 1);
              std::vector<GraphExprPtr> out;
              out.reserve(lhs.size() * rhs.size());
              for (const GraphExprPtr& a : lhs) {
                for (const GraphExprPtr& b : rhs) {
                  if (out.size() >= limits_.max_graphs) {
                    truncated_ = true;
                    return out;
                  }
                  out.push_back(ge::seq(a, b));
                }
              }
              return out;
            },
            [&](const GTOr& node) {
              prefetch_memo(node.rhs, n);
              std::vector<GraphExprPtr> out = norm(node.lhs, n, depth + 1);
              std::vector<GraphExprPtr> rhs = norm(node.rhs, n, depth + 1);
              for (GraphExprPtr& g2 : rhs) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_ = true;
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTSpawn& node) {
              std::vector<GraphExprPtr> bodies = norm(node.body, n, depth + 1);
              std::vector<GraphExprPtr> out;
              out.reserve(bodies.size());
              for (GraphExprPtr& body : bodies) {
                out.push_back(ge::spawn(std::move(body), node.vertex));
              }
              return out;
            },
            [&](const GTTouch& node) {
              return std::vector<GraphExprPtr>{ge::touch(node.vertex)};
            },
            [&](const GTRec&) {
              // Norm_n(μγ.G) = Norm_{n-1}(G[μγ.G/γ]) ∪ Norm_{n-1}(μγ.G)
              std::vector<GraphExprPtr> out =
                  norm(cached_unroll(g), n - 1, depth + 1);
              std::vector<GraphExprPtr> keep = norm(g, n - 1, depth + 1);
              for (GraphExprPtr& g2 : keep) {
                if (out.size() >= limits_.max_graphs) {
                  truncated_ = true;
                  break;
                }
                out.push_back(std::move(g2));
              }
              return out;
            },
            [&](const GTVar&) {
              // Free graph variable: no normalization rule applies.
              return std::vector<GraphExprPtr>{};
            },
            [&](const GTNew& node) {
              // Norm_n(νu.G) = Norm_n(G[u'/u]), u' fresh.
              const Symbol fresh = Symbol::fresh(node.vertex.view());
              const GTypePtr body = substitute_vertices(
                  node.body, VertexSubst{{node.vertex, fresh}});
              return norm(body, n, depth + 1);
            },
            [&](const GTPi&) {
              // A bare Π has kind Πūf;ūt.*, not *; it has no graphs until
              // instantiated.
              return std::vector<GraphExprPtr>{};
            },
            [&](const GTApp& node) {
              // Unroll the applied type to a Π binder, decrementing n per
              // unrolling; ∅ if the fuel runs out or no Π emerges.
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return std::vector<GraphExprPtr>{};
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                // Ill-kinded application; the WF judgment rejects these
                // before normalization in normal operation.
                return std::vector<GraphExprPtr>{};
              }
              VertexSubst subst;
              for (std::size_t i = 0; i < pi.spawn_params.size(); ++i) {
                subst.emplace(pi.spawn_params[i], node.spawn_args[i]);
              }
              for (std::size_t i = 0; i < pi.touch_params.size(); ++i) {
                // A name may be both a spawn and a touch parameter only in
                // ill-formed types; emplace keeps the first binding.
                subst.emplace(pi.touch_params[i], node.touch_args[i]);
              }
              return norm(substitute_vertices(pi.body, subst), fuel,
                          depth + 1);
            },
            [&](const GTVecSpawn& node) {
              return norm_vecspawn(g, node, n, depth);
            },
            [&](const GTTouchAll& node) {
              // ~ū@0 ⊕ … ⊕ ~ū@w-1 — exactly one graph (• when empty).
              if (node.width == 0) {
                return std::vector<GraphExprPtr>{ge::singleton()};
              }
              GraphExprPtr acc = ge::touch(family_member(node.family, 0));
              for (std::uint32_t i = 1; i < node.width; ++i) {
                acc = ge::seq(std::move(acc),
                              ge::touch(family_member(node.family, i)));
              }
              return std::vector<GraphExprPtr>{std::move(acc)};
            },
            [&](const GTTouchIdx& node) {
              return std::vector<GraphExprPtr>{
                  ge::touch(family_member(node.family, node.index))};
            },
            [&](const GTPipe&) {
              // Lower through the shared desugaring; its ν nodes then
              // hit the ordinary memo on re-encounters.
              obs::Span span("gtype", "pipeline_lower");
              return norm(pipe_desugar(g), n, depth + 1);
            },
        },
        g->node);
    // Only complete results are reusable: a truncated subcomputation's
    // vector is an arbitrary subset and would silently propagate.
    if (memoizable && !truncated_) {
      memo_.put(key, result);
    }
    return result;
  }

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] bool depth_limited() const noexcept { return depth_limited_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  // Norm_n(VecSpawn(w, G)/ū) = { (g0 /ū@0) ⊕ … ⊕ (g{w-1} /ū@w-1) :
  // gi ∈ Norm_n(G) } — the full ⊕-product, so members may take DIFFERENT
  // ∨-branches, exactly like w independently scheduled runtime spawns.
  // Bounded by the same max_graphs/max_steps limits as the scalar rules.
  std::vector<GraphExprPtr> norm_vecspawn(const GTypePtr& g,
                                          const GTVecSpawn& node, unsigned n,
                                          std::size_t depth) {
    FamilyMetrics& metrics = FamilyMetrics::get();
    metrics.unrolled.add();
    metrics.width.observe(node.width);
    if (node.width == 0) return {ge::singleton()};
    std::vector<GraphExprPtr> out;
    for (std::uint32_t i = 0; i < node.width; ++i) {
      std::vector<GraphExprPtr> member =
          member_graphs(g, node, n, depth, i);
      if (member.empty()) return {};  // no body graphs at this fuel
      if (i == 0) {
        out = std::move(member);
        continue;
      }
      std::vector<GraphExprPtr> next;
      for (const GraphExprPtr& a : out) {
        for (const GraphExprPtr& b : member) {
          if (next.size() >= limits_.max_graphs) {
            truncated_ = true;
            return next;
          }
          next.push_back(ge::seq(a, b));
        }
      }
      out = std::move(next);
    }
    return out;
  }

  // One member of a VecSpawn family: Norm_n(G), spawn-wrapped with the
  // member vertex, memoized under the family-indexed key (id, fuel, i).
  // Replays refresh ν-instantiations but keep the member vertex (its
  // family is free in the VecSpawn node, and members rename with their
  // family — see FreshNameRefresher::mapped).
  std::vector<GraphExprPtr> member_graphs(const GTypePtr& g,
                                          const GTVecSpawn& node, unsigned n,
                                          std::size_t depth,
                                          std::uint32_t i) {
    const GTypeFacts* facts = g->facts;
    const bool memoizable = use_memo_ && facts != nullptr;
    MemoKey key{};
    if (memoizable) {
      key = {facts->id, n, i};
      if (const std::vector<GraphExprPtr>* hit = memo_.find(key)) {
        GTypeInterner::instance().note_norm_memo(true);
        return refresh_instantiations(*facts, *hit);
      }
      GTypeInterner::instance().note_norm_memo(false);
    }
    std::vector<GraphExprPtr> bodies = norm(node.body, n, depth + 1);
    const Symbol member = family_member(node.family, i);
    std::vector<GraphExprPtr> wrapped;
    wrapped.reserve(bodies.size());
    for (GraphExprPtr& body : bodies) {
      wrapped.push_back(ge::spawn(std::move(body), member));
    }
    if (memoizable && !truncated_) memo_.put(key, wrapped);
    return wrapped;
  }

  GTypePtr cached_unroll(const GTypePtr& g) {
    return GTypeInterner::instance().cached_unroll(g);
  }

  // One cache-line hint for a branch whose memo entry will be looked up
  // after a sibling subtree finishes: issued only for keys the memo
  // would actually hold.
  void prefetch_memo(const GTypePtr& g, unsigned n) const {
    const GTypeFacts* facts = g->facts;
    if (use_memo_ && facts != nullptr && scalar_memoizable(*g)) {
      memo_.prefetch(MemoKey{facts->id, n});
    }
  }

  const NormalizeLimits& limits_;
  const bool use_memo_;
  std::size_t steps_ = 0;
  bool truncated_ = false;
  bool depth_limited_ = false;
  LeasedMemo<MemoKey, std::vector<GraphExprPtr>, MemoKeyHash> memo_;
};

}  // namespace

NormalizeResult normalize(const GTypePtr& g, unsigned depth,
                          const NormalizeLimits& limits) {
  // Pins the memoization toggle for the duration (see intern.hpp): the
  // Normalizer samples it once, in its constructor.
  GTypeInterner::ScopedAnalysis analysis_guard;
  obs::Span span("gtype", "normalize");
  Normalizer normalizer(limits);
  NormalizeResult result;
  // norm() deduplicates at every node when limits.dedup_alpha is set.
  result.graphs = normalizer.norm(g, depth, 0);
  result.truncated = normalizer.truncated();
  result.depth_limited = normalizer.depth_limited();
  result.steps = normalizer.steps();
  return result;
}

namespace {

struct StreamMetrics {
  obs::Counter& streamed;
  obs::Counter& short_circuits;

  static StreamMetrics& get() {
    static StreamMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      return new StreamMetrics{
          reg.counter(obs::MetricDesc{
              "gtype.enumerate.streamed", "gtype", "graphs",
              "graphs delivered by the streaming enumerator"}),
          reg.counter(obs::MetricDesc{
              "gtype.enumerate.short_circuits", "gtype", "runs",
              "streaming enumerations stopped early by the visitor"}),
      };
    }();
    return *m;
  }
};

// Non-owning callable reference used for the streaming enumerator's
// continuations: each node wires its children's emissions into local
// stack functors (dedup filters, pair builders, capture buffers), and a
// type-erased thin pointer avoids one std::function allocation per node.
class EmitRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<F>, EmitRef>>>
  explicit EmitRef(F& fn)
      : obj_(&fn), call_([](void* o, const GraphExprPtr& g) {
          return (*static_cast<F*>(o))(g);
        }) {}

  bool operator()(const GraphExprPtr& g) const { return call_(obj_, g); }

 private:
  void* obj_;
  bool (*call_)(void*, const GraphExprPtr&);
};

// Streaming counterpart of Normalizer: same rules, same eager
// alpha-deduplication semantics, but results flow through continuations
// instead of vectors. Where Normalizer deduplicates EVERY node's result
// vector, the stream only needs filters at the nodes whose rule can
// introduce duplicates into already-deduplicated child streams — ⊕
// (pairs may collide), ∨ and μ (unions may overlap) — plus memo capture:
// the •/~u singleton rules cannot collide, and the spawn/ν/app rules are
// key-injective maps over one child stream, so filtering there would
// never drop anything.
// The streaming memo also captures whole VecSpawn families (see the
// comment at its use site), so its memoizable set is one node kind wider
// than the vector normalizer's.
bool stream_memoizable(const GType& g) {
  return scalar_memoizable(g) ||
         std::holds_alternative<GTVecSpawn>(g.node);
}

class StreamingNormalizer {
 public:
  explicit StreamingNormalizer(const NormalizeLimits& limits)
      : limits_(limits),
        use_memo_(limits.enable_memo &&
                  GTypeInterner::instance().memoization_enabled()) {}

  ~StreamingNormalizer() {
    if (truncated_ || stopped_) memo_.purge_on_release();
  }

  StreamStats run(const GTypePtr& g, unsigned n, EmitRef visit) {
    auto top = [&](const GraphExprPtr& gr) -> bool {
      if (emitted_ >= limits_.max_graphs) {
        truncated_ = true;
        return false;
      }
      // Per-emission budget poll, in addition to the per-step poll in
      // stream(): memo replays emit many graphs per step, and the
      // deadline must still be observed mid-replay.
      if (limits_.budget != nullptr && limits_.budget->checkpoint()) {
        truncated_ = true;
        return false;
      }
      ++emitted_;
      if (!visit(gr)) {
        stopped_ = true;
        return false;
      }
      return true;
    };
    EmitRef top_ref(top);
    stream(g, n, 0, top_ref);
    StreamStats stats;
    stats.emitted = emitted_;
    stats.steps = steps_;
    stats.peak_materialized = peak_buffered_;
    stats.stopped = stopped_;
    stats.truncated = truncated_;
    stats.depth_limited = depth_limited_;
    return stats;
  }

 private:
  // Emits every graph of Norm_n(g) into `out`, deduplicated exactly as
  // Normalizer::norm would. Returns false iff enumeration must unwind
  // (the consumer stopped or a limit tripped) — an EMPTY result set
  // returns true.
  bool stream(const GTypePtr& g, unsigned n, std::size_t depth,
              EmitRef out) {
    if (stopped_ || truncated_) return false;
    if (n == 0) return true;
    if (depth > limits_.max_depth) {
      truncated_ = true;
      depth_limited_ = true;
      return false;
    }
    if (++steps_ > limits_.max_steps) {
      truncated_ = true;
      return false;
    }
    if (limits_.budget != nullptr && limits_.budget->checkpoint()) {
      truncated_ = true;
      return false;
    }
    const GTypeFacts* facts = g->facts;
    // VecSpawn joins the memoizable set here: the streaming product is
    // derived through the scalar unrolling (no per-member vectors to
    // key), so the whole family's stream is captured at the family node
    // instead. Replays keep the member vertices (they rename with their
    // free family) and refresh ν-instantiations, as always.
    const bool memoizable =
        use_memo_ && facts != nullptr && stream_memoizable(*g);
    if (!memoizable) return stream_node(g, n, depth, out);
    const MemoKey key{facts->id, n};
    if (const std::vector<GraphExprPtr>* hit = memo_.find(key)) {
      GTypeInterner::instance().note_norm_memo(true);
      // Replay the captured (already deduplicated) stream with the
      // ν-instantiated names refreshed, exactly like the vector path.
      const std::vector<GraphExprPtr> refreshed =
          refresh_instantiations(*facts, *hit);
      for (const GraphExprPtr& gr : refreshed) {
        if (!out(gr)) return false;
      }
      return true;
    }
    GTypeInterner::instance().note_norm_memo(false);
    // Capture the subterm's stream while it flows past, so later
    // occurrences of the same (node, fuel) replay it instead of
    // re-deriving. The capture respects the global materialization
    // budget: on overflow it is abandoned and the subterm will simply be
    // re-streamed on reuse.
    std::vector<GraphExprPtr> buffer;
    bool overflow = false;
    auto capture = [&](const GraphExprPtr& gr) -> bool {
      if (!overflow && !buffer_push(buffer, gr)) {
        overflow = true;
        buffer_release(buffer);
      }
      return out(gr);
    };
    EmitRef capture_ref(capture);
    const bool cont = stream_node(g, n, depth, capture_ref);
    if (cont && !truncated_ && !stopped_ && !overflow) {
      // Complete enumeration: reusable. The buffered graphs stay charged
      // against the budget for the life of this call, like the memo they
      // now live in.
      memo_.put(key, std::move(buffer));
    } else if (!overflow) {
      buffer_release(buffer);
    }
    return cont;
  }

  bool stream_node(const GTypePtr& g, unsigned n, std::size_t depth,
                   EmitRef out) {
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) { return out(ge::singleton()); },
            [&](const GTSeq& node) {
              return stream_seq(node, n, depth, out);
            },
            [&](const GTOr& node) {
              DedupFilter filter{this, out, {}};
              EmitRef filter_ref(filter);
              return stream(node.lhs, n, depth + 1, filter_ref) &&
                     stream(node.rhs, n, depth + 1, filter_ref);
            },
            [&](const GTSpawn& node) {
              auto wrap = [&](const GraphExprPtr& body) {
                return out(ge::spawn(body, node.vertex));
              };
              EmitRef wrap_ref(wrap);
              return stream(node.body, n, depth + 1, wrap_ref);
            },
            [&](const GTTouch& node) { return out(ge::touch(node.vertex)); },
            [&](const GTRec&) {
              // Norm_n(μγ.G) = Norm_{n-1}(G[μγ.G/γ]) ∪ Norm_{n-1}(μγ.G)
              DedupFilter filter{this, out, {}};
              EmitRef filter_ref(filter);
              return stream(cached_unroll(g), n - 1, depth + 1,
                            filter_ref) &&
                     stream(g, n - 1, depth + 1, filter_ref);
            },
            [&](const GTVar&) { return true; },
            [&](const GTNew& node) {
              // Norm_n(νu.G) = Norm_n(G[u'/u]), u' fresh.
              const Symbol fresh = Symbol::fresh(node.vertex.view());
              const GTypePtr body = substitute_vertices(
                  node.body, VertexSubst{{node.vertex, fresh}});
              return stream(body, n, depth + 1, out);
            },
            [&](const GTPi&) { return true; },
            [&](const GTApp& node) {
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return true;
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                return true;
              }
              VertexSubst subst;
              for (std::size_t i = 0; i < pi.spawn_params.size(); ++i) {
                subst.emplace(pi.spawn_params[i], node.spawn_args[i]);
              }
              for (std::size_t i = 0; i < pi.touch_params.size(); ++i) {
                subst.emplace(pi.touch_params[i], node.touch_args[i]);
              }
              return stream(substitute_vertices(pi.body, subst), fuel,
                            depth + 1, out);
            },
            [&](const GTVecSpawn& node) {
              FamilyMetrics& metrics = FamilyMetrics::get();
              metrics.unrolled.add();
              metrics.width.observe(node.width);
              // Stream over the shared scalar unrolling; the ⊕ rule's
              // rhs buffering then provides the member product without
              // materializing it.
              return stream(vecspawn_unroll(node), n, depth + 1, out);
            },
            [&](const GTTouchAll& node) {
              return stream(touch_all_unroll(node), n, depth + 1, out);
            },
            [&](const GTTouchIdx& node) {
              return out(ge::touch(family_member(node.family, node.index)));
            },
            [&](const GTPipe&) {
              obs::Span span("gtype", "pipeline_lower");
              return stream(pipe_desugar(g), n, depth + 1, out);
            },
        },
        g->node);
  }

  // The ⊕ rule without the product vector: the lhs is streamed once; the
  // FIRST lhs graph drives a full rhs enumeration whose graphs are
  // buffered (budget permitting) so every later lhs graph pairs against
  // the buffer — sharing rhs structure exactly like the materialized
  // product does. If the rhs overflows the budget it is re-streamed per
  // lhs graph instead: slower, but peak memory stays capped.
  bool stream_seq(const GTSeq& node, unsigned n, std::size_t depth,
                  EmitRef out) {
    // The rhs memo entry is consulted as soon as the first lhs graph
    // arrives; hint its cache line in before the lhs stream starts.
    prefetch_memo(node.rhs, n);
    DedupFilter filter{this, out, {}};
    enum class RhsState { kUnknown, kCached, kTooBig };
    RhsState rhs_state = RhsState::kUnknown;
    std::vector<GraphExprPtr> rhs_cache;
    bool keep_going = true;
    auto on_lhs = [&](const GraphExprPtr& a) -> bool {
      auto pair_out = [&](const GraphExprPtr& b) {
        return filter(ge::seq(a, b));
      };
      switch (rhs_state) {
        case RhsState::kUnknown: {
          bool overflow = false;
          auto first_pass = [&](const GraphExprPtr& b) -> bool {
            if (!overflow && !buffer_push(rhs_cache, b)) {
              overflow = true;
              buffer_release(rhs_cache);
            }
            return pair_out(b);
          };
          EmitRef first_ref(first_pass);
          keep_going = stream(node.rhs, n, depth + 1, first_ref);
          if (!keep_going) return false;
          rhs_state = overflow ? RhsState::kTooBig : RhsState::kCached;
          return true;
        }
        case RhsState::kCached: {
          for (const GraphExprPtr& b : rhs_cache) {
            if (!pair_out(b)) {
              keep_going = false;
              return false;
            }
          }
          return true;
        }
        case RhsState::kTooBig: {
          EmitRef pair_ref(pair_out);
          keep_going = stream(node.rhs, n, depth + 1, pair_ref);
          return keep_going;
        }
      }
      return false;  // unreachable
    };
    EmitRef lhs_ref(on_lhs);
    const bool cont = stream(node.lhs, n, depth + 1, lhs_ref) && keep_going;
    buffer_release(rhs_cache);
    return cont;
  }

  // Keeps the first occurrence of each alpha-key, mirroring
  // dedup_alpha_graphs over a vector. Duplicates are swallowed (the
  // stream continues); only a downstream stop propagates false.
  struct DedupFilter {
    StreamingNormalizer* self;
    EmitRef next;
    std::unordered_set<std::string> seen;

    bool operator()(const GraphExprPtr& g) {
      if (self->limits_.dedup_alpha &&
          !seen.insert(graph_alpha_key(*g)).second) {
        return true;
      }
      return next(g);
    }
  };

  bool buffer_push(std::vector<GraphExprPtr>& buffer,
                   const GraphExprPtr& g) {
    if (live_buffered_ >= limits_.stream_materialize_cap) return false;
    fault::maybe_inject("alloc");
    buffer.push_back(g);
    ++live_buffered_;
    if (live_buffered_ > peak_buffered_) peak_buffered_ = live_buffered_;
    return true;
  }

  void buffer_release(std::vector<GraphExprPtr>& buffer) {
    live_buffered_ -= buffer.size();
    buffer.clear();
    buffer.shrink_to_fit();
  }

  GTypePtr cached_unroll(const GTypePtr& g) {
    return GTypeInterner::instance().cached_unroll(g);
  }

  void prefetch_memo(const GTypePtr& g, unsigned n) const {
    const GTypeFacts* facts = g->facts;
    if (use_memo_ && facts != nullptr && stream_memoizable(*g)) {
      memo_.prefetch(MemoKey{facts->id, n});
    }
  }

  const NormalizeLimits& limits_;
  const bool use_memo_;
  std::size_t steps_ = 0;
  std::size_t emitted_ = 0;
  std::size_t live_buffered_ = 0;
  std::size_t peak_buffered_ = 0;
  bool stopped_ = false;
  bool truncated_ = false;
  bool depth_limited_ = false;
  LeasedMemo<MemoKey, std::vector<GraphExprPtr>, MemoKeyHash> memo_;
};

}  // namespace

StreamStats for_each_graph(
    const GTypePtr& g, unsigned depth, const NormalizeLimits& limits,
    const std::function<bool(const GraphExprPtr&)>& visit) {
  GTypeInterner::ScopedAnalysis analysis_guard;
  obs::Span span("gtype", "for_each_graph");
  StreamingNormalizer normalizer(limits);
  auto call_visit = [&](const GraphExprPtr& gr) { return visit(gr); };
  EmitRef visit_ref(call_visit);
  const StreamStats stats = normalizer.run(g, depth, visit_ref);
  StreamMetrics& metrics = StreamMetrics::get();
  metrics.streamed.add(stats.emitted);
  if (stats.stopped) metrics.short_circuits.add();
  return stats;
}

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return (kSat - a < b) ? kSat : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSat / b) return kSat;
  return a * b;
}

struct IdDepthHash {
  std::size_t operator()(const std::pair<std::uint64_t, unsigned>& k) const {
    return std::hash<std::uint64_t>{}(k.first) ^
           (std::hash<unsigned>{}(k.second) * 0x9e3779b97f4a7c15ull);
  }
};

class Counter {
 public:
  std::uint64_t count(const GTypePtr& g, unsigned n, std::size_t depth) {
    if (n == 0) return 0;
    // The count is a diagnostic; past the safe recursion depth report
    // saturation rather than risking the stack.
    if (depth > kMaxDepth) return kSat;
    const std::pair<std::uint64_t, unsigned> key{node_id(g), n};
    if (const std::uint64_t* hit = memo_.find(key)) return *hit;
    const std::uint64_t result = std::visit(
        Overloaded{
            [&](const GTEmpty&) -> std::uint64_t { return 1; },
            [&](const GTSeq& node) {
              return sat_mul(count(node.lhs, n, depth + 1),
                             count(node.rhs, n, depth + 1));
            },
            [&](const GTOr& node) {
              return sat_add(count(node.lhs, n, depth + 1),
                             count(node.rhs, n, depth + 1));
            },
            [&](const GTSpawn& node) { return count(node.body, n, depth + 1); },
            [&](const GTTouch&) -> std::uint64_t { return 1; },
            [&](const GTRec&) {
              return sat_add(count(cached_unroll(g), n - 1, depth + 1),
                             count(g, n - 1, depth + 1));
            },
            [&](const GTVar&) -> std::uint64_t { return 0; },
            [&](const GTNew& node) {
              // Fresh renaming does not change the count.
              return count(node.body, n, depth + 1);
            },
            [&](const GTPi&) -> std::uint64_t { return 0; },
            [&](const GTApp& node) -> std::uint64_t {
              GTypePtr fn = node.fn;
              unsigned fuel = n;
              while (!std::holds_alternative<GTPi>(fn->node)) {
                if (!std::holds_alternative<GTRec>(fn->node) || fuel == 0) {
                  return 0;
                }
                fn = cached_unroll(fn);
                --fuel;
              }
              const auto& pi = std::get<GTPi>(fn->node);
              if (pi.spawn_params.size() != node.spawn_args.size() ||
                  pi.touch_params.size() != node.touch_args.size()) {
                return 0;
              }
              // Argument renaming does not change the count.
              return count(pi.body, fuel, depth + 1);
            },
            [&](const GTVecSpawn& node) -> std::uint64_t {
              // Every member draws independently from the body's set.
              const std::uint64_t per = count(node.body, n, depth + 1);
              std::uint64_t result = 1;
              for (std::uint32_t i = 0; i < node.width; ++i) {
                result = sat_mul(result, per);
              }
              return result;
            },
            [&](const GTTouchAll&) -> std::uint64_t { return 1; },
            [&](const GTTouchIdx&) -> std::uint64_t { return 1; },
            [&](const GTPipe&) -> std::uint64_t {
              return count(pipe_desugar(g), n, depth + 1);
            },
        },
        g->node);
    memo_.put(key, result);
    return result;
  }

 private:
  static constexpr std::size_t kMaxDepth = 2'000;

  static std::uint64_t node_id(const GTypePtr& g) {
    // All gt::-built values are interned; the pointer fallback only covers
    // hand-rolled nodes and cannot collide with the small interner ids.
    return g->facts != nullptr
               ? g->facts->id
               : static_cast<std::uint64_t>(
                     reinterpret_cast<std::uintptr_t>(g.get()));
  }

  GTypePtr cached_unroll(const GTypePtr& g) {
    return GTypeInterner::instance().cached_unroll(g);
  }

  LeasedMemo<std::pair<std::uint64_t, unsigned>, std::uint64_t, IdDepthHash>
      memo_;
};

}  // namespace

std::uint64_t count_normalizations(const GTypePtr& g, unsigned depth) {
  Counter counter;
  return counter.count(g, depth, 0);
}

}  // namespace gtdl
