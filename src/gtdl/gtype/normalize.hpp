// Normalization of graph types (paper §2.3, Fig. 3).
//
// Norm_n(G) computes the set of ground graphs represented by G, with the
// natural-number fuel n bounding how often recursive bindings may be
// unrolled (each μ-unrolling and each unrolling performed by an
// application decrements n; at n = 0 the result is the empty set, per the
// footnote-1 presentation the paper's proofs use).
//
// The result set is exponential in n for most recursive graph types
// (paper §3) — that observation is one of the reproduced experiments — so
// the implementation takes explicit limits and reports truncation rather
// than exhausting memory.
//
// `dedup_alpha` collapses graphs that are identical up to the choice of
// fresh vertex names. Fig. 3's set semantics distinguishes them only by
// the arbitrary fresh names νu instantiation picked, so deduplication is
// semantically harmless and keeps result sets tractable; the raw
// (paper-literal) cardinality is available via count_normalizations.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gtdl/graph/graph_expr.hpp"
#include "gtdl/gtype/gtype.hpp"

namespace gtdl {

class Budget;  // support/budget.hpp

struct NormalizeLimits {
  // Stop producing graphs beyond this many (per call).
  std::size_t max_graphs = 1u << 18;
  // Abort after this many internal combinator steps.
  std::size_t max_steps = 20'000'000;
  // Maximum recursion depth of the normalizer walk. Types nested deeper
  // report depth_limited truncation instead of overflowing the stack.
  // Sized so the guard trips well before 8 MiB stacks do, even with
  // sanitizer-inflated frames; real inference output nests far shallower.
  std::size_t max_depth = 2'000;
  // Collapse alpha-equivalent results (see header comment).
  bool dedup_alpha = true;
  // Reuse per-(node, fuel) result sets within the call, refreshing the
  // ν-instantiated fresh names on every reuse. Also subject to the global
  // GTypeInterner::set_memoization toggle.
  bool enable_memo = true;
  // for_each_graph only: hard budget on graphs the streaming enumerator
  // may hold materialized at once, across every internal buffer (the ⊕
  // rule's reusable rhs set and the opportunistic (node, fuel) memo
  // captures). Buffers that would exceed the budget are abandoned and the
  // subterm is re-enumerated instead, trading time for the guarantee that
  // peak memory is bounded by this constant — never by the product size.
  std::size_t stream_materialize_cap = 1u << 14;
  // Optional resource budget (support/budget.hpp, not owned; shared with
  // the whole analysis). Polled once per combinator step, alongside
  // max_steps. A tripped budget reports like any other truncation
  // (truncated = true, the result is a prefix/subset); callers that need
  // to distinguish "hit the static caps" from "ran out of budget" query
  // budget->exhausted() after the call — the budget records the reason,
  // the result only records that a limit cut it short.
  Budget* budget = nullptr;
};

struct NormalizeResult {
  std::vector<GraphExprPtr> graphs;
  bool truncated = false;      // a limit was hit; `graphs` is a subset
  bool depth_limited = false;  // specifically, max_depth was exceeded
  std::size_t steps = 0;       // internal work performed
};

// Norm_n(g). Precondition: g has no free graph variables (free vertices
// are allowed and survive into the resulting graphs — the soundness lemma
// normalizes open-vertex types).
[[nodiscard]] NormalizeResult normalize(const GTypePtr& g, unsigned depth,
                                        const NormalizeLimits& limits = {});

// Outcome of one streaming enumeration (for_each_graph below).
struct StreamStats {
  std::size_t emitted = 0;  // graphs delivered to the visitor
  std::size_t steps = 0;    // internal combinator steps (see caveat below)
  // High-water mark of graphs held in internal buffers; bounded by
  // NormalizeLimits::stream_materialize_cap by construction.
  std::size_t peak_materialized = 0;
  bool stopped = false;        // the visitor returned false (short-circuit)
  bool truncated = false;      // a limit was hit; the stream is a prefix
  bool depth_limited = false;  // specifically, max_depth was exceeded
};

// Streaming counterpart of normalize(): enumerates Norm_depth(g) lazily,
// invoking `visit` once per graph in EXACTLY the order (and with exactly
// the alpha-deduplicated multiset) normalize() would store in
// NormalizeResult::graphs — without ever materializing the top-level ⊕
// cross-product. `visit` returns false to stop the enumeration early
// (first-witness mode); that sets `stopped`, not `truncated`.
//
// Subterm result sets are still reused through the (node id, fuel) memo:
// complete subterm streams are captured opportunistically while they are
// enumerated and replayed (fresh-names refreshed) on later occurrences,
// but only while the total buffered graphs stay within
// limits.stream_materialize_cap — beyond that the subterm is re-streamed,
// so peak memory is bounded by the cap regardless of product size. One
// consequence: `steps` counts re-enumerations and is therefore not
// comparable to NormalizeResult::steps; the graph sequence is.
StreamStats for_each_graph(const GTypePtr& g, unsigned depth,
                           const NormalizeLimits& limits,
                           const std::function<bool(const GraphExprPtr&)>& visit);

// Canonical spelling of a ground graph with interior names erased:
// designated vertices are numbered in first-occurrence order, so two
// graphs differing only in the choice of fresh (ν-instantiated) names
// render identically. Equal keys <=> alpha-equal graphs (within one
// normalization, where free names come from the same type). Exposed for
// the parallel engine's dedup and for differential tests.
[[nodiscard]] std::string graph_alpha_key(const GraphExpr& g);

// Collapses alpha-equivalent graphs in place, keeping the first
// occurrence of each key (the order the sequential normalizer keeps).
void dedup_alpha_graphs(std::vector<GraphExprPtr>& graphs);

struct GTypeFacts;  // intern.hpp

// Rewrites a memoized result set for reuse at a second occurrence of the
// same (node, fuel) key: every vertex NOT free in the originating graph
// type (`facts`) is a ν-instantiation and receives a brand-new fresh
// name, so the reused copy cannot collide with the stored one. One
// renaming covers the whole vector — graphs in a result set deliberately
// share instantiations (the ⊕ rule pairs one lhs graph with many rhs
// graphs) and the copy preserves that sharing. Thread-confined: the
// renaming map lives on the calling thread; only Symbol::fresh is shared
// (and internally synchronized).
[[nodiscard]] std::vector<GraphExprPtr> refresh_instantiations(
    const GTypeFacts& facts, const std::vector<GraphExprPtr>& graphs);

// |Norm_n(g)| computed per the paper's definition *without* alpha
// deduplication and without materializing graphs. Saturates at
// UINT64_MAX. This counts exactly what Fig. 3 counts: the ν rule does not
// multiply, disjunction adds, sequencing multiplies, μ adds its
// unrolled-and-not-unrolled alternatives. Types nested deeper than the
// counter can walk safely also saturate (the count is a diagnostic, and
// "too deep to count" reads the same as "too many to count").
[[nodiscard]] std::uint64_t count_normalizations(const GTypePtr& g,
                                                 unsigned depth);

}  // namespace gtdl
