// Well-formedness kinding of graph types (the judgment of the original
// graph-types paper, reconstructed from §2.3/§4.1 of the deadlock paper).
//
// Well-formedness guarantees a graph type cannot normalize to graphs with
// duplicate vertex names: vertices usable for spawning are treated as an
// AFFINE resource (used at most once), while touches are unrestricted but
// must reference a vertex that is in scope. This is the judgment the
// deadlock-freedom system of Fig. 4 strengthens (affine → linear, and
// touchability deferred until after the spawn).
//
// The analysis is algorithmic: contexts are threaded and each subterm
// reports which spawn-capable vertices it consumed, which resolves the
// declarative rules' nondeterministic context splits.

#pragma once

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/gtype/kind.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

class Budget;  // support/budget.hpp

struct WellformedResult {
  bool ok = false;
  GraphKind kind;
  DiagnosticEngine diags;
  // The budget tripped before the kinding finished; `ok == false` then
  // means "could not finish", not "ill-formed".
  bool budget_exhausted = false;
};

// Checks a closed graph type (no free graph variables; free vertices are
// rejected with a diagnostic). The budget, when given, is polled once per
// kinding step (each subterm visit); a trip abandons the check with
// budget_exhausted set.
[[nodiscard]] WellformedResult check_wellformed(const GTypePtr& g,
                                                Budget* budget = nullptr);

}  // namespace gtdl
