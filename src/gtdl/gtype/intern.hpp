// Hash-consed graph-type core.
//
// Every constructor in namespace `gt` routes through the process-wide
// GTypeInterner: structurally identical subterms are canonicalized to ONE
// immutable node with a stable 64-bit id. Because children are interned
// before their parents, the interner maintains, per node, a fact block
// computed incrementally (O(children), never a full re-walk):
//
//   * a structural subtree hash (children identified by id),
//   * constructor counts (GTypeStats),
//   * free vertex / free graph-variable sets as bitsets over a dense
//     per-interner symbol index,
//   * the set of vertex names bound anywhere in the subtree (used by the
//     analyses to decide when a closed subterm's verdict is reusable).
//
// Consequences relied on throughout the stack:
//
//   * structurally_equal is pointer/id comparison — O(1);
//   * free_vertices / free_gvars / stats are cache reads — O(1) (plus
//     set materialization where an OrderedSet is requested);
//   * node addresses are STABLE for the process lifetime (the interner
//     retains every node), so memo tables may key on ids without the
//     retain-the-key dance the pre-interning caches needed;
//   * destruction of arbitrarily deep types never recurses: every node is
//     individually owned by the interner's table.
//
// Thread-safety contract: interning, fact queries, the unroll cache and
// the alpha-hash cache are safe to use from multiple threads. The node
// table is sharded by structural hash (parallel normalization interns
// fresh-named nodes constantly; one table mutex would serialize it), ids
// come from a shared atomic, and fact reads are lock-free once a pointer
// is obtained.
//
// set_memoization() is a benchmarking toggle, NOT a runtime switch. An
// analysis samples the flag once at entry (e.g. the normalizer caches
// `memoization_enabled()` in a `use_memo_` member) and then relies on it
// being stable: flipping it mid-analysis would let the unroll cache and
// the per-analysis memo tables disagree about which results exist, and —
// with the parallel engine — let two workers of ONE normalization pick
// different policies, so a memo entry one worker published is never
// found by another and the claim-back join protocol can wait on a key
// nobody owns. The toggle therefore must only be flipped while no
// analysis is in flight. This is enforced, not just documented: every
// engine/normalize entry point holds a ScopedAnalysis for its duration,
// and set_memoization() throws std::logic_error while any are active.

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "gtdl/gtype/gtype.hpp"

namespace gtdl {

// Bitset over the interner's dense symbol index. Word-level operations
// make the free-set algebra (union, intersection tests) cheap even for
// types mentioning many vertices.
class SymbolBitset {
 public:
  void set(std::size_t bit) {
    const std::size_t word = bit / 64;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= (std::uint64_t{1} << (bit % 64));
  }

  void clear(std::size_t bit) {
    const std::size_t word = bit / 64;
    if (word < words_.size()) {
      words_[word] &= ~(std::uint64_t{1} << (bit % 64));
    }
  }

  [[nodiscard]] bool test(std::size_t bit) const {
    const std::size_t word = bit / 64;
    return word < words_.size() &&
           (words_[word] >> (bit % 64)) & std::uint64_t{1};
  }

  [[nodiscard]] bool empty() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const SymbolBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  void unite(const SymbolBitset& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    for (std::size_t i = 0; i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(i * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const SymbolBitset& a, const SymbolBitset& b) {
    const std::size_t n = std::max(a.words_.size(), b.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
      const std::uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
};

// Per-node cached structural facts. Owned by the interner; valid for the
// process lifetime. Bitset indices are dense symbol indices — translate
// with GTypeInterner::symbol_of / index_of.
struct GTypeFacts {
  std::uint64_t id = 0;        // 1-based; stable and unique per structure
  std::uint64_t hash = 0;      // structural subtree hash
  std::uint32_t height = 0;    // longest path to a leaf
  GTypeStats stats;            // constructor counts, O(1) instead of a walk
  SymbolBitset free_vertices;  // vertex names free in the subtree
  SymbolBitset free_gvars;     // graph variables free in the subtree
  SymbolBitset bound_vertices; // vertex names bound by any ν/Π below
};

class GTypeInterner {
 public:
  // The process-wide default instance used by the gt:: constructors.
  static GTypeInterner& instance();

  // Canonicalizing constructors; structurally identical calls return the
  // SAME node. Children must already be interned (all gt:: values are).
  GTypePtr empty();
  GTypePtr seq(GTypePtr lhs, GTypePtr rhs);
  GTypePtr alt(GTypePtr lhs, GTypePtr rhs);
  GTypePtr spawn(GTypePtr body, Symbol vertex);
  GTypePtr touch(Symbol vertex);
  GTypePtr rec(Symbol var, GTypePtr body);
  GTypePtr var(Symbol v);
  GTypePtr nu(Symbol vertex, GTypePtr body);
  GTypePtr pi(std::vector<Symbol> spawn_params,
              std::vector<Symbol> touch_params, GTypePtr body);
  GTypePtr app(GTypePtr fn, std::vector<Symbol> spawn_args,
               std::vector<Symbol> touch_args);
  GTypePtr vecspawn(GTypePtr body, Symbol family, std::uint32_t width);
  GTypePtr touch_all(Symbol family, std::uint32_t width);
  GTypePtr touch_idx(Symbol family, std::uint32_t width, std::uint32_t index);
  GTypePtr pipe(GTypePtr lhs, GTypePtr rhs);

  // Dense index for `s`, allocating one on first use.
  std::size_t index_of(Symbol s);
  // Index lookup without allocation; returns npos if `s` never appeared
  // in an interned type (hence cannot be free/bound in any of them).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t find_index(Symbol s) const;
  [[nodiscard]] Symbol symbol_of(std::size_t index) const;

  // One-step μ-unrolling with a process-wide memo: for g = μγ.B returns
  // B[μγ.B/γ], computed once per distinct rec node. Non-μ input throws
  // std::invalid_argument (same contract as unroll_rec).
  GTypePtr cached_unroll(const GTypePtr& g);

  // De-Bruijn-canonicalized hash of `g` (bound names replaced by binder
  // levels): equal for alpha-equal terms, so a mismatch refutes alpha
  // equality without a walk. Cached per node; `g` must be interned.
  // Returns 0 (the "no hash" sentinel) for terms too deep to canonicalize
  // safely.
  std::uint64_t alpha_hash(const GType& g);

  // Cache hit/miss counters, all cumulative since process start (or the
  // last reset_counters). Rates of the form hits/(hits+misses).
  struct Stats {
    std::uint64_t nodes = 0;           // live interned nodes
    std::uint64_t intern_hits = 0;     // constructor calls that reused a node
    std::uint64_t intern_misses = 0;   // constructor calls that allocated
    std::uint64_t unroll_hits = 0;
    std::uint64_t unroll_misses = 0;
    std::uint64_t subst_identity_hits = 0;  // subtree untouched, returned as-is
    std::uint64_t subst_memo_hits = 0;
    std::uint64_t subst_memo_misses = 0;
    std::uint64_t norm_memo_hits = 0;
    std::uint64_t norm_memo_misses = 0;
    std::uint64_t alpha_fast_accepts = 0;   // decided by id equality
    std::uint64_t alpha_fast_rejects = 0;   // decided by facts/hash mismatch
    std::uint64_t alpha_full_walks = 0;
  };
  [[nodiscard]] Stats stats() const;
  void reset_counters();

  // Every interned node, sorted by ascending id. Children are interned
  // before their parents and ids are monotonic, so a child always
  // precedes its parent: replaying the vector in order rebuilds the DAG
  // bottom-up. This is what the daemon's snapshot writer serializes
  // (service/snapshot.hpp).
  [[nodiscard]] std::vector<GTypePtr> all_nodes() const;

  // Benchmarking toggle: gates the unroll cache, the substitution and
  // normalization memo tables, and the alpha fast paths (hash-consing
  // itself stays on — node identity must remain canonical). Returns the
  // previous value. Throws std::logic_error if any ScopedAnalysis is
  // active — analyses sample the flag once at entry and require it to be
  // stable until they finish (see the header comment).
  bool set_memoization(bool enabled);
  [[nodiscard]] bool memoization_enabled() const;

  // RAII marker for an in-flight analysis that sampled the memoization
  // flag. While any are live, set_memoization() refuses to flip the flag.
  // Normalization entry points (gtdl::normalize callers go through the
  // detect/engine layers, which hold one) construct these; bench drivers
  // toggle memoization only between, never inside, such scopes.
  class ScopedAnalysis {
   public:
    ScopedAnalysis();
    ~ScopedAnalysis();
    ScopedAnalysis(const ScopedAnalysis&) = delete;
    ScopedAnalysis& operator=(const ScopedAnalysis&) = delete;
  };
  [[nodiscard]] std::size_t active_analyses() const;

  // Internal counter hooks for the passes that keep their memo tables
  // locally but report through this instance.
  void note_subst_identity_hit();
  void note_subst_memo(bool hit);
  void note_norm_memo(bool hit);
  void note_alpha(int kind);  // 0 = fast accept, 1 = fast reject, 2 = walk

 private:
  GTypeInterner();
  ~GTypeInterner();
  GTypeInterner(const GTypeInterner&) = delete;
  GTypeInterner& operator=(const GTypeInterner&) = delete;

  struct Impl;
  Impl* impl_;
};

// Facts for an interned node; every gt::-constructed value has them.
[[nodiscard]] inline const GTypeFacts* facts_of(const GType& g) {
  return g.facts;
}
[[nodiscard]] inline const GTypeFacts* facts_of(const GTypePtr& g) {
  return g ? g->facts : nullptr;
}

// Materializes a facts bitset as an OrderedSet of symbols.
[[nodiscard]] OrderedSet<Symbol> bitset_symbols(const SymbolBitset& bits);

}  // namespace gtdl
