// Graph kinds (paper §4.1): κ ::= * | Πūf;ūt.*
//
// * is the kind of ordinary graph types (directly normalizable);
// Πūf;ūt.* is the kind of parameterized graph types awaiting |ūf| spawn
// and |ūt| touch vertex arguments. Only arities matter to callers.

#pragma once

#include <cstddef>
#include <string>

namespace gtdl {

struct GraphKind {
  bool is_pi = false;
  std::size_t spawn_arity = 0;
  std::size_t touch_arity = 0;

  static GraphKind star() { return {}; }
  static GraphKind pi(std::size_t spawn, std::size_t touch) {
    return {true, spawn, touch};
  }

  friend bool operator==(const GraphKind&, const GraphKind&) = default;
};

// "*" or "pi[2;1].*"
[[nodiscard]] std::string to_string(const GraphKind& kind);

}  // namespace gtdl
