// Parser for the ASCII graph-type syntax (see gtype.hpp):
//
//   G ::= '1' | '~' ident | ident
//       | G ';' G                      (left-assoc, ⊕)
//       | G '|' G                      (left-assoc, ∨, loosest)
//       | G '/' ident                  (postfix spawn, tightest)
//       | G '[' idents ';' idents ']'  (postfix application)
//       | 'rec' ident '.' G | 'new' ident '.' G
//       | 'pi' '[' idents ';' idents ']' '.' G
//       | '(' G ')'
//
// Binders extend maximally to the right. '#' starts a line comment.
// Identifiers match [A-Za-z_][A-Za-z0-9_$']*.

#pragma once

#include <optional>
#include <string_view>

#include "gtdl/gtype/gtype.hpp"
#include "gtdl/support/diagnostics.hpp"

namespace gtdl {

// Parses a complete graph type; returns nullptr and reports to `diags` on
// syntax errors.
[[nodiscard]] GTypePtr parse_gtype(std::string_view text,
                                   DiagnosticEngine& diags);

// Convenience for tests: parses or throws std::runtime_error with the
// rendered diagnostics.
[[nodiscard]] GTypePtr parse_gtype_or_throw(std::string_view text);

}  // namespace gtdl
