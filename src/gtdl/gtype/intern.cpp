#include "gtdl/gtype/intern.hpp"

#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

#include "gtdl/gtype/subst.hpp"
#include "gtdl/obs/metrics.hpp"
#include "gtdl/support/overloaded.hpp"

namespace gtdl {

namespace {

// splitmix64-style mixing; good avalanche for id-based keys.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t seed, std::uint64_t v) {
  return mix(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

// A node's identity for hash-consing: constructor tag + child ids +
// symbol payload, flattened to words. Children are already canonical, so
// one level of ids fully determines the subtree.
using NodeKey = std::vector<std::uint64_t>;

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& key) const noexcept {
    std::uint64_t h = 0x2545f4914f6cdd1dull;
    for (std::uint64_t w : key) h = combine(h, w);
    return static_cast<std::size_t>(h);
  }
};

std::uint64_t id_of(const GTypePtr& g) {
  assert(g != nullptr && g->facts != nullptr &&
         "interner children must themselves be interned");
  return g->facts->id;
}

}  // namespace

struct GTypeInterner::Impl {
  // The node table is SHARDED by structural hash: parallel normalization
  // interns constantly (every ν instantiation substitutes a fresh name
  // through the subtree, allocating new nodes), and a single table mutex
  // would serialize exactly the workload the engine fans out. A node's
  // shard is a pure function of its key, so the double-checked
  // find-or-insert never needs more than one shard's lock; ids come from
  // one shared atomic and remain unique and stable (NOT dense per shard,
  // which nothing relies on).
  static constexpr std::size_t kInternShards = 16;
  struct alignas(64) NodeShard {
    mutable std::shared_mutex mu;
    std::unordered_map<NodeKey, GTypePtr, NodeKeyHash> table;
    std::deque<GTypeFacts> facts;  // stable addresses
  };
  NodeShard shards[kInternShards];
  std::atomic<std::uint64_t> next_id{1};

  // The dense symbol index is its own lock domain. Lock order where both
  // are held: shard.mu, THEN sym_mu (intern() resolves symbol payloads
  // while inserting); no path acquires them in the other order.
  mutable std::shared_mutex sym_mu;
  std::unordered_map<Symbol, std::size_t> sym_index;
  std::vector<Symbol> sym_rev;

  std::mutex unroll_mu;
  std::unordered_map<std::uint64_t, GTypePtr> unroll_cache;

  std::mutex alpha_mu;
  std::unordered_map<std::uint64_t, std::uint64_t> alpha_cache;

  std::atomic<bool> memo_enabled{true};
  // Live ScopedAnalysis guards; set_memoization refuses while nonzero.
  std::atomic<std::size_t> active_analyses{0};

  std::atomic<std::uint64_t> intern_hits{0};
  std::atomic<std::uint64_t> intern_misses{0};
  // Times the find-or-insert upgrade path found its shard's unique lock
  // already held — the direct signal for "shard the table further".
  std::atomic<std::uint64_t> shard_lock_waits{0};
  // Canonical nodes created, by constructor tag (indexed by the Tag enum
  // value carried in the node key's first word).
  std::atomic<std::uint64_t> nodes_by_tag[14] = {};
  std::atomic<std::uint64_t> unroll_hits{0};
  std::atomic<std::uint64_t> unroll_misses{0};
  std::atomic<std::uint64_t> subst_identity_hits{0};
  std::atomic<std::uint64_t> subst_memo_hits{0};
  std::atomic<std::uint64_t> subst_memo_misses{0};
  std::atomic<std::uint64_t> norm_memo_hits{0};
  std::atomic<std::uint64_t> norm_memo_misses{0};
  std::atomic<std::uint64_t> alpha_fast_accepts{0};
  std::atomic<std::uint64_t> alpha_fast_rejects{0};
  std::atomic<std::uint64_t> alpha_full_walks{0};

  std::size_t index_of_symbol(Symbol s) {
    {
      std::shared_lock lock(sym_mu);
      auto it = sym_index.find(s);
      if (it != sym_index.end()) return it->second;
    }
    std::unique_lock lock(sym_mu);
    auto [it, inserted] = sym_index.try_emplace(s, sym_rev.size());
    if (inserted) sym_rev.push_back(s);
    return it->second;
  }

  GTypePtr intern(NodeKey key, GType&& proto);
};

GTypePtr GTypeInterner::Impl::intern(NodeKey key, GType&& proto) {
  const std::uint64_t hash = NodeKeyHash{}(key);
  NodeShard& shard = shards[hash % kInternShards];
  {
    std::shared_lock lock(shard.mu);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      intern_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::unique_lock lock(shard.mu, std::defer_lock);
  if (!lock.try_lock()) {
    shard_lock_waits.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    intern_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  intern_misses.fetch_add(1, std::memory_order_relaxed);
  nodes_by_tag[key[0]].fetch_add(1, std::memory_order_relaxed);

  GTypeFacts& f = shard.facts.emplace_back();
  f.id = next_id.fetch_add(1, std::memory_order_relaxed);
  f.hash = hash;
  f.stats.nodes = 1;

  // Incremental facts from the (already interned) children. The lambdas
  // below only read child fact blocks — O(children + set sizes).
  const auto absorb = [&](const GTypePtr& child) {
    const GTypeFacts& c = *child->facts;
    f.height = std::max(f.height, c.height + 1);
    f.stats.nodes += c.stats.nodes;
    f.stats.mu_bindings += c.stats.mu_bindings;
    f.stats.applications += c.stats.applications;
    f.stats.nu_bindings += c.stats.nu_bindings;
    f.stats.pi_bindings += c.stats.pi_bindings;
    f.stats.spawns += c.stats.spawns;
    f.stats.touches += c.stats.touches;
    f.stats.vecspawn_bindings += c.stats.vecspawn_bindings;
    f.stats.family_touches += c.stats.family_touches;
    f.stats.pipes += c.stats.pipes;
    f.free_vertices.unite(c.free_vertices);
    f.free_gvars.unite(c.free_gvars);
    f.bound_vertices.unite(c.bound_vertices);
  };
  std::visit(
      Overloaded{
          [&](const GTEmpty&) {},
          [&](const GTSeq& node) {
            absorb(node.lhs);
            absorb(node.rhs);
          },
          [&](const GTOr& node) {
            absorb(node.lhs);
            absorb(node.rhs);
          },
          [&](const GTSpawn& node) {
            absorb(node.body);
            ++f.stats.spawns;
            f.free_vertices.set(index_of_symbol(node.vertex));
          },
          [&](const GTTouch& node) {
            ++f.stats.touches;
            f.free_vertices.set(index_of_symbol(node.vertex));
          },
          [&](const GTRec& node) {
            absorb(node.body);
            ++f.stats.mu_bindings;
            f.free_gvars.clear(index_of_symbol(node.var));
          },
          [&](const GTVar& node) {
            f.free_gvars.set(index_of_symbol(node.var));
          },
          [&](const GTNew& node) {
            absorb(node.body);
            ++f.stats.nu_bindings;
            const std::size_t idx = index_of_symbol(node.vertex);
            f.free_vertices.clear(idx);
            f.bound_vertices.set(idx);
          },
          [&](const GTPi& node) {
            absorb(node.body);
            ++f.stats.pi_bindings;
            for (Symbol u : node.spawn_params) {
              const std::size_t idx = index_of_symbol(u);
              f.free_vertices.clear(idx);
              f.bound_vertices.set(idx);
            }
            for (Symbol u : node.touch_params) {
              const std::size_t idx = index_of_symbol(u);
              f.free_vertices.clear(idx);
              f.bound_vertices.set(idx);
            }
          },
          [&](const GTApp& node) {
            absorb(node.fn);
            ++f.stats.applications;
            for (Symbol u : node.spawn_args) {
              f.free_vertices.set(index_of_symbol(u));
            }
            for (Symbol u : node.touch_args) {
              f.free_vertices.set(index_of_symbol(u));
            }
          },
          [&](const GTVecSpawn& node) {
            absorb(node.body);
            ++f.stats.vecspawn_bindings;
            f.stats.spawns += node.width;
            f.free_vertices.set(index_of_symbol(node.family));
          },
          [&](const GTTouchAll& node) {
            ++f.stats.family_touches;
            f.stats.touches += node.width;
            f.free_vertices.set(index_of_symbol(node.family));
          },
          [&](const GTTouchIdx& node) {
            ++f.stats.family_touches;
            ++f.stats.touches;
            f.free_vertices.set(index_of_symbol(node.family));
          },
          [&](const GTPipe& node) {
            absorb(node.lhs);
            absorb(node.rhs);
            ++f.stats.pipes;
          },
      },
      proto.node);

  proto.facts = &f;
  GTypePtr interned = std::make_shared<const GType>(std::move(proto));
  shard.table.emplace(std::move(key), interned);
  return interned;
}

GTypeInterner& GTypeInterner::instance() {
  // Deliberately immortal: node addresses and fact pointers stay valid
  // for the whole process, and teardown of deep DAGs never runs.
  static GTypeInterner* interner = new GTypeInterner();
  return *interner;
}

GTypeInterner::GTypeInterner() : impl_(new Impl()) {
  // The interner keeps its own always-on tallies (Stats) because they
  // predate the obs layer and several tests assert on them directly; a
  // snapshot-time collector mirrors them into the registry so --stats
  // and bench `metrics` blocks see them under the shared catalog. The
  // interner is immortal, so capturing `this` is safe.
  obs::MetricsRegistry::instance().register_collector([this] {
    auto& reg = obs::MetricsRegistry::instance();
    auto g = [&reg](const char* name, const char* unit,
                    const char* help) -> obs::Gauge& {
      return reg.gauge(obs::MetricDesc{name, "gtype", unit, help});
    };
    const Stats s = stats();
    g("gtype.intern.nodes", "nodes", "live hash-consed nodes")
        .set(static_cast<std::int64_t>(s.nodes));
    g("gtype.intern.hits", "lookups", "find-or-insert found existing node")
        .set(static_cast<std::int64_t>(s.intern_hits));
    g("gtype.intern.misses", "lookups", "find-or-insert created a node")
        .set(static_cast<std::int64_t>(s.intern_misses));
    g("gtype.intern.shard_lock_waits", "waits",
      "shard unique-lock upgrades that had to block")
        .set(static_cast<std::int64_t>(
            impl_->shard_lock_waits.load(std::memory_order_relaxed)));
    g("gtype.unroll.hits", "lookups", "rec-unroll cache hits")
        .set(static_cast<std::int64_t>(s.unroll_hits));
    g("gtype.unroll.misses", "lookups", "rec-unroll cache misses")
        .set(static_cast<std::int64_t>(s.unroll_misses));
    g("gtype.subst.identity_hits", "lookups",
      "substitutions skipped via free-name bitsets")
        .set(static_cast<std::int64_t>(s.subst_identity_hits));
    g("gtype.subst.memo_hits", "lookups", "substitution memo hits")
        .set(static_cast<std::int64_t>(s.subst_memo_hits));
    g("gtype.subst.memo_misses", "lookups", "substitution memo misses")
        .set(static_cast<std::int64_t>(s.subst_memo_misses));
    g("gtype.norm.memo_hits", "lookups", "Norm_n (id, fuel) memo hits")
        .set(static_cast<std::int64_t>(s.norm_memo_hits));
    g("gtype.norm.memo_misses", "lookups", "Norm_n (id, fuel) memo misses")
        .set(static_cast<std::int64_t>(s.norm_memo_misses));
    g("gtype.alpha.fast_accepts", "checks",
      "alpha equality decided by pointer identity")
        .set(static_cast<std::int64_t>(s.alpha_fast_accepts));
    g("gtype.alpha.fast_rejects", "checks",
      "alpha equality refuted by cached de-Bruijn hash")
        .set(static_cast<std::int64_t>(s.alpha_fast_rejects));
    g("gtype.alpha.full_walks", "checks",
      "alpha equality needing the full structural walk")
        .set(static_cast<std::int64_t>(s.alpha_full_walks));
    static const char* kTagNames[14] = {
        "empty",    "seq",      "or",       "spawn", "touch",
        "rec",      "var",      "new",      "pi",    "app",
        "vecspawn", "touchall", "touchidx", "pipe"};
    for (int t = 0; t < 14; ++t) {
      g((std::string("gtype.intern.nodes_by.") + kTagNames[t]).c_str(),
        "nodes", "canonical nodes created, by constructor")
          .set(static_cast<std::int64_t>(
              impl_->nodes_by_tag[t].load(std::memory_order_relaxed)));
    }
  });
}
GTypeInterner::~GTypeInterner() { delete impl_; }

namespace {

enum Tag : std::uint64_t {
  kEmpty,
  kSeq,
  kOr,
  kSpawn,
  kTouch,
  kRec,
  kVar,
  kNew,
  kPi,
  kApp,
  kVecSpawn,
  kTouchAll,
  kTouchIdx,
  kPipe,
};

}  // namespace

GTypePtr GTypeInterner::empty() {
  return impl_->intern({Tag::kEmpty}, GType{GTEmpty{}});
}

GTypePtr GTypeInterner::seq(GTypePtr lhs, GTypePtr rhs) {
  NodeKey key{Tag::kSeq, id_of(lhs), id_of(rhs)};
  return impl_->intern(std::move(key),
                       GType{GTSeq{std::move(lhs), std::move(rhs)}});
}

GTypePtr GTypeInterner::alt(GTypePtr lhs, GTypePtr rhs) {
  NodeKey key{Tag::kOr, id_of(lhs), id_of(rhs)};
  return impl_->intern(std::move(key),
                       GType{GTOr{std::move(lhs), std::move(rhs)}});
}

GTypePtr GTypeInterner::spawn(GTypePtr body, Symbol vertex) {
  NodeKey key{Tag::kSpawn, id_of(body), vertex.raw()};
  return impl_->intern(std::move(key),
                       GType{GTSpawn{std::move(body), vertex}});
}

GTypePtr GTypeInterner::touch(Symbol vertex) {
  return impl_->intern({Tag::kTouch, vertex.raw()}, GType{GTTouch{vertex}});
}

GTypePtr GTypeInterner::rec(Symbol var, GTypePtr body) {
  NodeKey key{Tag::kRec, var.raw(), id_of(body)};
  return impl_->intern(std::move(key), GType{GTRec{var, std::move(body)}});
}

GTypePtr GTypeInterner::var(Symbol v) {
  return impl_->intern({Tag::kVar, v.raw()}, GType{GTVar{v}});
}

GTypePtr GTypeInterner::nu(Symbol vertex, GTypePtr body) {
  NodeKey key{Tag::kNew, vertex.raw(), id_of(body)};
  return impl_->intern(std::move(key), GType{GTNew{vertex, std::move(body)}});
}

GTypePtr GTypeInterner::pi(std::vector<Symbol> spawn_params,
                           std::vector<Symbol> touch_params, GTypePtr body) {
  NodeKey key;
  key.reserve(4 + spawn_params.size() + touch_params.size());
  key.push_back(Tag::kPi);
  key.push_back(spawn_params.size());
  key.push_back(touch_params.size());
  for (Symbol u : spawn_params) key.push_back(u.raw());
  for (Symbol u : touch_params) key.push_back(u.raw());
  key.push_back(id_of(body));
  return impl_->intern(std::move(key),
                       GType{GTPi{std::move(spawn_params),
                                  std::move(touch_params), std::move(body)}});
}

GTypePtr GTypeInterner::app(GTypePtr fn, std::vector<Symbol> spawn_args,
                            std::vector<Symbol> touch_args) {
  NodeKey key;
  key.reserve(4 + spawn_args.size() + touch_args.size());
  key.push_back(Tag::kApp);
  key.push_back(id_of(fn));
  key.push_back(spawn_args.size());
  key.push_back(touch_args.size());
  for (Symbol u : spawn_args) key.push_back(u.raw());
  for (Symbol u : touch_args) key.push_back(u.raw());
  return impl_->intern(std::move(key),
                       GType{GTApp{std::move(fn), std::move(spawn_args),
                                   std::move(touch_args)}});
}

GTypePtr GTypeInterner::vecspawn(GTypePtr body, Symbol family,
                                 std::uint32_t width) {
  NodeKey key{Tag::kVecSpawn, id_of(body), family.raw(), width};
  return impl_->intern(std::move(key),
                       GType{GTVecSpawn{std::move(body), family, width}});
}

GTypePtr GTypeInterner::touch_all(Symbol family, std::uint32_t width) {
  NodeKey key{Tag::kTouchAll, family.raw(), width};
  return impl_->intern(std::move(key), GType{GTTouchAll{family, width}});
}

GTypePtr GTypeInterner::touch_idx(Symbol family, std::uint32_t width,
                                  std::uint32_t index) {
  NodeKey key{Tag::kTouchIdx, family.raw(), width, index};
  return impl_->intern(std::move(key),
                       GType{GTTouchIdx{family, width, index}});
}

GTypePtr GTypeInterner::pipe(GTypePtr lhs, GTypePtr rhs) {
  NodeKey key{Tag::kPipe, id_of(lhs), id_of(rhs)};
  return impl_->intern(std::move(key),
                       GType{GTPipe{std::move(lhs), std::move(rhs)}});
}

std::size_t GTypeInterner::index_of(Symbol s) {
  return impl_->index_of_symbol(s);
}

std::size_t GTypeInterner::find_index(Symbol s) const {
  std::shared_lock lock(impl_->sym_mu);
  auto it = impl_->sym_index.find(s);
  return it == impl_->sym_index.end() ? npos : it->second;
}

Symbol GTypeInterner::symbol_of(std::size_t index) const {
  std::shared_lock lock(impl_->sym_mu);
  return index < impl_->sym_rev.size() ? impl_->sym_rev[index] : Symbol{};
}

GTypePtr GTypeInterner::cached_unroll(const GTypePtr& g) {
  if (!impl_->memo_enabled.load(std::memory_order_relaxed)) {
    impl_->unroll_misses.fetch_add(1, std::memory_order_relaxed);
    return unroll_rec(g);
  }
  const std::uint64_t id = id_of(g);
  {
    std::lock_guard lock(impl_->unroll_mu);
    auto it = impl_->unroll_cache.find(id);
    if (it != impl_->unroll_cache.end()) {
      impl_->unroll_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  impl_->unroll_misses.fetch_add(1, std::memory_order_relaxed);
  // Computed outside the lock: unrolling re-enters the interner. A lost
  // race recomputes the same canonical node — harmless.
  GTypePtr unrolled = unroll_rec(g);
  std::lock_guard lock(impl_->unroll_mu);
  return impl_->unroll_cache.try_emplace(id, std::move(unrolled))
      .first->second;
}

// --- Alpha-canonical hashing ------------------------------------------------

namespace {

// De-Bruijn canonicalization: bound names hash as their binder level,
// free names as their (interned) spelling. Alpha-equal terms therefore
// hash identically; a hash mismatch refutes alpha equality. Beyond
// kMaxAlphaDepth the walk bails out (0 = "no hash") rather than risk the
// stack; callers fall back to the ordinary comparison.
constexpr unsigned kMaxAlphaDepth = 4'000;

struct AlphaHasher {
  std::unordered_map<Symbol, unsigned> env;
  unsigned next_level = 0;
  bool overflow = false;

  std::uint64_t name(Symbol s) {
    auto it = env.find(s);
    if (it != env.end()) return combine(1, it->second);
    return combine(2, s.raw());
  }

  std::uint64_t walk(const GType& g, unsigned depth) {
    if (depth > kMaxAlphaDepth) {
      overflow = true;
      return 0;
    }
    return std::visit(
        Overloaded{
            [&](const GTEmpty&) -> std::uint64_t { return mix(Tag::kEmpty); },
            [&](const GTSeq& node) {
              std::uint64_t h = mix(Tag::kSeq);
              h = combine(h, walk(*node.lhs, depth + 1));
              return combine(h, walk(*node.rhs, depth + 1));
            },
            [&](const GTOr& node) {
              std::uint64_t h = mix(Tag::kOr);
              h = combine(h, walk(*node.lhs, depth + 1));
              return combine(h, walk(*node.rhs, depth + 1));
            },
            [&](const GTSpawn& node) {
              std::uint64_t h = mix(Tag::kSpawn);
              h = combine(h, walk(*node.body, depth + 1));
              return combine(h, name(node.vertex));
            },
            [&](const GTTouch& node) {
              return combine(mix(Tag::kTouch), name(node.vertex));
            },
            [&](const GTRec& node) {
              return binder(Tag::kRec, {node.var}, *node.body, depth);
            },
            [&](const GTVar& node) {
              return combine(mix(Tag::kVar), name(node.var));
            },
            [&](const GTNew& node) {
              return binder(Tag::kNew, {node.vertex}, *node.body, depth);
            },
            [&](const GTPi& node) {
              std::vector<Symbol> bound = node.spawn_params;
              bound.insert(bound.end(), node.touch_params.begin(),
                           node.touch_params.end());
              std::uint64_t h = binder(Tag::kPi, bound, *node.body, depth);
              h = combine(h, node.spawn_params.size());
              return combine(h, node.touch_params.size());
            },
            [&](const GTApp& node) {
              std::uint64_t h = mix(Tag::kApp);
              h = combine(h, walk(*node.fn, depth + 1));
              h = combine(h, node.spawn_args.size());
              for (Symbol u : node.spawn_args) h = combine(h, name(u));
              h = combine(h, node.touch_args.size());
              for (Symbol u : node.touch_args) h = combine(h, name(u));
              return h;
            },
            [&](const GTVecSpawn& node) {
              std::uint64_t h = mix(Tag::kVecSpawn);
              h = combine(h, walk(*node.body, depth + 1));
              h = combine(h, name(node.family));
              return combine(h, node.width);
            },
            [&](const GTTouchAll& node) {
              std::uint64_t h = mix(Tag::kTouchAll);
              h = combine(h, name(node.family));
              return combine(h, node.width);
            },
            [&](const GTTouchIdx& node) {
              std::uint64_t h = mix(Tag::kTouchIdx);
              h = combine(h, name(node.family));
              h = combine(h, node.width);
              return combine(h, node.index);
            },
            [&](const GTPipe& node) {
              std::uint64_t h = mix(Tag::kPipe);
              h = combine(h, walk(*node.lhs, depth + 1));
              return combine(h, walk(*node.rhs, depth + 1));
            },
        },
        g.node);
  }

  // Binds `names` in order (later entries shadow, matching AlphaBinding's
  // pairwise binding order), walks the body, restores the env.
  std::uint64_t binder(std::uint64_t tag, const std::vector<Symbol>& names,
                       const GType& body, unsigned depth) {
    std::vector<std::pair<Symbol, std::optional<unsigned>>> saved;
    saved.reserve(names.size());
    for (Symbol s : names) {
      auto it = env.find(s);
      saved.emplace_back(s, it == env.end()
                                ? std::nullopt
                                : std::optional<unsigned>(it->second));
      env[s] = next_level++;
    }
    std::uint64_t h = combine(mix(tag), names.size());
    h = combine(h, walk(body, depth + 1));
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      if (it->second) {
        env[it->first] = *it->second;
      } else {
        env.erase(it->first);
      }
    }
    return h;
  }
};

}  // namespace

std::uint64_t GTypeInterner::alpha_hash(const GType& g) {
  assert(g.facts != nullptr);
  const std::uint64_t id = g.facts->id;
  {
    std::lock_guard lock(impl_->alpha_mu);
    auto it = impl_->alpha_cache.find(id);
    if (it != impl_->alpha_cache.end()) return it->second;
  }
  AlphaHasher hasher;
  std::uint64_t h = hasher.walk(g, 0);
  if (hasher.overflow) {
    h = 0;
  } else if (h == 0) {
    h = 1;  // reserve 0 for "no hash"
  }
  std::lock_guard lock(impl_->alpha_mu);
  return impl_->alpha_cache.try_emplace(id, h).first->second;
}

// --- Stats ------------------------------------------------------------------

GTypeInterner::Stats GTypeInterner::stats() const {
  Stats s;
  for (const Impl::NodeShard& shard : impl_->shards) {
    std::shared_lock lock(shard.mu);
    s.nodes += shard.table.size();
  }
  s.intern_hits = impl_->intern_hits.load();
  s.intern_misses = impl_->intern_misses.load();
  s.unroll_hits = impl_->unroll_hits.load();
  s.unroll_misses = impl_->unroll_misses.load();
  s.subst_identity_hits = impl_->subst_identity_hits.load();
  s.subst_memo_hits = impl_->subst_memo_hits.load();
  s.subst_memo_misses = impl_->subst_memo_misses.load();
  s.norm_memo_hits = impl_->norm_memo_hits.load();
  s.norm_memo_misses = impl_->norm_memo_misses.load();
  s.alpha_fast_accepts = impl_->alpha_fast_accepts.load();
  s.alpha_fast_rejects = impl_->alpha_fast_rejects.load();
  s.alpha_full_walks = impl_->alpha_full_walks.load();
  return s;
}

std::vector<GTypePtr> GTypeInterner::all_nodes() const {
  std::vector<GTypePtr> out;
  for (const Impl::NodeShard& shard : impl_->shards) {
    std::shared_lock lock(shard.mu);
    out.reserve(out.size() + shard.table.size());
    for (const auto& entry : shard.table) out.push_back(entry.second);
  }
  std::sort(out.begin(), out.end(), [](const GTypePtr& a, const GTypePtr& b) {
    return a->facts->id < b->facts->id;
  });
  return out;
}

void GTypeInterner::reset_counters() {
  impl_->intern_hits = 0;
  impl_->intern_misses = 0;
  impl_->unroll_hits = 0;
  impl_->unroll_misses = 0;
  impl_->subst_identity_hits = 0;
  impl_->subst_memo_hits = 0;
  impl_->subst_memo_misses = 0;
  impl_->norm_memo_hits = 0;
  impl_->norm_memo_misses = 0;
  impl_->alpha_fast_accepts = 0;
  impl_->alpha_fast_rejects = 0;
  impl_->alpha_full_walks = 0;
}

bool GTypeInterner::set_memoization(bool enabled) {
  // Analyses sample the flag once at entry (Normalizer/ParNormalizer cache
  // it in use_memo_) and require it stable until they finish; flipping it
  // mid-flight desynchronizes the unroll cache from the per-analysis memo
  // tables and, in the parallel engine, lets workers of one normalization
  // disagree on policy. Guarded rather than just documented.
  if (impl_->active_analyses.load(std::memory_order_acquire) != 0) {
    throw std::logic_error(
        "GTypeInterner::set_memoization: refusing to flip the memoization "
        "toggle while an analysis is in flight (active ScopedAnalysis "
        "guards exist); toggle only between analyses");
  }
  return impl_->memo_enabled.exchange(enabled);
}

GTypeInterner::ScopedAnalysis::ScopedAnalysis() {
  GTypeInterner::instance().impl_->active_analyses.fetch_add(
      1, std::memory_order_acq_rel);
}

GTypeInterner::ScopedAnalysis::~ScopedAnalysis() {
  GTypeInterner::instance().impl_->active_analyses.fetch_sub(
      1, std::memory_order_acq_rel);
}

std::size_t GTypeInterner::active_analyses() const {
  return impl_->active_analyses.load(std::memory_order_acquire);
}

bool GTypeInterner::memoization_enabled() const {
  return impl_->memo_enabled.load(std::memory_order_relaxed);
}

void GTypeInterner::note_subst_identity_hit() {
  impl_->subst_identity_hits.fetch_add(1, std::memory_order_relaxed);
}

void GTypeInterner::note_subst_memo(bool hit) {
  (hit ? impl_->subst_memo_hits : impl_->subst_memo_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void GTypeInterner::note_norm_memo(bool hit) {
  (hit ? impl_->norm_memo_hits : impl_->norm_memo_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void GTypeInterner::note_alpha(int kind) {
  switch (kind) {
    case 0:
      impl_->alpha_fast_accepts.fetch_add(1, std::memory_order_relaxed);
      break;
    case 1:
      impl_->alpha_fast_rejects.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      impl_->alpha_full_walks.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

OrderedSet<Symbol> bitset_symbols(const SymbolBitset& bits) {
  std::vector<Symbol> symbols;
  symbols.reserve(bits.count());
  GTypeInterner& interner = GTypeInterner::instance();
  bits.for_each([&](std::size_t index) {
    symbols.push_back(interner.symbol_of(index));
  });
  return OrderedSet<Symbol>(std::move(symbols));
}

}  // namespace gtdl
