// Capture-avoiding substitution over graph types.
//
// Normalization (Fig. 3) needs two substitution forms:
//   G[u'/u]   — replace free occurrences of vertex u by u' (ν instantiation
//               and Π-application),
//   G[G'/γ]   — replace free occurrences of graph variable γ by G'
//               (μ unrolling).
//
// Both are capture-avoiding: binders (ν/Π for vertices, μ for graph
// variables) that would capture a name free in the replacement are
// alpha-renamed to fresh names on the way down.

#pragma once

#include <unordered_map>

#include "gtdl/gtype/gtype.hpp"

namespace gtdl {

using VertexSubst = std::unordered_map<Symbol, Symbol>;

// Applies `subst` to the free vertex occurrences of `g`. Names not in the
// map are unchanged.
[[nodiscard]] GTypePtr substitute_vertices(const GTypePtr& g,
                                           const VertexSubst& subst);

// G[replacement/var] for a graph variable.
[[nodiscard]] GTypePtr substitute_gvar(const GTypePtr& g, Symbol var,
                                       const GTypePtr& replacement);

// One step of μ-unrolling: for g = μγ.B, returns B[μγ.B/γ]. Precondition:
// g is a GTRec (checked; throws std::invalid_argument otherwise).
[[nodiscard]] GTypePtr unroll_rec(const GTypePtr& g);

}  // namespace gtdl
