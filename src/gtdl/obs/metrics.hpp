// Process-wide metrics registry: the measurement substrate for every
// analysis layer (DESIGN.md "Observability layer", docs/OBSERVABILITY.md
// for the full metric catalog).
//
// Design constraints, in order:
//
//   1. DORMANT COST ~ ZERO. Instrumentation sites live in the hottest
//      loops we have (the interner's find-or-insert, the engine's fork
//      guards, the pool's queue ops). Every mutation primitive therefore
//      checks ONE process-global relaxed atomic flag and branches away
//      before touching its own cache line; with stats disabled (the
//      default) an instrumented call is a predictable not-taken branch.
//      bench_obs measures this directly (<5% end-to-end, typically well
//      under 1%).
//   2. Instruments are REGISTERED ONCE and referenced forever: a site
//      does `static obs::Counter& c = registry.counter(...)` so the
//      name lookup happens on first execution only; afterwards the site
//      holds a stable reference (instruments are deque-backed and never
//      move or die).
//   3. CONCURRENT MUTATION IS THE NORM, not the exception. Counters and
//      histograms are plain relaxed atomics — engine workers, pool
//      threads and the futures runtime all hit them simultaneously, and
//      a snapshot taken mid-run is a consistent-enough view (each cell
//      individually atomic; cross-cell skew is acceptable for
//      monitoring, exact totals are read after the workload quiesces).
//
// Layers that already keep their own tallies (the interner's
// GTypeInterner::Stats) publish them through a COLLECTOR: a callback,
// registered once, that copies the source-of-truth values into gauges
// when a snapshot is taken. Collectors run at snapshot time only, so
// they may take locks the hot path never would.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace gtdl::obs {

namespace detail {
// The process-global "is anyone watching" flag, shared by every Counter /
// Histogram mutation. Inline so the hot-path load compiles to one memory
// read against a known address in every TU.
inline std::atomic<bool> g_stats_enabled{false};
}  // namespace detail

[[nodiscard]] inline bool stats_enabled() noexcept {
  return detail::g_stats_enabled.load(std::memory_order_relaxed);
}

// Returns the previous value. Flip freely at runtime; sites observe the
// change on their next execution (relaxed visibility — fine for a
// monitoring toggle, asserted precisely only around quiescent points).
inline bool set_stats_enabled(bool enabled) noexcept {
  return detail::g_stats_enabled.exchange(enabled,
                                          std::memory_order_relaxed);
}

// Monotonic event counter. add() is gated on the global flag; use
// force_add() only from snapshot-time collectors that must write
// regardless (none of the shipped layers need it on a hot path).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!stats_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void force_add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value. set() is NOT gated: gauges are written by
// snapshot-time collectors (and the occasional cold path), never from
// hot loops, and a collector must be able to publish while the caller
// is rendering a report with stats nominally off.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log2-bucketed histogram over uint64 samples: bucket i counts samples
// with bit_width(v) == i (bucket 0 is v == 0), so the full 64-bit range
// fits in 65 fixed cells with no configuration. Good enough to answer
// "are queue depths ~2 or ~2000" — the questions this layer exists for.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    if (!stats_enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  // Inclusive upper bound of bucket `i` (lower bound is the previous
  // bucket's bound + 1); bucket 0 holds exactly the value 0.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricType : unsigned char { kCounter, kGauge, kHistogram };

// Catalog entry: identity and documentation for one instrument. `layer`
// is the owning subsystem ("gtype", "par", "detect", "runtime", "corpus",
// "cli") and doubles as the grouping key of the rendered reports.
struct MetricDesc {
  std::string name;   // dotted, layer-prefixed: "par.pool.steals"
  std::string layer;  // owning layer
  std::string unit;   // "events", "tasks", "files", ...
  std::string help;   // one-liner for the catalog
};

// A rendered point-in-time view of one instrument.
struct MetricSample {
  MetricDesc desc;
  MetricType type = MetricType::kCounter;
  std::uint64_t value = 0;  // counter value or histogram count
  std::int64_t gauge = 0;   // gauge value
  std::uint64_t sum = 0;    // histogram only
  // Histogram only: (inclusive upper bound, count) for nonempty buckets.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Find-or-register by name; the desc of the first registration wins.
  // Returned references are valid for the process lifetime. Asking for
  // an existing name with a different instrument type throws
  // std::logic_error (a catalog bug, not a runtime condition).
  Counter& counter(MetricDesc desc);
  Gauge& gauge(MetricDesc desc);
  Histogram& histogram(MetricDesc desc);

  // Registers a snapshot-time callback that publishes externally owned
  // tallies into gauges (e.g. the interner's Stats). Runs under no
  // registry lock, so it may itself call gauge().
  void register_collector(std::function<void()> fn);

  // Runs collectors, then samples every instrument. Safe while workers
  // are still mutating (per-cell atomic reads).
  [[nodiscard]] std::vector<MetricSample> snapshot();

  // Human-readable end-of-run summary (--stats): instruments grouped by
  // layer, zero-valued counters elided unless `include_zeroes`.
  [[nodiscard]] std::string render_text(bool include_zeroes = false);

  // One JSON object {"metric.name": value | {histogram}} — the
  // fdlc --stats=json payload and the bench_*.json "metrics" block.
  // The indent prefixes every line after the first (for embedding).
  [[nodiscard]] std::string render_json(const std::string& indent = "");

  // Zeroes every counter/gauge/histogram (descriptors and collectors
  // stay). For tests and the bench drivers' phase boundaries.
  void reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl();
};

}  // namespace gtdl::obs
