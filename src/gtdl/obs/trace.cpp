#include "gtdl/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace gtdl::obs {

namespace {

struct TraceEvent {
  std::string name;
  const char* cat;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;  // 0 for instants
  char ph;               // 'X' or 'i'
};

// Each thread owns one ring; the global registry keeps every ring alive
// past thread exit (shared_ptr) so the end-of-run writer can still read
// events from threads that have already joined (pool workers are gone
// by the time fdlc writes the trace file).
struct ThreadRing {
  static constexpr std::size_t kCapacity = 1 << 16;  // 64Ki events/thread

  std::mutex mu;
  std::vector<TraceEvent> events;  // append-only up to kCapacity
  std::uint64_t dropped = 0;
  int tid = 0;  // small stable id for the trace file, not the OS tid

  void push(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() >= kCapacity) {
      ++dropped;
      return;
    }
    events.push_back(std::move(ev));
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadRing& this_thread_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    r->tid = s.next_tid++;
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void append_json_string(std::string& out, std::string_view sv) {
  out.push_back('"');
  for (char c : sv) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

bool set_trace_enabled(bool enabled) noexcept {
  // Pin the epoch before the first event so ts values are small
  // positive offsets, the way trace viewers like them.
  if (enabled) (void)trace_epoch();
  return detail::g_trace_enabled.exchange(enabled,
                                          std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void emit_complete(const char* cat, std::string name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns) {
  if (!trace_enabled()) return;
  this_thread_ring().push(
      TraceEvent{std::move(name), cat, ts_ns, dur_ns, 'X'});
}

void emit_instant(const char* cat, std::string name) {
  if (!trace_enabled()) return;
  this_thread_ring().push(
      TraceEvent{std::move(name), cat, trace_now_ns(), 0, 'i'});
}

std::uint64_t trace_dropped_events() noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& r : s.rings) {
    std::lock_guard<std::mutex> rlock(r->mu);
    total += r->dropped;
  }
  return total;
}

void trace_clear() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& r : s.rings) {
    std::lock_guard<std::mutex> rlock(r->mu);
    r->events.clear();
    r->dropped = 0;
  }
}

void write_chrome_trace(std::ostream& os) {
  // Snapshot every ring under its lock, then sort the merged stream by
  // timestamp; stable ordering keeps viewer nesting deterministic.
  struct Tagged {
    const TraceEvent* ev;
    int tid;
  };
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(rings.size());
  std::vector<Tagged> merged;
  std::uint64_t dropped = 0;
  for (const auto& r : rings) {
    locks.emplace_back(r->mu);
    dropped += r->dropped;
    for (const auto& ev : r->events) merged.push_back(Tagged{&ev, r->tid});
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.ev->ts_ns < b.ev->ts_ns;
                   });

  // Chrome trace ts/dur are MICROseconds; fractional values are legal
  // JSON numbers and Perfetto keeps the sub-µs precision.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Tagged& t : merged) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": ";
    append_json_string(out, t.ev->name);
    out += ", \"cat\": ";
    append_json_string(out, t.ev->cat ? t.ev->cat : "misc");
    out += ", \"ph\": \"";
    out.push_back(t.ev->ph);
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(t.tid);
    out += ", \"ts\": " + std::to_string(t.ev->ts_ns / 1000) + "." +
           [&] {
             char buf[4];
             std::snprintf(buf, sizeof buf, "%03u",
                           static_cast<unsigned>(t.ev->ts_ns % 1000));
             return std::string(buf);
           }();
    if (t.ev->ph == 'X') {
      out += ", \"dur\": " + std::to_string(t.ev->dur_ns / 1000) + "." +
             [&] {
               char buf[4];
               std::snprintf(buf, sizeof buf, "%03u",
                             static_cast<unsigned>(t.ev->dur_ns % 1000));
               return std::string(buf);
             }();
    }
    if (t.ev->ph == 'i') out += ", \"s\": \"t\"";
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"tool\": "
         "\"fdlc\", \"dropped_events\": " +
         std::to_string(dropped) + "}}\n";
  os << out;
}

}  // namespace gtdl::obs
