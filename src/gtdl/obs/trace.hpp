// Event tracing: per-thread ring buffers of timestamped spans, written
// out as Chrome trace / Perfetto JSON ("catapult" format). Load the
// output at https://ui.perfetto.dev or chrome://tracing.
//
// The hot-path contract mirrors metrics.hpp: a dormant Span is one
// relaxed atomic load and a branch (the ctor reads the global flag, the
// dtor reads a bool member). When tracing IS on, each event append takes
// the calling thread's OWN ring mutex — uncontended in steady state
// (only the end-of-run writer ever takes someone else's), which keeps
// the sink TSan-clean without atomics gymnastics.
//
// Event model: we emit Chrome "complete" events (ph:"X", one record
// carrying both start and duration) for spans and ph:"i" instants for
// point events. Nesting is implicit: Chrome/Perfetto nest "X" events on
// the same tid by time containment, which RAII scoping guarantees.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace gtdl::obs {

namespace detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
// Returns the previous value.
bool set_trace_enabled(bool enabled) noexcept;

// Nanoseconds since the process trace epoch (a steady_clock anchor
// captured on first use). Exposed for tests; sites use Span/instant.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

// Appends one complete event to the calling thread's ring. `name` is
// copied; `cat` must be a string literal (stored by pointer). Spans are
// dropped (and counted) once a thread's ring is full — tracing is a
// diagnostic surface, it must never block or grow unboundedly.
void emit_complete(const char* cat, std::string name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns);
void emit_instant(const char* cat, std::string name);

// RAII span: construction samples the clock iff tracing is enabled;
// destruction emits one ph:"X" event covering the scope. `cat` and, for
// the two-literal constructor, `name` must outlive the span (string
// literals in practice).
class Span {
 public:
  Span(const char* cat, const char* name) noexcept
      : cat_(cat), name_(name), armed_(trace_enabled()) {
    if (armed_) start_ns_ = trace_now_ns();
  }
  // Dynamic-name variant (e.g. corpus per-file spans). The string is
  // only materialized when tracing is on; pass via this ctor's callee.
  Span(const char* cat, std::string name) noexcept
      : cat_(cat), armed_(trace_enabled()), dyn_name_(std::move(name)) {
    if (armed_) start_ns_ = trace_now_ns();
  }
  ~Span() {
    if (!armed_) return;
    std::uint64_t end = trace_now_ns();
    emit_complete(cat_, name_ ? std::string(name_) : std::move(dyn_name_),
                  start_ns_, end - start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  bool armed_ = false;
  std::uint64_t start_ns_ = 0;
  std::string dyn_name_;
};

// Serializes every thread's ring (merged, time-sorted) as one
// {"traceEvents": [...]} document. Call after the traced workload has
// quiesced — events appended concurrently with the write may be missed.
void write_chrome_trace(std::ostream& os);

// Events dropped because some ring was full (diagnostic; also emitted
// into the trace metadata).
[[nodiscard]] std::uint64_t trace_dropped_events() noexcept;

// Discards all buffered events (rings stay registered). For tests.
void trace_clear();

}  // namespace gtdl::obs
