#include "gtdl/obs/metrics.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace gtdl::obs {

namespace {

// JSON string escaping for metric names/units (they are ASCII in
// practice, but the writer must not be able to emit malformed output).
void append_json_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

struct MetricsRegistry::Impl {
  struct Entry {
    MetricDesc desc;
    MetricType type;
    // Exactly one is live, chosen by `type`; deque storage keeps the
    // address stable for the `static Counter&` references held by
    // instrumentation sites.
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  std::mutex mu;  // guards registration + collector list, not mutation
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::deque<Entry> entries;  // registration order
  std::unordered_map<std::string, Entry*> by_name;
  std::vector<std::function<void()>> collectors;

  Entry& find_or_create(MetricDesc desc, MetricType type) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(desc.name);
    if (it != by_name.end()) {
      if (it->second->type != type) {
        throw std::logic_error("metric '" + desc.name +
                               "' re-registered with a different type");
      }
      return *it->second;
    }
    entries.push_back(Entry{std::move(desc), type});
    Entry& e = entries.back();
    switch (type) {
      case MetricType::kCounter:
        counters.emplace_back();
        e.counter = &counters.back();
        break;
      case MetricType::kGauge:
        gauges.emplace_back();
        e.gauge = &gauges.back();
        break;
      case MetricType::kHistogram:
        histograms.emplace_back();
        e.histogram = &histograms.back();
        break;
    }
    by_name.emplace(e.desc.name, &e);
    return e;
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() {
  // Immortal, like GTypeInterner::instance(): instrumentation sites in
  // static destructors of other TUs may still reference instruments, so
  // the registry is deliberately never destroyed.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter& MetricsRegistry::counter(MetricDesc desc) {
  return *impl().find_or_create(std::move(desc), MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(MetricDesc desc) {
  return *impl().find_or_create(std::move(desc), MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(MetricDesc desc) {
  return *impl()
              .find_or_create(std::move(desc), MetricType::kHistogram)
              .histogram;
}

void MetricsRegistry::register_collector(std::function<void()> fn) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.collectors.push_back(std::move(fn));
}

std::vector<MetricSample> MetricsRegistry::snapshot() {
  Impl& im = impl();
  // Copy the collector list out so collectors can register metrics
  // (taking im.mu) without deadlocking.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    collectors = im.collectors;
  }
  for (auto& fn : collectors) fn();

  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(im.mu);
  out.reserve(im.entries.size());
  for (const auto& e : im.entries) {
    MetricSample s;
    s.desc = e.desc;
    s.type = e.type;
    switch (e.type) {
      case MetricType::kCounter:
        s.value = e.counter->get();
        break;
      case MetricType::kGauge:
        s.gauge = e.gauge->get();
        break;
      case MetricType::kHistogram: {
        s.value = e.histogram->count();
        s.sum = e.histogram->sum();
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          std::uint64_t n = e.histogram->bucket(i);
          if (n != 0) s.buckets.emplace_back(Histogram::bucket_bound(i), n);
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::render_text(bool include_zeroes) {
  std::vector<MetricSample> samples = snapshot();
  // Group by layer, keeping registration order within each group.
  std::map<std::string, std::vector<const MetricSample*>> by_layer;
  for (const auto& s : samples) by_layer[s.desc.layer].push_back(&s);

  std::ostringstream os;
  os << "=== gtdl metrics ===\n";
  for (const auto& [layer, group] : by_layer) {
    bool header_emitted = false;
    for (const MetricSample* s : group) {
      bool zero = false;
      switch (s->type) {
        case MetricType::kCounter: zero = s->value == 0; break;
        case MetricType::kGauge: zero = s->gauge == 0; break;
        case MetricType::kHistogram: zero = s->value == 0; break;
      }
      if (zero && !include_zeroes) continue;
      if (!header_emitted) {
        os << "[" << layer << "]\n";
        header_emitted = true;
      }
      os << "  " << s->desc.name << " = ";
      switch (s->type) {
        case MetricType::kCounter:
          os << s->value;
          break;
        case MetricType::kGauge:
          os << s->gauge;
          break;
        case MetricType::kHistogram: {
          os << s->value << " samples, sum " << s->sum;
          if (s->value != 0) {
            os << ", mean " << (s->sum / s->value);
            os << ", buckets {";
            bool first = true;
            for (const auto& [bound, n] : s->buckets) {
              if (!first) os << ", ";
              first = false;
              os << "<=" << bound << ": " << n;
            }
            os << "}";
          }
          break;
        }
      }
      if (!s->desc.unit.empty()) os << " " << s->desc.unit;
      os << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::render_json(const std::string& indent) {
  std::vector<MetricSample> samples = snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\n" + indent + "  ";
    append_json_escaped(out, s.desc.name);
    out += ": ";
    switch (s.type) {
      case MetricType::kCounter:
        out += std::to_string(s.value);
        break;
      case MetricType::kGauge:
        out += std::to_string(s.gauge);
        break;
      case MetricType::kHistogram: {
        out += "{\"count\": " + std::to_string(s.value) +
               ", \"sum\": " + std::to_string(s.sum) + ", \"buckets\": [";
        bool bfirst = true;
        for (const auto& [bound, n] : s.buckets) {
          if (!bfirst) out += ", ";
          bfirst = false;
          out += "[" + std::to_string(bound) + ", " + std::to_string(n) + "]";
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n" + indent + "}";
  return out;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& c : im.counters) c.reset();
  for (auto& g : im.gauges) g.reset();
  for (auto& h : im.histograms) h.reset();
}

}  // namespace gtdl::obs
