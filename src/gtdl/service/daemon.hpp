// fdld transport front ends over service::Service.
//
// Two interchangeable transports carry the same newline-delimited
// protocol (protocol.hpp):
//
//   * run_stdio  — one request line on stdin, one response line on
//     stdout, until EOF or a "shutdown" request. This is what the
//     differential tests and bench drive via popen: no socket paths to
//     clean up, identical Service semantics.
//   * run_socket — AF_UNIX listener; every accepted connection gets a
//     reader thread, so concurrent clients multiplex onto the ONE shared
//     Service (and through it the one Engine pool). A "shutdown" request
//     answers its sender, then stops the accept loop, joins connection
//     threads and unlinks the socket path.
//
// Responses are written and flushed per request — clients correlate by
// order (and optionally by the echoed "id").

#pragma once

#include <iosfwd>
#include <string>

#include "gtdl/service/service.hpp"

namespace gtdl::service {

// Returns 0 on clean EOF/shutdown. Never throws protocol errors — those
// become {"ok":false,...} response lines.
int run_stdio(Service& service, std::istream& in, std::ostream& out);

// Binds, listens and serves until a shutdown request (returns 0) or a
// socket-level failure (returns 1 after writing to `err`). An existing
// file at `socket_path` is unlinked first — the daemon owns that path.
int run_socket(Service& service, const std::string& socket_path,
               std::ostream& err);

}  // namespace gtdl::service
