#include "gtdl/service/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <variant>
#include <vector>

#include "gtdl/gtype/intern.hpp"
#include "gtdl/support/symbol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GTDL_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gtdl::service {

namespace {

constexpr char kMagic[8] = {'G', 'T', 'D', 'L', 'S', 'N', 'P', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;

// Tags are the GType variant alternative indices; the variant order is
// part of the on-disk format, frozen at kSnapshotVersion 1.
enum : std::uint8_t {
  kTagEmpty = 0,
  kTagSeq = 1,
  kTagOr = 2,
  kTagSpawn = 3,
  kTagTouch = 4,
  kTagRec = 5,
  kTagVar = 6,
  kTagNew = 7,
  kTagPi = 8,
  kTagApp = 9,
  kTagVecSpawn = 10,
  kTagTouchAll = 11,
  kTagTouchIdx = 12,
  kTagPipe = 13,
};

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// Bounds-checked little-endian reader over the (possibly mmapped) file.
struct Cursor {
  const char* p;
  const char* end;

  [[nodiscard]] std::size_t left() const {
    return static_cast<std::size_t>(end - p);
  }

  bool u8(std::uint8_t* out) {
    if (left() < 1) return false;
    *out = static_cast<std::uint8_t>(*p++);
    return true;
  }

  bool u32(std::uint32_t* out) {
    if (left() < 4) return false;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(*p++))
           << (8 * i);
    }
    *out = v;
    return true;
  }

  bool u64(std::uint64_t* out) {
    if (left() < 8) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++))
           << (8 * i);
    }
    *out = v;
    return true;
  }

  bool bytes(std::size_t n, const char** out) {
    if (left() < n) return false;
    *out = p;
    p += n;
    return true;
  }
};

// One decoded node record. Decoding fully validates the payload BEFORE
// anything is interned, so a corrupt snapshot leaves the interner
// untouched (the daemon's cold-fallback guarantee).
struct DecodedNode {
  std::uint64_t id = 0;
  std::uint8_t tag = 0;
  std::uint64_t child_a = 0;  // lhs / body / fn
  std::uint64_t child_b = 0;  // rhs
  std::uint32_t sym = 0;      // vertex / var / family
  std::uint32_t width = 0;
  std::uint32_t index = 0;
  std::vector<std::uint32_t> spawn_syms;  // Pi params / App args
  std::vector<std::uint32_t> touch_syms;
};

// Symbol collection order must match the writer's field order exactly;
// both sides share this helper shape via the tag switch below.

class Writer {
 public:
  std::uint32_t symbol_index(Symbol s) {
    const auto [it, inserted] = index_.try_emplace(
        s.raw(), static_cast<std::uint32_t>(spellings_.size()));
    if (inserted) spellings_.push_back(s.str());
    return it->second;
  }

  void sym(std::string& out, Symbol s) { put_u32(out, symbol_index(s)); }

  void sym_vec(std::string& out, const std::vector<Symbol>& v) {
    put_u32(out, static_cast<std::uint32_t>(v.size()));
    for (const Symbol s : v) sym(out, s);
  }

  [[nodiscard]] const std::vector<std::string>& spellings() const {
    return spellings_;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> index_;
  std::vector<std::string> spellings_;
};

std::uint64_t id_of(const GTypePtr& g) { return facts_of(g)->id; }

void encode_node(std::string& out, Writer& writer, const GTypePtr& node) {
  put_u64(out, id_of(node));
  out.push_back(static_cast<char>(node->node.index()));
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, GTEmpty>) {
          // no fields
        } else if constexpr (std::is_same_v<T, GTSeq> ||
                             std::is_same_v<T, GTOr> ||
                             std::is_same_v<T, GTPipe>) {
          put_u64(out, id_of(n.lhs));
          put_u64(out, id_of(n.rhs));
        } else if constexpr (std::is_same_v<T, GTSpawn>) {
          put_u64(out, id_of(n.body));
          writer.sym(out, n.vertex);
        } else if constexpr (std::is_same_v<T, GTTouch>) {
          writer.sym(out, n.vertex);
        } else if constexpr (std::is_same_v<T, GTRec>) {
          writer.sym(out, n.var);
          put_u64(out, id_of(n.body));
        } else if constexpr (std::is_same_v<T, GTVar>) {
          writer.sym(out, n.var);
        } else if constexpr (std::is_same_v<T, GTNew>) {
          writer.sym(out, n.vertex);
          put_u64(out, id_of(n.body));
        } else if constexpr (std::is_same_v<T, GTPi>) {
          writer.sym_vec(out, n.spawn_params);
          writer.sym_vec(out, n.touch_params);
          put_u64(out, id_of(n.body));
        } else if constexpr (std::is_same_v<T, GTApp>) {
          put_u64(out, id_of(n.fn));
          writer.sym_vec(out, n.spawn_args);
          writer.sym_vec(out, n.touch_args);
        } else if constexpr (std::is_same_v<T, GTVecSpawn>) {
          put_u64(out, id_of(n.body));
          writer.sym(out, n.family);
          put_u32(out, n.width);
        } else if constexpr (std::is_same_v<T, GTTouchAll>) {
          writer.sym(out, n.family);
          put_u32(out, n.width);
        } else {
          static_assert(std::is_same_v<T, GTTouchIdx>);
          writer.sym(out, n.family);
          put_u32(out, n.width);
          put_u32(out, n.index);
        }
      },
      node->node);
}

bool decode_node(Cursor& cur, std::uint64_t symbol_count, DecodedNode* out,
                 std::string* error) {
  const auto fail = [&](const char* message) {
    *error = message;
    return false;
  };
  const auto read_sym = [&](std::uint32_t* sym) {
    if (!cur.u32(sym)) return false;
    return static_cast<std::uint64_t>(*sym) < symbol_count;
  };
  const auto read_sym_vec = [&](std::vector<std::uint32_t>* v) {
    std::uint32_t count = 0;
    if (!cur.u32(&count)) return false;
    if (count > cur.left() / 4) return false;  // each element is 4 bytes
    v->resize(count);
    for (std::uint32_t& s : *v) {
      if (!read_sym(&s)) return false;
    }
    return true;
  };

  if (!cur.u64(&out->id) || !cur.u8(&out->tag)) {
    return fail("truncated node record");
  }
  switch (out->tag) {
    case kTagEmpty:
      return true;
    case kTagSeq:
    case kTagOr:
    case kTagPipe:
      if (!cur.u64(&out->child_a) || !cur.u64(&out->child_b)) {
        return fail("truncated node record");
      }
      return true;
    case kTagSpawn:
      if (!cur.u64(&out->child_a) || !read_sym(&out->sym)) {
        return fail("bad spawn record");
      }
      return true;
    case kTagTouch:
      if (!read_sym(&out->sym)) return fail("bad touch record");
      return true;
    case kTagRec:
    case kTagNew:
      if (!read_sym(&out->sym) || !cur.u64(&out->child_a)) {
        return fail("bad binder record");
      }
      return true;
    case kTagVar:
      if (!read_sym(&out->sym)) return fail("bad var record");
      return true;
    case kTagPi:
      if (!read_sym_vec(&out->spawn_syms) ||
          !read_sym_vec(&out->touch_syms) || !cur.u64(&out->child_a)) {
        return fail("bad pi record");
      }
      return true;
    case kTagApp:
      if (!cur.u64(&out->child_a) || !read_sym_vec(&out->spawn_syms) ||
          !read_sym_vec(&out->touch_syms)) {
        return fail("bad app record");
      }
      return true;
    case kTagVecSpawn:
      if (!cur.u64(&out->child_a) || !read_sym(&out->sym) ||
          !cur.u32(&out->width)) {
        return fail("bad vecspawn record");
      }
      return true;
    case kTagTouchAll:
      if (!read_sym(&out->sym) || !cur.u32(&out->width)) {
        return fail("bad touchall record");
      }
      return true;
    case kTagTouchIdx:
      if (!read_sym(&out->sym) || !cur.u32(&out->width) ||
          !cur.u32(&out->index)) {
        return fail("bad touchidx record");
      }
      return true;
    default:
      return fail("unknown node tag");
  }
}

SnapshotLoadResult load_from_buffer(const char* data, std::size_t size) {
  SnapshotLoadResult result;
  const auto fail = [&](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  if (size < kHeaderBytes) return fail("snapshot too small for header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad snapshot magic");
  }
  Cursor header{data + 8, data + kHeaderBytes};
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t symbol_count = 0;
  std::uint64_t node_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
  header.u32(&version);
  header.u32(&reserved);
  header.u64(&symbol_count);
  header.u64(&node_count);
  header.u64(&payload_bytes);
  header.u64(&checksum);
  if (version != kSnapshotVersion) {
    return fail("snapshot version " + std::to_string(version) +
                " != expected " + std::to_string(kSnapshotVersion));
  }
  if (payload_bytes != size - kHeaderBytes) {
    return fail("payload size mismatch (truncated or padded file)");
  }
  const char* payload = data + kHeaderBytes;
  if (fnv1a(payload, payload_bytes) != checksum) {
    return fail("snapshot checksum mismatch");
  }

  Cursor cur{payload, payload + payload_bytes};

  // Symbol table. Re-interning a spelling that already exists is a no-op
  // by construction; Symbol::fresh never reuses an interned spelling, so
  // snapshot names cannot collide with later fresh names either.
  std::vector<Symbol> symbols;
  symbols.reserve(symbol_count);
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    std::uint32_t len = 0;
    const char* bytes = nullptr;
    if (!cur.u32(&len) || !cur.bytes(len, &bytes)) {
      return fail("truncated symbol table");
    }
    symbols.push_back(Symbol::intern(std::string_view(bytes, len)));
  }

  // Decode-and-validate pass: nothing is interned until the whole
  // payload has parsed cleanly and every child reference resolves to an
  // earlier record (the bottom-up invariant).
  std::vector<DecodedNode> decoded(node_count);
  std::unordered_map<std::uint64_t, std::size_t> position;
  position.reserve(node_count);
  std::string error;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    DecodedNode& node = decoded[i];
    if (!decode_node(cur, symbol_count, &node, &error)) {
      return fail(std::move(error));
    }
    const auto check_child = [&](std::uint64_t id) {
      return position.find(id) != position.end();
    };
    switch (node.tag) {
      case kTagSeq:
      case kTagOr:
      case kTagPipe:
        if (!check_child(node.child_a) || !check_child(node.child_b)) {
          return fail("node references an undefined child");
        }
        break;
      case kTagSpawn:
      case kTagRec:
      case kTagNew:
      case kTagPi:
      case kTagApp:
      case kTagVecSpawn:
        if (!check_child(node.child_a)) {
          return fail("node references an undefined child");
        }
        break;
      default:
        break;
    }
    if (!position.emplace(node.id, i).second) {
      return fail("duplicate node id");
    }
  }
  if (cur.p != cur.end) return fail("trailing bytes after last node");

  // Replay pass: bottom-up re-interning through the public constructors,
  // which recompute facts and canonicalize against anything already live.
  std::vector<GTypePtr> rebuilt(node_count);
  const auto child = [&](std::uint64_t id) -> const GTypePtr& {
    return rebuilt[position.at(id)];
  };
  const auto sym = [&](std::uint32_t index) { return symbols[index]; };
  const auto sym_vec = [&](const std::vector<std::uint32_t>& v) {
    std::vector<Symbol> out;
    out.reserve(v.size());
    for (const std::uint32_t i : v) out.push_back(symbols[i]);
    return out;
  };
  result.ids_identical = true;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const DecodedNode& node = decoded[i];
    GTypePtr& slot = rebuilt[i];
    switch (node.tag) {
      case kTagEmpty: slot = gt::empty(); break;
      case kTagSeq: slot = gt::seq(child(node.child_a), child(node.child_b)); break;
      case kTagOr: slot = gt::alt(child(node.child_a), child(node.child_b)); break;
      case kTagSpawn: slot = gt::spawn(child(node.child_a), sym(node.sym)); break;
      case kTagTouch: slot = gt::touch(sym(node.sym)); break;
      case kTagRec: slot = gt::rec(sym(node.sym), child(node.child_a)); break;
      case kTagVar: slot = gt::var(sym(node.sym)); break;
      case kTagNew: slot = gt::nu(sym(node.sym), child(node.child_a)); break;
      case kTagPi:
        slot = gt::pi(sym_vec(node.spawn_syms), sym_vec(node.touch_syms),
                      child(node.child_a));
        break;
      case kTagApp:
        slot = gt::app(child(node.child_a), sym_vec(node.spawn_syms),
                       sym_vec(node.touch_syms));
        break;
      case kTagVecSpawn:
        slot = gt::vecspawn(child(node.child_a), sym(node.sym), node.width);
        break;
      case kTagTouchAll:
        slot = gt::touch_all(sym(node.sym), node.width);
        break;
      case kTagTouchIdx:
        slot = gt::touch_idx(sym(node.sym), node.width, node.index);
        break;
      default: break;  // unreachable: validated above
    }
    if (facts_of(slot)->id != node.id) result.ids_identical = false;
  }

  result.ok = true;
  result.nodes = node_count;
  return result;
}

}  // namespace

SnapshotWriteResult save_snapshot(const std::string& path) {
  SnapshotWriteResult result;

  const std::vector<GTypePtr> nodes = GTypeInterner::instance().all_nodes();
  Writer writer;
  std::string records;
  for (const GTypePtr& node : nodes) {
    encode_node(records, writer, node);
  }
  std::string payload;
  for (const std::string& spelling : writer.spellings()) {
    put_u32(payload, static_cast<std::uint32_t>(spelling.size()));
    payload += spelling;
  }
  payload += records;

  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  file.append(kMagic, sizeof(kMagic));
  put_u32(file, kSnapshotVersion);
  put_u32(file, 0);  // reserved
  put_u64(file, writer.spellings().size());
  put_u64(file, nodes.size());
  put_u64(file, payload.size());
  put_u64(file, fnv1a(payload.data(), payload.size()));
  file += payload;

  // Write-then-rename so a crashed daemon never leaves a torn snapshot
  // at the advertised path (the loader would reject it anyway, but the
  // previous good snapshot should survive).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(file.data(),
                           static_cast<std::streamsize>(file.size()))) {
      result.error = "cannot write '" + tmp + "'";
      return result;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    result.error = "cannot rename '" + tmp + "' to '" + path + "'";
    return result;
  }

  result.ok = true;
  result.nodes = nodes.size();
  result.symbols = writer.spellings().size();
  result.bytes = file.size();
  return result;
}

SnapshotLoadResult load_snapshot(const std::string& path) {
#if GTDL_SNAPSHOT_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      const std::size_t size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        SnapshotLoadResult result;
        result.error = "snapshot too small for header";
        return result;
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        SnapshotLoadResult result =
            load_from_buffer(static_cast<const char*>(map), size);
        ::munmap(map, size);
        return result;
      }
      // mmap refused (unusual filesystem); fall through to the read path.
    } else {
      ::close(fd);
    }
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SnapshotLoadResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  return load_from_buffer(buffer.data(), buffer.size());
}

}  // namespace gtdl::service
